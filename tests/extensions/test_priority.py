"""Tests for value/priority-aware pruning (§VII)."""

import numpy as np
import pytest

from repro.core.config import PruningConfig
from repro.extensions.priority import ValueAwarePruner, inverse_value_weight
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.system.completion import CompletionEstimator
from repro.system.serverless import ServerlessSystem

from tests.conftest import make_deterministic_pet


class TestWeightFunction:
    def test_zero_value_full_weight(self):
        assert inverse_value_weight(0.0) == 1.0

    def test_pivot_halves(self):
        assert inverse_value_weight(1.0, pivot=1.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        ws = [inverse_value_weight(v) for v in (0.0, 1.0, 5.0, 100.0)]
        assert ws == sorted(ws, reverse=True)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            inverse_value_weight(-1.0)


class TestDeferBar:
    def make_pruner(self):
        return ValueAwarePruner(PruningConfig.paper_default())

    def task_with_value(self, value, priority=0):
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        t.value = value
        t.priority = priority
        return t

    def test_high_value_lowers_bar(self):
        pruner = self.make_pruner()
        low = self.task_with_value(0.0)     # bar 0.5
        high = self.task_with_value(9.0)    # bar 0.05
        assert pruner.should_defer(low, 0.3) is True
        assert pruner.should_defer(high, 0.3) is False

    def test_priority_protection(self):
        pruner = ValueAwarePruner(PruningConfig.paper_default(), protect_priority=5)
        vip = self.task_with_value(0.0, priority=5)
        assert pruner.should_defer(vip, 0.0) is False

    def test_bad_weight_fn_rejected(self):
        pruner = ValueAwarePruner(
            PruningConfig.paper_default(), weight_fn=lambda v: 2.0
        )
        with pytest.raises(ValueError, match="weight"):
            pruner.should_defer(self.task_with_value(1.0), 0.3)


class TestDropScan:
    def test_high_value_survives_low_value_dropped(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        runner = Task(task_id=0, task_type=0, arrival=0.0, deadline=200.0)
        runner.mark_mapped(0, 0.0)
        cluster[0].dispatch(runner, sim, lambda *a: 10.0, lambda *a: None)
        cheap = Task(task_id=1, task_type=0, arrival=0.0, deadline=15.0)
        dear = Task(task_id=2, task_type=0, arrival=0.0, deadline=25.0)
        dear.value = 100.0
        for t in (cheap, dear):
            t.mark_mapped(0, 0.0)
            cluster[0].dispatch(t, sim, lambda *a: 10.0, lambda *a: None)
        pruner = ValueAwarePruner(PruningConfig.paper_default())
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        assert [d.task.task_id for d in decisions] == [1]
        assert dear in cluster[0].queue

    def test_protected_priority_never_scanned_out(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        runner = Task(task_id=0, task_type=0, arrival=0.0, deadline=200.0)
        runner.mark_mapped(0, 0.0)
        cluster[0].dispatch(runner, sim, lambda *a: 10.0, lambda *a: None)
        doomed_vip = Task(task_id=1, task_type=0, arrival=0.0, deadline=12.0)
        doomed_vip.priority = 9
        doomed_vip.mark_mapped(0, 0.0)
        cluster[0].dispatch(doomed_vip, sim, lambda *a: 10.0, lambda *a: None)
        pruner = ValueAwarePruner(PruningConfig.paper_default(), protect_priority=5)
        assert pruner.drop_scan(cluster, est, now=0.0) == []


class TestAttach:
    def test_attach_swaps_pruner(self, pet_small):
        sys = ServerlessSystem(pet_small, "MM", pruning=PruningConfig.paper_default(), seed=0)
        pruner = ValueAwarePruner.attach(sys)
        assert sys.pruner is pruner
        assert sys.allocator.pruner is pruner
        assert pruner.accounting is sys.accounting

    def test_attach_requires_pruning(self, pet_small):
        sys = ServerlessSystem(pet_small, "MM", seed=0)
        with pytest.raises(ValueError):
            ValueAwarePruner.attach(sys)

    def test_end_to_end_high_value_tasks_favoured(self, pet_small, oversub_workload):
        """Give half the tasks 10× value; with a value-aware pruner their
        on-time rate should beat the cheap half's."""
        from tests.conftest import fresh_tasks

        tasks = fresh_tasks(oversub_workload)
        for t in tasks:
            t.value = 10.0 if t.task_id % 2 == 0 else 0.0
        sys = ServerlessSystem(pet_small, "MM", pruning=PruningConfig.paper_default(), seed=1)
        ValueAwarePruner.attach(sys)
        sys.run(tasks)
        rich = [t for t in tasks if t.value > 0]
        poor = [t for t in tasks if t.value == 0]
        rich_rate = sum(t.completed_on_time for t in rich) / len(rich)
        poor_rate = sum(t.completed_on_time for t in poor) / len(poor)
        assert rich_rate >= poor_rate

"""Tests for the energy/cost accounting extension (§VII)."""

import numpy as np
import pytest

from repro.core.config import PruningConfig
from repro.extensions.energy import EnergyModel, EnergyReport, measure_energy
from repro.sim.cluster import Cluster
from repro.sim.task import Task
from repro.system.serverless import ServerlessSystem

from tests.conftest import fresh_tasks, make_deterministic_pet


class TestEnergyModel:
    def test_uniform(self):
        m = EnergyModel.uniform(3)
        assert len(m.active_power) == 3
        assert m.active_power[0] == 100.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(active_power=(1.0,), idle_power=(1.0, 2.0), price_per_busy_unit=(1.0,))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(active_power=(-1.0,), idle_power=(1.0,), price_per_busy_unit=(1.0,))


class TestMeasurement:
    def test_hand_computed_case(self):
        """One machine, active 10 / idle 1 / price 2 per unit.

        Task A runs 4 units, on time; task B runs 6 units, late.
        Makespan 20 → idle time 10.
        """
        pet = make_deterministic_pet(np.array([[4.0], [6.0]]))
        cluster = Cluster.heterogeneous(1)
        from repro.sim.engine import Simulator

        sim = Simulator()
        a = Task(task_id=0, task_type=0, arrival=0.0, deadline=50.0)
        b = Task(task_id=1, task_type=1, arrival=0.0, deadline=5.0)
        for t, dur in ((a, 4.0), (b, 6.0)):
            t.mark_mapped(0, 0.0)
            cluster[0].dispatch(t, sim, lambda task, m, d=dur: d, lambda *x: None)
        sim.run()
        model = EnergyModel(active_power=(10.0,), idle_power=(1.0,), price_per_busy_unit=(2.0,))
        report = measure_energy([a, b], cluster, model, makespan=20.0)
        assert report.useful_energy == pytest.approx(40.0)
        assert report.wasted_energy == pytest.approx(60.0)
        assert report.idle_energy == pytest.approx(10.0)
        assert report.total_energy == pytest.approx(110.0)
        assert report.incurred_cost == pytest.approx(20.0)
        assert report.waste_fraction == pytest.approx(0.6)
        assert report.energy_per_on_time_task == pytest.approx(110.0)

    def test_dropped_tasks_consume_nothing(self):
        pet = make_deterministic_pet(np.array([[4.0]]))
        cluster = Cluster.heterogeneous(1)
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        t.mark_dropped(11.0, proactive=True)
        model = EnergyModel.uniform(1)
        report = measure_energy([t], cluster, model, makespan=20.0)
        assert report.useful_energy == 0.0
        assert report.wasted_energy == 0.0

    def test_zero_on_time_infinite_efficiency(self):
        report = EnergyReport(
            total_energy=10.0,
            useful_energy=0.0,
            wasted_energy=10.0,
            idle_energy=0.0,
            incurred_cost=1.0,
            on_time_tasks=0,
        )
        assert report.energy_per_on_time_task == float("inf")

    def test_negative_makespan_rejected(self):
        model = EnergyModel.uniform(1)
        with pytest.raises(ValueError):
            measure_energy([], Cluster.heterogeneous(1), model, makespan=-1.0)

    def test_summary_readable(self):
        report = EnergyReport(100.0, 50.0, 30.0, 20.0, 12.0, 5)
        assert "energy=100" in report.summary()


class TestPruningReducesWaste:
    def test_paper_future_work_claim(self, pet_small, oversub_workload):
        """§VII: pruning saves the energy otherwise wasted on failing
        tasks — wasted (late-execution) energy must drop."""
        model = EnergyModel.uniform(pet_small.num_machine_types)

        base = ServerlessSystem(pet_small, "MM", seed=1)
        base.run(fresh_tasks(oversub_workload))
        r0 = measure_energy(base.tasks, base.cluster, model, base.sim.now)

        pruned = ServerlessSystem(pet_small, "MM", pruning=PruningConfig.paper_default(), seed=1)
        pruned.run(fresh_tasks(oversub_workload))
        r1 = measure_energy(pruned.tasks, pruned.cluster, model, pruned.sim.now)

        assert r1.wasted_energy < r0.wasted_energy
        assert r1.energy_per_on_time_task < r0.energy_per_on_time_task

"""DAG workload construction: layered wiring, depths, trace v3 format."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.task import Task
from repro.stochastic.pet import generate_pet_matrix
from repro.workload.dag import (
    assign_layered_deps,
    count_edges,
    task_depths,
    validate_deps,
)
from repro.workload.generator import generate_workload
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import load_trace, save_trace

_PET = generate_pet_matrix(4, 2, seed=7, mean_range=(3.0, 8.0), samples_per_cell=200)


def _tasks(n):
    return [
        Task(task_id=i, task_type=0, arrival=float(i), deadline=float(i) + 10.0)
        for i in range(n)
    ]


@st.composite
def dag_specs(draw):
    return WorkloadSpec(
        num_tasks=draw(st.integers(min_value=30, max_value=120)),
        time_span=draw(st.floats(min_value=40.0, max_value=150.0)),
        num_task_types=draw(st.integers(min_value=1, max_value=4)),
        pattern=draw(st.sampled_from(["constant", "spiky"])),
        dag_layers=draw(st.integers(min_value=2, max_value=5)),
        dag_edge_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        dag_max_parents=draw(st.integers(min_value=1, max_value=4)),
    )


@settings(max_examples=40, deadline=None)
@given(dag_specs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_layered_dag_is_acyclic_bounded_and_deterministic(spec, seed):
    tasks = generate_workload(spec, _PET, np.random.default_rng(seed))
    deps = {t.task_id: t.deps for t in tasks}
    depth = task_depths(deps)  # raises on a cycle or dangling edge
    for t in tasks:
        assert len(t.deps) <= spec.dag_max_parents
        for p in t.deps:
            assert p < t.task_id  # parents arrive earlier
            assert depth[p] < depth[t.task_id]
    assert max(depth.values()) <= spec.dag_layers - 1
    again = generate_workload(spec, _PET, np.random.default_rng(seed))
    assert [t.deps for t in again] == [t.deps for t in tasks]


@settings(max_examples=40, deadline=None)
@given(dag_specs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_dag_draws_do_not_disturb_arrivals_or_deadlines(spec, seed):
    """Wiring happens after arrivals/deadlines: the dependency-free
    workload of the same seed is identical except for ``deps``."""
    flat = spec.with_(dag_layers=0)
    with_dag = generate_workload(spec, _PET, np.random.default_rng(seed))
    without = generate_workload(flat, _PET, np.random.default_rng(seed))
    assert [(t.task_id, t.task_type, t.arrival, t.deadline) for t in with_dag] == [
        (t.task_id, t.task_type, t.arrival, t.deadline) for t in without
    ]
    assert all(not t.deps for t in without)


def test_edge_prob_extremes():
    tasks = _tasks(30)
    assign_layered_deps(
        tasks, layers=3, edge_prob=0.0, max_parents=2, rng=np.random.default_rng(0)
    )
    assert count_edges({t.task_id: t.deps for t in tasks}) == 0
    tasks = _tasks(30)
    assign_layered_deps(
        tasks, layers=3, edge_prob=1.0, max_parents=2, rng=np.random.default_rng(0)
    )
    # Every non-root task draws its full parent quota at prob 1.
    by_depth = task_depths({t.task_id: t.deps for t in tasks})
    for t in tasks:
        if by_depth[t.task_id] > 0:
            assert len(t.deps) >= 1


def test_task_depths_rejects_cycles_and_dangling_edges():
    with pytest.raises(ValueError, match="cycle"):
        task_depths({0: (1,), 1: (0,)})
    with pytest.raises(ValueError, match="unknown task"):
        task_depths({0: (), 1: (7,)})
    with pytest.raises(ValueError, match="itself"):
        validate_deps({0: (0,)})


def test_task_self_dependency_rejected_at_construction():
    with pytest.raises(ValueError, match="depends on itself"):
        Task(task_id=3, task_type=0, arrival=0.0, deadline=1.0, deps=(3,))


# ----------------------------------------------------------------------
# Trace format v3
# ----------------------------------------------------------------------
def test_dag_trace_round_trips_and_writes_v3(tmp_path):
    spec = WorkloadSpec(
        num_tasks=40, time_span=50.0, num_task_types=3, dag_layers=3
    )
    tasks = generate_workload(spec, _PET, np.random.default_rng(5))
    path = tmp_path / "dag.trace.json"
    save_trace(path, tasks, spec)
    payload = json.loads(path.read_text())
    assert payload["format_version"] == 3
    loaded, loaded_spec = load_trace(path)
    assert [(t.task_id, t.deps) for t in loaded] == [
        (t.task_id, t.deps) for t in tasks
    ]
    assert loaded_spec == spec


def test_flat_trace_still_writes_v2(tmp_path):
    spec = WorkloadSpec(num_tasks=30, time_span=50.0, num_task_types=3)
    tasks = generate_workload(spec, _PET, np.random.default_rng(5))
    path = tmp_path / "flat.trace.json"
    save_trace(path, tasks, spec)
    payload = json.loads(path.read_text())
    assert payload["format_version"] == 2
    assert all("deps" not in r for r in payload["tasks"])
    assert all(not k.startswith("dag_") for k in payload["spec"])


def test_trace_with_edges_rejects_csv_and_validates_deps(tmp_path):
    from repro.workload.trace import save_csv_trace

    tasks = _tasks(3)
    tasks[2] = Task(task_id=2, task_type=0, arrival=2.0, deadline=12.0, deps=(0, 1))
    with pytest.raises(ValueError, match="dependency edges"):
        save_csv_trace(tmp_path / "dag.csv", tasks)
    # A corrupt file (dangling parent) is rejected at load.
    path = tmp_path / "bad.trace.json"
    save_trace(path, tasks)
    payload = json.loads(path.read_text())
    payload["tasks"][2]["deps"] = [99]
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="unknown task"):
        from repro.workload.trace import load_any_trace

        load_any_trace(path, "json")


def test_spec_validation_guards_dag_fields():
    with pytest.raises(ValueError, match="dag_layers"):
        WorkloadSpec(num_tasks=10, time_span=10.0, dag_layers=1)
    with pytest.raises(ValueError, match="dag_edge_prob"):
        WorkloadSpec(num_tasks=10, time_span=10.0, dag_layers=2, dag_edge_prob=1.5)
    with pytest.raises(ValueError, match="dag_max_parents"):
        WorkloadSpec(num_tasks=10, time_span=10.0, dag_layers=2, dag_max_parents=0)
    with pytest.raises(ValueError, match="explicit dependency edges"):
        WorkloadSpec(
            num_tasks=10,
            time_span=10.0,
            pattern="trace",
            trace_path="x.json",
            dag_layers=2,
        )
    with pytest.raises(ValueError, match="trace_sample"):
        WorkloadSpec(num_tasks=10, time_span=10.0, trace_sample=0.5)

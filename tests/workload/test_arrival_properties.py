"""Property-based tests for every arrival generator.

Four invariants, for each of constant / spiky / poisson / bursty (plus
the raw thinning primitive):

* arrivals are sorted and strictly inside ``[0, time_span)``;
* the generator conserves the offered load — the expected total count
  matches the spec within statistical tolerance;
* the same seed reproduces the same arrivals bit-for-bit;
* the thinning bound is enforced, never silently exceeded.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.arrivals import (
    bursty_arrivals,
    constant_arrivals,
    generate_type_arrivals,
    inhomogeneous_poisson_arrivals,
    poisson_arrivals,
    spiky_arrivals,
)
from repro.workload.spec import ArrivalPattern, WorkloadSpec

GENERATED_PATTERNS = ["constant", "spiky", "poisson", "bursty"]


@st.composite
def specs(draw):
    return WorkloadSpec(
        num_tasks=draw(st.integers(min_value=30, max_value=200)),
        time_span=draw(st.floats(min_value=40.0, max_value=300.0)),
        num_task_types=draw(st.integers(min_value=1, max_value=4)),
        pattern=draw(st.sampled_from(GENERATED_PATTERNS)),
        num_spikes=draw(st.integers(min_value=1, max_value=5)),
        spike_amplitude=draw(st.floats(min_value=1.0, max_value=6.0)),
        burst_amplitude=draw(st.floats(min_value=1.0, max_value=8.0)),
        burst_fraction=draw(st.floats(min_value=0.05, max_value=0.6)),
        burst_cycles=draw(st.floats(min_value=1.0, max_value=10.0)),
    )


seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=60, deadline=None)
@given(specs(), seeds)
def test_arrivals_sorted_and_inside_span(spec, seed):
    arr = generate_type_arrivals(spec, 50.0, np.random.default_rng(seed))
    assert np.all(np.diff(arr) >= 0)
    assert np.all(arr >= 0)
    assert np.all(arr < spec.time_span)


@settings(max_examples=60, deadline=None)
@given(specs(), seeds)
def test_seed_determinism(spec, seed):
    a = generate_type_arrivals(spec, 40.0, np.random.default_rng(seed))
    b = generate_type_arrivals(spec, 40.0, np.random.default_rng(seed))
    assert np.array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(specs())
def test_empty_for_nonpositive_expected_count(spec):
    rng = np.random.default_rng(0)
    assert generate_type_arrivals(spec, 0.0, rng).size == 0
    assert generate_type_arrivals(spec, -3.0, rng).size == 0


@pytest.mark.parametrize("pattern", GENERATED_PATTERNS)
def test_rate_conservation_within_tolerance(pattern):
    """Averaged over many independent trials, every generator delivers the
    expected count — patterns are compared at equal offered load."""
    spec = WorkloadSpec(
        num_tasks=100, time_span=200.0, num_task_types=2, pattern=pattern
    )
    expected = 120.0
    rng = np.random.default_rng(12345)
    reps = 60
    total = sum(
        generate_type_arrivals(spec, expected, rng).size for _ in range(reps)
    )
    mean = total / reps
    # 60 reps of a count with std <= ~sqrt(3·mean) (MMPP overdispersion):
    # a 5-sigma band around the target is ~±12, use ±15% of 120 = ±18.
    assert abs(mean - expected) < 0.15 * expected, (
        f"{pattern}: mean count {mean:.1f} vs expected {expected}"
    )


class TestThinningPrimitive:
    def test_bound_violation_raises(self):
        with pytest.raises(ValueError, match="thinning bound exceeded"):
            inhomogeneous_poisson_arrivals(
                lambda t: 10.0, 5.0, 100.0, np.random.default_rng(0)
            )

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError, match="negative"):
            inhomogeneous_poisson_arrivals(
                lambda t: -1.0, 5.0, 100.0, np.random.default_rng(0)
            )

    def test_nonpositive_rate_max_raises(self):
        with pytest.raises(ValueError, match="rate_max"):
            inhomogeneous_poisson_arrivals(
                lambda t: 1.0, 0.0, 100.0, np.random.default_rng(0)
            )

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.floats(min_value=0.2, max_value=5.0))
    def test_rate_at_bound_keeps_every_candidate(self, seed, rate):
        """rate_fn == rate_max must accept every candidate: thinning
        with a tight bound degenerates to the homogeneous process, so
        the output equals the candidate stream exactly."""
        out = inhomogeneous_poisson_arrivals(
            lambda t: rate, rate, 60.0, np.random.default_rng(seed)
        )
        replay = np.random.default_rng(seed)
        candidates = []
        t = 0.0
        while True:
            t += replay.exponential(1.0 / rate)
            if t >= 60.0:
                break
            replay.random()  # the acceptance draw, always < rate/rate_max = 1
            candidates.append(t)
        assert np.array_equal(out, np.asarray(candidates))

    def test_zero_rate_profile_yields_nothing(self):
        out = inhomogeneous_poisson_arrivals(
            lambda t: 0.0, 2.0, 80.0, np.random.default_rng(3)
        )
        assert out.size == 0


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_poisson_amplitude_one_is_homogeneous(seed):
    """POISSON with amplitude 1 has a flat profile: every candidate is
    accepted, so the arrival count equals the candidate count of a plain
    Poisson process at the base rate."""
    spec = WorkloadSpec(
        num_tasks=100,
        time_span=100.0,
        pattern=ArrivalPattern.POISSON,
        spike_amplitude=1.0,
    )
    out = poisson_arrivals(80.0, spec, np.random.default_rng(seed))
    assert np.all(np.diff(out) >= 0)
    assert np.all((out >= 0) & (out < spec.time_span))


def test_trace_pattern_rejected_by_type_dispatch():
    spec = WorkloadSpec(
        num_tasks=10, time_span=10.0, pattern="trace", trace_path="x.csv"
    )
    with pytest.raises(ValueError, match="replay"):
        generate_type_arrivals(spec, 5.0, np.random.default_rng(0))


def test_generator_functions_match_dispatch():
    """generate_type_arrivals must route each pattern to its generator."""
    rng_seed = 77
    for pattern, fn in [
        (ArrivalPattern.SPIKY, spiky_arrivals),
        (ArrivalPattern.POISSON, poisson_arrivals),
        (ArrivalPattern.BURSTY, bursty_arrivals),
    ]:
        spec = WorkloadSpec(num_tasks=60, time_span=50.0, pattern=pattern)
        via_dispatch = generate_type_arrivals(
            spec, 30.0, np.random.default_rng(rng_seed)
        )
        direct = fn(30.0, spec, np.random.default_rng(rng_seed))
        assert np.array_equal(via_dispatch, direct)
    spec = WorkloadSpec(num_tasks=60, time_span=50.0, pattern="constant")
    assert np.array_equal(
        generate_type_arrivals(spec, 30.0, np.random.default_rng(rng_seed)),
        constant_arrivals(
            30.0, spec.time_span, np.random.default_rng(rng_seed),
            variance_fraction=spec.variance_fraction,
        ),
    )

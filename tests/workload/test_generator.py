"""Tests for workload generation and Eq. 4 deadline assignment."""

import numpy as np
import pytest

from repro.workload.generator import assign_deadlines, generate_workload, trimmed_slice
from repro.workload.spec import WorkloadSpec


class TestDeadlines:
    def test_eq4_bounds(self, pet_small, rng):
        """δ = arr + avg_i + β·avg_all with β ∈ [0.8, 2.5]."""
        arrivals = np.array([0.0, 10.0, 20.0])
        dls = assign_deadlines(arrivals, 1, pet_small, rng, (0.8, 2.5))
        avg_i = pet_small.type_mean(1)
        avg_all = pet_small.overall_mean()
        lo = arrivals + avg_i + 0.8 * avg_all
        hi = arrivals + avg_i + 2.5 * avg_all
        assert np.all(dls >= lo - 1e-9)
        assert np.all(dls <= hi + 1e-9)

    def test_beta_spread(self, pet_small, rng):
        arrivals = np.zeros(4000)
        dls = assign_deadlines(arrivals, 0, pet_small, rng, (0.8, 2.5))
        avg_i = pet_small.type_mean(0)
        avg_all = pet_small.overall_mean()
        betas = (dls - avg_i) / avg_all
        assert betas.min() == pytest.approx(0.8, abs=0.05)
        assert betas.max() == pytest.approx(2.5, abs=0.05)
        assert betas.mean() == pytest.approx(1.65, abs=0.1)


class TestGenerate:
    def test_task_count(self, pet_small):
        spec = WorkloadSpec(num_tasks=300, time_span=200.0, num_task_types=3)
        tasks = generate_workload(spec, pet_small, np.random.default_rng(1))
        assert len(tasks) == pytest.approx(300, rel=0.15)

    def test_sorted_by_arrival_with_sequential_ids(self, pet_small):
        spec = WorkloadSpec(num_tasks=200, time_span=150.0, num_task_types=3)
        tasks = generate_workload(spec, pet_small, np.random.default_rng(1))
        arrivals = [t.arrival for t in tasks]
        assert arrivals == sorted(arrivals)
        assert [t.task_id for t in tasks] == list(range(len(tasks)))

    def test_types_within_model(self, pet_small):
        spec = WorkloadSpec(num_tasks=200, time_span=150.0, num_task_types=12)
        tasks = generate_workload(spec, pet_small, np.random.default_rng(1))
        # spec asks for 12 types but the model only has 3
        assert {t.task_type for t in tasks} == {0, 1, 2}

    def test_types_roughly_balanced(self, pet_small):
        spec = WorkloadSpec(num_tasks=600, time_span=400.0, num_task_types=3)
        tasks = generate_workload(spec, pet_small, np.random.default_rng(1))
        counts = np.bincount([t.task_type for t in tasks], minlength=3)
        assert counts.min() > 0.25 * len(tasks)

    def test_deterministic(self, pet_small):
        spec = WorkloadSpec(num_tasks=100, time_span=80.0, num_task_types=3)
        a = generate_workload(spec, pet_small, np.random.default_rng(4))
        b = generate_workload(spec, pet_small, np.random.default_rng(4))
        assert [(t.arrival, t.task_type, t.deadline) for t in a] == [
            (t.arrival, t.task_type, t.deadline) for t in b
        ]

    def test_all_pending(self, pet_small, small_workload):
        assert all(t.status.value == "pending" for t in small_workload)


class TestTrim:
    def test_trims_both_ends(self, small_workload):
        out = trimmed_slice(small_workload, 10)
        assert len(out) == len(small_workload) - 20
        assert out[0] is small_workload[10]

    def test_zero_trim_identity(self, small_workload):
        assert trimmed_slice(small_workload, 0) is small_workload

    def test_overtrim_rejected(self, small_workload):
        with pytest.raises(ValueError, match="discard"):
            trimmed_slice(small_workload, (len(small_workload) + 1) // 2)

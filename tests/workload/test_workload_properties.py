"""Property-based tests on workload generation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.pet import generate_pet_matrix
from repro.workload.generator import generate_workload, trimmed_slice
from repro.workload.spec import WorkloadSpec

# A module-level PET keeps hypothesis examples fast and avoids mixing
# function-scoped pytest fixtures into @given.
_PET = generate_pet_matrix(3, 2, seed=7, mean_range=(3.0, 8.0), samples_per_cell=200)


@st.composite
def specs(draw):
    return WorkloadSpec(
        num_tasks=draw(st.integers(min_value=20, max_value=150)),
        time_span=draw(st.floats(min_value=30.0, max_value=200.0)),
        num_task_types=draw(st.integers(min_value=1, max_value=4)),
        pattern=draw(st.sampled_from(["constant", "spiky"])),
        num_spikes=draw(st.integers(min_value=1, max_value=5)),
    )


@settings(max_examples=40, deadline=None)
@given(specs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_arrivals_sorted_in_span_ids_sequential(spec, seed):
    tasks = generate_workload(spec, _PET, np.random.default_rng(seed))
    arrivals = [t.arrival for t in tasks]
    assert arrivals == sorted(arrivals)
    assert all(0 <= a < spec.time_span for a in arrivals)
    assert [t.task_id for t in tasks] == list(range(len(tasks)))


@settings(max_examples=40, deadline=None)
@given(specs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_eq4_deadline_bounds_hold_for_every_task(spec, seed):
    tasks = generate_workload(spec, _PET, np.random.default_rng(seed))
    avg_all = _PET.overall_mean()
    lo, hi = spec.beta_range
    for t in tasks:
        avg_i = _PET.type_mean(t.task_type)
        assert t.arrival + avg_i + lo * avg_all - 1e-9 <= t.deadline
        assert t.deadline <= t.arrival + avg_i + hi * avg_all + 1e-9


@settings(max_examples=40, deadline=None)
@given(specs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_task_types_limited_by_model(spec, seed):
    tasks = generate_workload(spec, _PET, np.random.default_rng(seed))
    assert all(0 <= t.task_type < _PET.num_task_types for t in tasks)


@settings(max_examples=40, deadline=None)
@given(specs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_generation_is_deterministic(spec, seed):
    a = generate_workload(spec, _PET, np.random.default_rng(seed))
    b = generate_workload(spec, _PET, np.random.default_rng(seed))
    assert [(t.arrival, t.task_type, t.deadline) for t in a] == [
        (t.arrival, t.task_type, t.deadline) for t in b
    ]


@settings(max_examples=20, deadline=None)
@given(specs(), st.integers(min_value=0, max_value=2**31 - 1), st.integers(0, 5))
def test_trim_preserves_interior(spec, seed, trim):
    tasks = generate_workload(spec, _PET, np.random.default_rng(seed))
    if 2 * trim >= len(tasks):
        return
    out = trimmed_slice(tasks, trim)
    assert len(out) == len(tasks) - 2 * trim
    if trim and len(out):
        assert out[0] is tasks[trim]
        assert out[-1] is tasks[-trim - 1]

"""Tests for workload specifications."""

import pytest

from repro.workload.spec import PAPER_TIME_SPAN, ArrivalPattern, WorkloadSpec


class TestValidation:
    def test_defaults(self):
        spec = WorkloadSpec()
        assert spec.pattern is ArrivalPattern.SPIKY
        assert spec.num_task_types == 12
        assert spec.beta_range == (0.8, 2.5)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(num_tasks=0),
            dict(time_span=0.0),
            dict(num_task_types=0),
            dict(spike_duration_fraction=0.0),
            dict(spike_duration_fraction=1.0),
            dict(spike_amplitude=0.5),
            dict(beta_range=(-1.0, 2.0)),
            dict(beta_range=(2.0, 1.0)),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            WorkloadSpec(**kw)

    def test_string_pattern_coerced(self):
        assert WorkloadSpec(pattern="constant").pattern is ArrivalPattern.CONSTANT

    def test_frozen(self):
        with pytest.raises(AttributeError):
            WorkloadSpec().num_tasks = 5

    def test_with_(self):
        spec = WorkloadSpec().with_(num_tasks=77)
        assert spec.num_tasks == 77


class TestDerived:
    def test_mean_arrival_rate(self):
        spec = WorkloadSpec(num_tasks=600, time_span=300.0)
        assert spec.mean_arrival_rate == pytest.approx(2.0)

    def test_trim_count_proportional(self):
        assert WorkloadSpec(num_tasks=1500).trim_count == 10
        assert WorkloadSpec(num_tasks=15000).trim_count == 100

    def test_trim_count_capped_at_tenth(self):
        spec = WorkloadSpec(num_tasks=100)
        assert spec.trim_count <= 10

    def test_trim_explicit(self):
        assert WorkloadSpec(num_tasks=1000, trim_edge_tasks=33).trim_count == 33

    def test_paper_scale(self):
        spec = WorkloadSpec.paper_scale(20000)
        assert spec.num_tasks == 20000
        assert spec.time_span == PAPER_TIME_SPAN
        assert spec.trim_count == 100

"""Tests for workload trace persistence (JSON v1/v2 + CSV replay)."""

import json

import numpy as np
import pytest

from repro.sim.task import TaskStatus
from repro.workload.generator import generate_workload
from repro.workload.spec import ArrivalPattern, WorkloadSpec
from repro.workload.trace import (
    load_any_trace,
    load_csv_trace,
    load_trace,
    records_to_tasks,
    save_csv_trace,
    save_trace,
    tasks_to_records,
    trace_spec,
)


class TestRoundTrip:
    def test_identity_preserved(self, small_workload, tmp_path):
        path = tmp_path / "trace.json"
        spec = WorkloadSpec(num_tasks=120, time_span=80.0, num_task_types=3)
        save_trace(path, small_workload, spec)
        tasks, loaded_spec = load_trace(path)
        assert len(tasks) == len(small_workload)
        for a, b in zip(tasks, small_workload):
            assert (a.task_id, a.task_type, a.arrival, a.deadline) == (
                b.task_id,
                b.task_type,
                b.arrival,
                b.deadline,
            )
        assert loaded_spec == spec

    def test_loaded_tasks_are_fresh(self, small_workload, tmp_path):
        """Scheduling state must not round-trip: loaded tasks are PENDING."""
        small_workload[0].mark_mapped(0, small_workload[0].arrival)
        path = tmp_path / "trace.json"
        save_trace(path, small_workload)
        tasks, spec = load_trace(path)
        assert all(t.status is TaskStatus.PENDING for t in tasks)
        assert spec is None

    def test_records_roundtrip(self, small_workload):
        tasks = records_to_tasks(tasks_to_records(small_workload))
        assert len(tasks) == len(small_workload)

    def test_spec_pattern_roundtrip(self, tmp_path, small_workload):
        spec = WorkloadSpec(pattern=ArrivalPattern.CONSTANT)
        path = tmp_path / "t.json"
        save_trace(path, small_workload, spec)
        _, loaded = load_trace(path)
        assert loaded.pattern is ArrivalPattern.CONSTANT

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "tasks": []}))
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_file_is_plain_json(self, tmp_path, small_workload):
        path = tmp_path / "t.json"
        save_trace(path, small_workload)
        payload = json.loads(path.read_text())
        assert {"format_version", "spec", "tasks"} <= payload.keys()
        assert payload["format_version"] == 2


class TestFormatCompatibility:
    """Format v1 → v2: new spec fields, old files keep loading."""

    _V2_ONLY = ("burst_amplitude", "burst_fraction", "burst_cycles", "trace_path")

    def _as_v1(self, tmp_path, tasks, spec):
        """Write a v2 trace, strip it down to a faithful v1 file."""
        path = tmp_path / "v2.json"
        save_trace(path, tasks, spec)
        payload = json.loads(path.read_text())
        payload["format_version"] = 1
        for field in self._V2_ONLY:
            payload["spec"].pop(field)
        v1_path = tmp_path / "v1.json"
        v1_path.write_text(json.dumps(payload))
        return v1_path

    def test_v1_file_loads_with_default_new_fields(self, tmp_path, small_workload):
        spec = WorkloadSpec(num_tasks=120, time_span=80.0, num_task_types=3)
        v1_path = self._as_v1(tmp_path, small_workload, spec)
        tasks, loaded = load_trace(v1_path)
        assert len(tasks) == len(small_workload)
        # The v1 spec describes the same workload: new fields take their
        # defaults, which is exactly what v1-era generation used.
        assert loaded == spec

    def test_v2_spec_round_trips_new_fields(self, tmp_path, small_workload):
        spec = WorkloadSpec(
            num_tasks=120,
            time_span=80.0,
            num_task_types=3,
            pattern=ArrivalPattern.BURSTY,
            burst_amplitude=4.0,
            burst_fraction=0.3,
            burst_cycles=5.0,
        )
        path = tmp_path / "t.json"
        save_trace(path, small_workload, spec)
        _, loaded = load_trace(path)
        assert loaded == spec


class TestRecordValidation:
    def test_missing_key_raises_with_record_index(self):
        records = [
            {"id": 0, "type": 1, "arrival": 1.0, "deadline": 5.0},
            {"id": 1, "type": 1, "arrival": 2.0},
        ]
        with pytest.raises(ValueError, match=r"record #1.*deadline"):
            records_to_tasks(records)

    def test_non_mapping_record_raises(self):
        with pytest.raises(ValueError, match="not a mapping"):
            records_to_tasks([["not", "a", "dict"]])

    def test_non_numeric_field_raises(self):
        with pytest.raises(ValueError, match="record #0 is invalid"):
            records_to_tasks([{"id": "x", "type": 0, "arrival": 1.0, "deadline": 2.0}])

    def test_non_finite_arrival_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            records_to_tasks(
                [{"id": 0, "type": 0, "arrival": float("nan"), "deadline": float("nan")}]
            )

    def test_deadline_before_arrival_raises(self):
        with pytest.raises(ValueError, match="invalid"):
            records_to_tasks([{"id": 0, "type": 0, "arrival": 5.0, "deadline": 1.0}])

    def test_negative_task_type_raises(self):
        # -1 would silently index the PET matrix from the end.
        with pytest.raises(ValueError, match="negative task type"):
            records_to_tasks([{"id": 0, "type": -1, "arrival": 1.0, "deadline": 5.0}])

    def test_fractional_type_raises_instead_of_truncating(self):
        # int(2.9) would silently replay type 2.
        with pytest.raises(ValueError, match="non-integer type"):
            records_to_tasks([{"id": 0, "type": 2.9, "arrival": 1.0, "deadline": 5.0}])
        with pytest.raises(ValueError, match="non-integer id"):
            records_to_tasks([{"id": 0.5, "type": 1, "arrival": 1.0, "deadline": 5.0}])
        # Integral floats (JSON's 2.0) are fine.
        tasks = records_to_tasks([{"id": 0.0, "type": 2.0, "arrival": 1.0, "deadline": 5.0}])
        assert tasks[0].task_type == 2


class TestCsvTraces:
    def test_round_trip_bitexact(self, tmp_path, small_workload):
        path = tmp_path / "t.csv"
        save_csv_trace(path, small_workload)
        loaded = load_csv_trace(path)
        assert [
            (t.task_id, t.task_type, t.arrival, t.deadline) for t in loaded
        ] == [
            (t.task_id, t.task_type, t.arrival, t.deadline) for t in small_workload
        ]
        assert all(t.status is TaskStatus.PENDING for t in loaded)

    def test_columns_in_any_order_extra_ignored(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "deadline,tenant,arrival,id,type\n"
            "9.5,acme,1.0,7,2\n"
            "4.0,acme,0.5,3,0\n"
        )
        tasks = load_csv_trace(path)
        # Sorted by (arrival, id); the tenant column is ignored.
        assert [(t.task_id, t.arrival) for t in tasks] == [(3, 0.5), (7, 1.0)]

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,type,arrival\n1,0,1.0\n")
        with pytest.raises(ValueError, match="missing column.*deadline"):
            load_csv_trace(path)

    def test_duplicate_id_raises(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "id,type,arrival,deadline\n1,0,1.0,5.0\n1,0,2.0,6.0\n"
        )
        with pytest.raises(ValueError, match="duplicate task id 1"):
            load_csv_trace(path)

    def test_load_any_trace_dispatches_on_extension(self, tmp_path, small_workload):
        csv_path, json_path = tmp_path / "t.csv", tmp_path / "t.json"
        save_csv_trace(csv_path, small_workload)
        save_trace(json_path, small_workload)
        assert len(load_any_trace(csv_path)) == len(small_workload)
        assert len(load_any_trace(json_path)) == len(small_workload)

    def test_json_replay_gets_same_ordering_hygiene_as_csv(self, tmp_path):
        # An external JSON trace grouped by type, not by arrival time.
        payload = {
            "format_version": 2,
            "spec": None,
            "tasks": [
                {"id": 7, "type": 1, "arrival": 9.0, "deadline": 20.0},
                {"id": 3, "type": 0, "arrival": 1.0, "deadline": 8.0},
            ],
        }
        path = tmp_path / "t.json"
        path.write_text(json.dumps(payload))
        assert [t.task_id for t in load_any_trace(path)] == [3, 7]
        payload["tasks"].append({"id": 3, "type": 0, "arrival": 2.0, "deadline": 9.0})
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="duplicate task id 3"):
            load_any_trace(path)


class TestTraceReplay:
    def test_trace_spec_describes_the_file(self, tmp_path, small_workload):
        path = tmp_path / "t.csv"
        save_csv_trace(path, small_workload)
        spec = trace_spec(path)
        assert spec.pattern is ArrivalPattern.TRACE
        assert spec.num_tasks == len(small_workload)
        assert spec.time_span > max(t.arrival for t in small_workload)

    def test_generate_workload_replays_exactly(self, tmp_path, small_workload, pet_small):
        path = tmp_path / "t.csv"
        save_csv_trace(path, small_workload)
        replayed = generate_workload(
            trace_spec(path), pet_small, np.random.default_rng(0)
        )
        assert [(t.task_id, t.arrival, t.deadline) for t in replayed] == [
            (t.task_id, t.arrival, t.deadline) for t in small_workload
        ]

    def test_count_mismatch_raises(self, tmp_path, small_workload, pet_small):
        path = tmp_path / "t.csv"
        save_csv_trace(path, small_workload)
        bad = trace_spec(path).with_(num_tasks=3)
        with pytest.raises(ValueError, match="holds.*tasks"):
            generate_workload(bad, pet_small, np.random.default_rng(0))

    def test_trace_spec_requires_path(self):
        with pytest.raises(ValueError, match="trace_path"):
            WorkloadSpec(num_tasks=5, time_span=5.0, pattern="trace")

    def test_trace_spec_cannot_scale(self, tmp_path, small_workload):
        path = tmp_path / "t.csv"
        save_csv_trace(path, small_workload)
        with pytest.raises(ValueError, match="cannot be scaled"):
            trace_spec(path).scaled(2.0)

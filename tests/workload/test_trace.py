"""Tests for workload trace persistence."""

import json

import pytest

from repro.sim.task import TaskStatus
from repro.workload.spec import ArrivalPattern, WorkloadSpec
from repro.workload.trace import (
    load_trace,
    records_to_tasks,
    save_trace,
    tasks_to_records,
)


class TestRoundTrip:
    def test_identity_preserved(self, small_workload, tmp_path):
        path = tmp_path / "trace.json"
        spec = WorkloadSpec(num_tasks=120, time_span=80.0, num_task_types=3)
        save_trace(path, small_workload, spec)
        tasks, loaded_spec = load_trace(path)
        assert len(tasks) == len(small_workload)
        for a, b in zip(tasks, small_workload):
            assert (a.task_id, a.task_type, a.arrival, a.deadline) == (
                b.task_id,
                b.task_type,
                b.arrival,
                b.deadline,
            )
        assert loaded_spec == spec

    def test_loaded_tasks_are_fresh(self, small_workload, tmp_path):
        """Scheduling state must not round-trip: loaded tasks are PENDING."""
        small_workload[0].mark_mapped(0, small_workload[0].arrival)
        path = tmp_path / "trace.json"
        save_trace(path, small_workload)
        tasks, spec = load_trace(path)
        assert all(t.status is TaskStatus.PENDING for t in tasks)
        assert spec is None

    def test_records_roundtrip(self, small_workload):
        tasks = records_to_tasks(tasks_to_records(small_workload))
        assert len(tasks) == len(small_workload)

    def test_spec_pattern_roundtrip(self, tmp_path, small_workload):
        spec = WorkloadSpec(pattern=ArrivalPattern.CONSTANT)
        path = tmp_path / "t.json"
        save_trace(path, small_workload, spec)
        _, loaded = load_trace(path)
        assert loaded.pattern is ArrivalPattern.CONSTANT

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "tasks": []}))
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_file_is_plain_json(self, tmp_path, small_workload):
        path = tmp_path / "t.json"
        save_trace(path, small_workload)
        payload = json.loads(path.read_text())
        assert {"format_version", "spec", "tasks"} <= payload.keys()

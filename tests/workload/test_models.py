"""Tests for the diurnal and MMPP arrival models."""

import numpy as np
import pytest

from repro.workload.models import (
    DiurnalSpec,
    MMPPSpec,
    diurnal_arrivals,
    mmpp_arrivals,
    workload_from_arrivals,
)


class TestDiurnal:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DiurnalSpec(period=0.0)
        with pytest.raises(ValueError):
            DiurnalSpec(depth=1.0)
        with pytest.raises(ValueError):
            DiurnalSpec(depth=-0.1)

    def test_count_matches_expectation(self):
        rng = np.random.default_rng(3)
        arr = diurnal_arrivals(5000, 5000.0, rng, DiurnalSpec(period=200.0))
        assert arr.size == pytest.approx(5000, rel=0.1)

    def test_within_span_sorted(self):
        rng = np.random.default_rng(3)
        arr = diurnal_arrivals(300, 400.0, rng)
        assert arr.min() >= 0 and arr.max() < 400.0
        assert np.all(np.diff(arr) > 0)

    def test_zero_count(self):
        assert diurnal_arrivals(0, 100.0, np.random.default_rng(0)).size == 0

    def test_modulation_visible(self):
        """Peaks of the sinusoid must carry more arrivals than troughs."""
        rng = np.random.default_rng(5)
        spec = DiurnalSpec(period=100.0, depth=0.9)
        arr = diurnal_arrivals(20_000, 2000.0, rng, spec)
        phase = (arr % spec.period) / spec.period
        # sin peaks at phase 0.25, troughs at 0.75
        peak = np.sum((phase > 0.15) & (phase < 0.35))
        trough = np.sum((phase > 0.65) & (phase < 0.85))
        assert peak > 2.0 * trough

    def test_zero_depth_is_flat(self):
        rng = np.random.default_rng(6)
        spec = DiurnalSpec(period=100.0, depth=0.0)
        arr = diurnal_arrivals(20_000, 2000.0, rng, spec)
        counts, _ = np.histogram(arr, bins=20)
        assert counts.std() / counts.mean() < 0.15


class TestMMPP:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MMPPSpec(burst_ratio=0.5)
        with pytest.raises(ValueError):
            MMPPSpec(mean_quiet_dwell=0.0)

    def test_stationary_math(self):
        spec = MMPPSpec(burst_ratio=5.0, mean_quiet_dwell=80.0, mean_burst_dwell=20.0)
        assert spec.stationary_burst_fraction == pytest.approx(0.2)
        assert spec.mean_rate_multiplier == pytest.approx(0.8 + 1.0)

    def test_count_matches_expectation_long_run(self):
        """Normalization holds in expectation; use a long span so the
        state trajectory is close to stationary."""
        rng = np.random.default_rng(4)
        counts = [
            mmpp_arrivals(2000, 20_000.0, np.random.default_rng(s)).size
            for s in range(5)
        ]
        assert np.mean(counts) == pytest.approx(2000, rel=0.15)

    def test_burstiness_exceeds_poisson(self):
        """Windowed counts must be over-dispersed (variance > mean)."""
        rng = np.random.default_rng(9)
        arr = mmpp_arrivals(5000, 10_000.0, rng)
        counts, _ = np.histogram(arr, bins=int(10_000 / 50))
        assert counts.var() > 2.0 * counts.mean()

    def test_within_span_sorted(self):
        rng = np.random.default_rng(3)
        arr = mmpp_arrivals(300, 400.0, rng)
        if arr.size:
            assert arr.min() >= 0 and arr.max() < 400.0
            assert np.all(np.diff(arr) > 0)

    def test_zero_count(self):
        assert mmpp_arrivals(0, 100.0, np.random.default_rng(0)).size == 0


class TestWorkloadBridge:
    def test_tasks_sorted_with_eq4_deadlines(self, pet_small):
        rng = np.random.default_rng(8)
        arr0 = diurnal_arrivals(100, 200.0, rng)
        arr1 = mmpp_arrivals(100, 200.0, rng)
        tasks = workload_from_arrivals({0: arr0, 1: arr1}, pet_small, rng)
        arrivals = [t.arrival for t in tasks]
        assert arrivals == sorted(arrivals)
        assert [t.task_id for t in tasks] == list(range(len(tasks)))
        avg_all = pet_small.overall_mean()
        for t in tasks:
            avg_i = pet_small.type_mean(t.task_type)
            assert t.arrival + avg_i + 0.8 * avg_all - 1e-9 <= t.deadline
            assert t.deadline <= t.arrival + avg_i + 2.5 * avg_all + 1e-9

    def test_unknown_type_rejected(self, pet_small):
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError, match="task type"):
            workload_from_arrivals({99: [1.0]}, pet_small, rng)

    def test_empty_types_skipped(self, pet_small):
        rng = np.random.default_rng(8)
        tasks = workload_from_arrivals({0: [], 1: [5.0]}, pet_small, rng)
        assert len(tasks) == 1

    def test_end_to_end_simulation(self, pet_small):
        """An MMPP workload runs through the full system."""
        from repro import PruningConfig, ServerlessSystem

        rng = np.random.default_rng(11)
        arrivals = {
            t: mmpp_arrivals(60, 120.0, rng) for t in range(pet_small.num_task_types)
        }
        tasks = workload_from_arrivals(arrivals, pet_small, rng)
        sys = ServerlessSystem(pet_small, "MM", pruning=PruningConfig.paper_default(), seed=2)
        res = sys.run(tasks)
        assert res.total == len(tasks)
        assert all(t.is_terminal for t in sys.tasks)

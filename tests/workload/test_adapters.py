"""Public-trace adapter suite: lossless normalization + strict rejection.

Property half (hypothesis): for any well-formed Azure-style or
Google-cluster-style record list, normalize → ``save_csv_trace`` →
``load_any_trace`` is the identity, and downsampling is deterministic
per (config, trial) with rate 1.0 the exact identity.

Strict half: every malformed-row class (missing/empty/non-numeric
fields, negative durations, non-monotone timestamps, type overflow)
raises :class:`TraceFormatError` naming the offending 1-based data row.
"""

from __future__ import annotations

import csv
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.task import Task
from repro.workload.adapters import (
    TraceFormatError,
    downsample_tasks,
    load_azure_trace,
    load_gcluster_trace,
    normalize_azure_records,
    normalize_gcluster_records,
)
from repro.workload.trace import load_any_trace, save_csv_trace

DATA_DIR = Path(__file__).resolve().parent.parent / "data"

# Finite grid of timestamps/durations: floats that survive repr()
# round-trips exactly (all do) while keeping arithmetic well-ordered.
_times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_durations = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def azure_records(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    ends = sorted(draw(st.lists(_times, min_size=n, max_size=n)))
    pairs = [("app0", "f0"), ("app0", "f1"), ("app1", "f0"), ("app2", "f9")]
    return [
        {
            "app": draw(st.sampled_from(pairs))[0],
            "func": draw(st.sampled_from(pairs))[1],
            "end_timestamp": end,
            "duration": draw(_durations),
        }
        for end in ends
    ]


@st.composite
def gcluster_records(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    starts = sorted(draw(st.lists(_times, min_size=n, max_size=n)))
    jobs = [6251000000 + j for j in range(4)]
    return [
        {
            "job_id": draw(st.sampled_from(jobs)),
            "task_index": i,
            "start_time": start,
            "end_time": start + draw(_durations),
        }
        for i, start in enumerate(starts)
    ]


def _identity(tasks):
    return [(t.task_id, t.task_type, t.arrival, t.deadline, t.deps) for t in tasks]


def _csv_round_trip(tasks):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.csv"
        save_csv_trace(path, tasks)
        return load_any_trace(path)


# ----------------------------------------------------------------------
# Property: normalize → save_csv_trace → load_any_trace is the identity.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(azure_records())
def test_azure_normalize_then_csv_round_trip_is_lossless(records):
    tasks = normalize_azure_records(records)
    assert _identity(_csv_round_trip(tasks)) == _identity(tasks)


@settings(max_examples=60, deadline=None)
@given(gcluster_records())
def test_gcluster_normalize_then_csv_round_trip_is_lossless(records):
    tasks = normalize_gcluster_records(records)
    assert _identity(_csv_round_trip(tasks)) == _identity(tasks)


@settings(max_examples=60, deadline=None)
@given(azure_records())
def test_azure_normalization_invariants(records):
    tasks = normalize_azure_records(records, deadline_slack=2.5)
    assert [t.task_id for t in tasks] == list(range(len(tasks)))
    arrivals = [t.arrival for t in tasks]
    assert arrivals == sorted(arrivals)
    assert min(arrivals) == 0.0
    for t in tasks:
        assert t.deadline >= t.arrival
        assert 0 <= t.task_type < 12


# ----------------------------------------------------------------------
# Property: downsampling is the identity at rate 1.0 and deterministic
# per (config, trial) at any rate.
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(azure_records(), st.integers(min_value=0, max_value=2**31 - 1))
def test_downsample_rate_one_is_identity_and_consumes_no_rng(records, seed):
    tasks = normalize_azure_records(records)
    rng = np.random.default_rng(seed)
    sampled = downsample_tasks(tasks, 1.0, rng)
    assert _identity(sampled) == _identity(tasks)
    # Nothing was drawn: the stream continues exactly where a fresh one
    # starts, so later draws (execution sampling) are unperturbed.
    assert rng.random() == np.random.default_rng(seed).random()


@settings(max_examples=40, deadline=None)
@given(
    azure_records(),
    st.floats(min_value=0.05, max_value=0.95),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_downsample_is_deterministic_per_seed_and_subset(records, rate, seed):
    tasks = normalize_azure_records(records)
    a = downsample_tasks(tasks, rate, np.random.default_rng(seed))
    b = downsample_tasks(tasks, rate, np.random.default_rng(seed))
    assert _identity(a) == _identity(b)
    assert a  # never empty
    kept = {t.task_id for t in a}
    assert kept <= {t.task_id for t in tasks}


def test_downsample_is_dependency_closed():
    tasks = [
        Task(task_id=0, task_type=0, arrival=0.0, deadline=9.0),
        Task(task_id=1, task_type=0, arrival=1.0, deadline=9.0, deps=(0,)),
        Task(task_id=2, task_type=0, arrival=2.0, deadline=9.0, deps=(1,)),
        Task(task_id=3, task_type=0, arrival=3.0, deadline=9.0),
    ]
    for seed in range(40):
        sampled = downsample_tasks(tasks, 0.5, np.random.default_rng(seed))
        kept = {t.task_id for t in sampled}
        for t in sampled:
            assert set(t.deps) <= kept, f"seed {seed}: orphaned {t.task_id}"


def test_downsample_rejects_bad_rate():
    tasks = [Task(task_id=0, task_type=0, arrival=0.0, deadline=1.0)]
    for rate in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError, match="rate"):
            downsample_tasks(tasks, rate, np.random.default_rng(0))


# ----------------------------------------------------------------------
# Strict validation: each malformed-row class raises TraceFormatError
# with the 1-based data-row number.
# ----------------------------------------------------------------------
def _azure_rows():
    return [
        {"app": "a", "func": "f", "end_timestamp": 5.0, "duration": 1.0},
        {"app": "a", "func": "g", "end_timestamp": 7.0, "duration": 2.0},
    ]


def test_azure_negative_duration_names_the_row():
    rows = _azure_rows()
    rows[1]["duration"] = -0.5
    with pytest.raises(TraceFormatError, match=r"azure row 2: negative duration"):
        normalize_azure_records(rows)


def test_azure_non_monotone_end_timestamp_names_the_row():
    rows = _azure_rows()
    rows[1]["end_timestamp"] = 4.0
    with pytest.raises(TraceFormatError, match=r"azure row 2: non-monotone"):
        normalize_azure_records(rows)


def test_azure_unknown_type_beyond_cap_names_the_row():
    rows = [
        {"app": f"a{i}", "func": "f", "end_timestamp": float(i), "duration": 0.5}
        for i in range(4)
    ]
    with pytest.raises(TraceFormatError, match=r"azure row 4: unknown task type"):
        normalize_azure_records(rows, max_task_types=3)


def test_azure_missing_and_empty_fields_name_the_row():
    with pytest.raises(TraceFormatError, match=r"azure row 1: missing field 'duration'"):
        normalize_azure_records([{"app": "a", "func": "f", "end_timestamp": 1.0}])
    rows = _azure_rows()
    rows[0]["app"] = "  "
    with pytest.raises(TraceFormatError, match=r"azure row 1: empty field 'app'"):
        normalize_azure_records(rows)


def test_azure_non_numeric_and_non_finite_name_the_row():
    rows = _azure_rows()
    rows[1]["duration"] = "fast"
    with pytest.raises(TraceFormatError, match=r"azure row 2: non-numeric duration"):
        normalize_azure_records(rows)
    rows = _azure_rows()
    rows[0]["end_timestamp"] = float("inf")
    with pytest.raises(TraceFormatError, match=r"azure row 1: non-finite"):
        normalize_azure_records(rows)


def test_azure_empty_trace_rejected():
    with pytest.raises(TraceFormatError, match="no data rows"):
        normalize_azure_records([])


def _gcluster_rows():
    return [
        {"job_id": 1, "task_index": 0, "start_time": 1.0, "end_time": 2.0},
        {"job_id": 2, "task_index": 1, "start_time": 3.0, "end_time": 4.5},
    ]


def test_gcluster_negative_duration_names_the_row():
    rows = _gcluster_rows()
    rows[1]["end_time"] = 2.5
    with pytest.raises(TraceFormatError, match=r"gcluster row 2: negative duration"):
        normalize_gcluster_records(rows)


def test_gcluster_non_monotone_start_names_the_row():
    rows = _gcluster_rows()
    rows[1]["start_time"] = 0.5
    rows[1]["end_time"] = 0.9
    with pytest.raises(TraceFormatError, match=r"gcluster row 2: non-monotone"):
        normalize_gcluster_records(rows)


def test_gcluster_type_cap_names_the_row():
    rows = [
        {"job_id": j, "task_index": j, "start_time": float(j), "end_time": float(j) + 1}
        for j in range(3)
    ]
    with pytest.raises(TraceFormatError, match=r"gcluster row 3: unknown task type"):
        normalize_gcluster_records(rows, max_task_types=2)


def test_adapter_parameter_validation():
    rows = _gcluster_rows()
    with pytest.raises(ValueError, match="deadline_slack"):
        normalize_gcluster_records(rows, deadline_slack=0.5)
    with pytest.raises(ValueError, match="time_scale"):
        normalize_gcluster_records(rows, time_scale=0.0)


def test_csv_loader_rejects_missing_columns(tmp_path):
    bad = tmp_path / "bad.csv"
    bad.write_text("app,func,duration\na,f,1.0\n")
    with pytest.raises(TraceFormatError, match=r"missing\s+column\(s\) \['end_timestamp'\]"):
        load_azure_trace(bad)


# ----------------------------------------------------------------------
# The committed miniature fixtures load through both entry points.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "filename,fmt,loader",
    [
        ("azure_mini.csv", "azure", load_azure_trace),
        ("gcluster_mini.csv", "gcluster", load_gcluster_trace),
    ],
)
def test_mini_fixtures_load_and_match_direct_loader(filename, fmt, loader):
    path = DATA_DIR / filename
    via_dispatch = load_any_trace(path, fmt)
    direct = loader(path)
    assert _identity(via_dispatch) == _identity(direct)
    assert len(direct) >= 20
    assert min(t.arrival for t in direct) == 0.0
    # gcluster timestamps scale into simulator units on request.
    if fmt == "gcluster":
        with open(path, newline="") as fh:
            rows = [dict(r) for r in csv.DictReader(fh)]
        scaled = normalize_gcluster_records(rows, time_scale=0.5)
        assert max(t.deadline for t in scaled) == pytest.approx(
            max(t.deadline for t in direct) * 0.5
        )

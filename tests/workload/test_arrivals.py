"""Tests for arrival-time generation (constant + spiky, Fig. 6)."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    arrival_rate_series,
    constant_arrivals,
    generate_type_arrivals,
    spiky_arrivals,
    spiky_rate_profile,
)
from repro.workload.spec import WorkloadSpec


class TestConstant:
    def test_count_close_to_expected(self, rng):
        arr = constant_arrivals(500, 1000.0, rng)
        assert arr.size == pytest.approx(500, rel=0.15)

    def test_within_span(self, rng):
        arr = constant_arrivals(200, 300.0, rng)
        assert arr.min() >= 0
        assert arr.max() < 300.0

    def test_sorted_strictly_increasing(self, rng):
        arr = constant_arrivals(300, 500.0, rng)
        assert np.all(np.diff(arr) > 0)

    def test_zero_expected_gives_empty(self, rng):
        assert constant_arrivals(0, 100.0, rng).size == 0

    def test_gap_variance_matches_spec(self, rng):
        """§V-B: inter-arrival variance = 10% of the mean gap."""
        arr = constant_arrivals(20000, 40000.0, rng, variance_fraction=0.1)
        gaps = np.diff(arr)
        assert gaps.mean() == pytest.approx(2.0, rel=0.05)
        assert gaps.var() == pytest.approx(0.2, rel=0.1)

    def test_deterministic_with_seed(self):
        a = constant_arrivals(100, 200.0, np.random.default_rng(5))
        b = constant_arrivals(100, 200.0, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestSpikyProfile:
    def test_multiplier_values(self):
        spec = WorkloadSpec(num_tasks=100, time_span=400.0, num_spikes=4)
        mult = spiky_rate_profile(spec)
        values = {mult(t) for t in np.linspace(0, 399.9, 2000)}
        assert values == {1.0, spec.spike_amplitude}

    def test_spike_duration_fraction(self):
        """Spike lasts one third of the lull period (§V-B)."""
        spec = WorkloadSpec(num_tasks=100, time_span=400.0, num_spikes=4)
        mult = spiky_rate_profile(spec)
        ts = np.linspace(0, 399.999, 400_000)
        frac_spike = np.mean([mult(t) > 1.0 for t in ts])
        # spike / period = f/(1+f) = (1/3)/(4/3) = 0.25
        assert frac_spike == pytest.approx(0.25, abs=0.01)

    def test_periodic(self):
        spec = WorkloadSpec(num_tasks=100, time_span=400.0, num_spikes=4)
        mult = spiky_rate_profile(spec)
        period = spec.time_span / spec.num_spikes
        for t in (3.0, 40.0, 77.0):
            assert mult(t) == mult(t + period) == mult(t + 2 * period)


class TestSpikyArrivals:
    def test_total_count_matches_expected(self):
        spec = WorkloadSpec(num_tasks=100, time_span=2000.0, num_spikes=4)
        arr = spiky_arrivals(2000, spec, np.random.default_rng(3))
        assert arr.size == pytest.approx(2000, rel=0.1)

    def test_spike_windows_denser(self):
        spec = WorkloadSpec(num_tasks=100, time_span=2000.0, num_spikes=4)
        arr = spiky_arrivals(4000, spec, np.random.default_rng(3))
        mult = spiky_rate_profile(spec)
        in_spike = np.array([mult(t) > 1.0 for t in arr])
        # 25% of time carries amplitude×lull rate → expected spike share
        # = 3×0.25 / (3×0.25 + 0.75) = 0.5 of all arrivals.
        assert in_spike.mean() == pytest.approx(0.5, abs=0.05)

    def test_within_span_sorted(self):
        spec = WorkloadSpec(num_tasks=100, time_span=500.0)
        arr = spiky_arrivals(300, spec, np.random.default_rng(3))
        assert arr.max() < 500.0
        assert np.all(np.diff(arr) > 0)

    def test_dispatch_by_pattern(self):
        spec_c = WorkloadSpec(num_tasks=100, time_span=500.0, pattern="constant")
        spec_s = WorkloadSpec(num_tasks=100, time_span=500.0, pattern="spiky")
        a = generate_type_arrivals(spec_c, 100, np.random.default_rng(1))
        b = generate_type_arrivals(spec_s, 100, np.random.default_rng(1))
        assert a.size > 0 and b.size > 0


class TestRateSeries:
    def test_shapes_and_rates(self):
        arr = np.linspace(0, 99.9, 1000)  # uniform 10/unit
        centers, rates = arrival_rate_series(arr, 100.0, window=10.0)
        assert centers.size == rates.size == 10
        np.testing.assert_allclose(rates, 10.0, rtol=0.02)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            arrival_rate_series(np.array([1.0]), 10.0, window=0.0)

    def test_spiky_series_shows_spikes(self):
        spec = WorkloadSpec(num_tasks=100, time_span=800.0, num_spikes=4)
        arr = spiky_arrivals(4000, spec, np.random.default_rng(7))
        _, rates = arrival_rate_series(arr, spec.time_span, window=10.0)
        assert rates.max() > 2.0 * np.median(rates[rates > 0])

"""Tests for the heuristic registry."""

import pytest

from repro.heuristics import (
    ALL_HEURISTICS,
    BATCH_HEURISTICS,
    EXTRA_HEURISTICS,
    HOMOGENEOUS_HEURISTICS,
    IMMEDIATE_HEURISTICS,
    make_heuristic,
)
from repro.heuristics.base import BatchHeuristic, ImmediateHeuristic


class TestRegistry:
    def test_paper_names_present(self):
        assert set(IMMEDIATE_HEURISTICS) == {"RR", "MET", "MCT", "KPB"}
        assert set(BATCH_HEURISTICS) == {"MM", "MSD", "MMU"}
        assert set(HOMOGENEOUS_HEURISTICS) == {"FCFS-RR", "EDF", "SJF"}
        assert set(EXTRA_HEURISTICS) == {"LLF", "MAXMIN", "RANDOM"}
        assert set(ALL_HEURISTICS) == (
            set(IMMEDIATE_HEURISTICS)
            | set(BATCH_HEURISTICS)
            | set(HOMOGENEOUS_HEURISTICS)
            | set(EXTRA_HEURISTICS)
        )

    @pytest.mark.parametrize("name", sorted(ALL_HEURISTICS))
    def test_make_each(self, name):
        h = make_heuristic(name)
        assert h.name == name
        assert isinstance(h, (ImmediateHeuristic, BatchHeuristic))

    def test_modes(self):
        assert make_heuristic("MCT").mode == "immediate"
        assert make_heuristic("MM").mode == "batch"
        assert make_heuristic("EDF").mode == "batch"

    def test_case_insensitive(self):
        assert make_heuristic("mm").name == "MM"
        assert make_heuristic("fcfs_rr").name == "FCFS-RR"

    def test_kwargs_forwarded(self):
        assert make_heuristic("KPB", k=0.5).k == 0.5

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown heuristic"):
            make_heuristic("HEFT")

    def test_instances_are_fresh(self):
        assert make_heuristic("RR") is not make_heuristic("RR")

"""Unit tests for homogeneous-system heuristics (FCFS-RR, EDF, SJF)."""

import numpy as np
import pytest

from repro.heuristics.homogeneous import EDF, FCFSRR, SJF
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.system.completion import CompletionEstimator

from tests.conftest import make_deterministic_pet
from tests.heuristics.conftest import occupy, task


@pytest.fixture
def homog_env():
    """3 identical machines; type 0 runs 3 units, type 1 runs 7 units."""
    pet = make_deterministic_pet(np.array([[3.0, 3.0, 3.0], [7.0, 7.0, 7.0]]))
    return pet, Cluster.homogeneous(3, queue_limit=2), Simulator(), CompletionEstimator(pet)


class TestFCFSRR:
    def test_arrival_order_round_robin(self, homog_env):
        _, cluster, _, est = homog_env
        tasks = [task(i, arrival=float(i)) for i in range(5)]
        plan = FCFSRR().plan(list(reversed(tasks)), cluster, est, 0.0)
        assert [t.task_id for t, _ in plan] == [0, 1, 2, 3, 4]
        assert [m.machine_id for _, m in plan] == [0, 1, 2, 0, 1]

    def test_pointer_persists_across_events(self, homog_env):
        _, cluster, _, est = homog_env
        rr = FCFSRR()
        p1 = rr.plan([task(0)], cluster, est, 0.0)
        p2 = rr.plan([task(1)], cluster, est, 0.0)
        assert p1[0][1].machine_id == 0
        assert p2[0][1].machine_id == 1

    def test_reset(self, homog_env):
        _, cluster, _, est = homog_env
        rr = FCFSRR()
        rr.plan([task(0)], cluster, est, 0.0)
        rr.reset()
        assert rr.plan([task(1)], cluster, est, 0.0)[0][1].machine_id == 0

    def test_skips_full_machines(self, homog_env):
        _, cluster, _, est = homog_env
        cluster[0].queue_limit = 0
        plan = FCFSRR().plan([task(0), task(1)], cluster, est, 0.0)
        assert [m.machine_id for _, m in plan] == [1, 2]

    def test_stops_when_all_full(self, homog_env):
        _, cluster, _, est = homog_env
        cluster.set_queue_limit(1)
        plan = FCFSRR().plan([task(i) for i in range(9)], cluster, est, 0.0)
        assert len(plan) == 3


class TestEDF:
    def test_sorts_by_deadline(self, homog_env):
        _, cluster, _, est = homog_env
        tasks = [task(0, deadline=30.0), task(1, deadline=10.0), task(2, deadline=20.0)]
        plan = EDF().plan(tasks, cluster, est, 0.0)
        assert [t.task_id for t, _ in plan] == [1, 2, 0]

    def test_deadline_tie_by_id(self, homog_env):
        _, cluster, _, est = homog_env
        tasks = [task(5, deadline=10.0), task(2, deadline=10.0)]
        plan = EDF().plan(tasks, cluster, est, 0.0)
        assert [t.task_id for t, _ in plan] == [2, 5]

    def test_assigns_least_loaded(self, homog_env):
        _, cluster, sim, est = homog_env
        occupy(cluster[0], sim, 10.0)
        occupy(cluster[1], sim, 5.0)
        plan = EDF().plan([task(0, deadline=10.0)], cluster, est, 0.0)
        assert plan[0][1].machine_id == 2


class TestSJF:
    def test_sorts_by_expected_exec(self, homog_env):
        _, cluster, _, est = homog_env
        long_t = task(0, ttype=1)
        short_t = task(1, ttype=0)
        plan = SJF().plan([long_t, short_t], cluster, est, 0.0)
        assert plan[0][0] is short_t

    def test_exec_tie_by_id(self, homog_env):
        _, cluster, _, est = homog_env
        plan = SJF().plan([task(4, ttype=0), task(1, ttype=0)], cluster, est, 0.0)
        assert [t.task_id for t, _ in plan] == [1, 4]

    def test_capacity_respected(self, homog_env):
        _, cluster, _, est = homog_env
        cluster.set_queue_limit(1)
        plan = SJF().plan([task(i, ttype=i % 2) for i in range(10)], cluster, est, 0.0)
        assert len(plan) == 3
        # All planned tasks are the short type (SJF order).
        assert all(t.task_type == 0 for t, _ in plan)

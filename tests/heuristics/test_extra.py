"""Tests for the extra heuristics (LLF, MaxMin, RandomBatch)."""

import numpy as np
import pytest

from repro.heuristics.extra import LLF, MaxMin, RandomBatch
from repro.sim.cluster import Cluster
from repro.system.completion import CompletionEstimator

from tests.conftest import make_deterministic_pet
from tests.heuristics.conftest import task


@pytest.fixture
def env():
    pet = make_deterministic_pet(np.array([[4.0, 4.0], [10.0, 10.0]]))
    return Cluster.heterogeneous(2, queue_limit=4), CompletionEstimator(pet)


class TestLLF:
    def test_least_laxity_first(self, env):
        cluster, est = env
        loose = task(0, ttype=0, deadline=50.0)   # laxity 46
        tight = task(1, ttype=0, deadline=10.0)   # laxity 6
        plan = LLF().plan([loose, tight], cluster, est, 0.0)
        assert plan[0][0] is tight

    def test_negative_laxity_sorts_first(self, env):
        """Unlike MMU's inverse urgency, LLF puts deeply late tasks first
        — the stress case for pruning."""
        cluster, est = env
        hopeless = task(0, ttype=1, deadline=2.0)  # laxity -8
        fine = task(1, ttype=0, deadline=50.0)
        plan = LLF().plan([hopeless, fine], cluster, est, 0.0)
        assert plan[0][0] is hopeless

    def test_pruning_rescues_llf(self, pet_small, oversub_workload):
        """LLF without pruning wastes machines on negative-laxity tasks;
        with pruning it becomes competitive."""
        from repro import PruningConfig, ServerlessSystem
        from tests.conftest import fresh_tasks

        base = ServerlessSystem(pet_small, LLF(), seed=1).run(fresh_tasks(oversub_workload))
        pruned = ServerlessSystem(
            pet_small, LLF(), pruning=PruningConfig.paper_default(), seed=1
        ).run(fresh_tasks(oversub_workload))
        assert pruned.on_time > base.on_time


class TestMaxMin:
    def test_longest_first(self, env):
        cluster, est = env
        short = task(0, ttype=0)
        long_ = task(1, ttype=1)
        plan = MaxMin().plan([short, long_], cluster, est, 0.0)
        assert plan[0][0] is long_


class TestRandomBatch:
    def test_reproducible_given_seed(self, env):
        cluster, est = env
        tasks = [task(i, ttype=i % 2) for i in range(10)]
        a = RandomBatch(seed=5)
        p1 = [(t.task_id, m.machine_id) for t, m in a.plan(tasks, cluster, est, 0.0)]
        a.reset()
        p2 = [(t.task_id, m.machine_id) for t, m in a.plan(tasks, cluster, est, 0.0)]
        assert p1 == p2

    def test_all_tasks_planned(self, env):
        cluster, est = env
        tasks = [task(i, ttype=0) for i in range(6)]
        plan = RandomBatch(seed=1).plan(tasks, cluster, est, 0.0)
        assert sorted(t.task_id for t, _ in plan) == list(range(6))

    def test_informed_heuristics_beat_random(self, pet_small, oversub_workload):
        from repro import ServerlessSystem
        from tests.conftest import fresh_tasks

        rand = ServerlessSystem(pet_small, RandomBatch(seed=3), seed=1).run(
            fresh_tasks(oversub_workload)
        )
        mm = ServerlessSystem(pet_small, "MM", seed=1).run(fresh_tasks(oversub_workload))
        assert mm.on_time >= rand.on_time

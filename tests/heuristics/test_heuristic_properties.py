"""Property-based tests on mapping-heuristic invariants.

Whatever the batch composition, a plan must (a) respect machine-queue
slots, (b) assign each task at most once, (c) only use tasks from the
batch, and (d) be deterministic.  These hold for every batch heuristic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heuristics import EDF, FCFSRR, MMU, MSD, SJF, MinMin
from repro.sim.cluster import Cluster
from repro.sim.task import Task
from repro.stochastic.etc import ETCMatrix
from repro.system.completion import CompletionEstimator

BATCH_CLASSES = [MinMin, MSD, MMU, FCFSRR, EDF, SJF]

# Deterministic model: 3 task types × 3 machines.
_MEANS = np.array([[2.0, 5.0, 9.0], [9.0, 2.0, 5.0], [5.0, 9.0, 2.0]])
_MODEL = ETCMatrix(_MEANS)


@st.composite
def batches(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    tasks = []
    for i in range(n):
        arrival = draw(st.floats(min_value=0.0, max_value=50.0))
        slack = draw(st.floats(min_value=1.0, max_value=80.0))
        tasks.append(
            Task(
                task_id=i,
                task_type=draw(st.integers(min_value=0, max_value=2)),
                arrival=arrival,
                deadline=arrival + slack,
            )
        )
    return tasks


@st.composite
def slot_limits(draw):
    return draw(st.one_of(st.none(), st.integers(min_value=0, max_value=5)))


@settings(max_examples=40, deadline=None)
@given(batches(), slot_limits(), st.sampled_from(BATCH_CLASSES))
def test_plan_respects_slots_and_uniqueness(tasks, limit, cls):
    cluster = Cluster.heterogeneous(3, queue_limit=limit)
    est = CompletionEstimator(_MODEL)
    plan = cls().plan(tasks, cluster, est, now=0.0)

    # each task at most once, and only tasks from the batch
    ids = [t.task_id for t, _ in plan]
    assert len(ids) == len(set(ids))
    batch_ids = {t.task_id for t in tasks}
    assert set(ids) <= batch_ids

    # per-machine slot limits respected
    per_machine = {}
    for _, m in plan:
        per_machine[m.machine_id] = per_machine.get(m.machine_id, 0) + 1
    if limit is not None:
        assert all(v <= limit for v in per_machine.values())

    # with unbounded slots, every task is planned
    if limit is None:
        assert len(plan) == len(tasks)


@settings(max_examples=25, deadline=None)
@given(batches(), st.sampled_from(BATCH_CLASSES))
def test_plan_deterministic(tasks, cls):
    cluster = Cluster.heterogeneous(3, queue_limit=4)
    est = CompletionEstimator(_MODEL)
    p1 = [(t.task_id, m.machine_id) for t, m in cls().plan(tasks, cluster, est, 0.0)]
    # fresh heuristic instance (stateful RR pointers must reset identically)
    p2 = [(t.task_id, m.machine_id) for t, m in cls().plan(tasks, cluster, est, 0.0)]
    assert p1 == p2


@settings(max_examples=25, deadline=None)
@given(batches())
def test_edf_plans_in_deadline_order(tasks):
    cluster = Cluster.heterogeneous(3)
    est = CompletionEstimator(_MODEL)
    plan = EDF().plan(tasks, cluster, est, 0.0)
    deadlines = [t.deadline for t, _ in plan]
    assert deadlines == sorted(deadlines)


@settings(max_examples=25, deadline=None)
@given(batches())
def test_fcfsrr_plans_in_arrival_order(tasks):
    cluster = Cluster.heterogeneous(3)
    est = CompletionEstimator(_MODEL)
    plan = FCFSRR().plan(tasks, cluster, est, 0.0)
    arrivals = [t.arrival for t, _ in plan]
    assert arrivals == sorted(arrivals)


@settings(max_examples=25, deadline=None)
@given(batches())
def test_minmin_first_pick_is_global_min_completion(tasks):
    cluster = Cluster.heterogeneous(3)
    est = CompletionEstimator(_MODEL)
    plan = MinMin().plan(tasks, cluster, est, 0.0)
    if not plan:
        return
    first_task, first_machine = plan[0]
    best = min(_MEANS[t.task_type].min() for t in tasks)
    assert _MEANS[first_task.task_type][first_machine.machine_type] == pytest.approx(best)

"""Unit tests for batch-mode two-phase heuristics (MM, MSD, MMU)."""

import numpy as np
import pytest

from repro.heuristics.batch import MMU, MSD, MinMin
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.system.completion import CompletionEstimator

from tests.conftest import make_deterministic_pet
from tests.heuristics.conftest import occupy, task


@pytest.fixture
def env2():
    """2 machines; type 0 → machine 0 (exec 2 vs 10), type 1 → machine 1."""
    pet = make_deterministic_pet(np.array([[2.0, 10.0], [10.0, 2.0]]))
    return pet, Cluster.heterogeneous(2, queue_limit=4), Simulator(), CompletionEstimator(pet)


class TestMinMin:
    def test_empty_batch(self, env2):
        _, cluster, _, est = env2
        assert MinMin().plan([], cluster, est, 0.0) == []

    def test_no_free_slots(self, env2):
        _, cluster, _, est = env2
        cluster.set_queue_limit(0)
        assert MinMin().plan([task(0)], cluster, est, 0.0) == []

    def test_single_task_best_machine(self, env2):
        _, cluster, _, est = env2
        plan = MinMin().plan([task(0, ttype=1)], cluster, est, 0.0)
        assert len(plan) == 1
        assert plan[0][1].machine_id == 1

    def test_shortest_task_first(self, env2):
        """MM maps the globally minimum-completion pair first."""
        pet = make_deterministic_pet(np.array([[5.0, 5.0], [2.0, 2.0]]))
        cluster = Cluster.heterogeneous(2, queue_limit=4)
        est = CompletionEstimator(pet)
        plan = MinMin().plan([task(0, ttype=0), task(1, ttype=1)], cluster, est, 0.0)
        assert [t.task_type for t, _ in plan] == [1, 0]

    def test_virtual_queue_spreads_load(self, env2):
        """Four identical type-0 tasks: first goes to machine 0 (exec 2);
        virtual load accumulates until machine 1 (exec 10) wins one."""
        _, cluster, _, est = env2
        tasks = [task(i, ttype=0) for i in range(6)]
        plan = MinMin().plan(tasks, cluster, est, 0.0)
        machines = [m.machine_id for _, m in plan]
        # completions on m0: 2,4,6,8 (4-slot cap); m1: 10, ...
        assert machines.count(0) == 4
        assert machines.count(1) == 2

    def test_respects_slot_limits(self, env2):
        _, cluster, _, est = env2
        cluster.set_queue_limit(1)
        tasks = [task(i, ttype=0) for i in range(5)]
        plan = MinMin().plan(tasks, cluster, est, 0.0)
        assert len(plan) == 2  # one slot per machine
        per_machine = {}
        for _, m in plan:
            per_machine[m.machine_id] = per_machine.get(m.machine_id, 0) + 1
        assert all(v <= 1 for v in per_machine.values())

    def test_includes_current_machine_load(self, env2):
        _, cluster, sim, est = env2
        # A running type-1 task has model mean 10 on machine 0; stack two
        # more in its queue so expected availability is ~30.
        occupy(cluster[0], sim, 10.0, ttype=1)
        occupy(cluster[0], sim, 10.0, ttype=1, task_id=901)
        occupy(cluster[0], sim, 10.0, ttype=1, task_id=902)
        plan = MinMin().plan([task(0, ttype=0)], cluster, est, 0.0)
        # machine 0: ~30 + 2 = 32; machine 1: 0 + 10 = 10 → machine 1 wins.
        assert plan[0][1].machine_id == 1


class TestMSD:
    def test_soonest_deadline_first(self, env2):
        _, cluster, _, est = env2
        t_late = task(0, ttype=0, deadline=90.0)
        t_soon = task(1, ttype=0, deadline=10.0)
        plan = MSD().plan([t_late, t_soon], cluster, est, 0.0)
        assert plan[0][0] is t_soon

    def test_deadline_tie_breaks_by_completion(self, env2):
        _, cluster, _, est = env2
        a = task(0, ttype=0, deadline=50.0)  # exec 2 on best machine
        b = task(1, ttype=1, deadline=50.0)  # exec 2 on its best machine
        # Load machine 1 so b's best completion is worse.
        sim = Simulator()
        occupy(cluster[1], sim, 5.0, ttype=1)
        plan = MSD().plan([b, a], cluster, est, 0.0)
        assert plan[0][0] is a

    def test_machine_still_min_completion(self, env2):
        _, cluster, _, est = env2
        plan = MSD().plan([task(0, ttype=1, deadline=5.0)], cluster, est, 0.0)
        assert plan[0][1].machine_id == 1


class TestMMU:
    def test_max_urgency_first(self, env2):
        """Smaller positive slack → higher urgency → selected first."""
        _, cluster, _, est = env2
        tight = task(0, ttype=0, deadline=4.0)   # slack 4-2 = 2 → U=0.5
        loose = task(1, ttype=1, deadline=42.0)  # slack 40 → U=0.025
        plan = MMU().plan([loose, tight], cluster, est, 0.0)
        assert plan[0][0] is tight

    def test_negative_slack_selected_last(self, env2):
        """Tasks whose expected completion already exceeds the deadline
        get negative urgency (Eq. 3 applied literally)."""
        _, cluster, _, est = env2
        hopeless = task(0, ttype=0, deadline=1.0)   # slack 1-2 < 0
        viable = task(1, ttype=1, deadline=42.0)
        plan = MMU().plan([hopeless, viable], cluster, est, 0.0)
        assert plan[0][0] is viable
        assert plan[1][0] is hopeless

    def test_zero_slack_guard(self, env2):
        """Slack exactly 0 must not divide by zero."""
        _, cluster, _, est = env2
        edge = task(0, ttype=0, deadline=2.0)  # completion 2, deadline 2
        plan = MMU().plan([edge], cluster, est, 0.0)
        assert len(plan) == 1


class TestPlanShape:
    @pytest.mark.parametrize("cls", [MinMin, MSD, MMU])
    def test_each_task_planned_once(self, env2, cls):
        _, cluster, _, est = env2
        tasks = [task(i, ttype=i % 2) for i in range(8)]
        plan = cls().plan(tasks, cluster, est, 0.0)
        ids = [t.task_id for t, _ in plan]
        assert len(ids) == len(set(ids)) == 8

    @pytest.mark.parametrize("cls", [MinMin, MSD, MMU])
    def test_plan_respects_total_capacity(self, env2, cls):
        _, cluster, _, est = env2
        cluster.set_queue_limit(2)
        tasks = [task(i, ttype=0) for i in range(20)]
        plan = cls().plan(tasks, cluster, est, 0.0)
        assert len(plan) == 4  # 2 machines × 2 slots

    @pytest.mark.parametrize("cls", [MinMin, MSD, MMU])
    def test_plan_deterministic(self, env2, cls):
        _, cluster, _, est = env2
        tasks = [task(i, ttype=i % 2, deadline=50.0 + i) for i in range(10)]
        p1 = [(t.task_id, m.machine_id) for t, m in cls().plan(tasks, cluster, est, 0.0)]
        p2 = [(t.task_id, m.machine_id) for t, m in cls().plan(tasks, cluster, est, 0.0)]
        assert p1 == p2

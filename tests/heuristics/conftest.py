"""Crafted fixtures for heuristic unit tests: deterministic PETs so
expected completion times are exact and selections hand-checkable."""

import numpy as np
import pytest

from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.system.completion import CompletionEstimator

from tests.conftest import make_deterministic_pet


@pytest.fixture
def det_env():
    """3 machines, 3 task types with strong affinity diagonal:

    means = [[2, 9, 9],   type 0 fastest on machine 0
             [9, 2, 9],   type 1 fastest on machine 1
             [9, 9, 2]]   type 2 fastest on machine 2
    """
    pet = make_deterministic_pet(
        np.array([[2.0, 9.0, 9.0], [9.0, 2.0, 9.0], [9.0, 9.0, 2.0]])
    )
    cluster = Cluster.heterogeneous(3)
    sim = Simulator()
    est = CompletionEstimator(pet)
    return pet, cluster, sim, est


def task(i, ttype=0, arrival=0.0, deadline=100.0):
    return Task(task_id=i, task_type=ttype, arrival=arrival, deadline=deadline)


def occupy(machine, sim, duration, ttype=0, task_id=900):
    """Put one running task of the given duration on a machine."""
    t = task(task_id, ttype=ttype)
    t.mark_mapped(machine.machine_id, sim.now)
    machine.dispatch(t, sim, lambda *a: duration, lambda *a: None)
    return t

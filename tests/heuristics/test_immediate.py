"""Unit tests for immediate-mode heuristics (RR, MET, MCT, KPB)."""

import numpy as np
import pytest

from repro.heuristics.immediate import KPB, MCT, MET, RoundRobin
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.system.completion import CompletionEstimator

from tests.conftest import make_deterministic_pet
from tests.heuristics.conftest import occupy, task


class TestRoundRobin:
    def test_cycles_in_order(self, det_env):
        _, cluster, _, est = det_env
        rr = RoundRobin()
        picks = [rr.select_machine(task(i), cluster, est, 0.0).machine_id for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_skips_full_queues(self, det_env):
        _, cluster, _, est = det_env
        cluster.set_queue_limit(0)  # machines 1/2 can accept nothing
        cluster[0].queue_limit = None  # only machine 0 can accept
        rr = RoundRobin()
        picks = [rr.select_machine(task(i), cluster, est, 0.0).machine_id for i in range(3)]
        assert picks == [0, 0, 0]

    def test_reset(self, det_env):
        _, cluster, _, est = det_env
        rr = RoundRobin()
        rr.select_machine(task(0), cluster, est, 0.0)
        rr.reset()
        assert rr.select_machine(task(1), cluster, est, 0.0).machine_id == 0

    def test_all_full_raises(self, det_env):
        _, cluster, _, est = det_env
        cluster.set_queue_limit(0)  # zero slots anywhere
        with pytest.raises(RuntimeError, match="free slot"):
            RoundRobin().select_machine(task(0), cluster, est, 0.0)


class TestMET:
    def test_picks_affinity_machine_regardless_of_load(self, det_env):
        _, cluster, sim, est = det_env
        occupy(cluster[1], sim, 100.0)  # machine 1 heavily loaded
        met = MET()
        assert met.select_machine(task(0, ttype=1), cluster, est, 0.0).machine_id == 1

    def test_each_type_goes_to_its_machine(self, det_env):
        _, cluster, _, est = det_env
        met = MET()
        for ttype in range(3):
            assert met.select_machine(task(0, ttype=ttype), cluster, est, 0.0).machine_id == ttype


class TestMCT:
    def test_picks_min_completion(self, det_env):
        _, cluster, sim, est = det_env
        met_machine = cluster[1]
        occupy(met_machine, sim, 100.0)  # best-affinity machine busy 100
        mct = MCT()
        # type 1: machine 1 completes at 100+2=102; machines 0/2 at 9.
        assert mct.select_machine(task(0, ttype=1), cluster, est, 0.0).machine_id in (0, 2)

    def test_prefers_affinity_when_idle(self, det_env):
        _, cluster, _, est = det_env
        mct = MCT()
        assert mct.select_machine(task(0, ttype=2), cluster, est, 0.0).machine_id == 2

    def test_accounts_for_queue_load(self, det_env):
        """The estimator sees the *model's* expected durations of whatever
        occupies the machine, so load is crafted via task types."""
        _, cluster, sim, est = det_env
        occupy(cluster[2], sim, 2.0, ttype=2)  # model mean 2 on machine 2
        mct = MCT()
        # machine 2: avail 2 + exec 2 = 4; machines 0/1 offer 9.
        assert mct.select_machine(task(0, ttype=2), cluster, est, 0.0).machine_id == 2
        occupy(cluster[2], sim, 9.0, ttype=0, task_id=901)  # queued, mean 9 there
        # machine 2 now: avail 2+9=11, completion 13 > 9 on machines 0/1.
        assert mct.select_machine(task(1, ttype=2), cluster, est, 0.0).machine_id != 2


class TestKPB:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            KPB(k=0.0)
        with pytest.raises(ValueError):
            KPB(k=1.5)

    def test_k_one_equals_mct(self, det_env):
        _, cluster, sim, est = det_env
        occupy(cluster[0], sim, 50.0)
        kpb, mct = KPB(k=1.0), MCT()
        for ttype in range(3):
            t = task(0, ttype=ttype)
            assert (
                kpb.select_machine(t, cluster, est, 0.0).machine_id
                == mct.select_machine(t, cluster, est, 0.0).machine_id
            )

    def test_small_k_equals_met(self, det_env):
        """k small enough to keep a single machine degenerates to MET."""
        _, cluster, sim, est = det_env
        occupy(cluster[1], sim, 100.0)
        kpb = KPB(k=0.01)
        assert kpb.select_machine(task(0, ttype=1), cluster, est, 0.0).machine_id == 1

    def test_kpb_balances_within_best_subset(self):
        """2 of 4 machines are good for type 0; KPB(0.5) picks the less
        loaded of the two even though MET would always pick machine 0."""
        pet = make_deterministic_pet(np.array([[2.0, 3.0, 50.0, 50.0]]))
        cluster = Cluster.heterogeneous(4)
        sim = Simulator()
        est = CompletionEstimator(pet)
        occupy(cluster[0], sim, 30.0)
        kpb = KPB(k=0.5)
        assert kpb.select_machine(task(0), cluster, est, 0.0).machine_id == 1

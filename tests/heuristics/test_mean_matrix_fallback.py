"""The batch planner's dense-means fast path must agree with the generic
per-cell fallback for models that lack a ``.means`` table."""

import numpy as np

from repro.heuristics.base import _exec_mean_matrix
from repro.heuristics.batch import MinMin
from repro.sim.cluster import Cluster
from repro.sim.task import Task
from repro.stochastic.etc import ETCMatrix
from repro.system.completion import CompletionEstimator


class _MeanOnlyModel:
    """Minimal ExecutionModel without a dense ``.means`` attribute."""

    def __init__(self, means: np.ndarray) -> None:
        self._m = means

    def mean(self, task_type: int, machine_type: int) -> float:
        return float(self._m[task_type, machine_type])

    def pmf(self, task_type: int, machine_type: int):  # pragma: no cover
        raise NotImplementedError


MEANS = np.array([[2.0, 7.0], [9.0, 3.0]])


def _tasks():
    return [Task(task_id=i, task_type=i % 2, arrival=0.0, deadline=60.0) for i in range(6)]


def test_fallback_matches_fast_path():
    cluster = Cluster.heterogeneous(2)
    machines = list(cluster.machines)
    tasks = _tasks()
    fast = _exec_mean_matrix(tasks, machines, CompletionEstimator(ETCMatrix(MEANS)))
    slow = _exec_mean_matrix(tasks, machines, CompletionEstimator(_MeanOnlyModel(MEANS)))
    np.testing.assert_allclose(fast, slow)


def test_planning_works_without_dense_means():
    cluster = Cluster.heterogeneous(2, queue_limit=4)
    est = CompletionEstimator(_MeanOnlyModel(MEANS))
    plan = MinMin().plan(_tasks(), cluster, est, 0.0)
    assert len(plan) == 6
    # affinity respected: type 0 → machine 0, type 1 → machine 1 (initially)
    first_task, first_machine = plan[0]
    assert MEANS[first_task.task_type, first_machine.machine_type] == MEANS.min()

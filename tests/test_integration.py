"""End-to-end integration tests: the paper's qualitative claims.

These run small-but-real multi-trial experiments and assert the *shape*
results the paper reports (§V).  They are the repository's regression
net for the headline behaviour; exact percentages live in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro import (
    PruningConfig,
    ServerlessSystem,
    WorkloadSpec,
    generate_pet_matrix,
    generate_workload,
)
from repro.core.config import ToggleMode
from repro.workload.generator import trimmed_slice


# Shared mid-size setup: 12×8 paper-shaped PET, heavy oversubscription.
PET = generate_pet_matrix(seed=2019)
PET_HOMOG = generate_pet_matrix(seed=2019, heterogeneity="homogeneous")
SPEC = WorkloadSpec(num_tasks=500, time_span=250.0)
N_TRIALS = 3


def mean_robustness(model, heuristic, pruning, spec=SPEC, trials=N_TRIALS):
    vals = []
    for trial in range(trials):
        tasks = generate_workload(spec, model, np.random.default_rng(1000 + trial))
        sys = ServerlessSystem(model, heuristic, pruning=pruning, seed=trial)
        sys.run(tasks)
        res = sys.result(trimmed_slice(tasks, spec.trim_count))
        vals.append(res.robustness_pct)
    return float(np.mean(vals))


@pytest.mark.slow
class TestBatchModeClaims:
    """Fig. 9: pruning helps every batch heuristic under oversubscription,
    most for the deadline-chasing ones (MSD/MMU)."""

    def test_pruning_improves_every_batch_heuristic(self):
        for h in ("MM", "MSD", "MMU"):
            base = mean_robustness(PET, h, None)
            pruned = mean_robustness(PET, h, PruningConfig.paper_default())
            assert pruned > base, f"{h}: {pruned:.1f} <= {base:.1f}"

    def test_msd_gains_more_than_mm(self):
        gain_mm = mean_robustness(PET, "MM", PruningConfig.paper_default()) - mean_robustness(
            PET, "MM", None
        )
        gain_msd = mean_robustness(PET, "MSD", PruningConfig.paper_default()) - mean_robustness(
            PET, "MSD", None
        )
        assert gain_msd > gain_mm

    def test_pruning_equalizes_heuristics(self):
        """§V-D: with pruning, the robustness spread across MM/MSD/MMU
        shrinks markedly."""
        base = [mean_robustness(PET, h, None) for h in ("MM", "MSD", "MMU")]
        pruned = [
            mean_robustness(PET, h, PruningConfig.paper_default())
            for h in ("MM", "MSD", "MMU")
        ]
        assert max(pruned) - min(pruned) < max(base) - min(base)


@pytest.mark.slow
class TestDeferringClaims:
    """Fig. 8: deferring alone lifts batch heuristics at heavy load."""

    def test_threshold_50_beats_none_for_deadline_chasers(self):
        for h in ("MSD", "MMU"):
            base = mean_robustness(PET, h, None)
            defer = mean_robustness(PET, h, PruningConfig.defer_only(0.5))
            assert defer > base, f"{h}: {defer:.1f} <= {base:.1f}"


@pytest.mark.slow
class TestToggleClaims:
    """Fig. 7: reactive dropping helps immediate-mode heuristics that use
    completion-time information (MCT/KPB/MET)."""

    def test_dropping_helps_informed_immediate_heuristics(self):
        for h in ("MCT", "KPB"):
            base = mean_robustness(PET, h, None)
            reactive = mean_robustness(PET, h, PruningConfig.drop_only(ToggleMode.REACTIVE))
            assert reactive > base, f"{h}: {reactive:.1f} <= {base:.1f}"

    def test_kpb_is_strongest_immediate_heuristic_with_pruning(self):
        scores = {
            h: mean_robustness(PET, h, PruningConfig.drop_only(ToggleMode.REACTIVE))
            for h in ("RR", "MCT", "MET", "KPB")
        }
        assert scores["KPB"] >= max(scores["RR"], scores["MET"]) - 1.0
        assert scores["KPB"] > scores["RR"]


@pytest.mark.slow
class TestHomogeneousClaims:
    """Fig. 10: pruning benefits homogeneous systems comparably."""

    def test_pruning_improves_every_homogeneous_heuristic(self):
        for h in ("FCFS-RR", "EDF", "SJF"):
            base = mean_robustness(PET_HOMOG, h, None)
            pruned = mean_robustness(PET_HOMOG, h, PruningConfig.paper_default())
            assert pruned > base, f"{h}: {pruned:.1f} <= {base:.1f}"


@pytest.mark.slow
class TestOversubscriptionScaling:
    """§V-E/F: the benefit of pruning grows with oversubscription."""

    def test_gain_grows_with_load(self):
        light = WorkloadSpec(num_tasks=260, time_span=250.0)
        heavy = WorkloadSpec(num_tasks=600, time_span=250.0)
        gains = []
        for spec in (light, heavy):
            base = mean_robustness(PET, "MSD", None, spec=spec)
            pruned = mean_robustness(PET, "MSD", PruningConfig.paper_default(), spec=spec)
            gains.append(pruned - base)
        assert gains[1] > gains[0]


class TestFairnessClaim:
    """§IV-D: with fairness enabled, no task type is starved outright."""

    def test_fairness_reduces_worst_type_starvation(self):
        spec = WorkloadSpec(num_tasks=500, time_span=250.0)
        worst = {}
        for enabled in (True, False):
            rates = []
            for trial in range(N_TRIALS):
                tasks = generate_workload(spec, PET, np.random.default_rng(2000 + trial))
                cfg = PruningConfig(enable_fairness=enabled)
                sys = ServerlessSystem(PET, "MM", pruning=cfg, seed=trial)
                sys.run(tasks)
                res = sys.result()
                rates.append(min(t.robustness for t in res.per_type.values()))
            worst[enabled] = float(np.mean(rates))
        # Fairness must not make the most-suffering type worse.
        assert worst[True] >= worst[False] - 1e-6


class TestDeterminismEndToEnd:
    def test_full_stack_reproducible(self):
        spec = WorkloadSpec(num_tasks=200, time_span=120.0)

        def run_once():
            tasks = generate_workload(spec, PET, np.random.default_rng(5))
            sys = ServerlessSystem(PET, "MMU", pruning=PruningConfig.paper_default(), seed=9)
            res = sys.run(tasks)
            return (res.on_time, res.late, res.dropped_missed, res.dropped_proactive, res.makespan)

        assert run_once() == run_once()

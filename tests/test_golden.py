"""Golden-trace regression suite.

Three canonical traces (static / churn / bursty — committed under
``tests/golden/``) are replayed through fully pinned system
configurations and the resulting ``SimulationResult.to_dict()`` is
diffed *exactly* against committed fixtures.  Any refactor that shifts
schedules — event ordering, RNG stream consumption, estimator changes
with behavioral side effects, churn timing — fails here first, by
design, instead of silently moving every figure.

After an *intentional* behavior change, regenerate with::

    python tools/make_golden.py

and review the fixture diff like code.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.experiments.runner import pet_matrix
from repro.sim.dynamics import DynamicsSpec
from repro.system.serverless import ServerlessSystem
from repro.workload.trace import load_trace

# The replay recipe must be the regenerator's, not a copy of it — a
# drift between the two would pin fixtures against a different config
# than the one that produced them.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
from make_golden import case_pruning, run_case_live  # noqa: E402

GOLDEN_DIR = Path(__file__).parent / "golden"
CASES = json.loads((GOLDEN_DIR / "cases.json").read_text())


def _diff(expected: dict, actual: dict) -> str:
    """Human-oriented first-divergence report (the assert shows it all,
    this makes the culprit field readable)."""
    lines = []
    for key in sorted(set(expected) | set(actual)):
        if expected.get(key) != actual.get(key):
            lines.append(f"  {key}: expected {expected.get(key)!r} != actual {actual.get(key)!r}")
    return "\n".join(lines)


@pytest.mark.parametrize("case", CASES, ids=[c["name"] for c in CASES])
def test_golden_trace_replay_is_exact(case):
    tasks, spec = load_trace(GOLDEN_DIR / f"{case['name']}.trace.json")
    assert spec is not None  # fixtures carry their generating spec
    system = ServerlessSystem(
        pet_matrix("inconsistent"),
        case["heuristic"],
        pruning=case_pruning(case),
        seed=case["seed"],
        dynamics=DynamicsSpec(**case["dynamics"]) if case["dynamics"] else None,
    )
    actual = system.run(tasks).to_dict()
    expected = json.loads((GOLDEN_DIR / f"{case['name']}.expected.json").read_text())
    assert actual == expected, (
        f"golden trace {case['name']} diverged — if the behavior change is "
        f"intentional, regenerate with `python tools/make_golden.py`:\n"
        f"{_diff(expected, actual)}"
    )


@pytest.mark.parametrize("case", CASES, ids=[c["name"] for c in CASES])
def test_golden_trace_live_service_is_byte_identical(case):
    """Replay-vs-live equivalence: the same golden trace streamed through
    the scheduler *service* under a virtual clock must reproduce the
    committed fixture byte-identically — the sim engine and the live
    driver are two drivers over one mapping core, and this is the proof."""
    tasks, spec = load_trace(GOLDEN_DIR / f"{case['name']}.trace.json")
    assert spec is not None
    actual = run_case_live(case, tasks)
    expected = json.loads((GOLDEN_DIR / f"{case['name']}.expected.json").read_text())
    assert actual == expected, (
        f"live service diverged from golden trace {case['name']}:\n"
        f"{_diff(expected, actual)}"
    )


def test_golden_covers_dynamics_and_static():
    """The suite must keep pinning both regimes: at least one static
    cluster and at least one case with churn."""
    assert any(c["dynamics"] is None for c in CASES)
    assert any(c["dynamics"] for c in CASES)


def test_golden_covers_adaptive_controller():
    """At least one case must pin a controller's setpoint trajectory —
    and its fixture must actually contain one."""
    adaptive = [c for c in CASES if c.get("controller")]
    assert adaptive
    for case in adaptive:
        payload = json.loads(
            (GOLDEN_DIR / f"{case['name']}.expected.json").read_text()
        )
        stats = payload["controller_stats"]
        assert stats["controller"] == case["controller"]["kind"]
        assert stats["trajectory"], "trajectory must be pinned non-empty"


def test_golden_fixtures_round_trip_through_result_dict():
    from repro.metrics.collector import SimulationResult

    for case in CASES:
        payload = json.loads(
            (GOLDEN_DIR / f"{case['name']}.expected.json").read_text()
        )
        assert SimulationResult.from_dict(payload).to_dict() == payload

"""Trial-ledger tests: durable, resumable, and guarded against misuse."""

from __future__ import annotations

import json

import pytest

from repro.tuning.ledger import (
    LEDGER_VERSION,
    TrialRecord,
    ledger_best,
    read_ledger,
    write_ledger,
)

KEY = "abc123"


def records(n=3):
    return [
        TrialRecord(
            index=i,
            params={"beta": 0.2 + 0.1 * i},
            score=40.0 + i,
            fidelity=1.0,
            trials=2,
            cells={"cell": 40.0 + i},
            cache_hits=i,
            cache_misses=2 - i if i < 2 else 0,
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_write_read_identity(self, tmp_path):
        path = tmp_path / "ledger.json"
        original = records()
        write_ledger(path, KEY, {"name": "t"}, original)
        assert read_ledger(path, KEY) == original
        payload = json.loads(path.read_text())
        assert payload["version"] == LEDGER_VERSION
        assert payload["key"] == KEY
        assert payload["problem"] == {"name": "t"}

    def test_missing_file_is_empty_history(self, tmp_path):
        assert read_ledger(tmp_path / "nope.json", KEY) == []

    def test_record_defaults_tolerate_sparse_payloads(self):
        r = TrialRecord.from_dict({"index": 0, "params": {"beta": 0.5}, "score": 1.0})
        assert (r.fidelity, r.trials, r.cells, r.cache_hits) == (1.0, 0, {}, 0)


class TestGuards:
    def test_key_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ledger.json"
        write_ledger(path, "otherkey", {}, records())
        with pytest.raises(ValueError, match="belongs to a different search"):
            read_ledger(path, KEY)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ledger.json"
        write_ledger(path, KEY, {}, records())
        payload = json.loads(path.read_text())
        payload["version"] = LEDGER_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            read_ledger(path, KEY)

    def test_non_contiguous_records_rejected(self, tmp_path):
        path = tmp_path / "ledger.json"
        rs = records()
        write_ledger(path, KEY, {}, [rs[0], rs[2]])
        with pytest.raises(ValueError, match="not contiguous at record 1"):
            read_ledger(path, KEY)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("{broken")
        with pytest.raises(ValueError, match="cannot read trial ledger"):
            read_ledger(path, KEY)
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a JSON object"):
            read_ledger(path, KEY)


class TestLedgerBest:
    def test_ranks_full_fidelity_first(self, tmp_path):
        path = tmp_path / "ledger.json"
        rs = [
            TrialRecord(index=0, params={"beta": 0.9}, score=99.0, fidelity=0.25),
            TrialRecord(index=1, params={"beta": 0.3}, score=41.0, fidelity=1.0),
            TrialRecord(index=2, params={"beta": 0.6}, score=44.0, fidelity=1.0),
        ]
        write_ledger(path, "whatever", {}, rs)
        # The low-fidelity 99.0 does not outrank full evaluations…
        assert ledger_best(path) == {"beta": 0.6}
        assert ledger_best(path, rank=1) == {"beta": 0.3}
        # …and rank counts only the full-fidelity pool here.
        with pytest.raises(ValueError, match="rank 2 is out of range"):
            ledger_best(path, rank=2)

    def test_accepts_foreign_key_but_not_empty(self, tmp_path):
        path = tmp_path / "ledger.json"
        write_ledger(path, "foreign", {}, records(1))
        assert ledger_best(path) == {"beta": 0.2}  # key irrelevant on read
        write_ledger(path, "foreign", {}, [])
        with pytest.raises(ValueError, match="no recorded trials"):
            ledger_best(path)

    def test_missing_or_wrong_version(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            ledger_best(tmp_path / "nope.json")
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 0, "records": []}))
        with pytest.raises(ValueError, match="not a version-1 trial ledger"):
            ledger_best(path)

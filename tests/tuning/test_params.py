"""Knob-application tests: the tuning-params → ExperimentConfig patch."""

from __future__ import annotations

import pytest

from repro.core.config import ControllerConfig, PruningConfig
from repro.experiments.runner import ExperimentConfig
from repro.tuning.params import apply_params, params_label
from repro.workload.spec import WorkloadSpec


def cell(pruning=True, controller=None):
    return ExperimentConfig(
        heuristic="MM",
        spec=WorkloadSpec(num_tasks=30, time_span=20.0, num_task_types=3),
        pruning=PruningConfig(pruning_threshold=0.5, controller=controller)
        if pruning
        else None,
        trials=1,
        base_seed=3,
        label="cell",
    )


class TestFixedKnobs:
    def test_beta_alpha_heuristic(self):
        out = apply_params(cell(), {"beta": 0.7, "alpha": 2, "heuristic": "MSD"})
        assert out.heuristic == "MSD"
        assert out.pruning.pruning_threshold == pytest.approx(0.7)
        assert out.pruning.dropping_toggle == 2
        # The input config is untouched (replace(), not mutation).
        assert cell().pruning.pruning_threshold == pytest.approx(0.5)

    def test_integral_float_alpha_coerced(self):
        out = apply_params(cell(), {"alpha": 2.0})
        assert out.pruning.dropping_toggle == 2
        with pytest.raises(ValueError, match="alpha must be an integer"):
            apply_params(cell(), {"alpha": 2.5})

    def test_unknown_knob_named(self):
        with pytest.raises(ValueError, match=r"unknown tuning knobs \['gamma'\]"):
            apply_params(cell(), {"gamma": 1})

    def test_baseline_cell_rejects_pruning_knobs(self):
        for params in ({"beta": 0.7}, {"alpha": 1}, {"controller": "hysteresis"}):
            with pytest.raises(ValueError, match="no-pruning baseline"):
                apply_params(cell(pruning=False), params)

    def test_invalid_beta_names_the_knob(self):
        with pytest.raises(ValueError, match="tuning knob beta"):
            apply_params(cell(), {"beta": 1.5})


class TestControllerKnobs:
    def test_spec_string_and_none(self):
        out = apply_params(cell(), {"controller": "hysteresis:high=0.3"})
        assert out.pruning.controller.kind == "hysteresis"
        assert out.pruning.controller.high == pytest.approx(0.3)
        hot = cell(controller=ControllerConfig(kind="hysteresis"))
        assert apply_params(hot, {"controller": "none"}).pruning.controller is None
        assert apply_params(hot, {"controller": None}).pruning.controller is None

    def test_mapping_form(self):
        out = apply_params(
            cell(), {"controller": {"kind": "bandit", "betas": (0.3, 0.7), "seed": 5}}
        )
        assert out.pruning.controller.kind == "bandit"
        assert out.pruning.controller.betas == (0.3, 0.7)

    def test_bad_spec_and_bad_type_named(self):
        with pytest.raises(ValueError, match="tuning knob controller='pid'"):
            apply_params(cell(), {"controller": "pid"})
        with pytest.raises(ValueError, match="not a spec or mapping"):
            apply_params(cell(), {"controller": 7})

    def test_nested_fields_patch_existing_controller(self):
        base = ControllerConfig(kind="hysteresis", high=0.1, step=0.25)
        out = apply_params(
            cell(controller=base), {"controller.high": 0.3, "controller.cooldown": 4}
        )
        assert out.pruning.controller.high == pytest.approx(0.3)
        assert out.pruning.controller.cooldown == 4
        assert out.pruning.controller.step == pytest.approx(0.25)  # untouched

    def test_controller_knob_composes_with_nested_fields(self):
        # "controller" applies first, then controller.<field> — regardless
        # of mapping insertion order.
        orders = (
            {"controller.high": 0.3, "controller": "hysteresis:step=0.1"},
            {"controller": "hysteresis:step=0.1", "controller.high": 0.3},
        )
        results = [apply_params(cell(), p).pruning.controller for p in orders]
        assert results[0] == results[1]
        assert results[0].high == pytest.approx(0.3)
        assert results[0].step == pytest.approx(0.1)

    def test_nested_field_needs_a_controller(self):
        with pytest.raises(ValueError, match="needs a controller on the cell"):
            apply_params(cell(), {"controller.high": 0.3})

    def test_nested_field_must_exist_and_not_be_kind(self):
        base = ControllerConfig(kind="hysteresis")
        with pytest.raises(ValueError, match="no such controller field"):
            apply_params(cell(controller=base), {"controller.gain": 2})
        with pytest.raises(ValueError, match="no such controller field"):
            apply_params(cell(controller=base), {"controller.kind": "static"})

    def test_invalid_nested_value_names_the_knob(self):
        base = ControllerConfig(kind="hysteresis")
        with pytest.raises(ValueError, match="controller.cooldown=2.5"):
            apply_params(cell(controller=base), {"controller.cooldown": 2.5})


class TestParamsLabel:
    def test_deterministic_and_order_independent(self):
        a = params_label({"beta": 0.7, "alpha": 2})
        b = params_label({"alpha": 2, "beta": 0.7})
        assert a == b
        assert a.startswith("tuned-") and len(a) == len("tuned-") + 8
        assert params_label({"beta": 0.8}) != a

"""End-to-end tuner tests on real (tiny) campaign evaluations.

The ISSUE-level determinism contract, checked with Hypothesis:

* same (seed, space, mix) ⇒ byte-identical trial ledger;
* a warm re-run over the same result cache replays the exact trajectory
  with **zero** new simulations;
* an interrupted search resumes from its ledger instead of restarting.

Cells are 30-task workloads (~10 ms per simulation), so whole searches
run at unit-test speed.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PruningConfig
from repro.experiments.campaign import ResultCache
from repro.experiments.runner import ExperimentConfig
from repro.tuning.ledger import TrialRecord
from repro.tuning.space import Categorical, Continuous, SearchSpace
from repro.tuning.tuner import Tuner, _best_record
from repro.workload.spec import WorkloadSpec

SPACE = SearchSpace(
    (
        Continuous("beta", 0.2, 0.9),
        Categorical("alpha", (0, 2)),
    )
)

#: One spec per shipped strategy, shaped so a 3-trial budget exercises
#: the interesting phase (bayes gets a guided step, halving a promotion).
STRATEGY_SPECS = (
    "random",
    "successive-halving:population=2,eta=2",
    {"kind": "bayes", "init": 2, "candidates": 8},
)


def tiny_configs(trials=1):
    return [
        ExperimentConfig(
            heuristic="MM",
            spec=WorkloadSpec(num_tasks=30, time_span=20.0, num_task_types=3),
            pruning=PruningConfig(pruning_threshold=0.5),
            trials=trials,
            base_seed=3,
            label="tiny",
        )
    ]


def ledger_dump(records):
    """Byte-level view of a trajectory (the determinism yardstick)."""
    return json.dumps([r.to_dict() for r in records], sort_keys=True)


def trajectory(records):
    """The search-relevant view: what was proposed and how it scored
    (cache hit/miss counters legitimately differ between cold and warm
    runs, so they are not part of the trajectory identity)."""
    return [(r.index, r.params, r.score, r.fidelity, r.trials) for r in records]


class TestDeterminism:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        spec=st.sampled_from(STRATEGY_SPECS),
    )
    def test_same_seed_and_space_give_identical_ledger(self, seed, spec):
        runs = [
            Tuner(SPACE, tiny_configs(), strategy=spec, budget=3, seed=seed).run()
            for _ in range(2)
        ]
        assert ledger_dump(runs[0].records) == ledger_dump(runs[1].records)
        assert runs[0].stats() == runs[1].stats()

    def test_seed_changes_the_trajectory(self):
        a = Tuner(SPACE, tiny_configs(), budget=3, seed=0).run()
        b = Tuner(SPACE, tiny_configs(), budget=3, seed=1).run()
        assert [r.params for r in a.records] != [r.params for r in b.records]


class TestCacheResume:
    @settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_warm_rerun_replays_trajectory_with_zero_simulations(
        self, tmp_path_factory, seed
    ):
        cache_dir = tmp_path_factory.mktemp("tunecache")
        cold = Tuner(
            SPACE, tiny_configs(), budget=3, seed=seed, cache=ResultCache(cache_dir)
        ).run()
        warm = Tuner(
            SPACE, tiny_configs(), budget=3, seed=seed, cache=ResultCache(cache_dir)
        ).run()
        assert trajectory(warm.records) == trajectory(cold.records)
        assert warm.stats()["cache_misses"] == 0  # zero new simulations
        assert warm.stats()["cache_hits"] == sum(
            r.cache_hits + r.cache_misses for r in cold.records
        )

    def test_halving_promotion_reuses_low_rung_trials(self, tmp_path):
        """Fidelity is a trial-count prefix: a promoted config's rung-0
        simulations are cache hits at the full-fidelity rung."""
        tuner = Tuner(
            SPACE,
            tiny_configs(trials=4),
            strategy="successive-halving:population=2,eta=2",
            budget=8,
            seed=5,
            cache=ResultCache(tmp_path),
        )
        result = tuner.run()
        assert [r.fidelity for r in result.records] == [0.5, 0.5, 1.0]
        assert [r.trials for r in result.records] == [2, 2, 4]
        promoted = result.records[2]
        assert promoted.cache_hits == 2  # its own rung-0 prefix
        assert promoted.cache_misses == 2  # only the extension is new


class TestLedgerResume:
    def test_interrupted_search_resumes_not_restarts(self, tmp_path):
        ledger = tmp_path / "ledger.json"

        def tuner(budget):
            return Tuner(
                SPACE, tiny_configs(), budget=budget, seed=7, ledger_path=ledger
            )

        first = tuner(2).run()
        assert first.resumed == 0
        extended = tuner(4).run()
        assert extended.resumed == 2
        assert ledger_dump(extended.records[:2]) == ledger_dump(first.records)
        assert len(extended.records) == 4
        # The uninterrupted search lands on the same bytes.
        straight = Tuner(SPACE, tiny_configs(), budget=4, seed=7).run()
        assert ledger_dump(extended.records) == ledger_dump(straight.records)

    def test_completed_search_replays_without_evaluating(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        Tuner(SPACE, tiny_configs(), budget=3, seed=7, ledger_path=ledger).run()
        replay = Tuner(
            SPACE, tiny_configs(), budget=3, seed=7, ledger_path=ledger
        ).run()
        assert replay.resumed == 3 == len(replay.records)

    def test_shrunk_budget_truncates_resumed_history(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        Tuner(SPACE, tiny_configs(), budget=3, seed=7, ledger_path=ledger).run()
        shrunk = Tuner(
            SPACE, tiny_configs(), budget=2, seed=7, ledger_path=ledger
        ).run()
        assert shrunk.resumed == 2 == len(shrunk.records)

    def test_foreign_ledger_rejected(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        Tuner(SPACE, tiny_configs(), budget=2, seed=7, ledger_path=ledger).run()
        with pytest.raises(ValueError, match="different search"):
            Tuner(SPACE, tiny_configs(), budget=2, seed=8, ledger_path=ledger).run()

    def test_key_ignores_budget_but_not_problem(self):
        base = Tuner(SPACE, tiny_configs(), budget=3, seed=7)
        assert Tuner(SPACE, tiny_configs(), budget=9, seed=7).key == base.key
        assert Tuner(SPACE, tiny_configs(), budget=3, seed=8).key != base.key
        other_space = SearchSpace((Continuous("beta", 0.1, 0.9),))
        assert Tuner(other_space, tiny_configs(), budget=3, seed=7).key != base.key


class TestResultShape:
    def test_best_record_prefers_full_fidelity(self):
        records = [
            TrialRecord(index=0, params={"beta": 0.9}, score=99.0, fidelity=0.5),
            TrialRecord(index=1, params={"beta": 0.3}, score=41.0, fidelity=1.0),
            TrialRecord(index=2, params={"beta": 0.6}, score=41.0, fidelity=1.0),
        ]
        assert _best_record(records).index == 1  # tie → earliest full trial
        assert _best_record(records[:1]).index == 0  # no full trials: fall back

    def test_stats_payload(self):
        result = Tuner(SPACE, tiny_configs(), budget=2, seed=7).run()
        stats = result.stats()
        assert stats["trials"] == 2
        assert stats["resumed"] == 0
        assert stats["strategy"] == {"kind": "random"}
        assert stats["objective"] == "pooled-on-time"
        assert stats["best_params"] == result.records[stats["best_index"]].params
        assert stats["best_score"] == max(r.score for r in result.records)
        json.dumps(stats)  # JSON-ready, as telemetry requires

    def test_constructor_rejections(self):
        with pytest.raises(ValueError, match="no cells"):
            Tuner(SPACE, [])
        with pytest.raises(ValueError, match="budget must be >= 1"):
            Tuner(SPACE, tiny_configs(), budget=0)

"""Strategy contract tests: proposals are pure in (seed, space, history).

Strategies are exercised here without any simulation — histories are
synthesized :class:`TrialRecord` lists — so these tests pin the search
logic (rung plans, promotions, GP proposals, option parsing) at unit
speed; the end-to-end trajectory is covered by ``test_tuner.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tuning.ledger import TrialRecord
from repro.tuning.space import Categorical, Continuous, Integer, SearchSpace
from repro.tuning.strategies import STRATEGIES, make_strategy


SPACE = SearchSpace(
    (
        Continuous("beta", 0.2, 0.9),
        Integer("window", 1, 6),
        Categorical("alpha", (0, 2, 5)),
    )
)


def record(index, params, score, fidelity=1.0):
    return TrialRecord(index=index, params=params, score=score, fidelity=fidelity)


def rollout(strategy, scores):
    """Drive a strategy with scripted scores; returns the proposals."""
    history, proposals = [], []
    for score in scores:
        proposal = strategy.propose(history)
        if proposal is None:
            break
        proposals.append(proposal)
        history.append(record(len(history), proposal.params, score, proposal.fidelity))
    return proposals


class TestRandom:
    def test_same_seed_same_trajectory(self):
        a = make_strategy("random", SPACE, seed=7, budget=5)
        b = make_strategy("random", SPACE, seed=7, budget=5)
        assert [p.params for p in rollout(a, [1, 2, 3, 4, 5])] == [
            p.params for p in rollout(b, [5, 4, 3, 2, 1])
        ]  # scores don't matter to random search — only the trial index does

    def test_different_seed_different_trajectory(self):
        a = make_strategy("random", SPACE, seed=7, budget=5)
        b = make_strategy("random", SPACE, seed=8, budget=5)
        assert [p.params for p in rollout(a, [0] * 5)] != [
            p.params for p in rollout(b, [0] * 5)
        ]

    def test_budget_exhaustion(self):
        s = make_strategy("random", SPACE, seed=0, budget=3)
        history = [record(i, {"beta": 0.5, "window": 1, "alpha": 0}, 0.0) for i in range(3)]
        assert s.propose(history) is None

    def test_proposal_independent_of_history_length_draws(self):
        """Proposal i is derived from trial/<i>, not from a shared stream:
        the third proposal is identical whether or not earlier proposals
        were ever generated."""
        fresh = make_strategy("random", SPACE, seed=7, budget=5)
        history = [record(i, {"beta": 0.3, "window": 2, "alpha": 0}, 1.0) for i in range(2)]
        direct = fresh.propose(history)
        replayed = rollout(make_strategy("random", SPACE, seed=7, budget=5), [0, 0, 0])[2]
        assert direct.params == replayed.params


class TestSuccessiveHalving:
    def test_rung_plan_and_fidelities(self):
        s = make_strategy(
            "successive-halving:population=6,eta=2", SPACE, seed=1, budget=20
        )
        assert s.rung_sizes == [6, 3, 1]
        proposals = rollout(s, range(10))
        assert len(proposals) == 10  # 6 + 3 + 1, under budget
        assert [p.fidelity for p in proposals] == [0.25] * 6 + [0.5] * 3 + [1.0]

    def test_promotion_picks_top_scores(self):
        s = make_strategy(
            "successive-halving:population=4,eta=2", SPACE, seed=3, budget=20
        )
        # Rung 0 scores: trials 1 and 3 win → promoted in score order.
        proposals = rollout(s, [10.0, 40.0, 20.0, 30.0, 0.0, 0.0, 0.0])
        assert len(proposals) == 7  # 4 + 2 + 1
        assert proposals[4].params == proposals[1].params
        assert proposals[5].params == proposals[3].params

    def test_tie_goes_to_earlier_trial(self):
        s = make_strategy(
            "successive-halving:population=2,eta=2", SPACE, seed=3, budget=20
        )
        proposals = rollout(s, [5.0, 5.0, 0.0])
        assert proposals[2].params == proposals[0].params

    def test_default_population_fits_budget(self):
        s = make_strategy("successive-halving", SPACE, seed=0, budget=7)
        assert sum(s.rung_sizes) <= 7
        # The resolved plan lands in the spec (ledger identity pins it).
        assert s.spec_dict() == {
            "kind": "successive-halving",
            "eta": 2,
            "population": s.population,
        }

    def test_stops_after_plan_despite_budget(self):
        s = make_strategy(
            "successive-halving:population=2,eta=2", SPACE, seed=0, budget=50
        )
        assert len(rollout(s, [0.0] * 50)) == 3

    def test_option_rejections(self):
        with pytest.raises(ValueError, match="eta must be >= 2"):
            make_strategy("successive-halving:eta=1", SPACE, seed=0, budget=5)
        with pytest.raises(ValueError, match="unknown successive-halving option"):
            make_strategy("successive-halving:rungs=3", SPACE, seed=0, budget=5)
        with pytest.raises(ValueError, match="must be an integer"):
            make_strategy(
                {"kind": "successive-halving", "population": 2.5},
                SPACE,
                seed=0,
                budget=5,
            )


class TestBayes:
    def test_init_phase_matches_random_then_goes_guided(self):
        bayes = make_strategy({"kind": "bayes", "init": 3}, SPACE, seed=5, budget=6)
        rand = make_strategy("random", SPACE, seed=5, budget=6)
        scores = [1.0, 3.0, 2.0, 2.5, 2.6, 2.7]
        b = rollout(bayes, scores)
        r = rollout(rand, scores)
        assert [p.params for p in b[:3]] == [p.params for p in r[:3]]
        assert len(b) == 6
        for proposal in b[3:]:
            assert set(proposal.params) == {"beta", "window", "alpha"}

    def test_guided_proposals_deterministic_in_history(self):
        spec = {"kind": "bayes", "init": 2, "candidates": 16}
        history = [
            record(0, {"beta": 0.3, "window": 2, "alpha": 0}, 10.0),
            record(1, {"beta": 0.7, "window": 5, "alpha": 2}, 30.0),
            record(2, {"beta": 0.5, "window": 3, "alpha": 0}, 20.0),
        ]
        a = make_strategy(spec, SPACE, seed=9, budget=8).propose(history)
        b = make_strategy(spec, SPACE, seed=9, budget=8).propose(history)
        assert a.params == b.params

    def test_defaults_resolved_into_spec(self):
        s = make_strategy("bayes", SPACE, seed=0, budget=12)
        spec = s.spec_dict()
        assert spec["kind"] == "bayes"
        assert spec["init"] == 5  # min(budget, max(3, d + 2)) with d = 3
        assert {"candidates", "length_scale", "noise", "xi"} <= set(spec)

    def test_option_rejections(self):
        with pytest.raises(ValueError, match="init must be >= 1"):
            make_strategy({"kind": "bayes", "init": 0}, SPACE, seed=0, budget=5)
        with pytest.raises(ValueError, match="length_scale and noise"):
            make_strategy({"kind": "bayes", "noise": 0.0}, SPACE, seed=0, budget=5)


class TestMakeStrategy:
    def test_spec_string_options_parsed_as_numbers(self):
        s = make_strategy("bayes:init=4,xi=0.05", SPACE, seed=0, budget=8)
        assert s.options["init"] == 4
        assert s.options["xi"] == pytest.approx(0.05)

    def test_rejections_name_the_problem(self):
        with pytest.raises(ValueError, match="unknown strategy 'grid'"):
            make_strategy("grid", SPACE, seed=0, budget=5)
        with pytest.raises(ValueError, match="unknown strategy 'grid'"):
            make_strategy({"kind": "grid"}, SPACE, seed=0, budget=5)
        with pytest.raises(ValueError, match="not key=value"):
            make_strategy("random:fast", SPACE, seed=0, budget=5)
        with pytest.raises(ValueError, match="'init'"):
            make_strategy("bayes:init=lots", SPACE, seed=0, budget=5)
        with pytest.raises(ValueError, match="unrecognized strategy spec"):
            make_strategy(7, SPACE, seed=0, budget=5)
        with pytest.raises(ValueError, match="budget must be >= 1"):
            make_strategy("random", SPACE, seed=0, budget=0)

    def test_registry_names_all_construct(self):
        for name in STRATEGIES:
            s = make_strategy(name, SPACE, seed=0, budget=6)
            assert s.spec_dict()["kind"] == name


class TestStrategyProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        kind=st.sampled_from(sorted(STRATEGIES)),
        scores=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=6, max_size=6
        ),
    )
    def test_trajectory_pure_in_seed_and_scores(self, seed, kind, scores):
        """Every registered strategy: same (seed, history) ⇒ identical
        proposals, including fidelities."""
        a = rollout(make_strategy(kind, SPACE, seed=seed, budget=6), scores)
        b = rollout(make_strategy(kind, SPACE, seed=seed, budget=6), scores)
        assert [(p.params, p.fidelity) for p in a] == [
            (p.params, p.fidelity) for p in b
        ]

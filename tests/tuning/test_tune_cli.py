"""CLI tests for ``repro tune`` (argument handling + artifact output).

The evaluation mixes here are tiny 30-task grids so a whole search runs
in well under a second; the shipped presets are covered by the CI smoke
job and ``benchmarks/bench_tuning.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.tuning.cli import main
from repro.tuning.presets import TUNE_PRESETS, get_preset


@pytest.fixture
def problem(tmp_path):
    """A search-space JSON and a matching tiny grid JSON."""
    space = tmp_path / "beta_space.json"
    space.write_text(
        json.dumps(
            [
                {"name": "beta", "type": "continuous", "low": 0.2, "high": 0.9},
                {"name": "alpha", "type": "categorical", "choices": [0, 2]},
            ]
        )
    )
    grid = tmp_path / "grid.json"
    grid.write_text(
        json.dumps(
            {
                "name": "tiny",
                "heuristics": ["MM"],
                "levels": [
                    {"name": "t", "num_tasks": 30, "time_span": 20.0,
                     "num_task_types": 3}
                ],
                "pruning": ["paper"],
                "trials": 1,
            }
        )
    )
    return space, grid


def run(space, grid, tmp_path, *extra):
    return main(
        [
            str(space),
            "--mix",
            str(grid),
            "--budget",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra,
        ]
    )


class TestRuns:
    def test_end_to_end_with_artifact_and_ledger(self, problem, tmp_path, capsys):
        space, grid = problem
        assert run(space, grid, tmp_path, "--json-dir", str(tmp_path / "out")) == 0
        out = capsys.readouterr().out
        assert "best params" in out
        payload = json.loads((tmp_path / "out" / "tune-beta_space.json").read_text())
        assert len(payload["records"]) == 2
        assert payload["tuner_stats"]["trials"] == 2
        assert set(payload["tuner_stats"]["best_params"]) == {"beta", "alpha"}
        # The default ledger landed under <cache-dir>/tuning/.
        ledgers = list((tmp_path / "cache" / "tuning").glob("beta_space-*.json"))
        assert len(ledgers) == 1
        assert payload["key"] in ledgers[0].name or ledgers[0].name.startswith(
            f"beta_space-{payload['key'][:12]}"
        )

    def test_rerun_resumes_from_ledger(self, problem, tmp_path, capsys):
        space, grid = problem
        assert run(space, grid, tmp_path) == 0
        capsys.readouterr()
        assert run(space, grid, tmp_path) == 0
        assert "2 resumed" in capsys.readouterr().out

    def test_no_ledger_flag(self, problem, tmp_path, capsys):
        space, grid = problem
        assert run(space, grid, tmp_path, "--no-ledger", "--no-cache") == 0
        assert not (tmp_path / "cache").exists()
        assert "[ledger:" not in capsys.readouterr().out

    def test_explicit_ledger_path_and_trials_override(self, problem, tmp_path, capsys):
        space, grid = problem
        ledger = tmp_path / "my-ledger.json"
        assert run(
            space, grid, tmp_path, "--ledger", str(ledger), "--trials", "2"
        ) == 0
        assert ledger.exists()
        records = json.loads(ledger.read_text())["records"]
        assert all(r["trials"] == 2 for r in records)
        capsys.readouterr()


class TestRejections:
    def test_unknown_target_exits_2(self, tmp_path, capsys):
        assert main(["not-a-preset", "--cache-dir", str(tmp_path)]) == 2
        assert "neither a tuning preset" in capsys.readouterr().err

    def test_json_space_needs_mix(self, problem, tmp_path, capsys):
        space, _ = problem
        assert main([str(space), "--cache-dir", str(tmp_path / "c")]) == 2
        assert "needs --mix" in capsys.readouterr().err

    def test_bad_strategy_exits_2(self, problem, tmp_path, capsys):
        space, grid = problem
        assert run(space, grid, tmp_path, "--strategy", "grid-search") == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_bad_trials_exits_2(self, problem, tmp_path, capsys):
        space, grid = problem
        assert run(space, grid, tmp_path, "--trials", "0") == 2
        assert "--trials must be >= 1" in capsys.readouterr().err


class TestPresets:
    def test_preset_registry_is_self_consistent(self):
        for name, preset in TUNE_PRESETS.items():
            assert preset.name == name
            assert get_preset(name) is preset
            configs = preset.configs()
            assert configs and all(c.pruning is not None for c in configs)
            # Fresh factories: mutating one call's configs can't leak.
            assert configs is not preset.configs()
        with pytest.raises(ValueError, match="unknown tuning preset"):
            get_preset("nope")

    def test_control_preset_matches_bench_control_contract(self):
        preset = get_preset("control-bursty")
        assert preset.space.names == (
            "controller.high",
            "controller.step",
            "controller.cooldown",
            "controller.window",
        )
        configs = preset.configs()
        assert [c.label for c in configs] == [
            "adaptive@mild", "adaptive@heavy", "adaptive@extreme",
        ]
        assert all(c.pruning.controller.kind == "hysteresis" for c in configs)
        assert all(c.trials == 5 and c.base_seed == 42 for c in configs)

"""Unit + property tests for the declarative search space.

The load-bearing contracts: ``value_at``/``position`` are inverses (up
to clamping and integer rounding), sampling draws exactly one uniform
per parameter in declaration order, and ``to_dict``/``from_dict`` is a
lossless round trip — together these are what make a proposal a pure
function of (space, generator state).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tuning.space import Categorical, Continuous, Integer, SearchSpace


class TestContinuous:
    def test_linear_endpoints(self):
        p = Continuous("beta", 0.2, 0.9)
        assert p.value_at(0.0) == pytest.approx(0.2)
        assert p.value_at(1.0) == pytest.approx(0.9)
        assert p.value_at(0.5) == pytest.approx(0.55)

    def test_log_scale_is_geometric(self):
        p = Continuous("high", 0.01, 1.0, scale="log")
        assert p.value_at(0.0) == pytest.approx(0.01)
        assert p.value_at(0.5) == pytest.approx(0.1)
        assert p.value_at(1.0) == pytest.approx(1.0)

    def test_position_inverts_value_at(self):
        p = Continuous("step", 0.05, 0.5)
        for u in (0.0, 0.25, 0.7, 1.0):
            assert p.position(p.value_at(u)) == pytest.approx(u)

    def test_position_clips_out_of_range(self):
        p = Continuous("beta", 0.2, 0.9)
        assert p.position(0.0) == 0.0
        assert p.position(5.0) == 1.0

    def test_log_position_clips_below_low(self):
        p = Continuous("high", 0.02, 0.4, scale="log")
        assert p.position(1e-9) == 0.0

    def test_rejections(self):
        with pytest.raises(ValueError, match="low < high"):
            Continuous("x", 1.0, 1.0)
        with pytest.raises(ValueError, match="scale"):
            Continuous("x", 0.0, 1.0, scale="cubic")
        with pytest.raises(ValueError, match="log scale needs low > 0"):
            Continuous("x", 0.0, 1.0, scale="log")


class TestInteger:
    def test_rounds_and_clamps(self):
        p = Integer("cooldown", 1, 4)
        assert p.value_at(0.0) == 1
        assert p.value_at(1.0) == 4
        assert p.value_at(0.5) == 2  # banker's rounding of 2.5
        assert isinstance(p.value_at(0.3), int)

    def test_integral_float_bounds_coerced(self):
        p = Integer("window", 1.0, 6.0)
        assert (p.low, p.high) == (1, 6)
        assert isinstance(p.low, int)

    def test_fractional_bound_rejected(self):
        with pytest.raises(ValueError, match="must be an integer"):
            Integer("window", 1.5, 6)

    def test_position_round_trips_every_value(self):
        p = Integer("window", 1, 6)
        for v in range(1, 7):
            assert p.value_at(p.position(v)) == v


class TestCategorical:
    def test_value_at_partitions_unit_interval(self):
        p = Categorical("alpha", (0, 2, 5))
        assert p.value_at(0.0) == 0
        assert p.value_at(0.34) == 2
        assert p.value_at(0.99) == 5
        assert p.value_at(1.0) == 5  # u == 1 stays in range

    def test_position_and_unknown_value(self):
        p = Categorical("alpha", (0, 2, 5))
        assert p.position(0) == 0.0
        assert p.position(5) == 1.0
        with pytest.raises(ValueError, match="not one of"):
            p.position(3)

    def test_singleton_choice(self):
        p = Categorical("heuristic", ("MM",))
        assert p.value_at(0.7) == "MM"
        assert p.position("MM") == 0.5

    def test_rejections(self):
        with pytest.raises(ValueError, match="must not be empty"):
            Categorical("x", ())
        with pytest.raises(ValueError, match="duplicate"):
            Categorical("x", (1, 1))


class TestSearchSpace:
    def space(self):
        return SearchSpace(
            (
                Continuous("beta", 0.2, 0.9),
                Integer("window", 1, 6),
                Categorical("alpha", (0, 2, 5)),
            )
        )

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ValueError, match="at least one parameter"):
            SearchSpace(())
        with pytest.raises(ValueError, match="duplicate parameter names"):
            SearchSpace((Continuous("b", 0, 1), Integer("b", 1, 3)))

    def test_sample_draws_one_uniform_per_param_in_order(self):
        """The purity contract: the sample consumes exactly len(params)
        draws, in declaration order — verified against a hand-replayed
        generator with the same seed."""
        space = self.space()
        rng = np.random.default_rng(11)
        params = space.sample(rng)
        replay = np.random.default_rng(11)
        u = [float(replay.random()) for _ in space.params]
        assert params == {
            "beta": space.params[0].value_at(u[0]),
            "window": space.params[1].value_at(u[1]),
            "alpha": space.params[2].value_at(u[2]),
        }
        # And exactly three draws were consumed: the next value matches.
        assert float(rng.random()) == float(replay.random())

    def test_at_and_normalize_are_inverse(self):
        space = self.space()
        params = space.at([0.0, 1.0, 0.5])
        assert params == {"beta": pytest.approx(0.2), "window": 6, "alpha": 2}
        coords = space.normalize(params)
        assert space.at(coords) == params

    def test_at_wrong_arity(self):
        with pytest.raises(ValueError, match="expected 3 coordinates"):
            self.space().at([0.5])

    def test_normalize_missing_parameter(self):
        with pytest.raises(ValueError, match="missing parameters"):
            self.space().normalize({"beta": 0.5})

    def test_round_trip_and_key_stability(self):
        space = self.space()
        clone = SearchSpace.from_dict(json.loads(json.dumps(space.to_dict())))
        assert clone == space
        assert clone.key == space.key
        # Reordering parameters is a *different* space (trajectory changes).
        reordered = SearchSpace(tuple(reversed(space.params)))
        assert reordered.key != space.key

    def test_from_json(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(self.space().to_dict()))
        assert SearchSpace.from_json(path) == self.space()
        with pytest.raises(ValueError, match="cannot read"):
            SearchSpace.from_json(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            SearchSpace.from_json(bad)

    def test_from_dict_rejections(self):
        with pytest.raises(ValueError, match="must be a list"):
            SearchSpace.from_dict({"name": "x"})
        with pytest.raises(ValueError, match="type must be"):
            SearchSpace.from_dict([{"name": "x", "type": "gaussian"}])
        with pytest.raises(ValueError, match="has no name"):
            SearchSpace.from_dict([{"type": "continuous", "low": 0, "high": 1}])
        with pytest.raises(ValueError, match="'x'"):
            SearchSpace.from_dict(
                [{"name": "x", "type": "continuous", "low": 0, "high": 1, "gain": 2}]
            )


# ----------------------------------------------------------------------
# Property tests: the coordinate maps hold over the whole unit cube.
# ----------------------------------------------------------------------
class TestSpaceProperties:
    @given(
        u=st.floats(min_value=0.0, max_value=1.0),
        low=st.floats(min_value=-100, max_value=99),
        span=st.floats(min_value=1e-3, max_value=100),
    )
    def test_continuous_round_trip(self, u, low, span):
        p = Continuous("x", low, low + span)
        v = p.value_at(u)
        assert p.low <= v <= p.high
        assert p.position(v) == pytest.approx(u, abs=1e-6)

    @given(
        u=st.floats(min_value=0.0, max_value=1.0),
        low=st.integers(min_value=1, max_value=50),
        span=st.integers(min_value=1, max_value=50),
    )
    def test_integer_stays_in_bounds_and_is_stable(self, u, low, span):
        p = Integer("x", low, low + span)
        v = p.value_at(u)
        assert p.low <= v <= p.high
        # A value maps back to itself through its own coordinate.
        assert p.value_at(p.position(v)) == v

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_sample_is_pure_in_generator_state(self, seed):
        space = SearchSpace(
            (
                Continuous("beta", 0.2, 0.9),
                Continuous("high", 0.02, 0.4, scale="log"),
                Integer("window", 1, 6),
            )
        )
        a = space.sample(np.random.default_rng(seed))
        b = space.sample(np.random.default_rng(seed))
        assert a == b
        assert space.normalize(a) == space.normalize(b)

"""Objective tests: reducing a campaign summary to the search scalar."""

from __future__ import annotations

import pytest

from repro.experiments.report import CampaignRow, CampaignSummary
from repro.metrics.robustness import AggregateStats
from repro.tuning.objective import make_objective, paired_delta, pooled_on_time


def row(label, per_trial, pruning="P"):
    per_trial = tuple(float(v) for v in per_trial)
    return CampaignRow(
        label=label,
        heuristic="MM",
        level="t",
        pattern="spiky",
        heterogeneity="inconsistent",
        pruning=pruning,
        stats=AggregateStats(
            mean_pct=sum(per_trial) / len(per_trial),
            ci95_pct=0.0,
            trials=len(per_trial),
            per_trial_pct=per_trial,
        ),
    )


def summary(*rows):
    return CampaignSummary(name="t", rows=list(rows))


class TestPooledOnTime:
    def test_pools_per_trial_values(self):
        s = summary(row("a", [40.0, 60.0]), row("b", [50.0, 50.0]))
        assert pooled_on_time(s) == pytest.approx(50.0)

    def test_excludes_baseline_rows_when_pruned_cells_exist(self):
        s = summary(row("base", [90.0, 90.0], pruning="base"), row("p", [40.0, 50.0]))
        assert pooled_on_time(s) == pytest.approx(45.0)

    def test_all_baseline_mix_scores_itself(self):
        s = summary(row("base", [90.0, 80.0], pruning="base"))
        assert pooled_on_time(s) == pytest.approx(85.0)

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError, match="no per-trial values"):
            pooled_on_time(summary())


class TestPairedDelta:
    def test_mean_paired_delta_against_baseline(self):
        s = summary(
            row("base", [40.0, 50.0], pruning="base"),
            row("v1", [45.0, 55.0]),   # +5 pp
            row("v2", [40.0, 52.0]),   # +1 pp
        )
        assert paired_delta(s, "base") == pytest.approx(3.0)

    def test_unknown_baseline_named(self):
        s = summary(row("a", [1.0]), row("b", [2.0]))
        with pytest.raises(ValueError, match="'nope' is not in the evaluation mix"):
            paired_delta(s, "nope")

    def test_lonely_baseline_rejected(self):
        with pytest.raises(ValueError, match="only cell"):
            paired_delta(summary(row("solo", [1.0])), "solo")


class TestMakeObjective:
    def test_canonical_spellings(self):
        name, fn = make_objective("pooled-on-time")
        assert name == "pooled-on-time"
        assert fn is pooled_on_time
        name, fn = make_objective("paired-delta:base")
        assert name == "paired-delta:base"
        s = summary(row("base", [40.0], pruning="base"), row("v", [42.0]))
        assert fn(s) == pytest.approx(2.0)

    def test_mapping_forms(self):
        assert make_objective({"kind": "pooled-on-time"})[0] == "pooled-on-time"
        name, fn = make_objective({"kind": "paired-delta", "baseline": "base"})
        assert name == "paired-delta:base"

    def test_rejections(self):
        for bad in (
            "pooled",
            "paired-delta",          # missing baseline
            "pooled-on-time:extra",
            {"kind": "paired-delta"},
            {"kind": "paired-delta", "baseline": "b", "extra": 1},
            7,
        ):
            with pytest.raises(ValueError, match="objective"):
                make_objective(bad)

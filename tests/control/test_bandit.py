"""BanditController tests: arms, contexts, rewards, and snapshots.

The online half of the tuning subsystem.  The load-bearing contracts:

* decisions are pure functions of (config, observed snapshots) — same
  seed, same signals, same arm sequence;
* ``state_dict`` → JSON → ``load_state`` → continue is byte-equivalent
  to never having snapshotted (the service-snapshot requirement);
* policy telemetry rides in ``controller_stats`` only for the bandit,
  so pre-existing controllers' payloads stay unchanged.

Also here: regression tests for ``parse_controller_spec`` on the
nested/typed parameters the bandit introduced (JSON list values, seed,
band edges) and the malformed spellings that must fail by name.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.controllers import BanditController, HysteresisController
from repro.control.driver import ControllerDriver
from repro.control.registry import make_controller, parse_controller_spec
from repro.control.signals import ControlSignals, Setpoints
from repro.core.config import ControllerConfig, PruningConfig
from repro.sim.rng import tuning_seed


def signals(
    *,
    now=0.0,
    on_time=0,
    late=0,
    dropped_missed=0,
    dropped_proactive=0,
    mapping_events=1,
    queued=0,
    **kw,
) -> ControlSignals:
    defaults = dict(
        misses_since_last_event=0,
        arrived=0,
        defers=0,
        batch_queued=0,
        running=0,
        mean_chance=None,
        sufferage={},
        beta=0.5,
        alpha=0,
    )
    defaults.update(kw)
    return ControlSignals(
        now=now,
        mapping_events=mapping_events,
        on_time=on_time,
        late=late,
        dropped_missed=dropped_missed,
        dropped_proactive=dropped_proactive,
        queued=queued,
        **defaults,
    )


def bandit(**overrides) -> BanditController:
    fields = dict(kind="bandit", window=1, epsilon=0.0)
    fields.update(overrides)
    return BanditController(
        ControllerConfig(**fields), PruningConfig(pruning_threshold=0.5)
    )


def feed(controller, observations):
    """Drive a controller through (on_time, late, queued) cumulative
    observations; returns the emitted (β, α) outputs (None included)."""
    outs = []
    for i, (on_time, late, queued) in enumerate(observations):
        outs.append(
            controller.update(
                signals(now=float(i), on_time=on_time, late=late, queued=queued)
            )
        )
    return outs


class TestArmsAndContexts:
    def test_arm_table_is_betas_times_alphas(self):
        c = bandit(betas=(0.3, 0.7), alphas=(0, 2))
        assert c.arms == ((0.3, 0), (0.3, 2), (0.7, 0), (0.7, 2))

    def test_alpha_falls_back_to_base_toggle(self):
        config = ControllerConfig(kind="bandit", betas=(0.3, 0.7))
        c = BanditController(config, PruningConfig(dropping_toggle=3))
        assert c.arms == ((0.3, 3), (0.7, 3))

    def test_default_beta_grid(self):
        assert bandit().arms == ((0.25, 0), (0.5, 0), (0.75, 0), (0.95, 0))

    def test_context_classification_bands(self):
        c = bandit(miss_bands=(0.05, 0.25), queue_bands=(4, 16))
        assert c.n_contexts == 9
        assert c._classify(0.0, 0) == 0
        assert c._classify(0.05, 0) == 3   # an exact edge lands in the next band
        assert c._classify(0.1, 5) == 4
        assert c._classify(0.9, 99) == 8

    def test_registry_builds_bandit(self):
        c = make_controller(ControllerConfig(kind="bandit"), PruningConfig())
        assert isinstance(c, BanditController)


class TestPolicy:
    def test_window_gates_and_empty_windows_extend(self):
        c = bandit(window=3)
        assert c.update(signals(on_time=1)) is None  # tick 1 < window
        assert c.update(signals(on_time=2)) is None  # tick 2 < window
        # Window reached but no *new* outcomes since the last vote ⇒
        # keep growing instead of voting on no evidence.
        empty = bandit(window=1)
        assert empty.update(signals()) is None
        assert empty.update(signals(on_time=1)) is not None

    def test_ucb_pulls_every_arm_then_exploits(self):
        # Proactive drops grow ``outcomes`` without touching the miss
        # rate, so every decision happens in the same context.
        c = bandit(betas=(0.2, 0.5, 0.8), ucb_c=0.1)
        obs = [
            dict(on_time=1),                       # arm 0 pulled (unpulled first)
            dict(on_time=2),                       # rewards arm 0 with 1.0 → arm 1
            dict(on_time=2, dropped_proactive=1),  # rewards arm 1 with 0.0 → arm 2
            dict(on_time=3, dropped_proactive=1),  # rewards arm 2 with 1.0 → argmax
        ]
        outs = [
            c.update(signals(now=float(i), **fields)) for i, fields in enumerate(obs)
        ]
        assert [out[0] for out in outs[:3]] == [0.2, 0.5, 0.8]
        # Arm 1's value is 0.0, arms 0/2 are 1.0 with equal counts: the
        # tie goes to the lowest index, deterministically.
        assert outs[3] == (0.2, 0)

    def test_greedy_epsilon_zero_is_deterministic(self):
        runs = [
            feed(bandit(betas=(0.2, 0.8)), [(1, 0, 0), (1, 1, 0), (2, 1, 0)])
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_exploration_stream_is_the_named_tuning_stream(self):
        """ε = 1 explores every step; the draws must replay from
        tuning_seed(seed, "bandit") — the D002-sanctioned stream."""
        c = bandit(epsilon=1.0, seed=9, betas=(0.1, 0.5, 0.9))
        outs = feed(c, [(i + 1, 0, 0) for i in range(6)])
        rng = np.random.default_rng(tuning_seed(9, "bandit"))
        expected = []
        for _ in range(6):
            assert rng.random() < 1.0
            expected.append(c.arms[int(rng.integers(len(c.arms)))][0])
        assert [out[0] for out in outs] == expected

    def test_reward_is_windowed_on_time_rate(self):
        c = bandit(betas=(0.2, 0.8))
        # First vote pulls the greedy arm 0 (all values 0.0).
        feed(c, [(2, 0, 0)])
        arm, context = c._arm, c._context
        # Next window: 1 on-time of 3 new outcomes → reward 1/3 to arm 0.
        c.update(signals(now=1.0, on_time=3, late=2))
        assert c.counts[context][arm] == 1
        assert c.values[context][arm] == pytest.approx(1.0 / 3.0)

    def test_rewards_credit_the_context_that_pulled(self):
        c = bandit(betas=(0.2, 0.8), queue_bands=(4,), miss_bands=(0.5,))
        c.update(signals(on_time=1, queued=0))       # pulled in context 0
        c.update(signals(now=1.0, on_time=2, queued=9))  # reward lands in context 0
        assert sum(c.counts[0]) == 1
        # The new pull happened in the queue>4 context.
        assert c._context == 1


class TestSnapshotRestore:
    def observations(self, n=10):
        # A deterministic mixed stream: rising outcomes, varying queue.
        return [(2 * i + 1, i // 2, (3 * i) % 7) for i in range(n)]

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        epsilon=st.sampled_from([0.0, 0.3, 1.0]),
        split=st.integers(min_value=0, max_value=9),
    )
    def test_snapshot_restore_continue_equals_uninterrupted(
        self, seed, epsilon, split
    ):
        """The ISSUE contract: snapshot → JSON → restore → continue is
        equivalent to never snapshotting, at any split point."""
        obs = self.observations()
        straight = bandit(seed=seed, epsilon=epsilon, betas=(0.2, 0.5, 0.8))
        expected = feed(straight, obs)

        first = bandit(seed=seed, epsilon=epsilon, betas=(0.2, 0.5, 0.8))
        head = feed(first, obs[:split])
        frozen = json.loads(json.dumps(first.state_dict()))  # wire round trip
        second = bandit(seed=seed, epsilon=epsilon, betas=(0.2, 0.5, 0.8))
        second.load_state(frozen)
        tail = feed(second, obs[split:])
        assert head + tail == expected
        assert second.state_dict() == straight.state_dict()

    def test_state_dict_is_json_safe(self):
        c = bandit(epsilon=0.5, seed=3)
        feed(c, self.observations(4))
        payload = json.dumps(c.state_dict())
        assert json.loads(payload)["pulls"] == c._pulls

    def test_load_state_rejections(self):
        c = bandit()
        good = c.state_dict()
        with pytest.raises(ValueError, match="unknown bandit state fields"):
            c.load_state({**good, "extra": 1})
        with pytest.raises(ValueError, match="missing bandit state fields"):
            c.load_state({k: v for k, v in good.items() if k != "pulls"})
        other = bandit(betas=(0.2, 0.8))  # 2 arms vs the default 4
        with pytest.raises(ValueError, match="shape mismatch"):
            c.load_state(other.state_dict())


class TestDriverTelemetry:
    def test_policy_stats_ride_in_controller_stats(self):
        c = bandit(betas=(0.2, 0.8), ucb_c=0.5)
        driver = ControllerDriver(c, Setpoints(beta=0.5, alpha=0))
        for i, (on_time, late, queued) in enumerate([(1, 0, 0), (2, 1, 3)]):
            driver.tick(signals(now=float(i), on_time=on_time, late=late, queued=queued))
        stats = driver.stats()
        policy = stats["policy"]
        assert policy["mode"] == "ucb"
        assert policy["arms"] == [[0.2, 0], [0.8, 0]]
        assert sum(policy["pulls"]) == 1  # one completed reward window
        assert policy["contexts_visited"] == 1
        json.dumps(stats)

    def test_epsilon_mode_reported(self):
        c = bandit(epsilon=0.2)
        assert c.policy_stats()["mode"] == "epsilon-greedy"

    def test_preexisting_controllers_have_no_policy_key(self):
        """The sparse contract that keeps golden fixtures byte-identical."""
        c = HysteresisController(
            ControllerConfig(kind="hysteresis"), PruningConfig()
        )
        driver = ControllerDriver(c, Setpoints(beta=0.5, alpha=0))
        driver.tick(signals(on_time=1))
        assert "policy" not in driver.stats()


class TestBanditConfigValidation:
    def test_betas_must_be_ascending_probabilities(self):
        with pytest.raises(ValueError, match="strictly ascending"):
            ControllerConfig(kind="bandit", betas=(0.7, 0.3))
        with pytest.raises(ValueError, match=r"betas must lie in \[0, 1\]"):
            ControllerConfig(kind="bandit", betas=(0.5, 1.5))

    def test_alphas_must_be_ascending_ints(self):
        with pytest.raises(ValueError, match="alphas must be integers"):
            ControllerConfig(kind="bandit", alphas=(0, 1.5))
        with pytest.raises(ValueError, match="strictly ascending"):
            ControllerConfig(kind="bandit", alphas=(2, 2))

    def test_epsilon_and_ucb_ranges(self):
        with pytest.raises(ValueError, match=r"epsilon must be in \[0, 1\]"):
            ControllerConfig(kind="bandit", epsilon=1.5)
        with pytest.raises(ValueError, match="ucb_c must be >= 0"):
            ControllerConfig(kind="bandit", ucb_c=-0.1)

    def test_seed_must_be_integer_not_bool(self):
        with pytest.raises(ValueError, match="seed must be an integer"):
            ControllerConfig(kind="bandit", seed=True)
        assert ControllerConfig(kind="bandit", seed=3.0).seed == 3

    def test_band_validation(self):
        with pytest.raises(ValueError, match="miss_bands"):
            ControllerConfig(kind="bandit", miss_bands=())
        with pytest.raises(ValueError, match="queue_bands must be integers"):
            ControllerConfig(kind="bandit", queue_bands=(1.5,))
        with pytest.raises(ValueError, match="queue_bands"):
            ControllerConfig(kind="bandit", queue_bands=(16, 4))


class TestSpecParsingTypedParams:
    """parse_controller_spec regressions for nested/typed values."""

    def test_bandit_spec_with_json_lists(self):
        cfg = parse_controller_spec(
            "bandit:betas=[0.3,0.5,0.7],alphas=[0,2],epsilon=0.2,seed=7"
        )
        assert cfg.kind == "bandit"
        assert cfg.betas == (0.3, 0.5, 0.7)
        assert cfg.alphas == (0, 2)
        assert cfg.epsilon == pytest.approx(0.2)
        assert cfg.seed == 7

    def test_band_edges_and_ucb(self):
        cfg = parse_controller_spec(
            "bandit:miss_bands=[0.1,0.3],queue_bands=[2,8],ucb_c=1.5"
        )
        assert cfg.miss_bands == (0.1, 0.3)
        assert cfg.queue_bands == (2, 8)
        assert cfg.ucb_c == pytest.approx(1.5)

    def test_bare_scalar_becomes_one_element_grid(self):
        cfg = parse_controller_spec("bandit:betas=0.4,alphas=2")
        assert cfg.betas == (0.4,)
        assert cfg.alphas == (2,)

    def test_json_dict_schedule_parameter(self):
        cfg = parse_controller_spec('schedule:schedule={"0":0.25,"120":0.75}')
        assert cfg.schedule == ((0.0, 0.25), (120.0, 0.75))

    def test_commas_inside_brackets_do_not_split_items(self):
        cfg = parse_controller_spec("bandit:betas=[0.3,0.5],window=4")
        assert cfg.betas == (0.3, 0.5)
        assert cfg.window == 4

    def test_malformed_specs_fail_naming_the_key(self):
        with pytest.raises(ValueError, match="betas=.*not valid JSON"):
            parse_controller_spec("bandit:betas=[0.3,oops]")
        with pytest.raises(ValueError, match="alphas=.*expected an integer"):
            parse_controller_spec("bandit:alphas=[0.5]")
        with pytest.raises(ValueError, match="seed=.*expected an integer"):
            parse_controller_spec("bandit:seed=7.5")
        with pytest.raises(ValueError, match="epsilon=.*expected a number"):
            parse_controller_spec("bandit:epsilon=[0.1]")
        with pytest.raises(ValueError, match="unknown controller parameter 'gain'"):
            parse_controller_spec("bandit:gain=2")
        with pytest.raises(ValueError, match="unbalanced brackets"):
            parse_controller_spec("bandit:betas=[0.3,0.5")
        with pytest.raises(ValueError, match="not valid JSON"):
            parse_controller_spec("schedule:schedule={0:0.25}")
        with pytest.raises(ValueError, match="not key=value"):
            parse_controller_spec("bandit:epsilon")

"""Integration tests: the control plane inside a full simulation.

The acceptance contract of the subsystem:

* the default (no controller) and the explicit ``StaticController`` are
  *bit-identical* in every task outcome — telemetry is the only
  difference;
* adaptive controllers actually move the live setpoints (and the Pruner
  and Toggle consume them);
* determinism holds: same config + seed → same trajectory, parallel
  campaign execution byte-identical to serial, memoize modes identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ControllerConfig, PruningConfig
from repro.core.pruner import Pruner
from repro.experiments.campaign import run_cell_trials
from repro.experiments.runner import ExperimentConfig, pet_matrix, run_trial
from repro.metrics.collector import SimulationResult
from repro.system.serverless import ServerlessSystem
from repro.workload.generator import generate_workload
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(num_tasks=140, time_span=80.0, num_task_types=6, pattern="bursty")


def run_system(pruning, *, heuristic="MM", seed=3, workload_seed=5):
    pet = pet_matrix()
    tasks = generate_workload(SPEC, pet, np.random.default_rng(workload_seed))
    system = ServerlessSystem(pet, heuristic, pruning=pruning, seed=seed)
    result = system.run(tasks)
    return system, result


def outcome_fields(payload: dict) -> dict:
    return {
        k: v
        for k, v in payload.items()
        if k not in ("controller_stats", "fairness_stats")
    }


class TestStaticIsBitIdentical:
    def test_default_payload_has_no_telemetry_keys(self):
        _, result = run_system(PruningConfig.paper_default())
        payload = result.to_dict()
        assert "controller_stats" not in payload
        assert "fairness_stats" not in payload

    @pytest.mark.parametrize("heuristic", ["MM", "MCT"])
    def test_static_controller_outcomes_equal_no_controller(self, heuristic):
        base = PruningConfig.paper_default()
        _, r0 = run_system(base, heuristic=heuristic)
        _, r1 = run_system(
            base.with_(controller=ControllerConfig(kind="static")),
            heuristic=heuristic,
        )
        assert outcome_fields(r1.to_dict()) == outcome_fields(r0.to_dict())
        assert r1.controller_stats["updates"] == 0
        assert r1.controller_stats["initial"] == r1.controller_stats["final"]

    def test_setpoints_without_controller_stay_frozen(self):
        system, _ = run_system(PruningConfig.paper_default())
        assert system.pruner.driver is None
        assert system.pruner.setpoints.beta == 0.5
        assert system.pruner.setpoints.alpha == 0


class TestAdaptiveControllersActuate:
    def test_schedule_trajectory_matches_breakpoints(self):
        cfg = ControllerConfig(
            kind="schedule", schedule=((0.0, 0.3), (40.0, 0.8))
        )
        system, result = run_system(
            PruningConfig.paper_default().with_(controller=cfg)
        )
        stats = result.controller_stats
        assert stats["controller"] == "schedule"
        # Both steps were applied, in order, at/after their breakpoints.
        betas = [row[1] for row in stats["trajectory"]]
        assert betas == [0.3, 0.8]
        assert stats["trajectory"][1][0] >= 40.0
        assert system.pruner.setpoints.beta == 0.8

    def test_schedule_beta_drives_defer_decisions(self):
        """A β=1 schedule defers strictly more than a β=0 one — the live
        setpoint demonstrably reaches the defer check.  (β=0 still
        defers *zero-chance* tasks: the bar is ``chance <= β``.)"""
        lo = ControllerConfig(kind="schedule", schedule=((0.0, 0.0),))
        hi = ControllerConfig(kind="schedule", schedule=((0.0, 1.0),))
        _, r_lo = run_system(
            PruningConfig(enable_fairness=False).with_(controller=lo)
        )
        _, r_hi = run_system(
            PruningConfig(enable_fairness=False).with_(controller=hi)
        )
        assert r_hi.defer_decisions > r_lo.defer_decisions

    def test_hysteresis_moves_within_bounds(self):
        cfg = ControllerConfig(
            kind="hysteresis", low=0.02, high=0.15, step=0.1,
            beta_min=0.2, beta_max=0.8, cooldown=2, window=4,
        )
        _, result = run_system(PruningConfig.paper_default().with_(controller=cfg))
        stats = result.controller_stats
        assert stats["updates"] > 0
        for _, beta, alpha in stats["trajectory"]:
            assert 0.2 <= beta <= 0.8
            assert alpha >= 0

    def test_live_alpha_reaches_toggle(self):
        pruning = PruningConfig.paper_default().with_(dropping_toggle=5)
        pruner = Pruner(pruning)
        assert pruner.toggle.alpha == 5
        pruner.setpoints.alpha = 0
        assert pruner.toggle.alpha == 0

    def test_mean_chance_observed_only_with_controller(self):
        system, _ = run_system(PruningConfig.paper_default())
        assert system.estimator.observe_chances is False
        assert system.estimator.observed_mean_chance() is None
        cfg = ControllerConfig(kind="static")
        system2, _ = run_system(PruningConfig.paper_default().with_(controller=cfg))
        assert system2.estimator.observe_chances is True
        mean = system2.estimator.observed_mean_chance()
        assert mean is not None and 0.0 <= mean <= 1.0


class TestDeterminism:
    CONTROLLERS = [
        ControllerConfig(kind="hysteresis", low=0.02, high=0.2, step=0.1,
                         cooldown=4, window=4),
        ControllerConfig(kind="target-success", target=0.6, settle=8),
        ControllerConfig(kind="schedule", schedule=((0.0, 0.3), (40.0, 0.7))),
        ControllerConfig(kind="static"),
    ]

    @pytest.mark.parametrize("cfg", CONTROLLERS, ids=lambda c: c.kind)
    def test_same_seed_same_trajectory(self, cfg):
        pruning = PruningConfig.paper_default().with_(controller=cfg)
        _, r1 = run_system(pruning)
        _, r2 = run_system(pruning)
        assert r1.to_dict() == r2.to_dict()

    @pytest.mark.parametrize("cfg", CONTROLLERS, ids=lambda c: c.kind)
    def test_memoize_modes_identical(self, cfg):
        pruning = PruningConfig.paper_default().with_(controller=cfg)
        pet = pet_matrix()
        payloads = []
        for memoize in (True, "keyed", False):
            tasks = generate_workload(SPEC, pet, np.random.default_rng(5))
            system = ServerlessSystem(pet, "MM", pruning=pruning, seed=3, memoize=memoize)
            payload = system.run(tasks).to_dict()
            payload.pop("estimator_stats")  # cache counters differ by design
            payloads.append(payload)
        assert payloads[0] == payloads[1] == payloads[2]

    def test_parallel_vs_serial_byte_identity(self):
        """Every new controller: jobs=2 must reproduce serial trials
        exactly (setpoints are a pure function of config + observed
        state, so workers can't diverge)."""
        configs = [
            ExperimentConfig(
                heuristic="MM",
                spec=WorkloadSpec(
                    num_tasks=90, time_span=60.0, num_task_types=4, pattern="bursty"
                ),
                pruning=PruningConfig.paper_default().with_(controller=cfg),
                trials=2,
                base_seed=17,
                label=f"ctl-{cfg.kind}",
            )
            for cfg in self.CONTROLLERS
        ]
        serial = run_cell_trials(configs, jobs=None)
        parallel = run_cell_trials(configs, jobs=2)
        for cell_s, cell_p in zip(serial, parallel):
            for rs, rp in zip(cell_s, cell_p):
                assert rs.to_dict() == rp.to_dict()


class TestTelemetryRoundTrip:
    def test_result_round_trips_with_telemetry(self):
        cfg = ControllerConfig(kind="hysteresis", low=0.02, high=0.2, step=0.1)
        _, result = run_system(PruningConfig.paper_default().with_(controller=cfg))
        payload = result.to_dict()
        assert SimulationResult.from_dict(payload).to_dict() == payload
        assert result.max_sufferage >= 0.0
        assert result.controller_updates == payload["controller_stats"]["updates"]

    def test_json_round_trip_exact(self):
        import json

        cfg = ControllerConfig(kind="schedule", schedule=((0.0, 0.4),))
        _, result = run_system(PruningConfig.paper_default().with_(controller=cfg))
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_run_trial_carries_telemetry(self):
        config = ExperimentConfig(
            heuristic="MM",
            spec=WorkloadSpec(num_tasks=80, time_span=50.0, pattern="bursty"),
            pruning=PruningConfig.paper_default().with_(
                controller=ControllerConfig(kind="static")
            ),
            trials=1,
        )
        result = run_trial(config, 0)
        assert result.controller_stats["controller"] == "static"
        assert "scores" in result.fairness_stats

"""Unit tests for the adaptive pruning controllers (repro.control)."""

from __future__ import annotations

import pytest

from repro.control.controllers import (
    HysteresisController,
    ScheduleController,
    StaticController,
    TargetSuccessController,
)
from repro.control.driver import ControllerDriver
from repro.control.registry import (
    CONTROLLERS,
    make_controller,
    make_driver,
    parse_controller_spec,
    resolve_controller,
)
from repro.control.signals import ControlSignals, Setpoints
from repro.core.config import CONTROLLER_KINDS, ControllerConfig, PruningConfig


def signals(
    *,
    now=0.0,
    on_time=0,
    late=0,
    dropped_missed=0,
    dropped_proactive=0,
    mapping_events=1,
    misses_since_last_event=0,
    beta=0.5,
    alpha=0,
    **kw,
) -> ControlSignals:
    defaults = dict(
        arrived=0,
        defers=0,
        queued=0,
        batch_queued=0,
        running=0,
        mean_chance=None,
        sufferage={},
    )
    defaults.update(kw)
    return ControlSignals(
        now=now,
        mapping_events=mapping_events,
        misses_since_last_event=misses_since_last_event,
        on_time=on_time,
        late=late,
        dropped_missed=dropped_missed,
        dropped_proactive=dropped_proactive,
        beta=beta,
        alpha=alpha,
        **defaults,
    )


class TestConfigValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown controller kind"):
            ControllerConfig(kind="pid")

    def test_registry_covers_every_kind(self):
        assert set(CONTROLLERS) == set(CONTROLLER_KINDS)

    def test_schedule_needs_breakpoints(self):
        with pytest.raises(ValueError, match="at least one breakpoint"):
            ControllerConfig(kind="schedule")

    def test_schedule_must_be_sorted(self):
        with pytest.raises(ValueError, match="ascending"):
            ControllerConfig(kind="schedule", schedule=((10.0, 0.5), (5.0, 0.7)))

    def test_negative_breakpoint_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ControllerConfig(kind="schedule", schedule=((-1.0, 0.5),))

    def test_beta_bounds_ordering(self):
        with pytest.raises(ValueError, match="beta_min"):
            ControllerConfig(kind="hysteresis", beta_min=0.8, beta_max=0.2)

    def test_band_ordering(self):
        with pytest.raises(ValueError, match="low"):
            ControllerConfig(kind="hysteresis", low=0.5, high=0.1)

    def test_integral_float_counts_coerced(self):
        cfg = ControllerConfig(kind="hysteresis", cooldown=4.0, window=2.0)
        assert cfg.cooldown == 4 and isinstance(cfg.cooldown, int)
        assert cfg.window == 2 and isinstance(cfg.window, int)

    def test_fractional_count_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            ControllerConfig(kind="hysteresis", cooldown=4.5)

    def test_schedule_points_normalized_to_float_tuples(self):
        cfg = ControllerConfig(kind="schedule", schedule=[[0, 0.3], [10, 0.7]])
        assert cfg.schedule == ((0.0, 0.3), (10.0, 0.7))

    def test_target_range(self):
        with pytest.raises(ValueError, match="target"):
            ControllerConfig(kind="target-success", target=1.0)

    def test_dict_round_trip_through_pruning_config(self):
        import dataclasses

        pruning = PruningConfig(
            controller=ControllerConfig(kind="hysteresis", high=0.3)
        )
        payload = dataclasses.asdict(pruning)
        assert payload["controller"]["kind"] == "hysteresis"
        rebuilt = PruningConfig(
            **{**payload, "toggle_mode": pruning.toggle_mode}
        )
        assert rebuilt.controller == pruning.controller


class TestStatic:
    def test_never_moves(self):
        base = PruningConfig()
        ctl = StaticController(ControllerConfig(), base)
        for i in range(10):
            assert ctl.update(signals(now=float(i), late=i)) is None
        assert ctl.breakpoints() == ()
        assert ctl.at_time(5.0) is None


class TestSchedule:
    def make(self, **kw):
        base = PruningConfig(pruning_threshold=0.5, dropping_toggle=1)
        cfg = ControllerConfig(kind="schedule", **kw)
        return ScheduleController(cfg, base)

    def test_piecewise_constant_beta(self):
        ctl = self.make(schedule=((10.0, 0.3), (20.0, 0.8)))
        assert ctl.setpoints_at(0.0) == (0.5, 1)  # config values before t0
        assert ctl.setpoints_at(10.0) == (0.3, 1)
        assert ctl.setpoints_at(15.0) == (0.3, 1)
        assert ctl.setpoints_at(20.0) == (0.8, 1)
        assert ctl.setpoints_at(1e9) == (0.8, 1)

    def test_alpha_schedule(self):
        ctl = self.make(schedule=((0.0, 0.4),), alpha_schedule=((30.0, 3.0),))
        assert ctl.setpoints_at(0.0) == (0.4, 1)
        assert ctl.setpoints_at(30.0) == (0.4, 3)

    def test_breakpoints_merge_both_schedules(self):
        ctl = self.make(schedule=((10.0, 0.3),), alpha_schedule=((5.0, 2.0), (10.0, 0.0)))
        assert ctl.breakpoints() == (5.0, 10.0)

    def test_update_is_pure_function_of_time(self):
        ctl = self.make(schedule=((10.0, 0.3),))
        s = signals(now=12.0, late=100, dropped_missed=50)
        assert ctl.update(s) == ctl.at_time(12.0) == (0.3, 1)


class TestHysteresis:
    def make(self, **kw):
        defaults = dict(low=0.1, high=0.3, step=0.2, cooldown=2, window=1,
                        beta_min=0.1, beta_max=0.9)
        defaults.update(kw)
        base = PruningConfig(pruning_threshold=0.5)
        return HysteresisController(
            ControllerConfig(kind="hysteresis", **defaults), base
        )

    def test_no_outcomes_no_opinion(self):
        ctl = self.make()
        assert ctl.update(signals()) is None

    def test_steps_up_above_band(self):
        ctl = self.make()
        out = ctl.update(signals(late=8, on_time=2))  # miss rate 0.8
        assert out == (0.7, 0)

    def test_steps_down_below_band(self):
        ctl = self.make()
        out = ctl.update(signals(on_time=100))  # miss rate 0
        assert out == (0.3, 0)

    def test_dead_band_holds(self):
        ctl = self.make()
        out = ctl.update(signals(late=2, on_time=8))  # rate 0.2 inside band
        assert out == (0.5, 0)

    def test_cooldown_blocks_consecutive_steps(self):
        ctl = self.make(cooldown=3)
        assert ctl.update(signals(late=10)) == (0.7, 0)
        # During cool-down, more misses do not move β again...
        assert ctl.update(signals(late=20)) == (0.7, 0)
        assert ctl.update(signals(late=30)) == (0.7, 0)
        assert ctl.update(signals(late=40)) == (0.7, 0)
        # ...and the first post-cool-down tick does.
        beta, alpha = ctl.update(signals(late=50))
        assert (beta, alpha) == (pytest.approx(0.9), 0)

    def test_clamped_at_bounds(self):
        ctl = self.make(cooldown=1, step=0.5)
        ctl.update(signals(late=10))
        ctl.update(signals(late=20))
        out = ctl.update(signals(late=30))
        assert out == (0.9, 0)  # beta_max, not 1.0+

    def test_adapt_alpha_drops_to_zero_above_band(self):
        base = PruningConfig(pruning_threshold=0.5, dropping_toggle=4)
        ctl = HysteresisController(
            ControllerConfig(
                kind="hysteresis", low=0.1, high=0.3, step=0.1, cooldown=1,
                window=1, adapt_alpha=True,
            ),
            base,
        )
        assert ctl.update(signals(late=10, alpha=4))[1] == 0
        ctl.update(signals(late=10, on_time=1000, alpha=0))  # consumes cool-down
        assert ctl.update(signals(late=10, on_time=2000, alpha=0))[1] == 4

    def test_ewma_smooths_single_spike(self):
        ctl = self.make(window=9)  # gain 0.2
        ctl.update(signals(on_time=10))          # ewma 0 → step down
        out = ctl.update(signals(on_time=10, late=10))  # window rate 1.0, ewma 0.2
        # 0.2 is inside the band: no second move.
        assert out == (0.3, 0)


class TestTargetSuccess:
    def make(self, **kw):
        defaults = dict(target=0.5, settle=2, beta_min=0.1, beta_max=0.9)
        defaults.update(kw)
        base = PruningConfig(pruning_threshold=0.5)
        return TargetSuccessController(
            ControllerConfig(kind="target-success", **defaults), base
        )

    def test_waits_for_settle_window(self):
        ctl = self.make(settle=3)
        assert ctl.update(signals(on_time=1)) is None
        assert ctl.update(signals(on_time=2)) is None
        assert ctl.update(signals(on_time=3)) is not None

    def test_below_target_moves_beta_up(self):
        ctl = self.make()
        ctl.update(signals(on_time=0, late=0))
        out = ctl.update(signals(on_time=1, late=9))  # rate 0.1 < 0.5
        assert out is not None and out[0] == pytest.approx(0.7)

    def test_at_target_relaxes_beta(self):
        ctl = self.make()
        ctl.update(signals())
        out = ctl.update(signals(on_time=9, late=1))  # rate 0.9 >= 0.5
        assert out is not None and out[0] == pytest.approx(0.3)

    def test_empty_window_extends_instead_of_voting(self):
        ctl = self.make(settle=2)
        assert ctl.update(signals()) is None
        assert ctl.update(signals()) is None  # window had no outcomes
        out = ctl.update(signals(late=4))  # now it has
        assert out is not None

    def test_bracket_reopens_after_convergence(self):
        ctl = self.make(settle=1)
        for i in range(1, 60):
            ctl.update(signals(late=4 * i))  # always below target
        # β pinned near beta_max but the bracket must have re-opened,
        # so a long over-target stretch can pull it back down.
        high = ctl.beta
        for i in range(60, 120):
            ctl.update(signals(late=240, on_time=100 * i))
        assert ctl.beta < high


class TestDriver:
    def test_records_only_changes(self):
        sp = Setpoints(beta=0.5, alpha=0)
        drv = ControllerDriver(StaticController(ControllerConfig(), PruningConfig()), sp)
        for i in range(5):
            drv.tick(signals(now=float(i)))
        stats = drv.stats()
        assert stats["ticks"] == 5
        assert stats["updates"] == 0
        assert stats["trajectory"] == []
        assert stats["initial"] == [0.5, 0.0] == stats["final"]

    def test_clamps_whatever_controller_emits(self):
        class Wild(StaticController):
            def update(self, s):
                return 7.3, -4

        sp = Setpoints(beta=0.5, alpha=2)
        drv = ControllerDriver(Wild(ControllerConfig(), PruningConfig()), sp)
        drv.tick(signals(now=1.0))
        assert sp.beta == 1.0 and sp.alpha == 0
        assert drv.stats()["trajectory"] == [[1.0, 1.0, 0.0]]

    def test_time_tick_uses_at_time(self):
        base = PruningConfig(pruning_threshold=0.5)
        cfg = ControllerConfig(kind="schedule", schedule=((10.0, 0.2),))
        sp = Setpoints(beta=0.5, alpha=0)
        drv = make_driver(cfg, base, sp)
        drv.time_tick(10.0)
        assert sp.beta == 0.2
        assert drv.stats()["time_ticks"] == 1

    def test_make_driver_none_for_no_controller(self):
        assert make_driver(None, PruningConfig(), Setpoints(0.5, 0)) is None


class TestRegistry:
    def test_bare_names(self):
        for kind in ("static", "hysteresis", "target-success"):
            cfg = parse_controller_spec(kind)
            assert cfg.kind == kind
            assert isinstance(
                make_controller(cfg, PruningConfig()), CONTROLLERS[kind]
            )

    def test_spec_with_parameters(self):
        cfg = parse_controller_spec("hysteresis:low=0.02,high=0.4,step=0.05,adapt_alpha=true")
        assert (cfg.low, cfg.high, cfg.step, cfg.adapt_alpha) == (0.02, 0.4, 0.05, True)

    def test_schedule_spec_pairs(self):
        cfg = parse_controller_spec("schedule:0=0.3,120=0.7,alpha@60=2")
        assert cfg.schedule == ((0.0, 0.3), (120.0, 0.7))
        assert cfg.alpha_schedule == ((60.0, 2.0),)

    def test_unknown_kind_and_parameter(self):
        with pytest.raises(ValueError, match="unknown controller"):
            parse_controller_spec("pid")
        with pytest.raises(ValueError, match="unknown controller parameter"):
            parse_controller_spec("hysteresis:gain=2")

    def test_resolve_none(self):
        assert resolve_controller(None) == ("", None)
        assert resolve_controller("none") == ("", None)

    def test_resolve_spec_string_with_label(self):
        """Two tunings of one kind can share a grid axis: spec strings
        accept an inline ``label=`` item that names the cell."""
        label, cfg = resolve_controller("hysteresis:high=0.4,label=hot")
        assert label == "hot"
        assert cfg.kind == "hysteresis" and cfg.high == 0.4
        label2, cfg2 = resolve_controller("static:label=telemetry")
        assert label2 == "telemetry" and cfg2.kind == "static"

    def test_resolve_mapping_with_label(self):
        label, cfg = resolve_controller(
            {"kind": "schedule", "schedule": [[0, 0.25], [120, 0.75]], "label": "ramp"}
        )
        assert label == "ramp"
        assert cfg.schedule == ((0.0, 0.25), (120.0, 0.75))

    def test_resolve_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown controller keys"):
            resolve_controller({"kind": "static", "gain": 1.0})

"""CLI behavior of ``repro lint``: output modes, exit codes, budget."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


DIRTY = "import time\nt0 = time.time()\n"
WAIVED = "import time\nt0 = time.time()  # reprolint: ignore[D001] demo reason\n"
CLEAN = "x = 1\n"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "src/repro/mod.py", CLEAN)
        rc = lint_main(["--root", str(tmp_path), "--no-snapshot-check", "src"])
        assert rc == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        write(tmp_path, "src/repro/mod.py", DIRTY)
        rc = lint_main(["--root", str(tmp_path), "--no-snapshot-check", "src"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "D001" in captured.err
        assert "fix:" in captured.err

    def test_waived_tree_exits_zero_with_budget(self, tmp_path, capsys):
        write(tmp_path, "src/repro/mod.py", WAIVED)
        rc = lint_main(["--root", str(tmp_path), "--no-snapshot-check", "src"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "waiver budget: 1 waived (D001: 1)" in out

    def test_usage_error_exits_two(self, capsys):
        rc = lint_main(["--definitely-not-a-flag"])
        assert rc == 2


class TestJsonOutput:
    def test_json_payload_shape(self, tmp_path, capsys):
        write(tmp_path, "src/repro/mod.py", DIRTY)
        write(tmp_path, "src/repro/ok.py", WAIVED)
        rc = lint_main(["--root", str(tmp_path), "--no-snapshot-check", "--json", "src"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"] == {"active": 1, "waived": 1}
        assert payload["waiver_budget"] == {"D001": 1}
        assert payload["files_scanned"] == 2
        codes = {v["code"] for v in payload["violations"]}
        assert codes == {"D001"}
        for violation in payload["violations"]:
            assert {"code", "path", "line", "col", "message", "hint", "waived"} <= set(
                violation
            )

    def test_rules_table(self, capsys):
        rc = lint_main(["--rules", "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        codes = [row["code"] for row in rows]
        assert codes == sorted(codes)
        assert {"D001", "D002", "D003", "D004", "D005", "D006", "W001", "W002"} <= set(
            codes
        )
        assert all(row["hint"] for row in rows)


class TestDispatcher:
    def test_repro_lint_subcommand(self, tmp_path, capsys):
        write(tmp_path, "src/repro/mod.py", CLEAN)
        rc = repro_main(["lint", "--root", str(tmp_path), "--no-snapshot-check", "src"])
        assert rc == 0
        assert "repro lint:" in capsys.readouterr().out

    def test_repro_delegates_other_commands(self, capsys):
        # Anything but `lint` lands in the experiments CLI, whose argparse
        # raises SystemExit(2) on an unknown figure name.
        with pytest.raises(SystemExit) as exc:
            repro_main(["definitely-not-a-figure"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestSelfCheckCli:
    def test_cli_clean_on_repo(self, capsys):
        rc = lint_main(["--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "FAIL" not in out

"""D005 snapshot-coverage tests: synthetic specs plus the real tree.

The acceptance property ("removing any attribute from snapshot_service
coverage makes D005 fail") is exercised on a *copy* of the real
modules: strip one covered attribute name from the copied snapshot
source and the rule must fire for exactly that attribute.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.lint import LintConfig, run_lint
from repro.lint.snapshot_coverage import (
    EXCLUSIONS,
    SNAPSHOT_CLASSES,
    SnapshotClassSpec,
    check_snapshot_coverage,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

SNAPSHOT_REL = "src/repro/service/snapshot.py"


def write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


# ----------------------------------------------------------------------
# Synthetic minimal cases.
# ----------------------------------------------------------------------
class TestSyntheticSpecs:
    CLS = "src/repro/thing.py"
    SNAP = "src/repro/snap.py"
    SPEC = (SnapshotClassSpec("Thing", CLS),)

    def run(self, tmp_path, cls_src: str, snap_src: str, exclusions=None):
        write(tmp_path, self.CLS, cls_src)
        write(tmp_path, self.SNAP, snap_src)
        return list(
            check_snapshot_coverage(
                tmp_path,
                snapshot_path=self.SNAP,
                classes=self.SPEC,
                exclusions=exclusions or {},
            )
        )

    def test_positive_uncovered_attr(self, tmp_path):
        found = self.run(
            tmp_path,
            "class Thing:\n    def __init__(self):\n        self.a = 1\n        self.b = 2\n",
            "def dump(t):\n    return {'a': t.a}\n",
        )
        assert [v.code for v in found] == ["D005"]
        assert "Thing.b" in found[0].message

    def test_negative_all_covered(self, tmp_path):
        found = self.run(
            tmp_path,
            "class Thing:\n    def __init__(self):\n        self.a = 1\n        self.b = 2\n",
            "def dump(t):\n    return {'a': t.a, 'b': t.b}\n",
        )
        assert found == []

    def test_string_key_counts_as_coverage(self, tmp_path):
        # getattr-over-field-tuple style (how _dump_task works).
        found = self.run(
            tmp_path,
            "class Thing:\n    def __init__(self):\n        self.a = 1\n",
            "FIELDS = ('a',)\ndef dump(t):\n    return {f: getattr(t, f) for f in FIELDS}\n",
        )
        assert found == []

    def test_exclusion_table_suppresses(self, tmp_path):
        found = self.run(
            tmp_path,
            "class Thing:\n    def __init__(self):\n        self.cache = {}\n",
            "def dump(t):\n    return {}\n",
            exclusions={"Thing.cache": "memo cache, rebuilt cold"},
        )
        assert found == []

    def test_exclusion_without_reason_is_violation(self, tmp_path):
        found = self.run(
            tmp_path,
            "class Thing:\n    def __init__(self):\n        self.cache = {}\n",
            "def dump(t):\n    return {}\n",
            exclusions={"Thing.cache": "  "},
        )
        assert [v.code for v in found] == ["D005"]
        assert "no reason" in found[0].message

    def test_dataclass_fields_are_collected(self, tmp_path):
        found = self.run(
            tmp_path,
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Thing:\n"
            "    a: int = 0\n"
            "    b: float = 0.0\n",
            "def dump(t):\n    return {'a': t.a}\n",
        )
        assert [v.code for v in found] == ["D005"]
        assert "Thing.b" in found[0].message

    def test_missing_class_is_reported(self, tmp_path):
        found = self.run(
            tmp_path,
            "class Other:\n    def __init__(self):\n        self.a = 1\n",
            "x = 1\n",
        )
        assert [v.code for v in found] == ["D005"]
        assert "not found" in found[0].message


# ----------------------------------------------------------------------
# The real tree.
# ----------------------------------------------------------------------
class TestRealTree:
    def copy_tree(self, tmp_path: Path) -> Path:
        for spec in SNAPSHOT_CLASSES:
            src = REPO_ROOT / spec.path
            dst = tmp_path / spec.path
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(src, dst)
        snap = tmp_path / SNAPSHOT_REL
        snap.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / SNAPSHOT_REL, snap)
        return tmp_path

    def test_repo_snapshot_coverage_is_clean(self):
        assert list(check_snapshot_coverage(REPO_ROOT)) == []

    @pytest.mark.parametrize("attr", ["busy_time", "completed_count", "defer_count"])
    def test_removing_coverage_fails(self, tmp_path, attr):
        """The ISSUE-9 acceptance property, on a copy of the real tree."""
        root = self.copy_tree(tmp_path)
        snap = root / SNAPSHOT_REL
        text = snap.read_text(encoding="utf-8")
        assert attr in text
        snap.write_text(text.replace(attr, "zzz_gone"), encoding="utf-8")
        found = list(check_snapshot_coverage(root))
        assert any(v.code == "D005" and f".{attr}" in v.message for v in found)

    def test_new_init_attr_without_coverage_fails(self, tmp_path):
        """A PR adding `self.new_field` to Machine.__init__ must trip D005."""
        root = self.copy_tree(tmp_path)
        machine = root / "src/repro/sim/machine.py"
        text = machine.read_text(encoding="utf-8")
        needle = "self.busy_time: float = 0.0"
        assert needle in text
        machine.write_text(
            text.replace(needle, needle + "\n        self.new_field = 0"),
            encoding="utf-8",
        )
        found = list(check_snapshot_coverage(root))
        assert any(v.code == "D005" and "Machine.new_field" in v.message for v in found)

    def test_every_exclusion_has_a_reason(self):
        for key, reason in EXCLUSIONS.items():
            assert reason.strip(), f"exclusion {key} lacks a rationale"

    def test_exclusions_reference_known_classes(self):
        known = {spec.class_name for spec in SNAPSHOT_CLASSES}
        for key in EXCLUSIONS:
            cls, _, attr = key.partition(".")
            assert cls in known and attr, f"malformed exclusion key {key!r}"


class TestSelfCheck:
    def test_repo_lints_clean(self):
        """`repro lint` must exit clean on the repo itself (the CI gate)."""
        report = run_lint(LintConfig(root=REPO_ROOT))
        assert report.ok, "\n".join(v.format() for v in report.active)
        # The waiver budget is deliberate: every waived violation carries
        # a reason (W001 would otherwise have failed `ok` above).
        assert all(v.waiver_reason for v in report.waived)

    def test_repo_scan_covers_the_three_roots(self):
        report = run_lint(LintConfig(root=REPO_ROOT))
        scanned_prefixes = {"src", "tests", "benchmarks"}
        seen = {v.path.split("/")[0] for v in report.violations}
        assert seen <= scanned_prefixes | {"src"}  # violations only from scan roots
        assert report.files_scanned > 100  # the real tree, not a stub

"""Rule-by-rule snippet suite for the determinism linter.

Every rule gets a seeded *positive* (a minimal violating snippet), a
*negative* (the compliant twin), and a *waiver* case (the violation plus
an inline ``# reprolint: ignore[...]`` with a reason).  Snippets are
written into a temporary tree that mimics the repo layout, because rule
applicability is path-based.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, run_lint

SRC = "src/repro/core/example.py"
SERVICE = "src/repro/service/example.py"
TESTS = "tests/example/test_example.py"
BENCH = "benchmarks/bench_example.py"


def lint_snippet(tmp_path: Path, snippet: str, rel: str = SRC) -> list:
    """Lint one snippet placed at ``rel`` inside a fake repo tree."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(snippet, encoding="utf-8")
    report = run_lint(
        LintConfig(root=tmp_path, roots=(rel,), snapshot_check=False)
    )
    return report.violations


def codes(violations, *, active_only: bool = True) -> list[str]:
    return [v.code for v in violations if not (active_only and v.waived)]


# ----------------------------------------------------------------------
# D001 — wall-clock reads.
# ----------------------------------------------------------------------
class TestD001WallClock:
    POSITIVE = "import time\nstart = time.time()\n"

    def test_positive_time_time(self, tmp_path):
        assert codes(lint_snippet(tmp_path, self.POSITIVE)) == ["D001"]

    @pytest.mark.parametrize(
        "call",
        [
            "time.perf_counter()",
            "time.monotonic()",
            "time.time_ns()",
            "datetime.now()",
            "datetime.datetime.now()",
            "datetime.utcnow()",
        ],
    )
    def test_positive_variants(self, tmp_path, call):
        snippet = f"import time, datetime\nx = {call}\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D001"]

    def test_negative_sim_now(self, tmp_path):
        snippet = "def f(sim):\n    return sim.now\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_negative_time_module_other(self, tmp_path):
        # `time.strftime` formats an explicit tuple — not a clock read.
        snippet = "import time\ns = time.strftime('%Y', time.struct_time((0,)*9))\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_whitelisted_clock_module(self, tmp_path):
        assert (
            codes(lint_snippet(tmp_path, self.POSITIVE, "src/repro/service/clock.py"))
            == []
        )

    def test_whitelisted_benchmarks(self, tmp_path):
        assert codes(lint_snippet(tmp_path, self.POSITIVE, BENCH)) == []

    def test_fires_in_tests_tree(self, tmp_path):
        assert codes(lint_snippet(tmp_path, self.POSITIVE, TESTS)) == ["D001"]

    def test_waiver(self, tmp_path):
        snippet = (
            "import time\n"
            "t0 = time.time()  # reprolint: ignore[D001] operator-facing timing\n"
        )
        violations = lint_snippet(tmp_path, snippet)
        assert codes(violations) == []
        assert [v.code for v in violations if v.waived] == ["D001"]
        assert violations[0].waiver_reason == "operator-facing timing"


# ----------------------------------------------------------------------
# D002 — RNG discipline.
# ----------------------------------------------------------------------
class TestD002Rng:
    def test_positive_stdlib_random(self, tmp_path):
        snippet = "import random\nx = random.random()\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D002"]

    def test_positive_numpy_global(self, tmp_path):
        snippet = "import numpy as np\nnp.random.seed(0)\nx = np.random.normal()\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D002", "D002"]

    def test_positive_unseeded_default_rng(self, tmp_path):
        snippet = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D002"]

    def test_positive_seeded_outside_rng_module(self, tmp_path):
        # In src/, even a literal seed must flow through the stream API.
        snippet = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D002"]

    def test_negative_stream_seed(self, tmp_path):
        snippet = (
            "import numpy as np\n"
            "from repro.sim.rng import stream_seed\n"
            "rng = np.random.default_rng(stream_seed(42, 'exec'))\n"
        )
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_negative_tuning_seed(self, tmp_path):
        # The search/learning stream family (tuner proposals, bandit
        # exploration) is sanctioned alongside stream_seed — no waivers.
        snippet = (
            "import numpy as np\n"
            "from repro.sim.rng import tuning_seed\n"
            "rng = np.random.default_rng(tuning_seed(42, 'trial/3'))\n"
        )
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_negative_streams_api(self, tmp_path):
        snippet = "def f(streams):\n    return streams.stream('workload')\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_negative_rng_module_itself(self, tmp_path):
        snippet = "import numpy as np\nrng = np.random.default_rng(1)\n"
        assert codes(lint_snippet(tmp_path, snippet, "src/repro/sim/rng.py")) == []

    def test_negative_generator_annotation_call(self, tmp_path):
        snippet = "import numpy as np\ng = np.random.Generator(np.random.PCG64(1))\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_tests_allow_literal_seeds(self, tmp_path):
        # A test constructing default_rng(7) is deterministic — allowed.
        snippet = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert codes(lint_snippet(tmp_path, snippet, TESTS)) == []

    def test_tests_flag_unseeded(self, tmp_path):
        snippet = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(lint_snippet(tmp_path, snippet, TESTS)) == ["D002"]

    def test_waiver(self, tmp_path):
        snippet = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)  # reprolint: ignore[D002] frozen legacy seed\n"
        )
        violations = lint_snippet(tmp_path, snippet)
        assert codes(violations) == []
        assert [v.code for v in violations if v.waived] == ["D002"]


# ----------------------------------------------------------------------
# D003 — unordered-set iteration.
# ----------------------------------------------------------------------
class TestD003SetIteration:
    def test_positive_set_literal(self, tmp_path):
        snippet = "for x in {3, 1, 2}:\n    print(x)\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D003"]

    def test_positive_set_call(self, tmp_path):
        snippet = "items = [2, 1]\nout = [x for x in set(items)]\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D003"]

    def test_positive_frozenset(self, tmp_path):
        snippet = "for x in frozenset((1, 2)):\n    pass\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D003"]

    def test_positive_dict_fromkeys(self, tmp_path):
        snippet = "d = dict.fromkeys({1, 2}, 0)\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D003"]

    def test_negative_sorted(self, tmp_path):
        snippet = "for x in sorted({3, 1, 2}):\n    print(x)\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_negative_list(self, tmp_path):
        snippet = "for x in [3, 1, 2]:\n    print(x)\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_not_applied_outside_src(self, tmp_path):
        snippet = "for x in {3, 1, 2}:\n    print(x)\n"
        assert codes(lint_snippet(tmp_path, snippet, TESTS)) == []

    def test_waiver(self, tmp_path):
        snippet = (
            "for x in {1, 2}:  # reprolint: ignore[D003] order-insensitive sum\n"
            "    pass\n"
        )
        violations = lint_snippet(tmp_path, snippet)
        assert codes(violations) == []
        assert [v.code for v in violations if v.waived] == ["D003"]


# ----------------------------------------------------------------------
# D004 — exact float comparison.
# ----------------------------------------------------------------------
class TestD004FloatEquality:
    def test_positive_computed_float(self, tmp_path):
        snippet = "def f(a, b):\n    return a * 0.5 == b\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D004"]

    def test_positive_division(self, tmp_path):
        snippet = "def f(a, b, c):\n    return a / b != c\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D004"]

    def test_positive_call_vs_fractional_literal(self, tmp_path):
        snippet = "def f(x):\n    return x.total() == 0.5\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["D004"]

    def test_negative_int_arithmetic(self, tmp_path):
        snippet = "def f(i, n):\n    return i + 1 == n and n % 2 == 0\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_negative_plain_names(self, tmp_path):
        # Two bare names may be exact sentinels — not flagged.
        snippet = "def f(a, b):\n    return a == b\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_negative_sentinel_zero(self, tmp_path):
        snippet = "def f(x):\n    return x.total() == 0.0\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_negative_isclose(self, tmp_path):
        snippet = "import math\ndef f(a, b):\n    return math.isclose(a * 0.5, b)\n"
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_not_applied_in_tests(self, tmp_path):
        # Tests assert exact reproducibility on purpose.
        snippet = "def f(a, b):\n    return a * 0.5 == b\n"
        assert codes(lint_snippet(tmp_path, snippet, TESTS)) == []

    def test_waiver(self, tmp_path):
        snippet = (
            "def f(a, b):\n"
            "    return a * 0.5 == b  # reprolint: ignore[D004] bitwise-identity check\n"
        )
        violations = lint_snippet(tmp_path, snippet)
        assert codes(violations) == []
        assert [v.code for v in violations if v.waived] == ["D004"]


# ----------------------------------------------------------------------
# D006 — async hazards.
# ----------------------------------------------------------------------
class TestD006AsyncHazards:
    def test_positive_time_sleep_in_tests(self, tmp_path):
        snippet = "import time\ntime.sleep(0.1)\n"
        assert codes(lint_snippet(tmp_path, snippet, TESTS)) == ["D006"]

    def test_positive_wall_asyncio_sleep_in_service(self, tmp_path):
        snippet = "import asyncio\nasync def f():\n    await asyncio.sleep(0.05)\n"
        assert codes(lint_snippet(tmp_path, snippet, SERVICE)) == ["D006"]

    def test_positive_event_pulse(self, tmp_path):
        snippet = (
            "async def f(event):\n"
            "    event.set()\n"
            "    event.clear()\n"
        )
        assert codes(lint_snippet(tmp_path, snippet, SERVICE)) == ["D006"]

    def test_negative_sleep_zero_yield(self, tmp_path):
        snippet = "import asyncio\nasync def f():\n    await asyncio.sleep(0)\n"
        assert codes(lint_snippet(tmp_path, snippet, SERVICE)) == []

    def test_negative_set_without_clear(self, tmp_path):
        snippet = "async def f(event):\n    event.set()\n"
        assert codes(lint_snippet(tmp_path, snippet, SERVICE)) == []

    def test_negative_different_events(self, tmp_path):
        snippet = "async def f(a, b):\n    a.set()\n    b.clear()\n"
        assert codes(lint_snippet(tmp_path, snippet, SERVICE)) == []

    def test_not_applied_in_core_src(self, tmp_path):
        # Outside tests/ and service/, D006 does not apply (the core has
        # no event loop); D001 still polices wall-clock reads there.
        snippet = "import time\ntime.sleep(0.1)\n"
        assert codes(lint_snippet(tmp_path, snippet, SRC)) == []

    def test_waiver(self, tmp_path):
        snippet = (
            "import time\n"
            "time.sleep(0.1)  # reprolint: ignore[D006] real-socket smoke needs wall settle\n"
        )
        violations = lint_snippet(tmp_path, snippet, TESTS)
        assert codes(violations) == []
        assert [v.code for v in violations if v.waived] == ["D006"]


# ----------------------------------------------------------------------
# Waiver mechanics (W001/W002).
# ----------------------------------------------------------------------
class TestWaiverMechanics:
    def test_reasonless_waiver_is_w001_and_does_not_suppress(self, tmp_path):
        snippet = "import time\nt0 = time.time()  # reprolint: ignore[D001]\n"
        got = codes(lint_snippet(tmp_path, snippet))
        assert sorted(got) == ["D001", "W001"]

    def test_stale_waiver_is_w002(self, tmp_path):
        snippet = "x = 1  # reprolint: ignore[D001] nothing here anymore\n"
        assert codes(lint_snippet(tmp_path, snippet)) == ["W002"]

    def test_wrong_code_does_not_suppress(self, tmp_path):
        snippet = "import time\nt0 = time.time()  # reprolint: ignore[D002] wrong code\n"
        got = codes(lint_snippet(tmp_path, snippet))
        assert sorted(got) == ["D001", "W002"]

    def test_multi_code_waiver(self, tmp_path):
        snippet = (
            "import time\n"
            "t0 = time.time()  # reprolint: ignore[D001,D002] shared rationale\n"
        )
        violations = lint_snippet(tmp_path, snippet)
        assert codes(violations) == []
        assert [v.code for v in violations if v.waived] == ["D001"]

    def test_docstring_example_is_not_a_live_waiver(self, tmp_path):
        snippet = (
            '"""Docs show: x  # reprolint: ignore[D001] example"""\n'
            "x = 1\n"
        )
        assert codes(lint_snippet(tmp_path, snippet)) == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        snippet = "def broken(:\n"
        got = codes(lint_snippet(tmp_path, snippet))
        assert got == ["E999"]

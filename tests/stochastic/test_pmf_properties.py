"""Property-based tests (hypothesis) for PMF invariants.

The pruning mechanism's correctness rests on these algebraic facts: mass
is conserved by every operation, convolution adds means and offsets, CDFs
are monotone, and tail mass only ever grows (pessimism is one-sided).
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.pmf import CDF_REL_EPS, PMF, batch_cdf_at

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def pmfs(draw, max_support=12, allow_tail=True):
    n = draw(st.integers(min_value=1, max_value=max_support))
    weights = draw(
        st.lists(
            # Weights are either exactly zero or >= 1e-6 so that products
            # of boundary probabilities never underflow to zero (which
            # would legitimately trim the support).
            st.one_of(
                st.just(0.0),
                st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        ).filter(lambda w: sum(w) > 1e-6)
    )
    offset = draw(st.integers(min_value=-5, max_value=30))
    tail_frac = draw(st.floats(min_value=0.0, max_value=0.5)) if allow_tail else 0.0
    arr = np.asarray(weights, dtype=np.float64)
    finite = arr / arr.sum() * (1.0 - tail_frac)
    return PMF(finite, offset=float(offset), tail=tail_frac)


normalized_pmfs = pmfs()
tailless_pmfs = pmfs(allow_tail=False)


# ----------------------------------------------------------------------
# Mass conservation
# ----------------------------------------------------------------------
@given(normalized_pmfs, normalized_pmfs)
def test_convolve_conserves_mass(a, b):
    c = a.convolve(b)
    assert math.isclose(c.total_mass, a.total_mass * b.total_mass, abs_tol=1e-9)


@given(normalized_pmfs, st.floats(min_value=-10, max_value=60))
def test_truncate_conserves_mass(p, horizon):
    q = p.truncate(horizon)
    assert math.isclose(q.total_mass, p.total_mass, abs_tol=1e-9)


@given(normalized_pmfs, st.integers(min_value=2, max_value=8))
def test_convolve_max_support_conserves_mass(p, cap):
    q = p.convolve(p, max_support=cap)
    assert q.support_size <= cap
    assert math.isclose(q.total_mass, p.total_mass**2, abs_tol=1e-9)


@given(normalized_pmfs, st.floats(min_value=-20, max_value=50))
def test_condition_at_least_normalizes(p, t):
    q = p.condition_at_least(t)
    assert math.isclose(q.total_mass, 1.0, abs_tol=1e-9)
    # float tolerance: ceil(t - offset) may keep a grid point an ulp below t
    assert q.min_time >= t - 1e-9 or q.support_size == 0


# ----------------------------------------------------------------------
# Convolution algebra
# ----------------------------------------------------------------------
@given(tailless_pmfs, tailless_pmfs)
def test_convolve_adds_means(a, b):
    assert math.isclose(a.convolve(b).mean(), a.mean() + b.mean(), abs_tol=1e-6)


@given(tailless_pmfs, tailless_pmfs)
def test_convolve_adds_min_times(a, b):
    c = a.convolve(b)
    assert math.isclose(c.min_time, a.min_time + b.min_time, abs_tol=1e-9)


@given(normalized_pmfs, normalized_pmfs)
def test_convolve_commutes(a, b):
    assert a.convolve(b).allclose(b.convolve(a), atol=1e-9)


@settings(deadline=None)
@given(pmfs(max_support=6), pmfs(max_support=6), pmfs(max_support=6))
def test_convolve_associates(a, b, c):
    left = a.convolve(b).convolve(c)
    right = a.convolve(b.convolve(c))
    assert left.allclose(right, atol=1e-9)


@given(tailless_pmfs, tailless_pmfs)
def test_convolve_adds_variances(a, b):
    c = a.convolve(b)
    assert math.isclose(c.variance(), a.variance() + b.variance(), abs_tol=1e-6)


@given(normalized_pmfs, st.floats(min_value=-10, max_value=10))
def test_delta_convolution_is_shift(p, t):
    assert p.convolve(PMF.delta(t)).allclose(p.shift(t), atol=1e-12)


# ----------------------------------------------------------------------
# CDF behaviour
# ----------------------------------------------------------------------
@given(normalized_pmfs, st.floats(min_value=-20, max_value=80), st.floats(min_value=0, max_value=20))
def test_cdf_monotone(p, t, dt):
    assert p.cdf_at(t + dt) >= p.cdf_at(t) - 1e-12


@given(normalized_pmfs)
def test_cdf_bounded_by_finite_mass(p):
    assert p.cdf_at(1e9) <= p.finite_mass + 1e-12
    assert p.cdf_at(-1e9) == 0.0


@given(normalized_pmfs, st.floats(min_value=-20, max_value=80))
def test_cdf_plus_sf_is_total_mass(p, t):
    assert math.isclose(p.cdf_at(t) + p.sf_at(t), p.total_mass, abs_tol=1e-9)


@given(normalized_pmfs, st.floats(min_value=-10, max_value=60), st.floats(min_value=-20, max_value=80))
def test_truncation_is_one_sided_pessimism(p, horizon, t):
    """Truncation can only *reduce* a chance of success, never raise it —
    the property that makes bounded supports safe for pruning decisions."""
    q = p.truncate(horizon)
    assert q.cdf_at(t) <= p.cdf_at(t) + 1e-12


@given(tailless_pmfs)
def test_quantile_inverts_cdf(p):
    for q in (0.1, 0.5, 0.9):
        t = p.quantile(q)
        assert p.cdf_at(t) >= q - 1e-9


# ----------------------------------------------------------------------
# Histogram construction
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(min_value=0.1, max_value=500.0), min_size=1, max_size=200),
)
def test_from_samples_mass_and_support(samples):
    p = PMF.from_samples(samples)
    assert math.isclose(p.total_mass, 1.0, abs_tol=1e-9)
    assert p.min_time >= math.floor(min(samples))
    assert p.max_time <= math.floor(max(samples))


# ----------------------------------------------------------------------
# Grid-boundary tolerance: shift-chain invariance
# ----------------------------------------------------------------------
@given(
    normalized_pmfs,
    st.lists(
        st.floats(min_value=-8.0, max_value=8.0, allow_nan=False), min_size=1, max_size=6
    ),
    st.integers(min_value=-2, max_value=40),
)
def test_chance_invariant_under_equivalent_shift_chains(p, deltas, k):
    """Chance of success is invariant under algebraically-equivalent
    ``shift`` chains: applying the deltas one by one accumulates float
    error in the anchor, applying their (sequential) sum does not — yet
    grid-point queries must answer identically, because the pruning
    threshold comparison may not depend on how a PMF reached its anchor.
    """
    chained = p
    total = 0.0
    for d in deltas:
        chained = chained.shift(d)
        total += d
    direct = p.shift(total)
    # Probe on the chained anchor's grid and on the direct anchor's grid;
    # both views of the same algebraic distribution must agree.
    for t in (chained.offset + k, direct.offset + k):
        assert chained.cdf_at(t) == direct.cdf_at(t)
        assert chained.sf_at(t) == direct.sf_at(t)
    got = batch_cdf_at([chained, direct], [chained.offset + k, direct.offset + k])
    assert got[0] == got[1]


@given(st.floats(min_value=0.0, max_value=1000.0))
def test_delta_cdf_step(t):
    """The step is sharp *outside* the grid-boundary tolerance: queries
    within ``CDF_REL_EPS`` (relative) below the grid point count the bin
    (anchor float error must not flip chances), anything farther does
    not."""
    d = PMF.delta(t)
    assert d.cdf_at(t) == 1.0
    assert d.cdf_at(t - 1e-3) == 0.0
    assert d.cdf_at(t - 0.5 * CDF_REL_EPS * max(1.0, t)) == 1.0

"""Grid-boundary CDF tolerance, the buffer arena, and the fused convolve.

The ISSUE-4 bug class: anchors travel through chains of float additions
(zero-copy ``shift`` re-anchoring), so a deadline that is *algebraically*
on a grid point can land epsilon below it — and the pre-fix floor-indexed
CDF then silently dropped the whole bin, flipping tasks across the
pruning threshold β.  These tests pin the repro from the issue, the
relative-epsilon semantics on both scalar and batched queries, and the
bit-identity of the allocation-lean ``convolve_truncated`` hot path.
"""


import numpy as np
import pytest

from repro.stochastic.pmf import PMF, BufferArena, batch_cdf_at


class TestGridBoundaryTolerance:
    def test_issue_repro(self):
        """The exact repro from the issue: 1.2999999 vs the bin at 1.3."""
        p = PMF([0.5, 0.5], offset=0.3)
        assert p.cdf_at(1.2999999) == 1.0
        assert p.cdf_at(1.3) == 1.0

    def test_far_below_grid_point_still_excluded(self):
        p = PMF([0.5, 0.5], offset=0.3)
        assert p.cdf_at(1.2) == 0.5
        assert p.cdf_at(0.2) == 0.0

    def test_tolerance_is_relative(self):
        # At t ~ 1000 the absolute window is ~1000x wider than at t ~ 1.
        p = PMF([1.0], offset=1000.0)
        assert p.cdf_at(1000.0 - 5e-5) == 1.0  # within 1e-7 * 1000
        assert p.cdf_at(1000.0 - 1e-3) == 0.0  # outside

    def test_tolerance_capped_at_fraction_of_grid_unit(self):
        """The relative window must never swallow a bin: the grid spacing
        is a fixed 1 time unit, so at large clock values the tolerance
        saturates at ``CDF_TOL_CAP`` instead of growing with ``t``."""
        p = PMF([1.0], offset=1e7)
        assert p.cdf_at(1e7 - 0.9) == 0.0   # a relative-only window would say 1.0
        assert p.cdf_at(1e7 - 0.01) == 0.0
        assert p.cdf_at(1e7 - 1e-4) == 1.0  # inside the capped window
        q = PMF([0.5, 0.5], offset=1e6)
        assert q.cdf_at(1e6 + 0.95) == 0.5
        got = batch_cdf_at([p, p, q], [1e7 - 0.9, 1e7 - 1e-4, 1e6 + 0.95])
        assert got.tolist() == [0.0, 1.0, 0.5]

    def test_epsilon_above_grid_point_unchanged(self):
        """The tolerance only reaches *down*: nudging a deadline up must
        never lose the bin it already counted."""
        p = PMF([0.5, 0.5], offset=0.3)
        assert p.cdf_at(1.3 + 1e-9) == 1.0
        assert p.cdf_at(0.3 + 1e-9) == 0.5

    def test_batch_matches_scalar_at_boundaries(self):
        p = PMF([0.5, 0.5], offset=0.3)
        times = [1.2999999, 1.3, 1.2, 0.3, 0.29999995, 0.2, -1.0]
        got = batch_cdf_at([p] * len(times), times)
        want = [p.cdf_at(t) for t in times]
        assert got.tolist() == want
        assert got.tolist() == [1.0, 1.0, 0.5, 0.5, 0.5, 0.0, 0.0]

    def test_batch_exact_grid_points(self):
        """Deadlines exactly on grid points count their bin, shifted or not."""
        base = PMF([0.25, 0.25, 0.5], offset=2.0)
        shifted = base.shift(0.3).shift(0.7)  # anchor ~3.0 via float adds
        got = batch_cdf_at(
            [base, base, base, shifted], [2.0, 3.0, 4.0, shifted.offset + 1.0]
        )
        assert got.tolist() == [0.25, 0.5, 1.0, 0.5]

    def test_shared_cumulative_array_sees_tolerance(self):
        """Shifted copies share one cumulative array; the tolerance is in
        the index computation so every sharer gets boundary-safe answers."""
        p = PMF([0.5, 0.5], offset=0.0)
        cum = p.cumulative()
        q = p.shift(0.1).shift(0.2)  # anchor 0.1 + 0.2 via float adds
        assert q.cumulative() is cum
        assert q.cdf_at(p.offset + 0.1 + 0.2 + 1.0) == 1.0
        assert q.cdf_at(0.3 + 1.0 - 5e-8) == 1.0

    def test_chance_of_success_invariant_under_equivalent_shifts(self):
        """shift(0.3).shift(0.1) and shift(0.4) answer identically even
        though their anchors differ by float error."""
        p = PMF([0.2, 0.3, 0.5], offset=1.0)
        a = p.shift(0.3).shift(0.1)
        b = p.shift(0.4)
        for k in range(3):
            t = 1.4 + k
            assert a.cdf_at(t) == b.cdf_at(t)

    def test_quantile_roundtrip_through_boundary(self):
        p = PMF([0.5, 0.5], offset=0.3)
        t = p.quantile(0.5)
        assert p.cdf_at(t) >= 0.5


class TestBufferArena:
    def test_cumsum_values(self):
        arena = BufferArena(64)
        probs = np.array([0.1, 0.2, 0.3, 0.4])
        assert np.array_equal(arena.cumsum(probs), np.cumsum(probs))

    def test_views_are_disjoint(self):
        arena = BufferArena(64)
        a = arena.cumsum(np.ones(10))
        b = arena.cumsum(np.ones(10))
        b[:] = 7.0
        assert np.array_equal(a, np.arange(1.0, 11.0))

    def test_block_rollover(self):
        arena = BufferArena(16)
        views = [arena.take(10) for _ in range(5)]
        assert arena.blocks_allocated >= 3
        assert all(v.size == 10 for v in views)

    def test_oversized_request_gets_dedicated_buffer(self):
        arena = BufferArena(8)
        v = arena.take(100)
        assert v.size == 100

    def test_scratch_reuse_and_growth(self):
        arena = BufferArena()
        s1 = arena.scratch(10)
        s2 = arena.scratch(8)
        assert s1.base is s2.base  # same backing buffer reused
        s3 = arena.scratch(100_000)
        assert s3.size == 100_000

    def test_rejects_nonpositive_block(self):
        with pytest.raises(ValueError):
            BufferArena(0)


class TestConvolveTruncated:
    def _random_pmf(self, rng, tail_ok=True):
        probs = rng.random(int(rng.integers(1, 40)))
        tail = float(rng.random() * 0.2) if tail_ok and rng.random() < 0.4 else 0.0
        return PMF(probs / (probs.sum() + tail), offset=float(rng.normal() * 3), tail=tail)

    def test_bit_identical_to_reference(self):
        rng = np.random.default_rng(42)
        arena = BufferArena(1024)
        for _ in range(300):
            a = self._random_pmf(rng)
            b = self._random_pmf(rng)
            cutoff = float(rng.normal() * 20 + 10)
            max_support = int(rng.integers(4, 64))
            ref = a.convolve(b, max_support=max_support).truncate(cutoff)
            got = a.convolve_truncated(
                b, cutoff=cutoff, max_support=max_support, arena=arena
            )
            assert got.offset == ref.offset
            assert got.tail == ref.tail
            assert np.array_equal(got.probs, ref.probs)
            assert np.array_equal(got.cumulative(), ref.cumulative())

    def test_empty_operand(self):
        empty = PMF(np.zeros(0), 0.0, 1.0)
        p = PMF([1.0], offset=2.0)
        got = p.convolve_truncated(empty, cutoff=100.0)
        ref = p.convolve(empty).truncate(100.0)
        assert got.tail == ref.tail and got.probs.size == 0

    def test_everything_beyond_cutoff(self):
        a = PMF([0.5, 0.5], offset=10.0)
        b = PMF([1.0], offset=10.0)
        got = a.convolve_truncated(b, cutoff=5.0)
        ref = a.convolve(b).truncate(5.0)
        assert got.probs.size == 0 and got.tail == ref.tail

    def test_works_without_arena(self):
        a = PMF([0.5, 0.5])
        b = PMF([0.5, 0.5])
        got = a.convolve_truncated(b, cutoff=100.0)
        assert got.allclose(a.convolve(b), atol=0.0)

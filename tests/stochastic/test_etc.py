"""Tests for the deterministic ETC baseline matrix."""

import numpy as np
import pytest

from repro.stochastic.etc import ETCMatrix
from repro.stochastic.pet import generate_pet_matrix


class TestETC:
    def test_from_pet_copies_means(self):
        pet = generate_pet_matrix(3, 2, seed=4)
        etc = ETCMatrix.from_pet(pet)
        np.testing.assert_allclose(etc.means, pet.means)
        etc.means[0, 0] = 999.0
        assert pet.means[0, 0] != 999.0  # independent copy

    def test_dimensions(self):
        etc = ETCMatrix(np.ones((5, 3)))
        assert etc.num_task_types == 5
        assert etc.num_machine_types == 3

    def test_pmf_is_delta_at_mean(self):
        etc = ETCMatrix(np.array([[4.0, 7.0]]))
        p = etc.pmf(0, 1)
        assert p.support_size == 1
        assert p.mean() == pytest.approx(7.0)

    def test_pmf_cached(self):
        etc = ETCMatrix(np.array([[4.0]]))
        assert etc.pmf(0, 0) is etc.pmf(0, 0)

    def test_chance_degenerates_to_step(self):
        """The ETC ablation's point: chance of success is 0/1."""
        etc = ETCMatrix(np.array([[5.0]]))
        p = etc.pmf(0, 0)
        assert p.cdf_at(4.99) == 0.0
        assert p.cdf_at(5.0) == 1.0

    def test_type_and_overall_means(self):
        etc = ETCMatrix(np.array([[2.0, 4.0], [6.0, 8.0]]))
        assert etc.type_mean(0) == pytest.approx(3.0)
        assert etc.overall_mean() == pytest.approx(5.0)

    def test_best_machines(self):
        etc = ETCMatrix(np.array([[3.0, 1.0, 2.0]]))
        np.testing.assert_array_equal(etc.best_machines(0), [1, 2, 0])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ETCMatrix(np.ones(3))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ETCMatrix(np.array([[1.0, 0.0]]))

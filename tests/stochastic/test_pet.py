"""Tests for PET matrix generation (§V-B recipe)."""

import numpy as np
import pytest

from repro.stochastic.pet import (
    PAPER_NUM_MACHINE_TYPES,
    PAPER_NUM_TASK_TYPES,
    PETMatrix,
    generate_pet_matrix,
)
from repro.stochastic.pmf import PMF


class TestGeneration:
    def test_paper_dimensions(self):
        pet = generate_pet_matrix(seed=0)
        assert pet.num_task_types == PAPER_NUM_TASK_TYPES == 12
        assert pet.num_machine_types == PAPER_NUM_MACHINE_TYPES == 8
        assert pet.means.shape == (12, 8)

    def test_deterministic_by_seed(self):
        a = generate_pet_matrix(3, 2, seed=5)
        b = generate_pet_matrix(3, 2, seed=5)
        np.testing.assert_allclose(a.means, b.means)
        assert a.pmf(1, 1).allclose(b.pmf(1, 1))

    def test_different_seeds_differ(self):
        a = generate_pet_matrix(3, 2, seed=5)
        b = generate_pet_matrix(3, 2, seed=6)
        assert not np.allclose(a.means, b.means)

    def test_cells_are_normalized_pmfs(self):
        pet = generate_pet_matrix(4, 3, seed=1)
        for t in range(4):
            for m in range(3):
                assert pet.pmf(t, m).total_mass == pytest.approx(1.0)

    def test_execution_times_at_least_one(self):
        pet = generate_pet_matrix(4, 3, seed=1, mean_range=(1.0, 3.0))
        for t in range(4):
            for m in range(3):
                assert pet.pmf(t, m).min_time >= 1.0

    def test_means_in_plausible_range(self):
        pet = generate_pet_matrix(6, 4, seed=2, mean_range=(10.0, 20.0))
        # Histogram flooring biases down ~0.5; gamma sampling adds noise.
        assert pet.means.min() > 5.0
        assert pet.means.max() < 40.0

    def test_invalid_mean_range(self):
        with pytest.raises(ValueError):
            generate_pet_matrix(2, 2, seed=0, mean_range=(0.0, 5.0))
        with pytest.raises(ValueError):
            generate_pet_matrix(2, 2, seed=0, mean_range=(5.0, 1.0))

    def test_unknown_heterogeneity(self):
        with pytest.raises(ValueError, match="heterogeneity"):
            generate_pet_matrix(2, 2, seed=0, heterogeneity="bogus")


class TestHeterogeneityKinds:
    def test_inconsistent_has_affinity_inversions(self):
        """Some pair of machines must disagree on which is faster across
        task types — the definition of inconsistent heterogeneity."""
        pet = generate_pet_matrix(seed=3, heterogeneity="inconsistent")
        best = np.argmin(pet.means, axis=1)
        assert len(set(best.tolist())) > 1

    def test_consistent_machine_order_mostly_uniform(self):
        """Consistent heterogeneity: machine speed order is (near-)uniform
        across task types.  Histogram sampling noise can flip near-ties,
        so we check rank correlation rather than exact equality."""
        pet = generate_pet_matrix(seed=3, heterogeneity="consistent")
        ranks = np.argsort(np.argsort(pet.means, axis=1), axis=1).astype(float)
        base = ranks[0]
        corrs = [np.corrcoef(base, row)[0, 1] for row in ranks[1:]]
        assert np.mean(corrs) > 0.8

    def test_homogeneous_columns_identical(self):
        pet = generate_pet_matrix(seed=3, heterogeneity="homogeneous")
        assert pet.is_homogeneous()
        np.testing.assert_allclose(
            pet.means, np.repeat(pet.means[:, [0]], pet.num_machine_types, axis=1)
        )

    def test_inconsistent_not_homogeneous(self):
        pet = generate_pet_matrix(seed=3)
        assert not pet.is_homogeneous()


class TestAccessors:
    @pytest.fixture(scope="class")
    def pet(self):
        return generate_pet_matrix(4, 3, seed=11)

    def test_mean_matches_pmf_mean(self, pet):
        for t in range(4):
            for m in range(3):
                assert pet.mean(t, m) == pytest.approx(pet.pmf(t, m).mean())

    def test_type_mean(self, pet):
        assert pet.type_mean(2) == pytest.approx(pet.means[2].mean())

    def test_overall_mean(self, pet):
        assert pet.overall_mean() == pytest.approx(pet.means.mean())

    def test_best_machines_sorted(self, pet):
        for t in range(4):
            order = pet.best_machines(t)
            means = pet.means[t][order]
            assert np.all(np.diff(means) >= 0)

    def test_restricted_to_machines(self, pet):
        sub = pet.restricted_to_machines([2, 0])
        assert sub.num_machine_types == 2
        assert sub.mean(1, 0) == pet.mean(1, 2)
        assert sub.mean(1, 1) == pet.mean(1, 0)

    def test_sample_execution_positive_and_on_support(self, pet, rng):
        for _ in range(50):
            v = pet.sample_execution(1, 1, rng)
            assert v > 0
            cell = pet.pmf(1, 1)
            assert cell.min_time <= v <= cell.max_time


class TestValidation:
    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            PETMatrix([])

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            PETMatrix([[PMF.delta(1), PMF.delta(2)], [PMF.delta(3)]])

    def test_means_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="means shape"):
            PETMatrix([[PMF.delta(1)]], means=np.ones((2, 2)))

    def test_means_autocomputed(self):
        pet = PETMatrix([[PMF.delta(4.0), PMF.delta(6.0)]])
        np.testing.assert_allclose(pet.means, [[4.0, 6.0]])


class TestFreeze:
    def test_means_read_only(self):
        pet = generate_pet_matrix(3, 2, seed=5).freeze()
        with pytest.raises(ValueError):
            pet.means[0, 0] = 99.0

    def test_rows_immutable(self):
        pet = generate_pet_matrix(3, 2, seed=5).freeze()
        assert isinstance(pet.pmfs, tuple)
        with pytest.raises((AttributeError, TypeError)):
            pet.pmfs[0].append(PMF.delta(1.0))

    def test_cell_probability_arrays_read_only(self):
        """The shared-matrix guarantee must reach the PMFs themselves —
        a writable probs array would corrupt later experiments (and,
        via the result cache, persist the corruption to disk)."""
        pet = generate_pet_matrix(3, 2, seed=5).freeze()
        with pytest.raises(ValueError):
            pet.pmf(0, 0).probs[0] = 0.0
        # frozen cells still convolve/sample (results are new arrays)
        out = pet.pmf(0, 0) * pet.pmf(1, 1)
        assert out.probs.flags.writeable

    def test_freeze_returns_self_and_reads_still_work(self):
        pet = generate_pet_matrix(3, 2, seed=5)
        assert pet.freeze() is pet
        assert pet.mean(0, 0) > 0
        assert pet.pmf(2, 1).total_mass > 0
        assert list(pet.best_machines(0)) == sorted(
            range(2), key=lambda m: pet.mean(0, m)
        )

    def test_restricted_copy_of_frozen_is_writable(self):
        pet = generate_pet_matrix(3, 2, seed=5).freeze()
        original = pet.mean(0, 0)
        sub = pet.restricted_to_machines([0])
        sub.means[0, 0] = -1.0  # the copy is independent
        assert pet.mean(0, 0) == original

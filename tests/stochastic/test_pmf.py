"""Unit tests for the PMF algebra (Eq. 1 / Eq. 2 substrate)."""

import math

import numpy as np
import pytest

from repro.stochastic.pmf import PMF


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
class TestConstruction:
    def test_basic(self):
        p = PMF([0.25, 0.5, 0.25], offset=3)
        assert p.offset == 3
        assert p.support_size == 3
        assert p.total_mass == pytest.approx(1.0)

    def test_trims_leading_and_trailing_zeros(self):
        p = PMF([0.0, 0.0, 0.5, 0.5, 0.0], offset=1)
        assert p.offset == 3
        assert p.support_size == 2

    def test_all_zero_probs_gives_empty_support(self):
        p = PMF([0.0, 0.0], offset=5, tail=1.0)
        assert p.support_size == 0
        assert p.tail == 1.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            PMF(np.ones((2, 2)))

    def test_rejects_negative_tail(self):
        with pytest.raises(ValueError, match="tail"):
            PMF([1.0], tail=-0.5)

    def test_validate_flags_unnormalized(self):
        with pytest.raises(ValueError, match="mass"):
            PMF([0.25, 0.25], validate=True)

    def test_validate_accepts_normalized(self):
        PMF([0.5, 0.5], validate=True)

    def test_fractional_offset_allowed(self):
        p = PMF([1.0], offset=2.5)
        assert p.min_time == 2.5

    def test_delta(self):
        d = PMF.delta(7.0)
        assert d.support_size == 1
        assert d.cdf_at(7.0) == pytest.approx(1.0)
        assert d.cdf_at(6.99) == 0.0
        assert d.mean() == pytest.approx(7.0)

    def test_from_dict(self):
        p = PMF.from_dict({2: 0.5, 4: 0.5})
        assert p.offset == 2
        assert p.probs[0] == pytest.approx(0.5)
        assert p.probs[1] == 0.0
        assert p.probs[2] == pytest.approx(0.5)

    def test_from_dict_off_grid_rejected(self):
        with pytest.raises(ValueError, match="unit grid"):
            PMF.from_dict({2.0: 0.5, 3.5: 0.5})

    def test_from_dict_empty(self):
        p = PMF.from_dict({})
        assert p.is_empty


class TestFromSamples:
    def test_histogram_mass(self, rng):
        samples = rng.gamma(4.0, 2.0, size=500)
        p = PMF.from_samples(samples)
        assert p.total_mass == pytest.approx(1.0)
        assert p.tail == 0.0

    def test_mean_close_to_sample_mean(self, rng):
        samples = rng.gamma(9.0, 2.0, size=4000)
        p = PMF.from_samples(samples)
        # Flooring onto the grid biases the mean down by ~0.5.
        assert p.mean() == pytest.approx(samples.mean() - 0.5, abs=0.25)

    def test_min_value_clip(self):
        p = PMF.from_samples([0.1, 0.2, 5.0], min_value=1.0)
        assert p.min_time >= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero samples"):
            PMF.from_samples([])

    def test_bad_bin_width(self):
        with pytest.raises(ValueError, match="bin_width"):
            PMF.from_samples([1.0], bin_width=0.0)

    def test_bin_width_scales_grid(self):
        p = PMF.from_samples([10.0, 20.0], bin_width=10.0)
        assert p.offset == 1.0
        assert p.support_size == 2


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
class TestStatistics:
    def test_cdf_steps(self):
        p = PMF([0.2, 0.3, 0.5], offset=10)
        assert p.cdf_at(9.99) == 0.0
        assert p.cdf_at(10.0) == pytest.approx(0.2)
        assert p.cdf_at(11.7) == pytest.approx(0.5)
        assert p.cdf_at(12.0) == pytest.approx(1.0)
        assert p.cdf_at(1e9) == pytest.approx(1.0)

    def test_cdf_excludes_tail(self):
        p = PMF([0.6], offset=0, tail=0.4)
        assert p.cdf_at(100.0) == pytest.approx(0.6)

    def test_sf_includes_tail(self):
        p = PMF([0.6], offset=0, tail=0.4)
        assert p.sf_at(0.0) == pytest.approx(0.4)
        assert p.sf_at(-1.0) == pytest.approx(1.0)

    def test_mean_inf_with_tail(self):
        assert PMF([0.9], tail=0.1).mean() == math.inf

    def test_finite_mean_conditions_out_tail(self):
        p = PMF([0.45, 0.45], offset=2, tail=0.1)
        assert p.finite_mean() == pytest.approx(2.5)

    def test_variance(self):
        p = PMF([0.5, 0.5], offset=0)  # values 0, 1
        assert p.variance() == pytest.approx(0.25)

    def test_quantile(self):
        p = PMF([0.25, 0.25, 0.5], offset=4)
        assert p.quantile(0.2) == 4
        assert p.quantile(0.5) == 5
        assert p.quantile(1.0) == 6

    def test_quantile_in_tail_is_inf(self):
        p = PMF([0.5], offset=0, tail=0.5)
        assert p.quantile(0.9) == math.inf

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            PMF([1.0]).quantile(1.5)

    def test_times(self):
        p = PMF([0.5, 0.5], offset=3)
        np.testing.assert_allclose(p.times(), [3.0, 4.0])


# ----------------------------------------------------------------------
# Transformations
# ----------------------------------------------------------------------
class TestTransforms:
    def test_shift(self):
        p = PMF([0.5, 0.5], offset=1).shift(4.0)
        assert p.offset == 5.0
        assert p.mean() == pytest.approx(5.5)

    def test_normalized(self):
        p = PMF([0.2, 0.2], tail=0.1).normalized()
        assert p.total_mass == pytest.approx(1.0)
        assert p.tail == pytest.approx(0.2)

    def test_normalize_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            PMF([0.0]).normalized()

    def test_truncate_folds_overflow_into_tail(self):
        p = PMF([0.25, 0.25, 0.25, 0.25], offset=0).truncate(1.0)
        assert p.support_size == 2
        assert p.tail == pytest.approx(0.5)
        assert p.total_mass == pytest.approx(1.0)

    def test_truncate_noop_when_within_horizon(self):
        p = PMF([0.5, 0.5], offset=0)
        assert p.truncate(10.0) is p

    def test_truncate_everything(self):
        p = PMF([0.5, 0.5], offset=5).truncate(1.0)
        assert p.support_size == 0
        assert p.tail == pytest.approx(1.0)

    def test_condition_at_least_noop_below_support(self):
        p = PMF([0.5, 0.5], offset=10)
        assert p.condition_at_least(3.0) is p

    def test_condition_at_least_renormalizes(self):
        p = PMF([0.25, 0.25, 0.5], offset=0)
        q = p.condition_at_least(1.0)
        assert q.total_mass == pytest.approx(1.0)
        assert q.min_time >= 1.0
        assert q.probs[0] == pytest.approx(0.25 / 0.75)

    def test_condition_past_support_collapses_to_delta(self):
        p = PMF([0.5, 0.5], offset=0)
        q = p.condition_at_least(5.0)
        assert q.support_size == 1
        assert q.min_time == 5.0

    def test_condition_preserves_tail_ratio(self):
        p = PMF([0.4, 0.4], offset=0, tail=0.2)
        q = p.condition_at_least(1.0)
        # kept finite mass 0.4, tail 0.2 → renormalized tail = 1/3
        assert q.tail == pytest.approx(0.2 / 0.6)
        assert q.total_mass == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Convolution — Eq. 1
# ----------------------------------------------------------------------
class TestConvolve:
    def test_delta_identity(self):
        p = PMF([0.3, 0.7], offset=2)
        q = p.convolve(PMF.delta(0.0))
        assert q.allclose(p)

    def test_delta_shift(self):
        p = PMF([0.3, 0.7], offset=2)
        q = p.convolve(PMF.delta(5.0))
        assert q.offset == 7.0
        np.testing.assert_allclose(q.probs, p.probs)

    def test_two_coin_flips(self):
        coin = PMF([0.5, 0.5], offset=0)
        s = coin.convolve(coin)
        np.testing.assert_allclose(s.probs, [0.25, 0.5, 0.25])

    def test_mean_additive(self):
        a = PMF([0.2, 0.8], offset=1)
        b = PMF([0.6, 0.4], offset=3)
        assert a.convolve(b).mean() == pytest.approx(a.mean() + b.mean())

    def test_offsets_add(self):
        a = PMF([1.0], offset=2.5)
        b = PMF([1.0], offset=4.0)
        assert a.convolve(b).offset == 6.5

    def test_commutative(self):
        a = PMF([0.2, 0.3, 0.5], offset=1)
        b = PMF([0.9, 0.1], offset=0)
        assert a.convolve(b).allclose(b.convolve(a))

    def test_mul_operator_is_convolution(self):
        a = PMF([0.5, 0.5])
        assert (a * a).allclose(a.convolve(a))

    def test_mul_with_non_pmf(self):
        with pytest.raises(TypeError):
            PMF([1.0]).__mul__(3)  # NotImplemented → TypeError via operator
            _ = PMF([1.0]) * 3

    def test_tail_is_absorbing(self):
        a = PMF([0.5], offset=0, tail=0.5)
        b = PMF([0.5], offset=0, tail=0.5)
        c = a.convolve(b)
        assert c.tail == pytest.approx(0.75)
        assert c.finite_mass == pytest.approx(0.25)
        assert c.total_mass == pytest.approx(1.0)

    def test_max_support_overflow_to_tail(self):
        long = PMF(np.full(100, 0.01), offset=0)
        out = long.convolve(long, max_support=50)
        assert out.support_size <= 50
        assert out.total_mass == pytest.approx(1.0)
        assert out.tail > 0

    def test_empty_operand(self):
        a = PMF([0.5], offset=0, tail=0.5)
        empty = PMF([], offset=3, tail=1.0)
        out = a.convolve(empty)
        assert out.support_size == 0
        assert out.tail == pytest.approx(1.0)

    def test_fig2_worked_example(self):
        """The exact convolution of the paper's Fig. 2.

        PET of task i: P(1)=.125, P(2)=.75, P(3)=.125
        PCT of last task on machine j: P(4)=.17, P(5)=.33, P(6)=.50
        Result: P(5)=.02, P(6)=.17, P(7)=.33, P(8)=.42, P(9)=.06
        (the figure rounds to two decimals).
        """
        pet = PMF.from_dict({1: 0.125, 2: 0.75, 3: 0.125})
        pct_last = PMF.from_dict({4: 0.17, 5: 0.33, 6: 0.50})
        pct = pet.convolve(pct_last)
        assert pct.min_time == 5
        assert pct.max_time == 9
        expected = {5: 0.02, 6: 0.17, 7: 0.33, 8: 0.42, 9: 0.06}
        for t, want in expected.items():
            got = float(pct.probs[int(t - pct.offset)])
            assert got == pytest.approx(want, abs=0.006), (t, got, want)
        assert pct.total_mass == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Sampling and comparison
# ----------------------------------------------------------------------
class TestSampling:
    def test_sample_within_support(self, rng):
        p = PMF([0.25, 0.5, 0.25], offset=10)
        vals = p.sample(rng, size=500)
        assert set(np.unique(vals)) <= {10.0, 11.0, 12.0}

    def test_sample_scalar(self, rng):
        assert PMF.delta(4.0).sample(rng) == 4.0

    def test_sample_tail_maps_to_inf(self, rng):
        p = PMF([0.01], offset=0, tail=0.99)
        vals = p.sample(rng, size=200)
        assert np.isinf(vals).sum() > 100

    def test_sample_frequencies(self, rng):
        p = PMF([0.2, 0.8], offset=0)
        vals = p.sample(rng, size=20_000)
        assert (vals == 1.0).mean() == pytest.approx(0.8, abs=0.02)

    def test_sample_zero_mass_rejected(self, rng):
        with pytest.raises(ValueError):
            PMF([0.0]).sample(rng)


class TestAllclose:
    def test_equal(self):
        assert PMF([0.5, 0.5], offset=1).allclose(PMF([0.5, 0.5], offset=1))

    def test_different_offset(self):
        assert not PMF([1.0], offset=0).allclose(PMF([1.0], offset=1))

    def test_different_tail(self):
        assert not PMF([0.5], tail=0.5).allclose(PMF([0.5], tail=0.4))

    def test_both_empty(self):
        assert PMF([], tail=1.0).allclose(PMF([], offset=9, tail=1.0))

    def test_one_empty(self):
        assert not PMF([], tail=1.0).allclose(PMF([1.0]))

    def test_different_support_size(self):
        assert not PMF([0.5, 0.5]).allclose(PMF([1.0]))

"""PMF edge cases: fractional anchors, tail conservation, grid boundaries.

These pin the exact floating-point contracts the incremental estimation
layer builds on: zero-copy shifting, cumulative-sum sharing, truncation
folding mass into the tail without losing any, and conditioning behavior
exactly on grid points.
"""


import numpy as np
import pytest

from repro.stochastic.pmf import PMF, batch_cdf_at


class TestFractionalOffsets:
    def test_shift_by_fraction_keeps_grid_spacing(self):
        p = PMF.from_dict({2: 0.5, 4: 0.5})
        q = p.shift(0.25)
        assert q.offset == 2.25
        assert np.array_equal(q.times(), [2.25, 3.25, 4.25])  # unit grid kept

    def test_shift_is_zero_copy(self):
        p = PMF.from_dict({2: 0.5, 4: 0.5})
        q = p.shift(1.5)
        assert q.probs is p.probs

    def test_shift_zero_returns_self(self):
        p = PMF.from_dict({2: 0.5, 4: 0.5})
        assert p.shift(0.0) is p

    def test_shift_shares_cumulative(self):
        p = PMF.from_dict({2: 0.5, 4: 0.5})
        cum = p.cumulative()
        assert p.shift(3.0).cumulative() is cum

    def test_fractional_offsets_add_through_convolve(self):
        a = PMF.from_dict({1: 0.5, 2: 0.5}).shift(0.3)
        b = PMF.from_dict({2: 1.0}).shift(0.4)
        c = a.convolve(b)
        assert c.offset == pytest.approx((1 + 0.3) + (2 + 0.4))
        # Mass is untouched by anchoring.
        assert c.finite_mass == pytest.approx(1.0)

    def test_cdf_between_fractional_grid_points(self):
        p = PMF.from_dict({0: 0.25, 1: 0.75}).shift(0.5)
        # grid at 0.5 and 1.5
        assert p.cdf_at(0.49) == 0.0
        assert p.cdf_at(0.5) == pytest.approx(0.25)
        assert p.cdf_at(1.49) == pytest.approx(0.25)
        assert p.cdf_at(1.5) == pytest.approx(1.0)

    def test_shift_roundtrip_preserves_cdf(self):
        p = PMF.from_dict({3: 0.2, 5: 0.8})
        q = p.shift(7.25).shift(-7.25)
        for t in (2.9, 3.0, 4.0, 5.0, 9.0):
            assert q.cdf_at(t) == pytest.approx(p.cdf_at(t))


class TestTailConservation:
    def test_truncate_conserves_total_mass(self):
        rng = np.random.default_rng(3)
        p = PMF.from_samples(rng.gamma(4.0, 3.0, size=500))
        for horizon in (p.min_time, p.min_time + 5, p.max_time - 1, p.max_time):
            t = p.truncate(horizon)
            assert t.total_mass == pytest.approx(p.total_mass, abs=1e-12)
            assert t.max_time <= horizon

    def test_truncate_below_support_moves_everything_to_tail(self):
        p = PMF.from_dict({10: 0.5, 12: 0.5}, tail=0.25)
        t = p.truncate(5.0)
        assert t.support_size == 0
        assert t.tail == pytest.approx(1.25)

    def test_truncate_is_identity_when_within_horizon(self):
        p = PMF.from_dict({1: 0.5, 2: 0.5})
        assert p.truncate(100.0) is p

    def test_convolve_tail_absorbs(self):
        a = PMF.from_dict({1: 0.9}, tail=0.1)
        b = PMF.from_dict({2: 0.8}, tail=0.2)
        c = a.convolve(b)
        # P(both finite) lands on the grid; everything else is tail.
        assert c.finite_mass == pytest.approx(0.72)
        assert c.tail == pytest.approx(1.0 - 0.72)
        assert c.total_mass == pytest.approx(1.0)

    def test_max_support_overflow_folds_into_tail(self):
        a = PMF(np.full(100, 0.01))
        b = PMF(np.full(100, 0.01))
        c = a.convolve(b, max_support=50)
        assert c.support_size <= 50
        assert c.total_mass == pytest.approx(1.0)
        assert c.tail > 0.0


class TestConditionOnGridPoint:
    def test_condition_exactly_on_support_point_keeps_it(self):
        p = PMF.from_dict({4: 0.5, 8: 0.5})
        c = p.condition_at_least(4.0)
        # X >= 4 keeps the mass at 4 itself.
        assert c.min_time == 4.0
        assert c.probs[0] == pytest.approx(0.5)
        assert c.total_mass == pytest.approx(1.0)

    def test_condition_epsilon_past_grid_point_drops_it(self):
        p = PMF.from_dict({4: 0.5, 8: 0.5})
        c = p.condition_at_least(4.0 + 1e-9)
        assert c.min_time == 8.0
        assert c.probs[0] == pytest.approx(1.0)

    def test_condition_past_support_collapses_to_delta(self):
        p = PMF.from_dict({4: 1.0})
        c = p.condition_at_least(9.0)
        assert c.support_size == 1
        assert c.min_time == 9.0

    def test_condition_renormalizes_with_tail(self):
        p = PMF.from_dict({4: 0.25, 8: 0.25}, tail=0.5)
        c = p.condition_at_least(5.0)
        assert c.cdf_at(8.0) == pytest.approx(0.25 / 0.75)
        assert c.tail == pytest.approx(0.5 / 0.75)


class TestBatchCdf:
    def test_matches_pointwise(self):
        rng = np.random.default_rng(11)
        pmfs = [PMF.from_samples(rng.gamma(3.0, s, size=200)) for s in (1.0, 2.0, 5.0)]
        pmfs.append(PMF.from_dict({}, tail=1.0))  # empty finite support
        pmfs.append(PMF.delta(7.0).shift(0.5))
        times = [4.0, 3.5, 100.0, 2.0, 7.5]
        got = batch_cdf_at(pmfs, times)
        for pmf, t, g in zip(pmfs, times, got):
            assert g == pmf.cdf_at(t)

    def test_scalar_time_broadcasts(self):
        pmfs = [PMF.delta(1.0), PMF.delta(2.0), PMF.delta(3.0)]
        got = batch_cdf_at(pmfs, 2.0)
        assert got.tolist() == [1.0, 1.0, 0.0]

    def test_empty_batch(self):
        assert batch_cdf_at([], []).shape == (0,)

    def test_before_support_is_zero(self):
        got = batch_cdf_at([PMF.from_dict({5: 1.0})], [4.999])
        assert got[0] == 0.0

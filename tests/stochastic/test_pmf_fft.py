"""Property-based tests (hypothesis) for the tensorized convolution core.

Three contracts from the ISSUE-6 tentpole:

* :func:`convolve_probs` gives the same answer under ``method="fft"``
  and ``method="direct"`` (to float round-off), the ``"auto"`` crossover
  is bit-identical to direct below the size thresholds, and the FFT
  output is clipped non-negative;
* the correlate fast path in :meth:`PMF.convolve_truncated` relies on
  ``np.correlate(a, b[::-1], "full")`` being *bitwise* equal to
  ``np.convolve(a, b)`` whenever ``a.size >= b.size`` — that invariant
  is pinned here so a numpy upgrade that breaks it fails loudly;
* :class:`PMFStack` operations are row-wise equivalent to the scalar
  :class:`PMF` ops they vectorize, including the ``CDF_REL_EPS``
  grid-boundary tolerance of :meth:`PMFStack.batch_cdf_at`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.pmf import (
    CDF_REL_EPS,
    FFT_MIN_OPS,
    FFT_MIN_TAPS,
    PMF,
    PMFStack,
    convolve_probs,
)

try:
    from scipy.signal import fftconvolve  # noqa: F401

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    HAVE_SCIPY = False

needs_scipy = pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not installed")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def prob_arrays(draw, min_size=1, max_size=64, dtype=np.float64):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    weights = draw(
        st.lists(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        ).filter(lambda w: sum(w) > 1e-6)
    )
    arr = np.asarray(weights, dtype=dtype)
    return arr / arr.sum()


@st.composite
def pmfs(draw, max_support=12, allow_tail=True):
    # Weights exactly-zero-or->=1e-6 so endpoint products never underflow
    # (underflow would legitimately trim the support and change shapes).
    arr = draw(prob_arrays(max_size=max_support))
    offset = draw(st.integers(min_value=-5, max_value=30))
    tail_frac = draw(st.floats(min_value=0.0, max_value=0.5)) if allow_tail else 0.0
    return PMF(arr * (1.0 - tail_frac), offset=float(offset), tail=tail_frac)


# ----------------------------------------------------------------------
# convolve_probs: FFT vs direct
# ----------------------------------------------------------------------
@needs_scipy
@given(prob_arrays(), prob_arrays())
def test_fft_matches_direct(a, b):
    direct = convolve_probs(a, b, method="direct")
    fft = convolve_probs(a, b, method="fft")
    assert fft.shape == direct.shape
    np.testing.assert_allclose(fft, direct, rtol=0.0, atol=1e-12)
    assert (fft >= 0.0).all()  # round-off negatives are clipped


@given(prob_arrays(), prob_arrays())
def test_auto_below_crossover_is_bitwise_direct(a, b):
    """Small supports (every simulator-path size) must stay on the exact
    direct path: auto == direct bit-for-bit, no FFT round-off leaks in."""
    assert a.size < FFT_MIN_TAPS and b.size < FFT_MIN_TAPS
    auto = convolve_probs(a, b, method="auto")
    direct = convolve_probs(a, b, method="direct")
    assert np.array_equal(auto, direct)


@needs_scipy
@pytest.mark.parametrize("n", [FFT_MIN_TAPS, 1024, 2048])
def test_auto_above_crossover_uses_fft(n):
    """At/above the crossover, auto takes the FFT path (same values as
    forcing fft) and still agrees with direct to round-off."""
    m = max(n, -(-FFT_MIN_OPS // n))  # ensure n * m >= FFT_MIN_OPS
    rng = np.random.default_rng(7)
    a = rng.random(n)
    a /= a.sum()
    b = rng.random(m)
    b /= b.sum()
    auto = convolve_probs(a, b, method="auto")
    assert np.array_equal(auto, convolve_probs(a, b, method="fft"))
    np.testing.assert_allclose(
        auto, convolve_probs(a, b, method="direct"), rtol=0.0, atol=1e-12
    )


@needs_scipy
def test_fft_matches_direct_float32():
    rng = np.random.default_rng(11)
    a = rng.random(300).astype(np.float32)
    b = rng.random(400).astype(np.float32)
    a /= a.sum()
    b /= b.sum()
    direct = convolve_probs(a, b, method="direct")
    fft = convolve_probs(a, b, method="fft")
    np.testing.assert_allclose(fft, direct, rtol=0.0, atol=1e-5)


@needs_scipy
@given(pmfs(allow_tail=False), pmfs(allow_tail=False))
def test_pmf_convolve_unaffected_by_fft_availability(a, b):
    """Simulator-sized convolutions never reach the FFT crossover, so
    PMF.convolve equals an explicitly-direct reference bitwise."""
    ref = PMF(
        convolve_probs(a.probs, b.probs, method="direct"), a.offset + b.offset, 0.0
    )
    out = a.convolve(b)
    assert np.array_equal(out.probs, ref.probs)
    assert out.offset == ref.offset


# ----------------------------------------------------------------------
# The correlate fast-path invariant (PMF.convolve_truncated)
# ----------------------------------------------------------------------
@given(prob_arrays(min_size=2), prob_arrays(min_size=2))
def test_correlate_is_bitwise_convolve_when_signal_at_least_kernel(a, b):
    """``convolve_truncated`` phrases the direct path as a correlation
    against the cached reversed PET — valid only for a.size >= b.size
    (numpy swaps shorter-signal operands internally, changing summation
    order and hence the last ulp)."""
    if a.size < b.size:
        a, b = b, a
    via_correlate = np.correlate(a, np.ascontiguousarray(b[::-1]), "full")
    assert np.array_equal(via_correlate, np.convolve(a, b))


@given(pmfs(), pmfs(), st.floats(min_value=0.0, max_value=80.0))
def test_convolve_truncated_bitwise_equals_reference(a, b, cutoff):
    """The fused hot path (correlate + _finish_conv) must be bit-identical
    to convolve-then-truncate, both operand orders."""
    for x, y in ((a, b), (b, a)):
        ref = x.convolve(y).truncate(cutoff)
        out = x.convolve_truncated(y, cutoff=cutoff)
        assert np.array_equal(out.probs, ref.probs)
        assert out.offset == ref.offset
        assert out.tail == ref.tail


# ----------------------------------------------------------------------
# PMFStack row-wise equivalence
# ----------------------------------------------------------------------
@given(st.lists(pmfs(), min_size=1, max_size=6))
def test_stack_roundtrips_rows(rows):
    stack = PMFStack.from_pmfs(rows)
    assert len(stack) == len(rows)
    for i, p in enumerate(rows):
        q = stack.row(i)
        assert np.array_equal(q.probs, p.probs)
        assert q.offset == p.offset
        assert q.tail == p.tail


@given(st.lists(pmfs(), min_size=1, max_size=6), pmfs())
def test_stack_convolve_matches_scalar_rows(rows, kernel):
    stacked = PMFStack.from_pmfs(rows).convolve(kernel)
    for i, p in enumerate(rows):
        ref = p.convolve(kernel)
        got = stacked.row(i)
        np.testing.assert_allclose(got.probs, ref.probs, rtol=0.0, atol=1e-12)
        assert got.offset == ref.offset
        assert got.tail == pytest.approx(ref.tail, abs=1e-12)


@given(
    st.lists(pmfs(), min_size=1, max_size=6),
    st.floats(min_value=-10.0, max_value=60.0),
)
def test_stack_batch_cdf_matches_scalar(rows, t):
    stack = PMFStack.from_pmfs(rows)
    got = stack.batch_cdf_at(t)
    for i, p in enumerate(rows):
        assert got[i] == pytest.approx(p.cdf_at(t), abs=1e-12)


@given(st.lists(pmfs(), min_size=1, max_size=6), st.integers(min_value=0, max_value=11))
def test_stack_batch_cdf_grid_boundary(rows, k):
    """The CDF_REL_EPS boundary contract (PR 4): a query an ulp below a
    grid point still counts that bin, identically in stacked and scalar
    form.  Probe a few ulps below each row's k-th grid point."""
    stack = PMFStack.from_pmfs(rows)
    for steps in (1, 3):
        times = np.empty(len(rows))
        for i, p in enumerate(rows):
            g = p.offset + min(k, max(p.probs.size - 1, 0))
            t = g
            for _ in range(steps):
                t = np.nextafter(t, -np.inf)
            times[i] = t
        got = stack.batch_cdf_at(times)
        for i, p in enumerate(rows):
            scalar = p.cdf_at(float(times[i]))
            assert got[i] == pytest.approx(scalar, abs=1e-15)
            # The tolerance really fires: a few ulps is far inside
            # CDF_REL_EPS * max(1, |t|), so the bin at g is included.
            if p.probs.size:
                assert scalar >= float(p.probs[: min(k, p.probs.size - 1) + 1].sum()) - 1e-12


@needs_scipy
@settings(max_examples=25)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=2**31 - 1))
def test_stack_fft_convolve_matches_direct(n_rows, seed):
    """Stack-level FFT (axes=1) agrees with the row loop to round-off and
    never emits negative mass."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_rows):
        arr = rng.random(rng.integers(8, 40))
        rows.append(PMF(arr / arr.sum(), float(rng.integers(0, 10))))
    karr = rng.random(16)
    kernel = PMF(karr / karr.sum(), 2.0)
    stack = PMFStack.from_pmfs(rows)
    via_fft = stack.convolve(kernel, method="fft")
    via_direct = stack.convolve(kernel, method="direct")
    assert (via_fft.mass >= 0.0).all()
    np.testing.assert_allclose(via_fft.mass, via_direct.mass, rtol=0.0, atol=1e-12)
    np.testing.assert_allclose(
        via_fft.batch_cdf_at(30.0), via_direct.batch_cdf_at(30.0), rtol=0.0, atol=1e-12
    )

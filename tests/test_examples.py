"""Smoke tests: every example stays importable and syntactically valid.

Each example is executed as a module (``run_name != "__main__"``), so its
imports and top-level definitions run but ``main()`` does not — keeping
the suite fast while catching API drift in the examples immediately.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_module_loads(path):
    namespace = runpy.run_path(str(path), run_name="example")
    assert "main" in namespace, f"{path.stem} must define main()"
    assert callable(namespace["main"])


def test_quickstart_fig2_function_runs(capsys):
    """The quickstart's Fig. 2 walkthrough is cheap — run it for real."""
    namespace = runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="example")
    namespace["fig2_worked_example"]()
    out = capsys.readouterr().out
    assert "chance of success" in out

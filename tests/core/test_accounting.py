"""Tests for the Accounting module (Fig. 4)."""

import pytest

from repro.core.accounting import Accounting
from repro.sim.task import Task


def finished_task(i=0, ttype=0, *, late=False):
    t = Task(task_id=i, task_type=ttype, arrival=0.0, deadline=10.0)
    t.mark_mapped(0, 0.0)
    t.mark_running(0.0, 5.0)
    t.mark_completed(20.0 if late else 5.0)
    return t


def dropped_task(i=0, ttype=0, *, proactive=False):
    t = Task(task_id=i, task_type=ttype, arrival=0.0, deadline=10.0)
    t.mark_dropped(11.0, proactive=proactive)
    return t


class TestRecording:
    def test_arrival_counts(self):
        acc = Accounting()
        for i in range(3):
            acc.record_arrival(Task(task_id=i, task_type=1, arrival=0.0, deadline=5.0))
        assert acc.total_arrived == 3
        assert acc.per_type[1].arrived == 3

    def test_on_time_completion(self):
        acc = Accounting()
        acc.record_completion(finished_task())
        assert acc.total_on_time == 1
        assert acc.per_type[0].completed_on_time == 1
        assert acc.misses_since_last_event == 0
        assert len(acc.on_time_since_last_event()) == 1

    def test_late_completion_counts_as_miss(self):
        acc = Accounting()
        acc.record_completion(finished_task(late=True))
        assert acc.total_late == 1
        assert acc.misses_since_last_event == 1
        assert acc.on_time_since_last_event() == []

    def test_reactive_drop_counts_as_miss(self):
        acc = Accounting()
        acc.record_drop(dropped_task(proactive=False))
        assert acc.total_dropped_missed == 1
        assert acc.misses_since_last_event == 1

    def test_proactive_drop_not_a_miss(self):
        """Proactive drops are the mechanism working, not oversubscription
        evidence — only deadline misses drive the Toggle."""
        acc = Accounting()
        acc.record_drop(dropped_task(proactive=True))
        assert acc.total_dropped_proactive == 1
        assert acc.misses_since_last_event == 0

    def test_defer(self):
        acc = Accounting()
        t = Task(task_id=0, task_type=2, arrival=0.0, deadline=5.0)
        acc.record_defer(t)
        acc.record_defer(t)
        assert acc.total_defers == 2
        assert acc.per_type[2].deferred == 2

    def test_record_completion_wrong_status(self):
        acc = Accounting()
        with pytest.raises(ValueError):
            acc.record_completion(Task(task_id=0, task_type=0, arrival=0.0, deadline=5.0))

    def test_record_drop_wrong_status(self):
        acc = Accounting()
        with pytest.raises(ValueError):
            acc.record_drop(finished_task())


class TestEventHorizon:
    def test_flush_resets_event_buffers_only(self):
        acc = Accounting()
        acc.record_completion(finished_task(0))
        acc.record_drop(dropped_task(1))
        acc.flush_event()
        assert acc.misses_since_last_event == 0
        assert acc.on_time_since_last_event() == []
        # cumulative counters survive
        assert acc.total_on_time == 1
        assert acc.total_dropped_missed == 1

    def test_on_time_buffer_is_copy(self):
        acc = Accounting()
        acc.record_completion(finished_task())
        buf = acc.on_time_since_last_event()
        buf.clear()
        assert len(acc.on_time_since_last_event()) == 1


class TestHistograms:
    def test_type_histogram(self):
        acc = Accounting()
        acc.record_completion(finished_task(0, ttype=0))
        acc.record_completion(finished_task(1, ttype=0))
        acc.record_completion(finished_task(2, ttype=1))
        hist = acc.type_histogram()
        assert hist[0] == 2 and hist[1] == 1

    def test_drop_histogram_combines_both_kinds(self):
        acc = Accounting()
        acc.record_drop(dropped_task(0, ttype=3, proactive=True))
        acc.record_drop(dropped_task(1, ttype=3, proactive=False))
        assert acc.drop_histogram()[3] == 2

    def test_type_counters_properties(self):
        acc = Accounting()
        acc.record_drop(dropped_task(0, ttype=1, proactive=True))
        acc.record_completion(finished_task(1, ttype=1, late=True))
        c = acc.per_type[1]
        assert c.dropped == 1
        assert c.finished == 2

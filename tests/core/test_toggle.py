"""Tests for the Toggle module (§IV-C oversubscription detection)."""

import pytest

from repro.core.accounting import Accounting
from repro.core.config import PruningConfig, ToggleMode
from repro.core.toggle import AlwaysDrop, NeverDrop, ReactiveToggle, make_toggle
from repro.sim.task import Task


def acc_with_misses(n):
    acc = Accounting()
    for i in range(n):
        t = Task(task_id=i, task_type=0, arrival=0.0, deadline=1.0)
        t.mark_dropped(2.0, proactive=False)
        acc.record_drop(t)
    return acc


class TestPolicies:
    def test_never(self):
        assert NeverDrop().dropping_engaged(acc_with_misses(100)) is False

    def test_always(self):
        assert AlwaysDrop().dropping_engaged(acc_with_misses(0)) is True

    def test_reactive_default_alpha(self):
        toggle = ReactiveToggle(alpha=0)
        assert toggle.dropping_engaged(acc_with_misses(0)) is False
        assert toggle.dropping_engaged(acc_with_misses(1)) is True

    def test_reactive_higher_alpha(self):
        toggle = ReactiveToggle(alpha=3)
        assert toggle.dropping_engaged(acc_with_misses(3)) is False
        assert toggle.dropping_engaged(acc_with_misses(4)) is True

    def test_reactive_resets_with_horizon(self):
        toggle = ReactiveToggle(alpha=0)
        acc = acc_with_misses(2)
        assert toggle.dropping_engaged(acc)
        acc.flush_event()
        assert not toggle.dropping_engaged(acc)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            ReactiveToggle(alpha=-1)


class TestFactory:
    def test_reactive_from_config(self):
        toggle = make_toggle(PruningConfig(toggle_mode=ToggleMode.REACTIVE, dropping_toggle=2))
        assert isinstance(toggle, ReactiveToggle)
        assert toggle.alpha == 2

    def test_always_from_config(self):
        assert isinstance(
            make_toggle(PruningConfig(toggle_mode=ToggleMode.ALWAYS)), AlwaysDrop
        )

    def test_never_from_config(self):
        assert isinstance(
            make_toggle(PruningConfig(toggle_mode=ToggleMode.NEVER)), NeverDrop
        )

    def test_dropping_disabled_forces_never(self):
        cfg = PruningConfig(toggle_mode=ToggleMode.ALWAYS, enable_dropping=False)
        assert isinstance(make_toggle(cfg), NeverDrop)

"""Tests for the Toggle module (§IV-C oversubscription detection)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.control.signals import Setpoints
from repro.core.accounting import Accounting
from repro.core.config import PruningConfig, ToggleMode
from repro.core.toggle import AlwaysDrop, NeverDrop, ReactiveToggle, make_toggle
from repro.sim.task import Task


def acc_with_misses(n):
    acc = Accounting()
    for i in range(n):
        t = Task(task_id=i, task_type=0, arrival=0.0, deadline=1.0)
        t.mark_dropped(2.0, proactive=False)
        acc.record_drop(t)
    return acc


class TestPolicies:
    def test_never(self):
        assert NeverDrop().dropping_engaged(acc_with_misses(100)) is False

    def test_always(self):
        assert AlwaysDrop().dropping_engaged(acc_with_misses(0)) is True

    def test_reactive_default_alpha(self):
        toggle = ReactiveToggle(alpha=0)
        assert toggle.dropping_engaged(acc_with_misses(0)) is False
        assert toggle.dropping_engaged(acc_with_misses(1)) is True

    def test_reactive_higher_alpha(self):
        toggle = ReactiveToggle(alpha=3)
        assert toggle.dropping_engaged(acc_with_misses(3)) is False
        assert toggle.dropping_engaged(acc_with_misses(4)) is True

    def test_reactive_resets_with_horizon(self):
        toggle = ReactiveToggle(alpha=0)
        acc = acc_with_misses(2)
        assert toggle.dropping_engaged(acc)
        acc.flush_event()
        assert not toggle.dropping_engaged(acc)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            ReactiveToggle(alpha=-1)

    @given(alpha=st.integers(min_value=0, max_value=50))
    def test_exactly_alpha_misses_never_engages(self, alpha):
        """The α boundary is strict: *exactly* α misses is still calm —
        the paper's 'beyond a configurable Dropping Toggle'."""
        toggle = ReactiveToggle(alpha=alpha)
        assert toggle.dropping_engaged(acc_with_misses(alpha)) is False
        assert toggle.dropping_engaged(acc_with_misses(alpha + 1)) is True


class TestLiveSetpoints:
    """The control plane's actuation path: α read through Setpoints."""

    def test_setpoints_alpha_wins_over_constant(self):
        sp = Setpoints(beta=0.5, alpha=3)
        toggle = ReactiveToggle(alpha=0, setpoints=sp)
        assert toggle.alpha == 3
        assert not toggle.dropping_engaged(acc_with_misses(3))
        assert toggle.dropping_engaged(acc_with_misses(4))

    def test_alpha_moves_with_setpoints(self):
        sp = Setpoints(beta=0.5, alpha=0)
        toggle = ReactiveToggle(alpha=0, setpoints=sp)
        acc = acc_with_misses(2)
        assert toggle.dropping_engaged(acc)
        sp.alpha = 5  # a controller relaxed the Toggle mid-run
        assert not toggle.dropping_engaged(acc)

    def test_unbound_toggle_keeps_constant(self):
        assert ReactiveToggle(alpha=2).alpha == 2

    def test_make_toggle_binds_config_setpoints(self):
        sp = Setpoints(beta=0.5, alpha=0)
        toggle = make_toggle(PruningConfig(dropping_toggle=1), sp)
        # The frozen config said α=1, but the live cell says 0 — the
        # cell wins (pruner initializes it from the config anyway).
        assert toggle.alpha == 0

    def test_setpoints_clamp(self):
        sp = Setpoints(beta=7.0, alpha=-3)
        sp.clamp()
        assert sp.beta == 1.0 and sp.alpha == 0


class TestFactory:
    def test_reactive_from_config(self):
        toggle = make_toggle(PruningConfig(toggle_mode=ToggleMode.REACTIVE, dropping_toggle=2))
        assert isinstance(toggle, ReactiveToggle)
        assert toggle.alpha == 2

    def test_always_from_config(self):
        assert isinstance(
            make_toggle(PruningConfig(toggle_mode=ToggleMode.ALWAYS)), AlwaysDrop
        )

    def test_never_from_config(self):
        assert isinstance(
            make_toggle(PruningConfig(toggle_mode=ToggleMode.NEVER)), NeverDrop
        )

    def test_dropping_disabled_forces_never(self):
        cfg = PruningConfig(toggle_mode=ToggleMode.ALWAYS, enable_dropping=False)
        assert isinstance(make_toggle(cfg), NeverDrop)

"""Tests for the Pruner's drop-scan and defer decisions (Fig. 5)."""

import numpy as np
import pytest

from repro.core.accounting import Accounting
from repro.core.config import PruningConfig, ToggleMode
from repro.core.pruner import Pruner
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.system.completion import CompletionEstimator

from tests.conftest import make_deterministic_pet


@pytest.fixture
def env():
    """One machine; type 0 runs exactly 10 time units (deterministic)."""
    pet = make_deterministic_pet(np.array([[10.0]]))
    cluster = Cluster.heterogeneous(1)
    sim = Simulator()
    est = CompletionEstimator(pet)
    return pet, cluster, sim, est


def queue_task(cluster, sim, i, deadline, ttype=0):
    t = Task(task_id=i, task_type=ttype, arrival=0.0, deadline=deadline)
    t.mark_mapped(0, sim.now)
    cluster[0].dispatch(t, sim, lambda *a: 10.0, lambda *a: None)
    return t


class TestDropScan:
    def test_drops_hopeless_keeps_viable(self, env):
        _, cluster, sim, est = env
        running = queue_task(cluster, sim, 0, deadline=100.0)  # starts running
        viable = queue_task(cluster, sim, 1, deadline=100.0)   # completes ~20
        doomed = queue_task(cluster, sim, 2, deadline=15.0)    # completes ~30 > 15
        pruner = Pruner(PruningConfig.paper_default())
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        assert [d.task.task_id for d in decisions] == [2]
        assert doomed not in cluster[0].queue
        assert viable in cluster[0].queue
        assert running is cluster[0].running

    def test_drop_shortens_chain_for_survivors(self, env):
        """Dropping a queue-head task must rescue the task behind it: the
        re-scan uses the shortened convolution chain (§II)."""
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)           # running
        head_doomed = queue_task(cluster, sim, 1, deadline=15.0)  # ~20 > 15
        behind = queue_task(cluster, sim, 2, deadline=25.0)   # ~30 with head, ~20 without
        pruner = Pruner(PruningConfig.paper_default())
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        assert [d.task.task_id for d in decisions] == [1]
        assert behind in cluster[0].queue

    def test_cascade_when_survivor_still_hopeless(self, env):
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)  # running
        a = queue_task(cluster, sim, 1, deadline=15.0)  # hopeless
        b = queue_task(cluster, sim, 2, deadline=15.0)  # hopeless even alone (~20)
        pruner = Pruner(PruningConfig.paper_default())
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        assert {d.task.task_id for d in decisions} == {1, 2}
        assert cluster[0].queue == []

    def test_never_touches_running_task(self, env):
        _, cluster, sim, est = env
        running = queue_task(cluster, sim, 0, deadline=5.0)  # hopeless but running
        pruner = Pruner(PruningConfig.paper_default())
        assert pruner.drop_scan(cluster, est, now=0.0) == []
        assert cluster[0].running is running

    def test_decisions_carry_chance_and_threshold(self, env):
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)
        queue_task(cluster, sim, 1, deadline=15.0)
        pruner = Pruner(PruningConfig.paper_default())
        (d,) = pruner.drop_scan(cluster, est, now=0.0)
        assert d.chance == pytest.approx(0.0)
        assert d.effective_threshold == pytest.approx(0.5)
        assert d.machine is cluster[0]

    def test_drop_updates_fairness(self, env):
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)
        queue_task(cluster, sim, 1, deadline=15.0)
        pruner = Pruner(PruningConfig.paper_default())
        pruner.drop_scan(cluster, est, now=0.0)
        assert pruner.fairness.score(0) == pytest.approx(0.05)
        assert pruner.drop_decisions == 1

    def test_fairness_offset_can_save_a_task(self, env):
        """A heavily suffered type gets effective threshold 0 and borderline
        tasks survive the scan."""
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)
        borderline = queue_task(cluster, sim, 1, deadline=20.0)  # chance ~=0.5... exactly 1 at 20
        hopeless = queue_task(cluster, sim, 2, deadline=15.0)
        pruner = Pruner(PruningConfig.paper_default())
        for _ in range(20):
            pruner.fairness.note_drop(0)  # effective threshold → 0
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        # chance(hopeless)=0.0 ≤ 0.0 → still dropped; borderline (chance 1) kept
        assert [d.task.task_id for d in decisions] == [2]
        assert borderline in cluster[0].queue


class TestSuffixResume:
    """The drop scan resumes from the drop index: post-drop re-evaluation
    covers only the tasks *behind* the dropped one (ISSUE 4)."""

    def _env(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        cluster = Cluster.heterogeneous(1)
        return pet, cluster, Simulator(), CompletionEstimator(pet)

    def test_evaluations_scale_with_suffix_not_queue(self):
        """Queue of 10 with one hopeless task at index 8: the scan costs
        one cluster pass (10 evaluations) plus one 1-task suffix
        re-query — not a 9-task restart from the queue front."""
        _, cluster, sim, est = self._env()
        queue_task(cluster, sim, 0, deadline=1000.0)  # running
        for i in range(8):  # indices 0..7: completes by 20..90, all viable
            queue_task(cluster, sim, 1 + i, deadline=1000.0)
        queue_task(cluster, sim, 9, deadline=30.0)    # index 8: ~100 >> 30
        queue_task(cluster, sim, 10, deadline=1000.0)  # index 9: viable
        pruner = Pruner(PruningConfig.paper_default())
        before = est.chance_evaluations
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        assert [d.task.task_id for d in decisions] == [9]
        evaluated = est.chance_evaluations - before
        # 10 queued tasks in the opening cluster pass + the 1-task suffix
        # behind the drop.  The restart-from-front rescan this replaces
        # would have paid 10 + 9.
        assert evaluated == 10 + 1

    def test_front_to_back_cascade_still_quadratic_when_all_drop(self):
        """When every task is hopeless the suffix *is* the rest of the
        queue — re-evaluation after each drop is genuine work, not
        rescan waste."""
        _, cluster, sim, est = self._env()
        queue_task(cluster, sim, 0, deadline=1000.0)  # running
        for i in range(5):
            queue_task(cluster, sim, 1 + i, deadline=5.0)  # all hopeless
        pruner = Pruner(PruningConfig.paper_default())
        before = est.chance_evaluations
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        assert len(decisions) == 5
        assert est.chance_evaluations - before == 5 + 4 + 3 + 2 + 1

    def test_resume_matches_restart_from_front_decisions(self):
        """Decision-for-decision identity with the restart-from-front
        reference rescan, on a randomized multi-machine setup."""
        rng = np.random.default_rng(7)
        for _trial in range(20):
            means = rng.uniform(3.0, 12.0, size=(3, 2))
            configs = []
            for _ in range(2):  # build two identical worlds
                pet = make_deterministic_pet(means)
                cluster = Cluster.heterogeneous(2)
                sim = Simulator()
                est = CompletionEstimator(pet)
                configs.append((cluster, sim, est))
            layout = [
                (
                    int(rng.integers(0, 2)),       # machine
                    int(rng.integers(0, 3)),       # task type
                    float(rng.uniform(5.0, 80.0)),  # deadline
                )
                for _ in range(int(rng.integers(4, 14)))
            ]
            for cluster, sim, _ in configs:
                for tid, (m, tt, dl) in enumerate(layout):
                    t = Task(task_id=tid, task_type=tt, arrival=0.0, deadline=dl)
                    t.mark_mapped(m, 0.0)
                    cluster[m].dispatch(t, sim, lambda *a: 5.0, lambda *a: None)

            suffix_pruner = Pruner(PruningConfig.paper_default())
            got = suffix_pruner.drop_scan(configs[0][0], configs[0][2], now=0.0)

            # Reference: the pre-ISSUE-4 restart-from-front rescan.
            ref_pruner = Pruner(PruningConfig.paper_default())
            cluster, _, est = configs[1]
            want = []
            for machine in cluster.machines:
                scan_again = bool(machine.queue)
                while scan_again:
                    scan_again = False
                    for task, chance in est.queue_chances(machine, 0.0):
                        eff = ref_pruner._scan_threshold(task)
                        if chance <= eff:
                            want.append((task.task_id, chance, eff))
                            ref_pruner.fairness.note_drop(task.task_type)
                            machine.remove(task)
                            scan_again = True
                            break
            assert [(d.task.task_id, d.chance, d.effective_threshold) for d in got] == want


class TestDeferDecision:
    def test_defers_below_threshold(self):
        pruner = Pruner(PruningConfig.paper_default())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        assert pruner.should_defer(t, chance=0.3) is True
        assert pruner.defer_decisions == 1

    def test_keeps_above_threshold(self):
        pruner = Pruner(PruningConfig.paper_default())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        assert pruner.should_defer(t, chance=0.7) is False

    def test_boundary_is_inclusive(self):
        """Fig. 5 step 10: chance ≤ β defers."""
        pruner = Pruner(PruningConfig.paper_default())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        assert pruner.should_defer(t, chance=0.5) is True

    def test_disabled_deferring(self):
        pruner = Pruner(PruningConfig.drop_only())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        assert pruner.should_defer(t, chance=0.0) is False

    def test_fairness_lowers_defer_bar(self):
        pruner = Pruner(PruningConfig.paper_default())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        for _ in range(4):
            pruner.fairness.note_drop(0)  # γ=0.2 → bar 0.3
        assert pruner.should_defer(t, chance=0.35) is False
        assert pruner.should_defer(t, chance=0.25) is True


class TestToggleIntegration:
    def test_dropping_engaged_follows_toggle(self):
        acc = Accounting()
        pruner = Pruner(PruningConfig.paper_default(), acc)
        assert not pruner.dropping_engaged()
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=1.0)
        t.mark_dropped(2.0, proactive=False)
        acc.record_drop(t)
        assert pruner.dropping_engaged()

    def test_dropping_disabled_overrides_toggle(self):
        acc = Accounting()
        pruner = Pruner(
            PruningConfig(toggle_mode=ToggleMode.ALWAYS, enable_dropping=False), acc
        )
        assert not pruner.dropping_engaged()

    def test_update_fairness_consumes_completions(self):
        acc = Accounting()
        pruner = Pruner(PruningConfig.paper_default(), acc)
        pruner.fairness.note_drop(0)
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=50.0)
        t.mark_mapped(0, 0.0)
        t.mark_running(0.0, 5.0)
        t.mark_completed(5.0)
        acc.record_completion(t)
        pruner.update_fairness()
        assert pruner.fairness.score(0) == pytest.approx(0.0)

    def test_end_mapping_event_flushes(self):
        acc = Accounting()
        pruner = Pruner(PruningConfig.paper_default(), acc)
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=1.0)
        t.mark_dropped(2.0, proactive=False)
        acc.record_drop(t)
        pruner.end_mapping_event()
        assert acc.misses_since_last_event == 0

"""Tests for the Pruner's drop-scan and defer decisions (Fig. 5)."""

import numpy as np
import pytest

from repro.core.accounting import Accounting
from repro.core.config import PruningConfig, ToggleMode
from repro.core.pruner import Pruner
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.task import Task, TaskStatus
from repro.system.completion import CompletionEstimator

from tests.conftest import make_deterministic_pet


@pytest.fixture
def env():
    """One machine; type 0 runs exactly 10 time units (deterministic)."""
    pet = make_deterministic_pet(np.array([[10.0]]))
    cluster = Cluster.heterogeneous(1)
    sim = Simulator()
    est = CompletionEstimator(pet)
    return pet, cluster, sim, est


def queue_task(cluster, sim, i, deadline, ttype=0):
    t = Task(task_id=i, task_type=ttype, arrival=0.0, deadline=deadline)
    t.mark_mapped(0, sim.now)
    cluster[0].dispatch(t, sim, lambda *a: 10.0, lambda *a: None)
    return t


class TestDropScan:
    def test_drops_hopeless_keeps_viable(self, env):
        _, cluster, sim, est = env
        running = queue_task(cluster, sim, 0, deadline=100.0)  # starts running
        viable = queue_task(cluster, sim, 1, deadline=100.0)   # completes ~20
        doomed = queue_task(cluster, sim, 2, deadline=15.0)    # completes ~30 > 15
        pruner = Pruner(PruningConfig.paper_default())
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        assert [d.task.task_id for d in decisions] == [2]
        assert doomed not in cluster[0].queue
        assert viable in cluster[0].queue
        assert running is cluster[0].running

    def test_drop_shortens_chain_for_survivors(self, env):
        """Dropping a queue-head task must rescue the task behind it: the
        re-scan uses the shortened convolution chain (§II)."""
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)           # running
        head_doomed = queue_task(cluster, sim, 1, deadline=15.0)  # ~20 > 15
        behind = queue_task(cluster, sim, 2, deadline=25.0)   # ~30 with head, ~20 without
        pruner = Pruner(PruningConfig.paper_default())
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        assert [d.task.task_id for d in decisions] == [1]
        assert behind in cluster[0].queue

    def test_cascade_when_survivor_still_hopeless(self, env):
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)  # running
        a = queue_task(cluster, sim, 1, deadline=15.0)  # hopeless
        b = queue_task(cluster, sim, 2, deadline=15.0)  # hopeless even alone (~20)
        pruner = Pruner(PruningConfig.paper_default())
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        assert {d.task.task_id for d in decisions} == {1, 2}
        assert cluster[0].queue == []

    def test_never_touches_running_task(self, env):
        _, cluster, sim, est = env
        running = queue_task(cluster, sim, 0, deadline=5.0)  # hopeless but running
        pruner = Pruner(PruningConfig.paper_default())
        assert pruner.drop_scan(cluster, est, now=0.0) == []
        assert cluster[0].running is running

    def test_decisions_carry_chance_and_threshold(self, env):
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)
        queue_task(cluster, sim, 1, deadline=15.0)
        pruner = Pruner(PruningConfig.paper_default())
        (d,) = pruner.drop_scan(cluster, est, now=0.0)
        assert d.chance == pytest.approx(0.0)
        assert d.effective_threshold == pytest.approx(0.5)
        assert d.machine is cluster[0]

    def test_drop_updates_fairness(self, env):
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)
        queue_task(cluster, sim, 1, deadline=15.0)
        pruner = Pruner(PruningConfig.paper_default())
        pruner.drop_scan(cluster, est, now=0.0)
        assert pruner.fairness.score(0) == pytest.approx(0.05)
        assert pruner.drop_decisions == 1

    def test_fairness_offset_can_save_a_task(self, env):
        """A heavily suffered type gets effective threshold 0 and borderline
        tasks survive the scan."""
        _, cluster, sim, est = env
        queue_task(cluster, sim, 0, deadline=100.0)
        borderline = queue_task(cluster, sim, 1, deadline=20.0)  # chance ~=0.5... exactly 1 at 20
        hopeless = queue_task(cluster, sim, 2, deadline=15.0)
        pruner = Pruner(PruningConfig.paper_default())
        for _ in range(20):
            pruner.fairness.note_drop(0)  # effective threshold → 0
        decisions = pruner.drop_scan(cluster, est, now=0.0)
        # chance(hopeless)=0.0 ≤ 0.0 → still dropped; borderline (chance 1) kept
        assert [d.task.task_id for d in decisions] == [2]
        assert borderline in cluster[0].queue


class TestDeferDecision:
    def test_defers_below_threshold(self):
        pruner = Pruner(PruningConfig.paper_default())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        assert pruner.should_defer(t, chance=0.3) is True
        assert pruner.defer_decisions == 1

    def test_keeps_above_threshold(self):
        pruner = Pruner(PruningConfig.paper_default())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        assert pruner.should_defer(t, chance=0.7) is False

    def test_boundary_is_inclusive(self):
        """Fig. 5 step 10: chance ≤ β defers."""
        pruner = Pruner(PruningConfig.paper_default())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        assert pruner.should_defer(t, chance=0.5) is True

    def test_disabled_deferring(self):
        pruner = Pruner(PruningConfig.drop_only())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        assert pruner.should_defer(t, chance=0.0) is False

    def test_fairness_lowers_defer_bar(self):
        pruner = Pruner(PruningConfig.paper_default())
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        for _ in range(4):
            pruner.fairness.note_drop(0)  # γ=0.2 → bar 0.3
        assert pruner.should_defer(t, chance=0.35) is False
        assert pruner.should_defer(t, chance=0.25) is True


class TestToggleIntegration:
    def test_dropping_engaged_follows_toggle(self):
        acc = Accounting()
        pruner = Pruner(PruningConfig.paper_default(), acc)
        assert not pruner.dropping_engaged()
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=1.0)
        t.mark_dropped(2.0, proactive=False)
        acc.record_drop(t)
        assert pruner.dropping_engaged()

    def test_dropping_disabled_overrides_toggle(self):
        acc = Accounting()
        pruner = Pruner(
            PruningConfig(toggle_mode=ToggleMode.ALWAYS, enable_dropping=False), acc
        )
        assert not pruner.dropping_engaged()

    def test_update_fairness_consumes_completions(self):
        acc = Accounting()
        pruner = Pruner(PruningConfig.paper_default(), acc)
        pruner.fairness.note_drop(0)
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=50.0)
        t.mark_mapped(0, 0.0)
        t.mark_running(0.0, 5.0)
        t.mark_completed(5.0)
        acc.record_completion(t)
        pruner.update_fairness()
        assert pruner.fairness.score(0) == pytest.approx(0.0)

    def test_end_mapping_event_flushes(self):
        acc = Accounting()
        pruner = Pruner(PruningConfig.paper_default(), acc)
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=1.0)
        t.mark_dropped(2.0, proactive=False)
        acc.record_drop(t)
        pruner.end_mapping_event()
        assert acc.misses_since_last_event == 0

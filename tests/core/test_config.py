"""Tests for PruningConfig validation and presets."""

import pytest

from repro.core.config import PruningConfig, ToggleMode


class TestValidation:
    def test_defaults_match_paper(self):
        cfg = PruningConfig.paper_default()
        assert cfg.pruning_threshold == 0.5
        assert cfg.fairness_factor == 0.05
        assert cfg.dropping_toggle == 0
        assert cfg.toggle_mode is ToggleMode.REACTIVE
        assert cfg.enable_deferring and cfg.enable_dropping and cfg.enable_fairness

    @pytest.mark.parametrize("th", [-0.1, 1.1])
    def test_threshold_range(self, th):
        with pytest.raises(ValueError, match="pruning_threshold"):
            PruningConfig(pruning_threshold=th)

    @pytest.mark.parametrize("th", [0.0, 0.5, 1.0])
    def test_threshold_bounds_ok(self, th):
        PruningConfig(pruning_threshold=th)

    def test_negative_toggle_rejected(self):
        with pytest.raises(ValueError, match="dropping_toggle"):
            PruningConfig(dropping_toggle=-1)

    def test_negative_fairness_rejected(self):
        with pytest.raises(ValueError, match="fairness_factor"):
            PruningConfig(fairness_factor=-0.01)

    def test_string_toggle_mode_coerced(self):
        cfg = PruningConfig(toggle_mode="always")
        assert cfg.toggle_mode is ToggleMode.ALWAYS

    def test_frozen(self):
        cfg = PruningConfig()
        with pytest.raises(AttributeError):
            cfg.pruning_threshold = 0.9


class TestPresets:
    def test_defer_only(self):
        cfg = PruningConfig.defer_only(0.25)
        assert cfg.pruning_threshold == 0.25
        assert cfg.enable_deferring
        assert not cfg.enable_dropping
        assert cfg.toggle_mode is ToggleMode.NEVER

    def test_drop_only(self):
        cfg = PruningConfig.drop_only(ToggleMode.ALWAYS)
        assert cfg.enable_dropping
        assert not cfg.enable_deferring
        assert cfg.toggle_mode is ToggleMode.ALWAYS

    def test_with_updates(self):
        cfg = PruningConfig().with_(pruning_threshold=0.75)
        assert cfg.pruning_threshold == 0.75
        assert cfg.fairness_factor == 0.05

    def test_with_validates(self):
        with pytest.raises(ValueError):
            PruningConfig().with_(pruning_threshold=2.0)

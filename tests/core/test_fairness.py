"""Tests for the Fairness module (sufferage scores, §IV-D)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fairness import FairnessTracker


class TestScores:
    def test_initial_zero(self):
        f = FairnessTracker(0.05)
        assert f.score(0) == 0.0
        assert f.effective_threshold(0.5, 0) == 0.5

    def test_drop_raises_score(self):
        f = FairnessTracker(0.05)
        f.note_drop(1)
        assert f.score(1) == pytest.approx(0.05)
        assert f.effective_threshold(0.5, 1) == pytest.approx(0.45)

    def test_completion_repays_sufferage(self):
        f = FairnessTracker(0.05)
        f.note_drop(1)
        f.note_drop(1)
        f.note_on_time_completion(1)
        assert f.score(1) == pytest.approx(0.05)

    def test_completion_never_goes_negative(self):
        """Sufferage floors at zero: a type doing well returns to the base
        threshold, it does not get extra-pruned."""
        f = FairnessTracker(0.05)
        for _ in range(100):
            f.note_on_time_completion(2)
        assert f.score(2) == 0.0
        assert f.effective_threshold(0.5, 2) == 0.5

    def test_score_ceiling(self):
        f = FairnessTracker(0.4, clamp=1.0)
        for _ in range(10):
            f.note_drop(0)
        assert f.score(0) == 1.0

    def test_effective_threshold_clamped_to_zero(self):
        f = FairnessTracker(0.4)
        for _ in range(5):
            f.note_drop(0)
        assert f.effective_threshold(0.5, 0) == 0.0

    def test_types_independent(self):
        f = FairnessTracker(0.05)
        f.note_drop(0)
        assert f.score(1) == 0.0

    def test_reset(self):
        f = FairnessTracker(0.05)
        f.note_drop(0)
        f.reset()
        assert f.score(0) == 0.0

    def test_scores_snapshot(self):
        f = FairnessTracker(0.1)
        f.note_drop(3)
        snap = f.scores()
        assert snap == {3: pytest.approx(0.1)}


class TestDisabled:
    def test_disabled_scores_frozen(self):
        f = FairnessTracker(0.05, enabled=False)
        f.note_drop(0)
        f.note_on_time_completion(0)
        assert f.score(0) == 0.0
        assert f.effective_threshold(0.5, 0) == 0.5

    def test_zero_factor_equivalent(self):
        f = FairnessTracker(0.0)
        f.note_drop(0)
        assert f.score(0) == 0.0


class TestValidation:
    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            FairnessTracker(-0.1)

    def test_bad_clamp_rejected(self):
        with pytest.raises(ValueError):
            FairnessTracker(0.1, clamp=0.0)


class TestClampFloorProperties:
    """Hypothesis invariants of the clamp/floor edges.

    These are the guarantees the adaptive control plane leans on: with a
    controller moving β at runtime, the *effective* threshold must stay
    inside [0, β] for every reachable sufferage state, or a live β
    change could push the bar outside the probability range.
    """

    @given(
        beta=st.floats(min_value=0.0, max_value=1.0),
        factor=st.floats(min_value=0.0, max_value=1.0),
        events=st.lists(st.sampled_from(["drop", "on_time"]), max_size=60),
    )
    def test_effective_threshold_always_in_zero_to_beta(self, beta, factor, events):
        tracker = FairnessTracker(factor)
        for event in events:
            if event == "drop":
                tracker.note_drop(0)
            else:
                tracker.note_on_time_completion(0)
            eff = tracker.effective_threshold(beta, 0)
            assert 0.0 <= eff <= beta

    @given(
        factor=st.floats(min_value=0.0, max_value=0.7),
        clamp=st.floats(min_value=0.1, max_value=1.0),
        events=st.lists(st.sampled_from(["drop", "on_time"]), max_size=60),
    )
    def test_score_stays_in_floor_clamp_range(self, factor, clamp, events):
        tracker = FairnessTracker(factor, clamp=clamp)
        for event in events:
            if event == "drop":
                tracker.note_drop(1)
            else:
                tracker.note_on_time_completion(1)
            assert 0.0 <= tracker.score(1) <= clamp

"""Tests for machines and FCFS queue execution."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.task import Task, TaskStatus


def make_task(i=0, ttype=0, arrival=0.0, deadline=100.0):
    return Task(task_id=i, task_type=ttype, arrival=arrival, deadline=deadline)


def fixed_sampler(duration):
    return lambda task, machine: duration


def dispatch(machine, task, sim, duration=5.0, completions=None, sampler=None):
    task.mark_mapped(machine.machine_id, sim.now)
    machine.dispatch(
        task,
        sim,
        sampler or fixed_sampler(duration),
        (lambda t, m: completions.append((sim.now, t))) if completions is not None else (lambda t, m: None),
    )


class TestDispatch:
    def test_idle_machine_starts_immediately(self):
        sim, m = Simulator(), Machine(0, 0)
        t = make_task()
        dispatch(m, t, sim)
        assert m.running is t
        assert t.status is TaskStatus.RUNNING
        assert m.queue_length == 0

    def test_busy_machine_queues(self):
        sim, m = Simulator(), Machine(0, 0)
        t1, t2 = make_task(1), make_task(2)
        dispatch(m, t1, sim)
        dispatch(m, t2, sim)
        assert m.running is t1
        assert m.queue == [t2]
        assert t2.status is TaskStatus.MAPPED

    def test_fcfs_completion_order(self):
        sim, m = Simulator(), Machine(0, 0)
        done = []
        tasks = [make_task(i) for i in range(4)]
        for t in tasks:
            dispatch(m, t, sim, duration=2.0, completions=done)
        sim.run()
        assert [t.task_id for _, t in done] == [0, 1, 2, 3]
        assert [when for when, _ in done] == [2.0, 4.0, 6.0, 8.0]

    def test_completion_times_and_status(self):
        sim, m = Simulator(), Machine(0, 0)
        t = make_task(deadline=4.0)
        dispatch(m, t, sim, duration=5.0)
        sim.run()
        assert t.status is TaskStatus.COMPLETED_LATE
        assert t.finished_at == 5.0

    def test_dispatch_wrong_machine_rejected(self):
        sim, m = Simulator(), Machine(0, 0)
        t = make_task()
        t.mark_mapped(99, 0.0)
        with pytest.raises(RuntimeError, match="dispatched"):
            m.dispatch(t, sim, fixed_sampler(1.0), lambda *a: None)

    def test_dispatch_unmapped_rejected(self):
        sim, m = Simulator(), Machine(0, 0)
        with pytest.raises(RuntimeError):
            m.dispatch(make_task(), sim, fixed_sampler(1.0), lambda *a: None)

    def test_nonpositive_exec_time_rejected(self):
        sim, m = Simulator(), Machine(0, 0)
        t = make_task()
        t.mark_mapped(0, 0.0)
        with pytest.raises(ValueError, match="non-positive"):
            m.dispatch(t, sim, fixed_sampler(0.0), lambda *a: None)


class TestQueueLimit:
    def test_free_slots(self):
        m = Machine(0, 0, queue_limit=2)
        assert m.free_slots() == 2
        assert m.has_free_slot

    def test_unbounded(self):
        m = Machine(0, 0)
        assert m.free_slots() is None
        assert m.has_free_slot

    def test_full_queue_rejects(self):
        sim, m = Simulator(), Machine(0, 0, queue_limit=1)
        dispatch(m, make_task(0), sim)  # running, not queued
        dispatch(m, make_task(1), sim)  # fills the single slot
        t3 = make_task(2)
        t3.mark_mapped(0, 0.0)
        with pytest.raises(RuntimeError, match="full"):
            m.dispatch(t3, sim, fixed_sampler(1.0), lambda *a: None)

    def test_running_task_does_not_occupy_slot(self):
        sim, m = Simulator(), Machine(0, 0, queue_limit=1)
        dispatch(m, make_task(0), sim)
        assert m.free_slots() == 1

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Machine(0, 0, queue_limit=-1)


class TestRemove:
    def test_remove_queued(self):
        sim, m = Simulator(), Machine(0, 0)
        t1, t2 = make_task(1), make_task(2)
        dispatch(m, t1, sim)
        dispatch(m, t2, sim)
        assert m.remove(t2) is True
        assert m.queue == []

    def test_remove_running_is_noop(self):
        sim, m = Simulator(), Machine(0, 0)
        t = make_task()
        dispatch(m, t, sim)
        assert m.remove(t) is False
        assert m.running is t

    def test_remove_absent_returns_false(self):
        m = Machine(0, 0)
        assert m.remove(make_task()) is False

    def test_remove_many(self):
        sim, m = Simulator(), Machine(0, 0)
        tasks = [make_task(i) for i in range(5)]
        for t in tasks:
            dispatch(m, t, sim)
        removed = m.remove_many(tasks[2:4])
        assert removed == 2
        assert [t.task_id for t in m.queue] == [1, 4]

    def test_removed_task_never_runs(self):
        sim, m = Simulator(), Machine(0, 0)
        done = []
        t1, t2, t3 = make_task(1), make_task(2), make_task(3)
        for t in (t1, t2, t3):
            dispatch(m, t, sim, duration=2.0, completions=done)
        m.remove(t2)
        sim.run()
        assert [t.task_id for _, t in done] == [1, 3]
        assert t2.status is TaskStatus.MAPPED  # untouched by the machine


class TestVersionAndStats:
    def test_version_bumps_on_changes(self):
        sim, m = Simulator(), Machine(0, 0)
        v0 = m.version
        t1, t2 = make_task(1), make_task(2)
        dispatch(m, t1, sim)
        assert m.version > v0
        v1 = m.version
        dispatch(m, t2, sim)
        assert m.version > v1
        v2 = m.version
        m.remove(t2)
        assert m.version > v2

    def test_version_bumps_on_completion(self):
        sim, m = Simulator(), Machine(0, 0)
        dispatch(m, make_task(), sim, duration=3.0)
        v = m.version
        sim.run()
        assert m.version > v

    def test_busy_time_accumulates(self):
        sim, m = Simulator(), Machine(0, 0)
        for i in range(3):
            dispatch(m, make_task(i), sim, duration=4.0)
        sim.run()
        assert m.busy_time == pytest.approx(12.0)
        assert m.completed_count == 3

    def test_utilization(self):
        sim, m = Simulator(), Machine(0, 0)
        dispatch(m, make_task(), sim, duration=5.0)
        sim.run()
        assert m.utilization(10.0) == pytest.approx(0.5)
        assert m.utilization(0.0) == 0.0

    def test_tasks_in_queue_snapshot(self):
        sim, m = Simulator(), Machine(0, 0)
        t1, t2 = make_task(1), make_task(2)
        dispatch(m, t1, sim)
        dispatch(m, t2, sim)
        snap = m.tasks_in_queue()
        assert snap == (t2,)
        m.remove(t2)
        assert snap == (t2,)  # snapshot unaffected


class TestCompletionCallback:
    def test_callback_sees_machine_already_started_next(self):
        """The machine starts its next task before notifying, so the
        mapping event triggered by a completion sees a busy machine."""
        sim, m = Simulator(), Machine(0, 0)
        observed = []

        def on_complete(task, machine):
            observed.append(machine.running.task_id if machine.running else None)

        t1, t2 = make_task(1), make_task(2)
        for t in (t1, t2):
            t.mark_mapped(0, 0.0)
            m.dispatch(t, sim, fixed_sampler(2.0), on_complete)
        sim.run()
        assert observed == [2, None]

"""Tests for deterministic named RNG streams."""

import numpy as np

from repro.sim.rng import RngStreams, stream_seed


class TestStreamSeed:
    def test_deterministic(self):
        a = np.random.default_rng(stream_seed(42, "exec")).random(5)
        b = np.random.default_rng(stream_seed(42, "exec")).random(5)
        np.testing.assert_array_equal(a, b)

    def test_name_separates_streams(self):
        a = np.random.default_rng(stream_seed(42, "exec")).random(5)
        b = np.random.default_rng(stream_seed(42, "workload")).random(5)
        assert not np.array_equal(a, b)

    def test_seed_separates_streams(self):
        a = np.random.default_rng(stream_seed(1, "exec")).random(5)
        b = np.random.default_rng(stream_seed(2, "exec")).random(5)
        assert not np.array_equal(a, b)


class TestRngStreams:
    def test_stream_cached(self):
        s = RngStreams(7)
        assert s.stream("a") is s.stream("a")

    def test_fresh_restarts(self):
        s = RngStreams(7)
        first = s.stream("a").random(3)
        restarted = s.fresh("a").random(3)
        np.testing.assert_array_equal(first, restarted)

    def test_consumers_do_not_perturb_each_other(self):
        """Adding a new named consumer must not change existing draws."""
        s1 = RngStreams(7)
        only = s1.stream("main").random(4)

        s2 = RngStreams(7)
        s2.stream("other").random(100)  # extra consumer
        also = s2.stream("main").random(4)
        np.testing.assert_array_equal(only, also)

    def test_cross_instance_determinism(self):
        a = RngStreams(3).stream("x").random(4)
        b = RngStreams(3).stream("x").random(4)
        np.testing.assert_array_equal(a, b)

"""Tests for cluster construction and queries."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.task import Task


class TestConstructors:
    def test_heterogeneous_one_per_type(self):
        c = Cluster.heterogeneous(4)
        assert len(c) == 4
        assert c.machine_types == (0, 1, 2, 3)
        assert not c.is_homogeneous

    def test_heterogeneous_multiple_per_type(self):
        c = Cluster.heterogeneous(3, machines_per_type=2)
        assert len(c) == 6
        assert c.machine_types == (0, 0, 1, 1, 2, 2)

    def test_homogeneous(self):
        c = Cluster.homogeneous(5, machine_type=2)
        assert len(c) == 5
        assert c.machine_types == (2,) * 5
        assert c.is_homogeneous

    def test_queue_limit_propagates(self):
        c = Cluster.heterogeneous(2, queue_limit=3)
        assert all(m.queue_limit == 3 for m in c)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Cluster([Machine(0, 0), Machine(0, 1)])


class TestQueries:
    def test_getitem_by_id(self):
        c = Cluster.heterogeneous(3)
        assert c[1].machine_id == 1

    def test_iteration_order(self):
        c = Cluster.heterogeneous(3)
        assert [m.machine_id for m in c] == [0, 1, 2]

    def test_free_slots_tracking(self):
        c = Cluster.heterogeneous(2, queue_limit=1)
        sim = Simulator()
        assert c.any_free_slot()
        assert len(c.machines_with_free_slots()) == 2
        # Fill machine 0: one running + one queued.
        for i in range(2):
            t = Task(task_id=i, task_type=0, arrival=0.0, deadline=50.0)
            t.mark_mapped(0, 0.0)
            c[0].dispatch(t, sim, lambda *a: 5.0, lambda *a: None)
        assert len(c.machines_with_free_slots()) == 1
        assert c.any_free_slot()

    def test_total_queued_and_queued_tasks(self):
        c = Cluster.heterogeneous(2)
        sim = Simulator()
        for i in range(3):
            t = Task(task_id=i, task_type=0, arrival=0.0, deadline=50.0)
            t.mark_mapped(0, 0.0)
            c[0].dispatch(t, sim, lambda *a: 5.0, lambda *a: None)
        assert c.total_queued() == 2  # first is running
        assert [t.task_id for t in c.queued_tasks()] == [1, 2]

    def test_set_queue_limit(self):
        c = Cluster.heterogeneous(2)
        c.set_queue_limit(7)
        assert all(m.queue_limit == 7 for m in c)

"""Queue-delta notification protocol (Machine → QueueObserver)."""


from repro.sim.cluster import Cluster, QueueObserver
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.task import Task


class Recorder:
    """Records every event with the machine id and pre-mutation index."""

    def __init__(self):
        self.events = []

    def on_enqueue(self, machine, index):
        self.events.append(("enqueue", machine.machine_id, index))

    def on_dequeue(self, machine, index):
        self.events.append(("dequeue", machine.machine_id, index))

    def on_drop(self, machine, index):
        self.events.append(("drop", machine.machine_id, index))

    def on_start(self, machine):
        self.events.append(("start", machine.machine_id))

    def on_finish(self, machine):
        self.events.append(("finish", machine.machine_id))


def make_task(i, deadline=100.0):
    return Task(task_id=i, task_type=0, arrival=0.0, deadline=deadline)


def dispatch(m, sim, task, duration=5.0):
    task.mark_mapped(m.machine_id, sim.now)
    m.dispatch(task, sim, lambda *a: duration, lambda *a: None)


class TestEmission:
    def test_recorder_satisfies_protocol(self):
        assert isinstance(Recorder(), QueueObserver)

    def test_dispatch_to_idle_emits_enqueue_dequeue_start(self):
        sim, m, rec = Simulator(), Machine(0, 0), Recorder()
        m.subscribe(rec)
        dispatch(m, sim, make_task(0))
        assert rec.events == [("enqueue", 0, 0), ("dequeue", 0, 0), ("start", 0)]

    def test_dispatch_to_busy_emits_enqueue_only(self):
        sim, m, rec = Simulator(), Machine(0, 0), Recorder()
        dispatch(m, sim, make_task(0))  # not yet subscribed
        m.subscribe(rec)
        dispatch(m, sim, make_task(1))
        dispatch(m, sim, make_task(2))
        assert rec.events == [("enqueue", 0, 0), ("enqueue", 0, 1)]

    def test_completion_emits_finish_then_next_start(self):
        sim, m, rec = Simulator(), Machine(0, 0), Recorder()
        dispatch(m, sim, make_task(0))
        dispatch(m, sim, make_task(1))
        m.subscribe(rec)
        sim.run()
        # task 0 finishes -> head (task 1) dequeues and starts -> finishes
        assert rec.events == [
            ("finish", 0),
            ("dequeue", 0, 0),
            ("start", 0),
            ("finish", 0),
        ]

    def test_remove_emits_drop_with_queue_index(self):
        sim, m, rec = Simulator(), Machine(0, 0), Recorder()
        t0, t1, t2 = make_task(0), make_task(1), make_task(2)
        for t in (t0, t1, t2):
            dispatch(m, sim, t)
        m.subscribe(rec)
        m.remove(t2)  # queue holds [t1, t2] (t0 running) -> index 1
        assert rec.events == [("drop", 0, 1)]

    def test_remove_many_emits_ascending_premutation_indices(self):
        sim, m, rec = Simulator(), Machine(0, 0), Recorder()
        tasks = [make_task(i) for i in range(5)]
        for t in tasks:
            dispatch(m, sim, t)
        m.subscribe(rec)
        m.remove_many([tasks[3], tasks[1]])  # queue indices 2 and 0
        assert rec.events == [("drop", 0, 0), ("drop", 0, 2)]

    def test_deadline_reap_emits_drop_at_head(self):
        sim, m, rec = Simulator(), Machine(0, 0), Recorder()
        dispatch(m, sim, make_task(0))
        dispatch(m, sim, make_task(1, deadline=3.0))  # misses while queued
        dispatch(m, sim, make_task(2))
        m.subscribe(rec)
        sim.run()
        assert ("drop", 0, 0) in rec.events

    def test_unsubscribe_stops_events(self):
        sim, m, rec = Simulator(), Machine(0, 0), Recorder()
        m.subscribe(rec)
        m.unsubscribe(rec)
        dispatch(m, sim, make_task(0))
        assert rec.events == []

    def test_subscribe_is_idempotent(self):
        sim, m, rec = Simulator(), Machine(0, 0), Recorder()
        m.subscribe(rec)
        m.subscribe(rec)
        dispatch(m, sim, make_task(0))
        assert rec.events.count(("enqueue", 0, 0)) == 1


class TestClusterSubscription:
    def test_cluster_subscribe_covers_all_machines(self):
        sim, rec = Simulator(), Recorder()
        cluster = Cluster.heterogeneous(3)
        cluster.subscribe(rec)
        for mid in range(3):
            dispatch(cluster[mid], sim, make_task(mid))
        machine_ids = {e[1] for e in rec.events}
        assert machine_ids == {0, 1, 2}

    def test_cluster_unsubscribe(self):
        sim, rec = Simulator(), Recorder()
        cluster = Cluster.heterogeneous(2)
        cluster.subscribe(rec)
        cluster.unsubscribe(rec)
        dispatch(cluster[0], sim, make_task(0))
        assert rec.events == []

    def test_version_still_bumps_alongside_events(self):
        """The coarse version counter co-exists with structured deltas."""
        sim, m, rec = Simulator(), Machine(0, 0), Recorder()
        m.subscribe(rec)
        v0 = m.version
        dispatch(m, sim, make_task(0))
        assert m.version > v0
        assert len(rec.events) == 3  # enqueue + dequeue + start

"""Tests for task lifecycle and state transitions."""

import pytest

from repro.sim.task import TERMINAL_STATUSES, Task, TaskStatus, fresh_task_ids


def make_task(**kw):
    defaults = dict(task_id=0, task_type=1, arrival=10.0, deadline=50.0)
    defaults.update(kw)
    return Task(**defaults)


class TestConstruction:
    def test_defaults(self):
        t = make_task()
        assert t.status is TaskStatus.PENDING
        assert t.machine_id is None
        assert t.defer_count == 0
        assert not t.is_terminal

    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            make_task(deadline=5.0)

    def test_deadline_equal_arrival_allowed(self):
        make_task(deadline=10.0)

    def test_fresh_task_ids(self):
        gen = fresh_task_ids(5)
        assert [next(gen) for _ in range(3)] == [5, 6, 7]


class TestQueries:
    def test_laxity(self):
        t = make_task()
        assert t.laxity(20.0) == 30.0
        assert t.laxity(60.0) == -10.0

    def test_missed_deadline(self):
        t = make_task()
        assert not t.missed_deadline(50.0)
        assert t.missed_deadline(50.1)

    def test_missed_deadline_false_for_terminal(self):
        t = make_task()
        t.mark_dropped(60.0, proactive=False)
        assert not t.missed_deadline(70.0)


class TestTransitions:
    def test_happy_path_on_time(self):
        t = make_task()
        t.mark_mapped(2, 11.0)
        assert t.status is TaskStatus.MAPPED
        assert t.machine_id == 2
        assert t.mapped_at == 11.0
        t.mark_running(12.0, 5.0)
        assert t.status is TaskStatus.RUNNING
        assert t.exec_time == 5.0
        t.mark_completed(17.0)
        assert t.status is TaskStatus.COMPLETED_ON_TIME
        assert t.completed_on_time

    def test_late_completion(self):
        t = make_task()
        t.mark_mapped(0, 11.0)
        t.mark_running(12.0, 100.0)
        t.mark_completed(112.0)
        assert t.status is TaskStatus.COMPLETED_LATE
        assert not t.completed_on_time

    def test_completion_exactly_at_deadline_is_on_time(self):
        t = make_task()
        t.mark_mapped(0, 11.0)
        t.mark_running(12.0, 38.0)
        t.mark_completed(50.0)
        assert t.status is TaskStatus.COMPLETED_ON_TIME

    def test_defer_returns_to_pending(self):
        t = make_task()
        t.mark_mapped(1, 11.0)
        t.mark_deferred()
        assert t.status is TaskStatus.PENDING
        assert t.machine_id is None
        assert t.defer_count == 1

    def test_multiple_defers_count(self):
        t = make_task()
        for i in range(3):
            t.mark_mapped(1, 11.0 + i)
            t.mark_deferred()
        assert t.defer_count == 3

    def test_drop_reactive(self):
        t = make_task()
        t.mark_dropped(55.0, proactive=False)
        assert t.status is TaskStatus.DROPPED_MISSED
        assert t.was_dropped
        assert t.dropped_at == 55.0

    def test_drop_proactive_from_mapped(self):
        t = make_task()
        t.mark_mapped(0, 11.0)
        t.mark_dropped(20.0, proactive=True)
        assert t.status is TaskStatus.DROPPED_PROACTIVE


class TestInvalidTransitions:
    def test_cannot_map_terminal(self):
        t = make_task()
        t.mark_dropped(60.0, proactive=False)
        with pytest.raises(RuntimeError):
            t.mark_mapped(0, 61.0)

    def test_cannot_defer_pending(self):
        with pytest.raises(RuntimeError, match="defer"):
            make_task().mark_deferred()

    def test_cannot_run_pending(self):
        with pytest.raises(RuntimeError, match="start"):
            make_task().mark_running(12.0, 5.0)

    def test_cannot_complete_unstarted(self):
        t = make_task()
        t.mark_mapped(0, 11.0)
        with pytest.raises(RuntimeError, match="complete"):
            t.mark_completed(20.0)

    def test_cannot_drop_completed(self):
        t = make_task()
        t.mark_mapped(0, 11.0)
        t.mark_running(12.0, 5.0)
        t.mark_completed(17.0)
        with pytest.raises(RuntimeError):
            t.mark_dropped(18.0, proactive=True)


class TestTerminalSet:
    def test_terminal_statuses(self):
        assert TaskStatus.COMPLETED_ON_TIME in TERMINAL_STATUSES
        assert TaskStatus.COMPLETED_LATE in TERMINAL_STATUSES
        assert TaskStatus.DROPPED_MISSED in TERMINAL_STATUSES
        assert TaskStatus.DROPPED_PROACTIVE in TERMINAL_STATUSES
        assert TaskStatus.PENDING not in TERMINAL_STATUSES
        assert TaskStatus.MAPPED not in TERMINAL_STATUSES
        assert TaskStatus.RUNNING not in TERMINAL_STATUSES

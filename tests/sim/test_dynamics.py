"""Cluster-dynamics tests: machine lifecycle, driver, determinism."""

from __future__ import annotations

import pytest

from repro.sim.cluster import Cluster
from repro.sim.dynamics import DynamicsSpec
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.task import Task, TaskStatus
from repro.system.serverless import ServerlessSystem
from tests.conftest import fresh_tasks


def _task(tid, arrival=0.0, deadline=100.0, ttype=0):
    return Task(task_id=tid, task_type=ttype, arrival=arrival, deadline=deadline)


def _sampler(value):
    return lambda task, machine: value


class TestMachineLifecycle:
    def test_fail_kills_running_and_evicts_queue(self):
        sim = Simulator()
        m = Machine(0, 0)
        done = []
        running = _task(1)
        queued = [_task(2), _task(3)]
        running.mark_mapped(0, 0.0)
        m.dispatch(running, sim, _sampler(10.0), lambda t, mm: done.append(t))
        for t in queued:
            t.mark_mapped(0, 0.0)
            m.dispatch(t, sim, _sampler(10.0), lambda t, mm: done.append(t))
        sim.run(until=4.0)
        interrupted, evicted = m.fail(sim)
        assert interrupted is running
        assert evicted == queued
        assert not m.online and m.running is None and m.queue == []
        # Partial progress counts as busy time; the completion never fires.
        assert m.busy_time == pytest.approx(4.0)
        sim.run()
        assert done == [] and m.completed_count == 0

    def test_fail_while_idle(self):
        sim = Simulator()
        m = Machine(0, 0)
        interrupted, evicted = m.fail(sim)
        assert interrupted is None and evicted == []
        with pytest.raises(RuntimeError, match="already offline"):
            m.fail(sim)

    def test_drain_lets_running_finish(self):
        sim = Simulator()
        m = Machine(0, 0)
        done = []
        running, queued = _task(1), _task(2)
        for t in (running, queued):
            t.mark_mapped(0, 0.0)
            m.dispatch(t, sim, _sampler(5.0), lambda t, mm: done.append(t))
        evicted = m.drain()
        assert evicted == [queued]
        assert m.running is running and not m.online
        sim.run()
        # The running task completed; the drained machine started nothing.
        assert done == [running]
        assert running.status is TaskStatus.COMPLETED_ON_TIME
        assert m.running is None and m.completed_count == 1

    def test_offline_machine_reports_no_capacity_and_rejects_dispatch(self):
        sim = Simulator()
        m = Machine(0, 0, queue_limit=4)
        m.fail(sim)
        assert not m.has_free_slot
        assert m.free_slots() == 0
        t = _task(9)
        t.mark_mapped(0, 0.0)
        with pytest.raises(RuntimeError, match="offline"):
            m.dispatch(t, sim, _sampler(1.0), lambda *_: None)

    def test_recover_restores_capacity(self):
        sim = Simulator()
        m = Machine(0, 0, queue_limit=2)
        m.fail(sim)
        m.recover()
        assert m.online and m.has_free_slot and m.free_slots() == 2
        with pytest.raises(RuntimeError, match="already online"):
            m.recover()

    def test_fail_and_recover_bump_version_and_notify(self):
        sim = Simulator()
        m = Machine(0, 0)

        class Recorder:
            events: list = []

            def on_enqueue(self, machine, index): ...
            def on_dequeue(self, machine, index): ...
            def on_drop(self, machine, index): ...
            def on_start(self, machine): ...
            def on_finish(self, machine): ...
            def on_offline(self, machine):
                self.events.append(("offline", machine.version))

            def on_online(self, machine):
                self.events.append(("online", machine.version))

        rec = Recorder()
        m.subscribe(rec)
        v0 = m.version
        m.fail(sim)
        m.recover()
        assert m.version == v0 + 2
        assert rec.events == [("offline", v0 + 1), ("online", v0 + 2)]

    def test_legacy_five_method_observer_still_works(self):
        """Observers predating on_offline/on_online must not break."""
        sim = Simulator()
        m = Machine(0, 0)

        class Legacy:
            def on_enqueue(self, machine, index): ...
            def on_dequeue(self, machine, index): ...
            def on_drop(self, machine, index): ...
            def on_start(self, machine): ...
            def on_finish(self, machine): ...

        m.subscribe(Legacy())
        m.fail(sim)  # must not raise
        m.recover()


class TestClusterElasticity:
    def test_add_machine_subscribes_cluster_observers(self):
        cluster = Cluster.homogeneous(2)
        seen = []

        class Obs:
            def on_enqueue(self, machine, index):
                seen.append(machine.machine_id)

            def on_dequeue(self, machine, index): ...
            def on_drop(self, machine, index): ...
            def on_start(self, machine): ...
            def on_finish(self, machine): ...

        obs = Obs()
        cluster.subscribe(obs)
        new = Machine(cluster.next_machine_id(), 0)
        cluster.add_machine(new)
        assert new.machine_id == 2
        sim = Simulator()
        t = _task(1)
        t.mark_mapped(2, 0.0)
        new.dispatch(t, sim, _sampler(1.0), lambda *_: None)
        assert seen == [2]

    def test_add_machine_rejects_duplicate_id(self):
        cluster = Cluster.homogeneous(2)
        with pytest.raises(ValueError, match="duplicate"):
            cluster.add_machine(Machine(1, 0))

    def test_online_machines_filters(self):
        cluster = Cluster.homogeneous(3)
        sim = Simulator()
        cluster[1].fail(sim)
        assert [m.machine_id for m in cluster.online_machines()] == [0, 2]


class TestDynamicsSpecValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            DynamicsSpec(window=(0.9, 0.1))

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            DynamicsSpec(failures=-1)

    def test_rejects_zero_min_online(self):
        with pytest.raises(ValueError):
            DynamicsSpec(min_online=0)

    def test_is_static(self):
        assert DynamicsSpec().is_static
        assert not DynamicsSpec(failures=1).is_static


class TestDynamicsDriver:
    def _run(self, pet, tasks, dyn, seed=5, heuristic="MM"):
        system = ServerlessSystem(
            pet, heuristic, seed=seed, dynamics=dyn
        )
        result = system.run(fresh_tasks(tasks))
        return system, result

    def test_schedule_is_deterministic_per_seed(self, pet_small, oversub_workload):
        dyn = DynamicsSpec(failures=2, mean_downtime=10.0, scale_up=1, scale_down=1)
        _, a = self._run(pet_small, oversub_workload, dyn)
        _, b = self._run(pet_small, oversub_workload, dyn)
        assert a.to_dict() == b.to_dict()

    def test_different_seed_different_churn_times(self, pet_small, oversub_workload):
        dyn = DynamicsSpec(failures=3, mean_downtime=10.0)
        _, a = self._run(pet_small, oversub_workload, dyn, seed=5)
        _, b = self._run(pet_small, oversub_workload, dyn, seed=6)
        # Same spec, different seed: churn counters may coincide but the
        # full outcome should not (schedules differ).
        assert a.to_dict() != b.to_dict()

    def test_failures_and_recoveries_counted(self, pet_small, oversub_workload):
        dyn = DynamicsSpec(failures=2, mean_downtime=5.0)
        system, result = self._run(pet_small, oversub_workload, dyn)
        stats = result.dynamics_stats
        assert stats["failures"] + stats["skipped"] == 2
        assert stats["recoveries"] <= stats["failures"]
        assert result.requeues == stats["requeued"]

    def test_min_online_floor_is_respected(self, pet_small, oversub_workload):
        # 2 machines, permanent failures: at most one can ever die.
        dyn = DynamicsSpec(failures=5, mean_downtime=0.0)
        system, result = self._run(pet_small, oversub_workload, dyn)
        assert len(system.cluster.online_machines()) >= 1
        assert result.dynamics_stats["failures"] <= 1
        assert result.dynamics_stats["skipped"] >= 4

    def test_scale_up_grows_cluster_and_metrics(self, pet_small, oversub_workload):
        dyn = DynamicsSpec(scale_up=2)
        system, result = self._run(pet_small, oversub_workload, dyn)
        assert len(system.cluster) == 4
        assert len(result.machine_busy_time) == 4
        assert result.dynamics_stats["scale_ups"] == 2
        # Added machines actually ran work.
        assert sum(result.machine_busy_time[2:]) > 0

    def test_static_spec_schedules_nothing(self, pet_small, small_workload):
        dyn = DynamicsSpec()
        system, result = self._run(pet_small, small_workload, dyn)
        assert result.dynamics_stats == {
            "failures": 0,
            "recoveries": 0,
            "scale_ups": 0,
            "scale_downs": 0,
            "skipped": 0,
            "evicted": 0,
            "requeued": 0,
            "interrupted": 0,
        }
        # Bit-identical to a system with no dynamics at all.
        baseline = ServerlessSystem(pet_small, "MM", seed=5).run(
            fresh_tasks(small_workload)
        )
        assert baseline.to_dict() == {**result.to_dict(), "dynamics_stats": {}}

    def test_requeued_victims_are_accounted(self, pet_small, oversub_workload):
        dyn = DynamicsSpec(failures=1, mean_downtime=5.0)
        system, result = self._run(pet_small, oversub_workload, dyn)
        stats = result.dynamics_stats
        # "requeued" counts readmissions exactly (= the accounting's
        # view); evictions that dropped on a passed deadline are the
        # difference to "evicted".
        assert system.accounting.total_requeues == stats["requeued"]
        assert stats["requeued"] <= stats["evicted"]
        # Every submitted task still reached a terminal state.
        assert all(t.is_terminal for t in system.tasks)

    def test_long_downtime_does_not_inflate_makespan(self, pet_small, oversub_workload):
        """A recovery scheduled far beyond the workload is a no-op; the
        reported makespan must be when the work ended, not when the
        trailing event fired."""
        static = ServerlessSystem(pet_small, "MM", seed=5).run(
            fresh_tasks(oversub_workload)
        )
        dyn = DynamicsSpec(failures=1, mean_downtime=50_000.0)
        system, result = self._run(pet_small, oversub_workload, dyn)
        assert result.dynamics_stats["failures"] == 1
        # Capacity loss may stretch the run somewhat, but not by the
        # ~exp(50k) downtime the no-op recovery event sits at.
        assert result.makespan < 4 * static.makespan
        assert result.makespan <= system.sim.now
        assert any(u > 0.3 for u in result.utilization())

    def test_all_tasks_dropped_trial_reports_zero_makespan(self, pet_small):
        """ISSUE 4 audit: a dynamics trial in which *no task ever reaches
        an outcome* (everything is finalized as a drop after the event
        queue drains) must report makespan 0.0 — not the drained clock,
        which only reflects arrival/churn bookkeeping, not work."""
        # queue_limit=0 means no machine ever has a free slot: arrivals
        # pool in the batch queue forever, no mapping event ever fires,
        # and a permanent failure (mean_downtime=0) never kicks one.
        dyn = DynamicsSpec(failures=1, mean_downtime=0.0)
        system = ServerlessSystem(
            pet_small, "MM", seed=5, dynamics=dyn, queue_limit=0
        )
        tasks = [_task(i, arrival=float(i), deadline=float(i) + 1.0) for i in range(4)]
        result = system.run(tasks)
        assert result.total == 4
        assert result.dropped_missed == 4  # every task dropped, none ran
        assert system.sim.now > 0.0
        assert result.makespan == 0.0

    def test_outcome_at_time_zero_is_a_real_makespan(self, pet_small):
        """An outcome at exactly t=0.0 is a real last-work timestamp; the
        pre-fix 0.0 sentinel conflated it with "no outcome yet" and fell
        back to the dynamics-inflated drained clock."""
        dyn = DynamicsSpec(failures=1, mean_downtime=0.0)
        system = ServerlessSystem(
            pet_small, "MM", seed=5, dynamics=dyn, queue_limit=0
        )
        probe = _task(0, arrival=0.0, deadline=0.0)
        system.allocator.observer("dropped_missed", probe, 0.0)
        system.run([_task(1, arrival=3.0, deadline=4.0)])
        assert system.sim.now >= 3.0
        assert system.result().makespan == 0.0

    def test_admission_controller_gates_requeued_victims(self, pet_small, oversub_workload):
        from repro.system.admission import AdmissionController

        dyn = DynamicsSpec(failures=2, mean_downtime=8.0)
        system = ServerlessSystem(pet_small, "MM", seed=5, dynamics=dyn)
        gate = AdmissionController(system, threshold=0.5)
        result = gate.run(fresh_tasks(oversub_workload))
        assert all(t.is_terminal for t in system.tasks)
        evicted = result.dynamics_stats["evicted"]
        if evicted:
            # Victims re-faced the gate: each one shows up a second time
            # in the admit/reject tallies beyond its original arrival.
            assert gate.stats.total > result.total - result.unfinished
            assert result.dynamics_stats["requeued"] <= evicted
        # Deadline-expired victims must stay *reactive* drops (the gate
        # only files live rejections under proactive): every proactive
        # drop the gate produced was alive when judged.
        for task in gate.rejected_tasks:
            assert task.dropped_at <= task.deadline

    def test_timeline_recorder_accepts_requeued_events(self, pet_small, oversub_workload):
        from repro.analysis.timeline import TimelineRecorder

        recorder = TimelineRecorder()
        dyn = DynamicsSpec(failures=2, mean_downtime=8.0)
        system = ServerlessSystem(
            pet_small, "MM", seed=5, dynamics=dyn, observer=recorder
        )
        result = system.run(fresh_tasks(oversub_workload))
        assert recorder.counts()["requeued"] == result.dynamics_stats["requeued"]

    def test_immediate_mode_survives_churn(self, pet_small, oversub_workload):
        dyn = DynamicsSpec(failures=2, mean_downtime=8.0)
        system, result = self._run(
            pet_small, oversub_workload, dyn, heuristic="MCT"
        )
        assert all(t.is_terminal for t in system.tasks)
        assert result.total == len(oversub_workload)

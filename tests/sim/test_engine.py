"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Priority, Simulator


class TestScheduling:
    def test_initial_time(self):
        assert Simulator().now == 0.0
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(4.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.5]
        assert sim.now == 4.5

    def test_same_time_priority_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("arrival"), priority=Priority.ARRIVAL)
        sim.schedule(1.0, lambda: fired.append("completion"), priority=Priority.COMPLETION)
        sim.run()
        assert fired == ["completion", "arrival"]

    def test_same_time_same_priority_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(2.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule(9.0, lambda: None)

    def test_schedule_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            Simulator().schedule(float("nan"), lambda: None)

    def test_schedule_in_relative(self):
        sim = Simulator(start_time=3.0)
        seen = []
        sim.schedule_in(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_in_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule_in(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(handle)
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.cancel(handle)
        sim.cancel(handle)
        sim.run()

    def test_cancel_does_not_disturb_others(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(1.0, lambda: fired.append("b"))
        sim.cancel(h)
        sim.run()
        assert fired == ["b"]

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(h)
        assert sim.pending_events == 1


class TestRunControl:
    def test_run_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_run_until_future_advances_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        sim.run()
        assert fired == [5]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_fired_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_fired == 4

    def test_step_returns_false_on_empty(self):
        assert Simulator().step() is False

    def test_step_fires_one(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(RuntimeError, match="reentrant"):
            sim.run()

    def test_exception_propagates_and_releases_lock(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("boom")

        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        # engine is usable again
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]


class TestDeterminism:
    def test_large_interleaving_deterministic(self):
        def run_once():
            sim = Simulator()
            order = []
            for i in range(200):
                sim.schedule((i * 7) % 50 / 10.0, lambda i=i: order.append(i), priority=i % 3)
            sim.run()
            return order

        assert run_once() == run_once()

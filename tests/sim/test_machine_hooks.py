"""Tests for per-task sampler/callback hooks and machine-level reaping."""


from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.task import Task, TaskStatus


def make_task(i=0, deadline=100.0):
    return Task(task_id=i, task_type=0, arrival=0.0, deadline=deadline)


class TestPerTaskHooks:
    def test_each_task_uses_its_own_sampler(self):
        """A task must start with the sampler it was dispatched with, even
        when a different task's dispatch happened in between."""
        sim, m = Simulator(), Machine(0, 0)
        durations = {}

        def on_complete(task, machine):
            durations[task.task_id] = task.exec_time

        for tid, dur in ((0, 4.0), (1, 6.0), (2, 2.5)):
            t = make_task(tid)
            t.mark_mapped(0, sim.now)
            m.dispatch(t, sim, lambda task, mach, d=dur: d, on_complete)
        sim.run()
        assert durations == {0: 4.0, 1: 6.0, 2: 2.5}

    def test_each_task_uses_its_own_callback(self):
        sim, m = Simulator(), Machine(0, 0)
        calls = []
        for tid in range(2):
            t = make_task(tid)
            t.mark_mapped(0, sim.now)
            m.dispatch(
                t,
                sim,
                lambda *a: 1.0,
                lambda task, mach, tag=f"cb{tid}": calls.append((tag, task.task_id)),
            )
        sim.run()
        assert calls == [("cb0", 0), ("cb1", 1)]

    def test_hooks_cleaned_up(self):
        sim, m = Simulator(), Machine(0, 0)
        t = make_task(0)
        t.mark_mapped(0, sim.now)
        m.dispatch(t, sim, lambda *a: 1.0, lambda *a: None)
        sim.run()
        assert m._task_hooks == {}

    def test_hooks_cleaned_on_remove(self):
        sim, m = Simulator(), Machine(0, 0)
        t1, t2 = make_task(1), make_task(2)
        for t in (t1, t2):
            t.mark_mapped(0, sim.now)
            m.dispatch(t, sim, lambda *a: 5.0, lambda *a: None)
        m.remove(t2)
        assert 2 not in m._task_hooks
        sim.run()
        assert m._task_hooks == {}


class TestMachineReaping:
    def test_missed_head_skipped_at_start(self):
        sim, m = Simulator(), Machine(0, 0)
        reaped = []
        m.on_reap = reaped.append
        runner = make_task(0)
        doomed = make_task(1, deadline=3.0)
        ok = make_task(2)
        for t in (runner, doomed, ok):
            t.mark_mapped(0, sim.now)
            m.dispatch(t, sim, lambda *a: 5.0, lambda *a: None)
        sim.run()
        assert [t.task_id for t in reaped] == [1]
        assert ok.status is TaskStatus.COMPLETED_ON_TIME
        assert ok.started_at == 5.0  # started right after the runner

    def test_reaping_without_hook_still_skips(self):
        sim, m = Simulator(), Machine(0, 0)
        runner = make_task(0)
        doomed = make_task(1, deadline=3.0)
        for t in (runner, doomed):
            t.mark_mapped(0, sim.now)
            m.dispatch(t, sim, lambda *a: 5.0, lambda *a: None)
        sim.run()
        # skipped, never started; status is whatever the caller set
        assert doomed.started_at is None

    def test_chain_of_missed_heads_all_reaped(self):
        sim, m = Simulator(), Machine(0, 0)
        reaped = []
        m.on_reap = reaped.append
        runner = make_task(0)
        runner.mark_mapped(0, sim.now)
        m.dispatch(runner, sim, lambda *a: 10.0, lambda *a: None)
        for tid in (1, 2, 3):
            t = make_task(tid, deadline=4.0)
            t.mark_mapped(0, sim.now)
            m.dispatch(t, sim, lambda *a: 10.0, lambda *a: None)
        sim.run()
        assert [t.task_id for t in reaped] == [1, 2, 3]

    def test_deadline_exactly_now_not_reaped(self):
        """Reaping uses strict 'now > deadline' — completing exactly at
        the deadline is on time, so starting at it is still legal."""
        sim, m = Simulator(), Machine(0, 0)
        runner = make_task(0)
        edge = make_task(1, deadline=5.0)
        for t in (runner, edge):
            t.mark_mapped(0, sim.now)
            m.dispatch(t, sim, lambda *a: 5.0, lambda *a: None)
        sim.run()
        assert edge.started_at == 5.0
        assert edge.status is TaskStatus.COMPLETED_LATE  # finished at 10

"""Tests for the timeline analysis package."""

import numpy as np
import pytest

from repro import PruningConfig, ServerlessSystem
from repro.analysis import TimelineRecorder
from repro.sim.task import Task

from tests.conftest import fresh_tasks


@pytest.fixture
def recorded(pet_small, oversub_workload):
    rec = TimelineRecorder()
    sys = ServerlessSystem(
        pet_small,
        "MM",
        pruning=PruningConfig.paper_default(),
        seed=3,
        observer=rec,
    )
    sys.run(fresh_tasks(oversub_workload))
    return rec, sys


class TestRecording:
    def test_every_arrival_recorded(self, recorded, oversub_workload):
        rec, _ = recorded
        assert rec.counts()["arrived"] == len(oversub_workload)

    def test_completions_match_result(self, recorded):
        rec, sys = recorded
        res = sys.result()
        assert rec.counts()["completed"] == res.on_time + res.late

    def test_drops_match_result(self, recorded):
        rec, sys = recorded
        res = sys.result()
        c = rec.counts()
        # finalized leftovers are marked outside the allocator, so the
        # timeline may record fewer reactive drops than the result.
        assert c["dropped_proactive"] == res.dropped_proactive
        assert c["dropped_missed"] <= res.dropped_missed

    def test_on_time_flag_present_only_for_completions(self, recorded):
        rec, _ = recorded
        for e in rec.events:
            if e.kind == "completed":
                assert e.on_time is not None
            else:
                assert e.on_time is None

    def test_unknown_kind_rejected(self):
        rec = TimelineRecorder()
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=1.0)
        with pytest.raises(ValueError):
            rec("exploded", t, 0.0)

    def test_len_and_summary(self, recorded):
        rec, _ = recorded
        assert len(rec) > 0
        s = rec.summary()
        assert "arrivals" in s and "defers" in s


class TestSeries:
    def test_rate_series_integrates_to_count(self, recorded):
        rec, _ = recorded
        window = 10.0
        centers, rates = rec.rate_series("arrived", window)
        assert rates.sum() * window == pytest.approx(rec.counts()["arrived"])

    def test_on_time_rate_bounded(self, recorded):
        rec, _ = recorded
        _, ratio = rec.on_time_rate_series(window=10.0)
        valid = ratio[~np.isnan(ratio)]
        assert np.all(valid >= 0.0) and np.all(valid <= 1.0)

    def test_backlog_nonnegative_and_ends_at_zero(self, recorded):
        rec, _ = recorded
        _, backlog = rec.backlog_series(window=5.0)
        assert np.all(backlog >= 0.0)

    def test_backlog_empty_recorder(self):
        rec = TimelineRecorder()
        centers, backlog = rec.backlog_series(window=5.0, span=20.0)
        assert np.all(backlog == 0.0)

    def test_bad_window(self, recorded):
        rec, _ = recorded
        with pytest.raises(ValueError):
            rec.rate_series("arrived", window=0.0)

    def test_defer_churn_counts(self, recorded):
        rec, _ = recorded
        churn = rec.defer_churn()
        assert sum(churn.values()) == rec.counts()["deferred"]
        assert all(v >= 1 for v in churn.values())

    def test_times_of_sorted_increasing_events(self, recorded):
        rec, _ = recorded
        times = rec.times_of("completed")
        assert np.all(np.diff(times) >= 0)

"""Shared fixtures: small deterministic PET matrices, workloads, systems,
and the virtual-clock service harness (no test ever sleeps on the wall
clock — live-service scenarios run under a :class:`VirtualClock` advanced
explicitly by :func:`run_until_quiescent` or the test itself)."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import (
    PETMatrix,
    PMF,
    ServerlessSystem,
    Task,
    WorkloadSpec,
    generate_pet_matrix,
    generate_workload,
)
from repro.service import AsyncTimeline, SchedulerService, VirtualClock


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def pet_small() -> PETMatrix:
    """3 task types × 2 machine types; small supports, fast convolutions."""
    return generate_pet_matrix(
        3, 2, seed=7, mean_range=(3.0, 8.0), samples_per_cell=200
    )


@pytest.fixture(scope="session")
def pet_paper() -> PETMatrix:
    """The paper's 12×8 inconsistent matrix."""
    return generate_pet_matrix(seed=2019)


@pytest.fixture(scope="session")
def pet_homog() -> PETMatrix:
    return generate_pet_matrix(seed=2019, heterogeneity="homogeneous")


def make_deterministic_pet(means: np.ndarray) -> PETMatrix:
    """PET whose cells are point masses at the given means — execution
    times become deterministic, which makes schedules hand-checkable."""
    means = np.asarray(means, dtype=np.float64)
    rows = [
        [PMF.delta(float(means[t, m])) for m in range(means.shape[1])]
        for t in range(means.shape[0])
    ]
    return PETMatrix(rows, means)


@pytest.fixture
def det_pet() -> PETMatrix:
    """2 task types × 2 machines, deterministic:
    type 0 runs in 4 on machine 0 / 10 on machine 1;
    type 1 runs in 10 on machine 0 / 4 on machine 1 (strong affinity)."""
    return make_deterministic_pet(np.array([[4.0, 10.0], [10.0, 4.0]]))


@pytest.fixture
def small_workload(pet_small) -> list[Task]:
    spec = WorkloadSpec(num_tasks=120, time_span=80.0, num_task_types=3)
    return generate_workload(spec, pet_small, np.random.default_rng(99))


@pytest.fixture
def oversub_workload(pet_small) -> list[Task]:
    """Heavily oversubscribed: ~3× the 2-machine cluster's capacity."""
    spec = WorkloadSpec(num_tasks=200, time_span=60.0, num_task_types=3)
    return generate_workload(spec, pet_small, np.random.default_rng(17))


def fresh_tasks(tasks: list[Task]) -> list[Task]:
    """Deep-copy task identities so each system run starts PENDING."""
    return [
        Task(task_id=t.task_id, task_type=t.task_type, arrival=t.arrival, deadline=t.deadline)
        for t in tasks
    ]


@pytest.fixture
def make_system(pet_small):
    """Factory for small serverless systems over the session PET."""

    def _make(heuristic="MM", pruning=None, **kwargs) -> ServerlessSystem:
        kwargs.setdefault("seed", 5)
        return ServerlessSystem(pet_small, heuristic, pruning=pruning, **kwargs)

    return _make


# ----------------------------------------------------------------------
# Live-service harness: virtual clock + deterministic asyncio runner.
# ----------------------------------------------------------------------
@pytest.fixture
def run_async():
    """Deterministic asyncio runner: one fresh event loop per scenario.

    Combined with :class:`VirtualClock` services this is the whole
    determinism story — nothing in a scenario can block on real time,
    so ``asyncio.run`` drives it to completion without a single
    wall-clock sleep.
    """

    def _run(coro):
        return asyncio.run(coro)

    return _run


@pytest.fixture
def make_service(pet_small):
    """Factory for virtual-clock scheduler services over the session PET.

    Returns ``(service, clock)`` so tests can advance time explicitly;
    system construction mirrors :fixture:`make_system` (seed 5 default).
    """

    def _make(
        heuristic="MM",
        pruning=None,
        *,
        start_time: float = 0.0,
        system_kwargs: dict | None = None,
        **service_kwargs,
    ) -> tuple[SchedulerService, VirtualClock]:
        clock = VirtualClock(start_time)
        kwargs = {"seed": 5, **(system_kwargs or {})}
        system = ServerlessSystem(
            pet_small, heuristic, pruning=pruning, sim=AsyncTimeline(clock), **kwargs
        )
        return SchedulerService(system, **service_kwargs), clock

    return _make

"""Clocks and the live timeline: determinism and simulator equivalence.

The pinned contracts:

* :class:`VirtualClock` never touches the OS clock and cannot miss a
  pulse — including the pathological interleaving where the pulse fires
  synchronously right after a waiter's deadline check (the lost-wakeup
  regression);
* :class:`AsyncTimeline` releases same-timestamp events in *exactly*
  the simulator's heap order, because both heaps compare the same
  ``_QueueEntry`` dataclass.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import AsyncTimeline, VirtualClock, WallClock
from repro.sim.engine import Priority, Simulator


# ----------------------------------------------------------------------
# VirtualClock.
# ----------------------------------------------------------------------
def test_virtual_clock_starts_and_advances():
    clock = VirtualClock(start_time=5.0)
    assert clock.now() == 5.0
    clock.advance(2.5)
    assert clock.now() == 7.5
    clock.advance_to(7.5)  # no-op advance to the same instant is legal
    assert clock.now() == 7.5


def test_virtual_clock_refuses_rewind_and_negative_advance():
    clock = VirtualClock(start_time=3.0)
    with pytest.raises(ValueError, match="rewind"):
        clock.advance_to(2.9)
    with pytest.raises(ValueError, match="negative"):
        clock.advance(-0.1)


def test_virtual_clock_resume_at_rewinds_for_restore():
    """``resume_at`` is the snapshot-restore anchor: unlike advance_to it
    may set any time, including one behind the current reading."""
    clock = VirtualClock(start_time=10.0)
    clock.resume_at(4.0)
    assert clock.now() == 4.0


def test_wait_until_returns_immediately_when_deadline_already_reached(run_async):
    async def scenario():
        clock = VirtualClock(start_time=8.0)
        await clock.wait_until(8.0, asyncio.Event())
        await clock.wait_until(3.0, asyncio.Event())

    run_async(scenario())


def test_wait_until_wakes_on_wake_event_without_deadline(run_async):
    async def scenario():
        clock = VirtualClock()
        wake = asyncio.Event()
        waiter = asyncio.ensure_future(clock.wait_until(None, wake))
        for _ in range(3):
            await asyncio.sleep(0)
        assert not waiter.done()
        wake.set()
        await waiter

    run_async(scenario())


def test_wait_until_cannot_miss_a_synchronous_pulse(run_async):
    """The lost-wakeup regression: a pulse fired synchronously (no await
    between the waiter's park and the advance) must still wake it.

    An ``asyncio.Event``-based tick loses this race — ``ensure_future``
    defers ``Event.wait()``'s first step, so a set-then-clear pulse can
    land before the waiter registers.  The clock registers plain futures
    synchronously inside ``wait_until``, which closes the window.
    """

    async def scenario():
        clock = VirtualClock()
        wake = asyncio.Event()
        waiter = asyncio.ensure_future(clock.wait_until(9.0, wake))
        # One yield: the waiter checks its deadline and parks.
        await asyncio.sleep(0)
        # Synchronous advance — no further awaits before the assert loop.
        clock.advance_to(9.0)
        for _ in range(5):
            await asyncio.sleep(0)
        assert waiter.done()
        await waiter

    run_async(scenario())


def test_wait_until_repulses_until_deadline_reached(run_async):
    """Partial advances re-check and re-park; the deadline advance wakes."""

    async def scenario():
        clock = VirtualClock()
        wake = asyncio.Event()
        waiter = asyncio.ensure_future(clock.wait_until(10.0, wake))
        for t in (2.0, 5.0, 9.9):
            await asyncio.sleep(0)
            clock.advance_to(t)
            for _ in range(3):
                await asyncio.sleep(0)
            assert not waiter.done()
        clock.advance_to(10.0)
        for _ in range(3):
            await asyncio.sleep(0)
        assert waiter.done()
        await waiter

    run_async(scenario())


def test_virtual_clock_leaves_no_waiters_behind(run_async):
    async def scenario():
        clock = VirtualClock()
        wake = asyncio.Event()
        wake.set()
        await clock.wait_until(100.0, wake)  # returns via wake, not pulse
        assert clock._waiters == []

    run_async(scenario())


# ----------------------------------------------------------------------
# WallClock (no real sleeps: only the no-wait paths are exercised).
# ----------------------------------------------------------------------
def test_wall_clock_validates_rate_and_advances_monotonically():
    with pytest.raises(ValueError, match="rate"):
        WallClock(rate=0.0)
    clock = WallClock(rate=50.0, start_time=3.0)
    first = clock.now()
    assert first >= 3.0
    assert clock.now() >= first


def test_wall_clock_resume_at_reanchors():
    clock = WallClock(rate=1.0)
    clock.resume_at(42.0)
    assert 42.0 <= clock.now() < 43.0


def test_wall_clock_wait_until_no_wait_paths(run_async):
    async def scenario():
        clock = WallClock(rate=1.0, start_time=10.0)
        wake = asyncio.Event()
        wake.set()
        await clock.wait_until(10_000.0, wake)  # wake already set
        await clock.wait_until(5.0, asyncio.Event())  # deadline passed

    run_async(scenario())


def test_wall_clock_wait_until_wakes_on_event_before_deadline(run_async):
    async def scenario():
        clock = WallClock(rate=1.0)
        wake = asyncio.Event()
        waiter = asyncio.ensure_future(clock.wait_until(10_000.0, wake))
        await asyncio.sleep(0)
        wake.set()
        await waiter  # resolves via the event, millennia before timeout

    run_async(scenario())


# ----------------------------------------------------------------------
# AsyncTimeline: the simulator contract.
# ----------------------------------------------------------------------
def test_timeline_schedule_guards_match_simulator():
    timeline = AsyncTimeline(VirtualClock(start_time=5.0))
    with pytest.raises(ValueError, match="NaN"):
        timeline.schedule(float("nan"), lambda: None)
    with pytest.raises(ValueError, match="past"):
        timeline.schedule(4.0, lambda: None)
    with pytest.raises(ValueError, match="negative"):
        timeline.schedule_in(-1.0, lambda: None)


def test_timeline_cancel_and_counters():
    clock = VirtualClock()
    timeline = AsyncTimeline(clock)
    fired = []
    keep = timeline.schedule(1.0, lambda: fired.append("keep"))
    drop = timeline.schedule(1.0, lambda: fired.append("drop"))
    assert timeline.pending_events == 2
    timeline.cancel(drop)
    assert timeline.pending_events == 1
    assert timeline.next_event_time() == 1.0
    clock.advance_to(1.0)
    assert timeline.fire_due() == 1
    assert fired == ["keep"]
    assert timeline.events_fired == 1
    assert timeline.next_event_time() is None
    assert keep.time == 1.0


def test_timeline_now_ratchets_to_fired_event_then_clock():
    clock = VirtualClock()
    timeline = AsyncTimeline(clock)
    seen = []
    timeline.schedule(3.0, lambda: seen.append(timeline.now))
    clock.advance_to(3.0)
    timeline.fire_due()
    assert seen == [3.0]
    clock.advance_to(7.0)
    assert timeline.now == 7.0  # clock ahead of last event
    timeline.sync_to_clock()
    assert timeline._now == 7.0


def test_timeline_schedule_in_anchors_at_live_clock():
    """From a live ingress context (clock ahead of the last fired event)
    a relative delay must anchor at the *fresh* clock time — anchoring at
    the stale ``_now`` would schedule into the past."""
    clock = VirtualClock()
    timeline = AsyncTimeline(clock)
    clock.advance_to(6.0)
    handle = timeline.schedule_in(2.0, lambda: None)
    assert handle.time == 8.0


def test_timeline_fires_in_simulator_heap_order():
    """Same (time, priority) schedule → byte-identical release order.

    This is the keystone of replay-vs-live equivalence: both drivers
    push the same ``_QueueEntry`` dataclass, so ascending-priority then
    scheduling-order tie-breaking is shared by construction.
    """
    schedule = [
        (2.0, Priority.MAPPING, "map@2"),
        (1.0, Priority.ARRIVAL, "arr@1"),
        (2.0, Priority.COMPLETION, "done@2"),
        (2.0, Priority.ARRIVAL, "arr@2a"),
        (2.0, Priority.ARRIVAL, "arr@2b"),
        (1.0, Priority.COMPLETION, "done@1"),
        (3.0, Priority.CONTROL, "ctl@3"),
        (2.0, Priority.CONTROL, "ctl@2"),
    ]

    sim_order: list[str] = []
    sim = Simulator()
    for time, priority, label in schedule:
        sim.schedule(time, (lambda x=label: sim_order.append(x)), priority=priority)
    sim.run()

    live_order: list[str] = []
    clock = VirtualClock()
    timeline = AsyncTimeline(clock)
    for time, priority, label in schedule:
        timeline.schedule(time, (lambda x=label: live_order.append(x)), priority=priority)
    while (nxt := timeline.next_event_time()) is not None:
        clock.advance_to(nxt)
        timeline.fire_due()

    assert live_order == sim_order
    assert timeline.now == sim.now


def test_timeline_callbacks_can_reschedule():
    """An event scheduling a follow-up at its own instant fires in the
    same ``fire_due`` sweep (exactly like the simulator's step loop)."""
    clock = VirtualClock()
    timeline = AsyncTimeline(clock)
    order = []

    def first():
        order.append("first")
        timeline.schedule(timeline.now, lambda: order.append("chained"))

    timeline.schedule(1.0, first)
    clock.advance_to(1.0)
    assert timeline.fire_due() == 2
    assert order == ["first", "chained"]

"""HTTP endpoint fault injection: malformed payloads, garbled request
lines, and mid-request disconnects must leave the service serving.

The server binds an ephemeral loopback port per scenario; clients are
raw asyncio streams so the tests can speak broken HTTP on purpose.
"""

from __future__ import annotations

import asyncio
import json

from repro.service import snapshot_service
from repro.service.http import MAX_BODY, ServiceHTTP
from repro.service.service import run_until_quiescent


async def _raw_request(port: int, payload: bytes) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    body = b""
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
    body = await reader.read()
    writer.close()
    await writer.wait_closed()
    return status, json.loads(body) if body else {}


def _http(method: str, path: str, body: bytes = b"") -> bytes:
    head = f"{method} {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    return head.encode() + body


async def _post_task(port: int, record: dict) -> tuple[int, dict]:
    return await _raw_request(
        port, _http("POST", "/v1/tasks", json.dumps(record).encode())
    )


async def _serving(make_service, **service_kwargs):
    service, clock = make_service(**service_kwargs)
    http = ServiceHTTP(service)
    await service.start()
    await http.start()
    return service, clock, http


def test_post_task_admits_and_reports_decision(make_service, run_async):
    async def scenario():
        service, clock, http = await _serving(make_service)
        status, body = await _post_task(http.port, {"task_type": 0, "deadline_slack": 50.0})
        assert status == 202
        assert body["status"] == "admitted"
        assert body["task_id"] == 0
        await run_until_quiescent(service)
        status, stats = await _raw_request(http.port, _http("GET", "/v1/stats"))
        assert status == 200
        assert stats["ingress"]["admitted"] == 1
        assert stats["accounting"]["on_time"] + stats["accounting"]["late"] == 1
        await http.stop()
        await service.stop()

    run_async(scenario())


def test_healthz_and_unknown_paths(make_service, run_async):
    async def scenario():
        service, _, http = await _serving(make_service)
        status, body = await _raw_request(http.port, _http("GET", "/v1/healthz"))
        assert (status, body["status"]) == (200, "ok")
        status, _ = await _raw_request(http.port, _http("GET", "/v1/nope"))
        assert status == 404
        status, _ = await _raw_request(http.port, _http("DELETE", "/v1/tasks"))
        assert status == 405
        status, _ = await _raw_request(http.port, _http("POST", "/v1/stats"))
        assert status == 405
        await http.stop()
        await service.stop()

    run_async(scenario())


def test_malformed_json_is_structured_400_and_service_survives(make_service, run_async):
    async def scenario():
        service, _, http = await _serving(make_service)
        status, body = await _raw_request(
            http.port, _http("POST", "/v1/tasks", b"{not json")
        )
        assert status == 400
        assert body["status"] == "malformed"
        # Non-object JSON takes the field-level reject path.
        status, body = await _raw_request(http.port, _http("POST", "/v1/tasks", b"[1, 2]"))
        assert status == 400
        assert "must be an object" in body["error"]
        # Missing fields likewise.
        status, body = await _post_task(http.port, {"task_type": 0})
        assert status == 400
        assert "missing fields" in body["error"]
        # The service is still up and admits the next good record.
        status, body = await _post_task(http.port, {"task_type": 1, "deadline_slack": 40.0})
        assert status == 202
        await run_until_quiescent(service)
        assert service.stats.malformed == 3
        assert service.stats.admitted == 1
        await http.stop()
        await service.stop()

    run_async(scenario())


def test_garbled_request_line_and_bad_headers_yield_400(make_service, run_async):
    async def scenario():
        service, _, http = await _serving(make_service)
        status, body = await _raw_request(http.port, b"BANANAS\r\n\r\n")
        assert status == 400
        assert "malformed request line" in body["error"]
        status, body = await _raw_request(
            http.port, b"POST /v1/tasks HTTP/1.1\r\nContent-Length: soup\r\n\r\n"
        )
        assert status == 400
        assert "Content-Length" in body["error"]
        oversized = f"POST /v1/tasks HTTP/1.1\r\nContent-Length: {MAX_BODY + 1}\r\n\r\n"
        status, body = await _raw_request(http.port, oversized.encode())
        assert status == 400
        assert "too large" in body["error"]
        # Still serving.
        status, _ = await _raw_request(http.port, _http("GET", "/v1/healthz"))
        assert status == 200
        await http.stop()
        await service.stop()

    run_async(scenario())


def test_client_disconnect_mid_request_drains_cleanly(make_service, run_async):
    async def scenario():
        service, _, http = await _serving(make_service)
        # Promise a body, send half of it, vanish.
        reader, writer = await asyncio.open_connection("127.0.0.1", http.port)
        writer.write(b"POST /v1/tasks HTTP/1.1\r\nContent-Length: 64\r\n\r\n{half")
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        # Let the handler observe the EOF and drain the connection.
        for _ in range(10):
            await asyncio.sleep(0)
        # Nothing reached the pump; the service still serves.
        assert service.stats.received == 0
        status, body = await _post_task(http.port, {"task_type": 0, "deadline_slack": 30.0})
        assert (status, body["status"]) == (202, "admitted")
        await run_until_quiescent(service)
        await http.stop()
        await service.stop()
        assert service.finalize().total == 1

    run_async(scenario())


def test_decision_statuses_map_to_http_codes(make_service, run_async):
    async def scenario():
        from repro import PruningConfig

        service, _, http = await _serving(
            make_service,
            pruning=PruningConfig.paper_default(),
            admission_threshold=1.0,
            ingress_capacity=1,
        )
        # Rejected by the Eq.-2 gate: unreachable slack.
        status, body = await _raw_request(
            http.port,
            _http(
                "POST", "/v1/tasks",
                json.dumps({"task_type": 2, "deadline_slack": 0.25}).encode(),
            ),
        )
        # The single-slot queue drains between requests, so this lands at
        # the admission gate and is rejected there.
        assert (status, body["status"]) == (422, "rejected")
        await run_until_quiescent(service)
        await http.stop()
        await service.stop()

    run_async(scenario())


def test_snapshot_endpoint_round_trips(make_service, run_async):
    async def scenario():
        service, _, http = await _serving(make_service)
        status, body = await _post_task(http.port, {"task_type": 0, "deadline_slack": 50.0})
        assert status == 202
        await run_until_quiescent(service, max_wakeups=0)
        status, snap = await _raw_request(http.port, _http("POST", "/v1/snapshot"))
        assert status == 200
        # The endpoint serves exactly what the library call captures.
        direct = snapshot_service(service)
        assert json.dumps(snap, sort_keys=True) == json.dumps(direct, sort_keys=True)
        await run_until_quiescent(service)
        await http.stop()
        await service.stop()

    run_async(scenario())


def test_snapshot_endpoint_conflicts_on_busy_ingress(make_service, run_async):
    async def scenario():
        from repro.sim.dynamics import DynamicsSpec

        service, _, http = await _serving(
            make_service,
            system_kwargs={"seed": 5, "dynamics": DynamicsSpec(failures=1)},
        )
        status, body = await _raw_request(http.port, _http("POST", "/v1/snapshot"))
        assert status == 409
        assert "dynamics" in body["error"]
        await http.stop()
        await service.stop()

    run_async(scenario())

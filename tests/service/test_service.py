"""The scheduler service: live ingress, backpressure, admission, and the
replay-vs-live equivalence on a small workload.

Everything runs under a :class:`VirtualClock` driven by
:func:`run_until_quiescent` — zero wall-clock sleeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PruningConfig, ServerlessSystem, WorkloadSpec, generate_workload
from repro.service import AsyncTimeline, SchedulerService, VirtualClock, WallClock
from repro.service.service import run_until_quiescent

from tests.conftest import fresh_tasks


# ----------------------------------------------------------------------
# Construction guards.
# ----------------------------------------------------------------------
def test_service_requires_async_timeline(make_system):
    with pytest.raises(TypeError, match="AsyncTimeline"):
        SchedulerService(make_system())  # default Simulator timeline


def test_service_validates_parameters(make_service):
    with pytest.raises(ValueError, match="admission_threshold"):
        make_service(admission_threshold=1.5)
    with pytest.raises(ValueError, match="ingress_capacity"):
        make_service(ingress_capacity=0)


def test_service_double_start_raises(make_service, run_async):
    async def scenario():
        service, _ = make_service()
        await service.start()
        with pytest.raises(RuntimeError, match="already started"):
            await service.start()
        await service.stop()
        await service.stop()  # idempotent

    run_async(scenario())


# ----------------------------------------------------------------------
# Live ingress.
# ----------------------------------------------------------------------
def test_offer_admits_and_completes_one_task(make_service, run_async):
    async def scenario():
        service, clock = make_service()
        await service.start()
        decision = await service.offer({"task_type": 1, "deadline_slack": 50.0})
        assert decision.status == "admitted"
        assert decision.task_id == 0
        await run_until_quiescent(service)
        await service.stop()
        result = service.finalize()
        assert result.total == 1
        assert result.on_time + result.late == 1
        assert clock.now() == result.makespan > 0.0

    run_async(scenario())


def test_offer_stamps_arrival_with_current_service_time(make_service, run_async):
    async def scenario():
        service, clock = make_service()
        await service.start()
        clock.advance_to(12.5)
        decision = await service.offer({"task_type": 0, "deadline_slack": 30.0})
        assert decision.status == "admitted"
        assert decision.time == 12.5
        task = service.system.tasks[0]
        assert task.arrival == 12.5
        assert task.deadline == 42.5
        await run_until_quiescent(service)
        await service.stop()

    run_async(scenario())


@pytest.mark.parametrize(
    "record, fragment",
    [
        ("not a dict", "must be an object"),
        ({}, "missing fields"),
        ({"task_type": 0}, "deadline_slack"),
        ({"task_type": "x", "deadline_slack": 5.0}, "bad field value"),
        ({"task_type": 99, "deadline_slack": 5.0}, "outside model range"),
        ({"task_type": 0, "deadline_slack": 0.0}, "must be positive"),
        ({"task_type": 0, "deadline_slack": -2.0}, "must be positive"),
    ],
)
def test_malformed_records_resolve_immediately(make_service, run_async, record, fragment):
    async def scenario():
        service, _ = make_service()
        await service.start()
        decision = await service.offer(record)
        assert decision.status == "malformed"
        assert fragment in decision.error
        assert decision.to_dict()["status"] == "malformed"
        # The core never saw it: no arrival recorded, no task id burned.
        assert service.system.accounting.total_arrived == 0
        assert service._next_task_id == 0
        # The service is still fully alive afterwards.
        good = await service.offer({"task_type": 0, "deadline_slack": 20.0})
        assert good.status == "admitted"
        await run_until_quiescent(service)
        await service.stop()
        assert service.stats.malformed == 1
        assert service.stats.admitted == 1

    run_async(scenario())


def test_backpressure_sheds_beyond_ingress_capacity(make_service, run_async):
    async def scenario():
        service, _ = make_service(ingress_capacity=2)
        await service.start()
        # Enqueue without yielding: the pump cannot drain between offers,
        # so the third offer sees a full queue and sheds immediately.
        futures = [
            service.offer({"task_type": 0, "deadline_slack": 40.0}) for _ in range(3)
        ]
        shed = await futures[2]
        assert shed.status == "shed"
        assert "ingress queue full" in shed.error
        first, second = await futures[0], await futures[1]
        assert first.status == second.status == "admitted"
        await run_until_quiescent(service)
        await service.stop()
        assert service.stats.to_dict() == {
            "received": 3,
            "admitted": 2,
            "rejected": 0,
            "shed": 1,
            "malformed": 0,
        }
        # Shed offers never reach the core: only 2 arrivals accounted.
        assert service.system.accounting.total_arrived == 2

    run_async(scenario())


def test_admission_gate_rejects_hopeless_task(make_service, run_async):
    async def scenario():
        # Threshold 1.0: only a certain-success task may pass; a slack
        # this small is unreachable on any machine.
        service, _ = make_service(
            pruning=PruningConfig.paper_default(), admission_threshold=1.0
        )
        await service.start()
        decision = await service.offer({"task_type": 2, "deadline_slack": 0.25})
        assert decision.status == "rejected"
        assert decision.chance is not None and decision.chance < 1.0
        await run_until_quiescent(service)
        await service.stop()
        result = service.finalize()
        # The rejection is a fully-accounted proactive drop.
        assert result.total == 1
        assert result.dropped_proactive == 1
        assert service.stats.rejected == 1

    run_async(scenario())


def test_admission_gate_admits_easy_task_with_chance(make_service, run_async):
    async def scenario():
        service, _ = make_service(
            pruning=PruningConfig.paper_default(), admission_threshold=0.5
        )
        await service.start()
        decision = await service.offer({"task_type": 0, "deadline_slack": 200.0})
        assert decision.status == "admitted"
        assert decision.chance is not None and decision.chance >= 0.5
        assert decision.to_dict()["chance"] == decision.chance
        await run_until_quiescent(service)
        await service.stop()

    run_async(scenario())


def test_describe_reports_live_state(make_service, run_async):
    async def scenario():
        service, _ = make_service()
        await service.start()
        await service.offer({"task_type": 0, "deadline_slack": 60.0})
        await run_until_quiescent(service)
        summary = service.describe()
        assert summary["ingress"]["admitted"] == 1
        assert summary["ingress_depth"] == 0
        assert summary["pending_events"] == 0
        assert summary["accounting"]["arrived"] == 1
        assert summary["accounting"]["on_time"] + summary["accounting"]["late"] == 1
        assert summary["cluster"]["machines"] == summary["cluster"]["online"] == 2
        await service.stop()

    run_async(scenario())


def test_stop_finishes_due_work_before_exiting(make_service, run_async):
    async def scenario():
        service, clock = make_service()
        await service.start()
        await service.offer({"task_type": 0, "deadline_slack": 50.0})
        await service.wait_idle()
        nxt = service.next_wakeup()  # the completion event
        clock.advance_to(nxt)
        await service.stop()  # must fire the due completion, then exit
        assert service.next_wakeup() is None
        result = service.finalize()
        assert result.on_time + result.late == 1

    run_async(scenario())


# ----------------------------------------------------------------------
# Replay equivalence (the mini version; the golden suite pins all six
# canonical cases).
# ----------------------------------------------------------------------
def test_replay_matches_simulator_byte_identically(pet_small, small_workload, run_async):
    def sim_run(tasks):
        system = ServerlessSystem(
            pet_small, "MM", pruning=PruningConfig.paper_default(), seed=5
        )
        return system.run(tasks).to_dict()

    async def live_run(tasks):
        system = ServerlessSystem(
            pet_small,
            "MM",
            pruning=PruningConfig.paper_default(),
            seed=5,
            sim=AsyncTimeline(VirtualClock()),
        )
        service = SchedulerService(system)
        await service.start()
        service.replay(tasks)
        await run_until_quiescent(service)
        await service.stop()
        return service.finalize().to_dict()

    expected = sim_run(fresh_tasks(small_workload))
    actual = run_async(live_run(fresh_tasks(small_workload)))
    assert actual == expected


def test_replay_then_offer_ids_do_not_collide(pet_small, run_async):
    async def scenario():
        spec = WorkloadSpec(num_tasks=10, time_span=5.0, num_task_types=3)
        tasks = generate_workload(spec, pet_small, np.random.default_rng(3))
        system = ServerlessSystem(pet_small, "MM", seed=5, sim=AsyncTimeline(VirtualClock()))
        service = SchedulerService(system)
        await service.start()
        service.replay(tasks)
        decision = await service.offer({"task_type": 0, "deadline_slack": 90.0})
        # Continues past the replayed ids.
        assert decision.task_id == max(t.task_id for t in tasks) + 1
        await run_until_quiescent(service)
        await service.stop()
        result = service.finalize()
        assert result.total == len(tasks) + 1

    run_async(scenario())


def test_serve_cli_builds_wall_clock_service():
    from repro.service.__main__ import build_parser, build_service

    args = build_parser().parse_args(
        ["--pruning", "--admission-threshold", "0.2", "--rate", "10"]
    )
    service = build_service(args)
    assert isinstance(service.clock, WallClock)
    assert service.clock.rate == 10.0
    assert service.admission_threshold == 0.2
    assert service.system.pruner is not None
    baseline = build_service(build_parser().parse_args([]))
    assert baseline.system.pruner is None


def test_run_until_quiescent_requires_virtual_clock(pet_small, run_async):
    async def scenario():
        system = ServerlessSystem(
            pet_small, "MM", seed=5, sim=AsyncTimeline(WallClock(rate=1000.0))
        )
        service = SchedulerService(system)
        with pytest.raises(TypeError, match="VirtualClock"):
            await run_until_quiescent(service)

    run_async(scenario())


def test_run_until_quiescent_max_wakeups_bounds_progress(make_service, run_async):
    async def scenario():
        service, _ = make_service()
        await service.start()
        for _ in range(3):
            await service.offer({"task_type": 0, "deadline_slack": 80.0})
        wakeups = await run_until_quiescent(service, max_wakeups=1)
        assert wakeups == 1
        assert service.next_wakeup() is not None  # work remains
        total = await run_until_quiescent(service)
        assert total >= 1
        await service.stop()
        assert service.finalize().total == 3

    run_async(scenario())

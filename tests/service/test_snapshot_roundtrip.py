"""Snapshot/restore round-trips at arbitrary mid-run capture points.

The Hypothesis property is the rolling-restart contract end to end:
run a workload for *k* harness wakeups, snapshot, restore into a fresh
identically-configured service, and

* the restored service's own snapshot is **byte-identical** to the one
  it was loaded from (estimator counters, controller setpoints,
  accounting, RNG state — everything);
* continuing the restored service to completion reproduces the
  uninterrupted run's result exactly (minus ``estimator_stats``: the
  rebuilt caches recompute, so hit/miss counters legitimately diverge),
  which is also the no-duplicated/no-lost-outcomes guarantee.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ControllerConfig,
    PruningConfig,
    ServerlessSystem,
    WorkloadSpec,
    generate_pet_matrix,
    generate_workload,
)
from repro.service import (
    AsyncTimeline,
    SchedulerService,
    VirtualClock,
    restore_service,
    snapshot_service,
)
from repro.service.service import run_until_quiescent
from repro.service.snapshot import SNAPSHOT_VERSION

# A module-level PET keeps hypothesis examples fast and avoids mixing
# function-scoped pytest fixtures into @given.
_PET = generate_pet_matrix(3, 2, seed=7, mean_range=(3.0, 8.0), samples_per_cell=200)

_PRUNING = {
    "none": lambda: None,
    "paper": PruningConfig.paper_default,
    "controller": lambda: PruningConfig.paper_default().with_(
        controller=ControllerConfig(
            kind="hysteresis", low=0.02, high=0.2, step=0.1, cooldown=4, window=4
        )
    ),
}


def _workload(num_tasks: int, wseed: int):
    spec = WorkloadSpec(num_tasks=num_tasks, time_span=40.0, num_task_types=3)
    return generate_workload(spec, _PET, np.random.default_rng(wseed))


def _build(heuristic: str, pruning_kind: str, seed: int):
    clock = VirtualClock()
    system = ServerlessSystem(
        _PET,
        heuristic,
        pruning=_PRUNING[pruning_kind](),
        seed=seed,
        sim=AsyncTimeline(clock),
    )
    return SchedulerService(system), clock


def _canon(snap: dict) -> str:
    return json.dumps(snap, sort_keys=True)


@settings(max_examples=12, deadline=None)
@given(
    heuristic=st.sampled_from(["MM", "MCT"]),
    pruning_kind=st.sampled_from(["none", "paper", "controller"]),
    seed=st.integers(min_value=0, max_value=2**16),
    wseed=st.integers(min_value=0, max_value=2**16),
    num_tasks=st.integers(min_value=15, max_value=45),
    k=st.integers(min_value=0, max_value=80),
)
def test_snapshot_restore_round_trip_at_any_capture_point(
    heuristic, pruning_kind, seed, wseed, num_tasks, k
):
    tasks = _workload(num_tasks, wseed)

    async def scenario():
        # Uninterrupted reference over the same config and workload.
        reference, _ = _build(heuristic, pruning_kind, seed)
        await reference.start()
        reference.replay(_workload(num_tasks, wseed))
        await run_until_quiescent(reference)
        await reference.stop()
        expected = reference.finalize().to_dict()

        # Interrupted run: k wakeups, snapshot, kill.
        victim, _ = _build(heuristic, pruning_kind, seed)
        await victim.start()
        victim.replay(tasks)
        await run_until_quiescent(victim, max_wakeups=k)
        snap = snapshot_service(victim)
        await victim.stop()

        # JSON round-trip: the snapshot is wire-safe by construction.
        snap = json.loads(json.dumps(snap))

        # Restore into a fresh service; its own snapshot must be
        # byte-identical to what it was loaded from.
        heir, _ = _build(heuristic, pruning_kind, seed)
        await heir.start()
        await heir.wait_idle()
        restore_service(heir, snap)
        assert _canon(snapshot_service(heir)) == _canon(snap)

        # Continue to completion: same outcomes as never having died.
        await run_until_quiescent(heir)
        await heir.stop()
        actual = heir.finalize().to_dict()
        actual.pop("estimator_stats")
        expected_sans_cache = dict(expected)
        expected_sans_cache.pop("estimator_stats")
        assert actual == expected_sans_cache

    asyncio.run(scenario())


def test_restore_conserves_every_outcome_exactly_once(run_async):
    """Kill-and-restore mid-run: every submitted task reaches exactly one
    terminal state — nothing duplicated, nothing lost."""
    tasks = _workload(30, 11)

    async def scenario():
        victim, _ = _build("MM", "paper", 5)
        await victim.start()
        victim.replay(tasks)
        await run_until_quiescent(victim, max_wakeups=25)
        snap = snapshot_service(victim)
        await victim.stop()

        heir, _ = _build("MM", "paper", 5)
        await heir.start()
        await heir.wait_idle()
        restore_service(heir, snap)
        await run_until_quiescent(heir)
        await heir.stop()
        result = heir.finalize()
        assert result.total == len(tasks)
        outcomes = (
            result.on_time
            + result.late
            + result.dropped_missed
            + result.dropped_proactive
            + result.unfinished
        )
        assert outcomes == len(tasks)
        assert all(t.is_terminal for t in heir.system.tasks)
        assert sorted(t.task_id for t in heir.system.tasks) == sorted(
            t.task_id for t in tasks
        )

    run_async(scenario())


def test_restored_service_accepts_new_live_offers(run_async):
    """After a rolling restart the heir keeps serving: fresh offers get
    ids past everything the snapshot knew about."""
    tasks = _workload(12, 23)

    async def scenario():
        victim, _ = _build("MM", "paper", 5)
        await victim.start()
        victim.replay(tasks)
        await run_until_quiescent(victim, max_wakeups=10)
        snap = snapshot_service(victim)
        await victim.stop()

        heir, _ = _build("MM", "paper", 5)
        await heir.start()
        await heir.wait_idle()
        restore_service(heir, snap)
        decision = await heir.offer({"task_type": 1, "deadline_slack": 60.0})
        assert decision.status == "admitted"
        assert decision.task_id == max(t.task_id for t in tasks) + 1
        await run_until_quiescent(heir)
        await heir.stop()
        assert heir.finalize().total == len(tasks) + 1

    run_async(scenario())


# ----------------------------------------------------------------------
# Guard rails: what snapshots refuse, and what restores reject.
# ----------------------------------------------------------------------
def test_snapshot_refuses_dynamics_dag_and_stateful_heuristics(run_async):
    from repro.sim.dynamics import DynamicsSpec

    async def scenario():
        clock = VirtualClock()
        system = ServerlessSystem(
            _PET, "MM", seed=5, dynamics=DynamicsSpec(failures=1),
            sim=AsyncTimeline(clock),
        )
        service = SchedulerService(system)
        with pytest.raises(ValueError, match="dynamics"):
            snapshot_service(service)

        service, _ = _build("RR", "none", 5)
        with pytest.raises(ValueError, match="stateful heuristic"):
            snapshot_service(service)

    run_async(scenario())


def test_snapshot_requires_quiescent_ingress(run_async):
    async def scenario():
        service, _ = _build("MM", "none", 5)
        await service.start()
        service.offer({"task_type": 0, "deadline_slack": 30.0})  # not yet pumped
        with pytest.raises(ValueError, match="empty ingress"):
            snapshot_service(service)
        await run_until_quiescent(service)
        snapshot_service(service)  # quiescent now — fine
        await service.stop()

    run_async(scenario())


def test_restore_rejects_mismatched_targets(run_async):
    tasks = _workload(10, 3)

    async def scenario():
        service, _ = _build("MM", "paper", 5)
        await service.start()
        service.replay(tasks)
        await run_until_quiescent(service, max_wakeups=5)
        snap = snapshot_service(service)
        await service.stop()

        bad_version = dict(snap, version=SNAPSHOT_VERSION + 1)
        fresh, _ = _build("MM", "paper", 5)
        with pytest.raises(ValueError, match="version"):
            restore_service(fresh, bad_version)

        other_heuristic, _ = _build("MCT", "paper", 5)
        with pytest.raises(ValueError, match="snapshot is for MM"):
            restore_service(other_heuristic, snap)

        no_pruning, _ = _build("MM", "none", 5)
        with pytest.raises(ValueError, match="disagree on pruning"):
            restore_service(no_pruning, snap)

        with_controller, _ = _build("MM", "controller", 5)
        with pytest.raises(ValueError, match="controller"):
            restore_service(
                with_controller, json.loads(json.dumps(snap))
            )

        # A used service is not a restore target.
        used, _ = _build("MM", "paper", 5)
        await used.start()
        await used.offer({"task_type": 0, "deadline_slack": 30.0})
        await run_until_quiescent(used)
        with pytest.raises(ValueError, match="fresh"):
            restore_service(used, snap)
        await used.stop()

    run_async(scenario())


def test_controller_state_dict_round_trips():
    """The generic scalar state_dict/load_state pair on the controller
    base class: what it emits, a fresh twin absorbs exactly."""
    from repro.control.controllers import HysteresisController

    config = ControllerConfig(
        kind="hysteresis", low=0.02, high=0.2, step=0.1, cooldown=4, window=4
    )
    base = PruningConfig.paper_default()
    first = HysteresisController(config, base)
    first.beta = 0.7
    first._ewma = 0.13
    first._cooldown_left = 2
    first._last_misses = 9
    first._last_outcomes = 40

    twin = HysteresisController(config, base)
    twin.load_state(first.state_dict())
    assert twin.state_dict() == first.state_dict()

    with pytest.raises(ValueError, match="unknown controller state"):
        twin.load_state({"nonsense": 1})

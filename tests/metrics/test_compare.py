"""Tests for paired variant comparison."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.metrics.compare import compare_paired
from repro.metrics.collector import SimulationResult


def result(pct):
    on_time = int(round(pct))
    return SimulationResult(
        total=100,
        on_time=on_time,
        late=0,
        dropped_missed=100 - on_time,
        dropped_proactive=0,
        unfinished=0,
        defer_decisions=0,
        mapping_events=0,
        makespan=1.0,
    )


class TestComparePaired:
    def test_mean_delta(self):
        base = [result(p) for p in (40, 50, 60)]
        var = [result(p) for p in (50, 62, 68)]
        cmp = compare_paired(base, var)
        assert cmp.mean_delta_pp == pytest.approx((10 + 12 + 8) / 3)
        assert cmp.trials == 3
        assert cmp.wins == 3

    def test_p_value_matches_scipy(self):
        a = [40, 45, 52, 48, 50]
        b = [48, 50, 60, 55, 58]
        cmp = compare_paired([result(x) for x in a], [result(x) for x in b])
        ref = stats.ttest_rel(np.array(b, float), np.array(a, float)).pvalue
        assert cmp.p_value == pytest.approx(float(ref))
        assert cmp.significant

    def test_constant_deltas_nan_p(self):
        base = [result(p) for p in (40, 50)]
        var = [result(p) for p in (45, 55)]
        cmp = compare_paired(base, var)
        assert math.isnan(cmp.p_value)
        assert not cmp.significant

    def test_single_trial(self):
        cmp = compare_paired([result(40)], [result(55)])
        assert cmp.mean_delta_pp == pytest.approx(15.0)
        assert math.isnan(cmp.p_value)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="differ"):
            compare_paired([result(1)], [result(1), result(2)])

    def test_empty(self):
        with pytest.raises(ValueError, match="no trials"):
            compare_paired([], [])

    def test_str_readable(self):
        cmp = compare_paired(
            [result(p) for p in (40, 45, 50)], [result(p) for p in (52, 58, 60)]
        )
        s = str(cmp)
        assert "pp" in s and "paired trials" in s

    def test_negative_delta(self):
        cmp = compare_paired([result(60)], [result(40)])
        assert cmp.mean_delta_pp == pytest.approx(-20.0)
        assert cmp.wins == 0


class TestEndToEnd:
    def test_pruning_gain_significant_on_real_trials(self):
        """Run 4 paired trials of MSD ± pruning and demand a significant
        positive delta — the library-level restatement of Fig. 9."""
        from repro.core import PruningConfig
        from repro.experiments.runner import ExperimentConfig, run_trial
        from repro.workload import WorkloadSpec

        spec = WorkloadSpec(num_tasks=400, time_span=200.0)
        base_cfg = ExperimentConfig(heuristic="MSD", spec=spec, trials=4)
        var_cfg = ExperimentConfig(
            heuristic="MSD", spec=spec, pruning=PruningConfig.paper_default(), trials=4
        )
        base = [run_trial(base_cfg, t) for t in range(4)]
        var = [run_trial(var_cfg, t) for t in range(4)]
        cmp = compare_paired(base, var)
        assert cmp.mean_delta_pp > 0
        assert cmp.wins == 4

"""Tests for SimulationResult aggregation."""

import pytest

from repro.metrics.collector import SimulationResult, TypeOutcome
from repro.sim.task import Task


def finished(i, ttype=0, *, late=False):
    t = Task(task_id=i, task_type=ttype, arrival=0.0, deadline=10.0)
    t.mark_mapped(0, 0.0)
    t.mark_running(0.0, 5.0)
    t.mark_completed(20.0 if late else 5.0)
    return t


def dropped(i, ttype=0, *, proactive=False):
    t = Task(task_id=i, task_type=ttype, arrival=0.0, deadline=10.0)
    t.mark_dropped(11.0, proactive=proactive)
    return t


def pending(i, ttype=0):
    return Task(task_id=i, task_type=ttype, arrival=0.0, deadline=10.0)


class TestFromTasks:
    def test_counts(self):
        tasks = [
            finished(0),
            finished(1, late=True),
            dropped(2),
            dropped(3, proactive=True),
            pending(4),
        ]
        res = SimulationResult.from_tasks(tasks, makespan=100.0)
        assert res.total == 5
        assert res.on_time == 1
        assert res.late == 1
        assert res.dropped_missed == 1
        assert res.dropped_proactive == 1
        assert res.unfinished == 1
        assert res.dropped == 2

    def test_robustness(self):
        tasks = [finished(0), finished(1), dropped(2), dropped(3)]
        res = SimulationResult.from_tasks(tasks)
        assert res.robustness == pytest.approx(0.5)
        assert res.robustness_pct == pytest.approx(50.0)
        assert res.miss_ratio == pytest.approx(0.5)

    def test_empty(self):
        res = SimulationResult.from_tasks([])
        assert res.total == 0
        assert res.robustness == 0.0

    def test_per_type_breakdown(self):
        tasks = [finished(0, ttype=0), finished(1, ttype=1, late=True), dropped(2, ttype=1)]
        res = SimulationResult.from_tasks(tasks)
        assert res.per_type[0].on_time == 1
        assert res.per_type[0].robustness == 1.0
        assert res.per_type[1].late == 1
        assert res.per_type[1].dropped_missed == 1
        assert res.per_type[1].robustness == 0.0

    def test_per_type_sorted_keys(self):
        tasks = [finished(0, ttype=2), finished(1, ttype=0)]
        res = SimulationResult.from_tasks(tasks)
        assert list(res.per_type) == [0, 2]

    def test_summary_readable(self):
        res = SimulationResult.from_tasks([finished(0)])
        s = res.summary()
        assert "1/1 on time" in s and "100.0%" in s


class TestUtilization:
    def test_utilization_from_cluster(self, pet_small, small_workload):
        from repro.system.serverless import ServerlessSystem
        from tests.conftest import fresh_tasks

        sys = ServerlessSystem(pet_small, "MM", seed=0)
        res = sys.run(fresh_tasks(small_workload))
        utils = res.utilization()
        assert len(utils) == len(sys.cluster)
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in utils)

    def test_zero_makespan(self):
        res = SimulationResult.from_tasks([], makespan=0.0)
        assert res.utilization() == ()


class TestTypeOutcome:
    def test_empty_robustness(self):
        assert TypeOutcome().robustness == 0.0

"""Tests for cross-trial aggregation (mean ± 95 % CI)."""

import numpy as np
import pytest
from scipy import stats

from repro.metrics.collector import SimulationResult
from repro.metrics.robustness import (
    AggregateStats,
    aggregate_robustness,
    confidence_interval,
)


def result_with_robustness(pct):
    """Fabricate a SimulationResult with a given robustness percentage."""
    on_time = int(round(pct))
    return SimulationResult(
        total=100,
        on_time=on_time,
        late=0,
        dropped_missed=100 - on_time,
        dropped_proactive=0,
        unfinished=0,
        defer_decisions=0,
        mapping_events=0,
        makespan=1.0,
    )


class TestConfidenceInterval:
    def test_matches_scipy_reference(self):
        values = [40.0, 45.0, 50.0, 55.0, 60.0]
        mean, half = confidence_interval(values)
        sem = stats.sem(values)
        t = stats.t.ppf(0.975, df=4)
        assert mean == pytest.approx(50.0)
        assert half == pytest.approx(t * sem)

    def test_single_value_zero_width(self):
        mean, half = confidence_interval([42.0])
        assert (mean, half) == (42.0, 0.0)

    def test_constant_series_zero_width(self):
        mean, half = confidence_interval([5.0] * 10)
        assert (mean, half) == (5.0, 0.0)

    def test_wider_confidence_wider_interval(self):
        values = list(np.random.default_rng(0).normal(50, 5, size=20))
        _, h95 = confidence_interval(values, 0.95)
        _, h99 = confidence_interval(values, 0.99)
        assert h99 > h95

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_coverage_simulation(self):
        """~95 % of intervals over N(50, 10) samples must contain 50."""
        rng = np.random.default_rng(7)
        hits = 0
        n_rep = 400
        for _ in range(n_rep):
            sample = rng.normal(50.0, 10.0, size=12)
            mean, half = confidence_interval(sample)
            hits += abs(mean - 50.0) <= half
        assert hits / n_rep == pytest.approx(0.95, abs=0.03)


class TestAggregate:
    def test_aggregate_robustness(self):
        results = [result_with_robustness(p) for p in (40, 50, 60)]
        agg = aggregate_robustness(results)
        assert isinstance(agg, AggregateStats)
        assert agg.mean_pct == pytest.approx(50.0)
        assert agg.trials == 3
        assert agg.per_trial_pct == (40.0, 50.0, 60.0)

    def test_str_format(self):
        agg = aggregate_robustness([result_with_robustness(50)])
        assert "50.0" in str(agg)
        assert "n=1" in str(agg)

"""Tests for terminal chart rendering."""

import pytest

from repro.analysis.charts import bar_chart, grouped_bars, render_figure
from repro.experiments.report import FigureResult
from repro.metrics.robustness import AggregateStats


def stat(mean, ci=2.0):
    return AggregateStats(mean_pct=mean, ci95_pct=ci, trials=3, per_trial_pct=(mean,) * 3)


@pytest.fixture
def grid():
    return FigureResult(
        figure_id="figX",
        title="demo grid",
        row_axis="heuristic",
        col_axis="level",
        rows=["MM", "MM-P"],
        cols=["15k"],
        cells={"MM": {"15k": stat(40.0)}, "MM-P": {"15k": stat(80.0)}},
    )


class TestBarChart:
    def test_proportional_lengths(self):
        out = bar_chart(["a", "b"], [50.0, 100.0], width=20)
        lines = out.splitlines()
        assert lines[1].count("█") == 20
        assert lines[0].count("█") == 10

    def test_values_printed(self):
        out = bar_chart(["x"], [42.5])
        assert "42.5%" in out

    def test_custom_unit_and_peak(self):
        out = bar_chart(["x"], [5.0], peak=10.0, unit="s", width=10)
        assert "5.0s" in out
        assert out.count("█") == 5

    def test_empty(self):
        assert "empty" in bar_chart([], [])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_zero_peak_safe(self):
        out = bar_chart(["a"], [0.0])
        assert "0.0" in out


class TestGroupedBars:
    def test_contains_all_labels(self, grid):
        out = grouped_bars(grid)
        for needle in ("figX", "MM", "MM-P", "level = 15k", "40.0", "80.0"):
            assert needle in out

    def test_bars_scale_to_100(self, grid):
        out = grouped_bars(grid, width=50)
        lines = [line for line in out.splitlines() if "|" in line]
        mm, mmp = lines[0], lines[1]
        assert mmp.count("█") == 40  # 80 % of 50 cells
        assert mm.count("█") == 20

    def test_render_figure_combines_chart_and_table(self, grid):
        out = render_figure(grid)
        assert "level = 15k" in out  # chart part
        assert "mean ± 95% CI" in out  # table part

"""Provenance schema of the committed benchmark artifacts.

``tools/check_bench.py`` gates every ``BENCH_*.json`` on a per-artifact
list of anchor keys (what workload, at what scale, against which
baseline) so a truncated or anonymous payload fails with a *named*
missing key instead of a ``KeyError`` somewhere downstream.  These
tests pin that behaviour against the committed payloads and synthetic
mutations of them.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"


def _load_check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "tools" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def check_bench():
    return _load_check_bench()


class TestCommittedArtifacts:
    def test_every_committed_artifact_has_a_schema(self, check_bench):
        committed = {p.name for p in BENCH_DIR.glob("BENCH_*.json")}
        assert committed == set(check_bench.PROVENANCE_KEYS)

    def test_committed_artifacts_pass(self, check_bench):
        for name in check_bench.PROVENANCE_KEYS:
            assert check_bench.check_provenance(BENCH_DIR / name) == []

    def test_schema_covers_live_run_dereferences(self, check_bench):
        """Keys ``main()`` dereferences on the estimator payload must be
        in the schema, so a truncated payload fails by name before the
        live smoke run KeyErrors on it."""
        keys = set(check_bench.PROVENANCE_KEYS["BENCH_estimator.json"])
        assert {
            "events_per_sec.incremental",
            "events_per_sec.naive",
            "workload.scale",
        } <= keys


class TestNamedFailures:
    def test_missing_nested_key_is_named(self, check_bench, tmp_path):
        payload = json.loads((BENCH_DIR / "BENCH_estimator.json").read_text())
        del payload["workload"]["scale"]
        path = tmp_path / "BENCH_estimator.json"
        path.write_text(json.dumps(payload))
        errors = check_bench.check_provenance(path)
        assert errors == [
            "BENCH_estimator.json: missing provenance key 'workload.scale'"
        ]

    def test_missing_top_level_key_is_named(self, check_bench, tmp_path):
        payload = json.loads((BENCH_DIR / "BENCH_campaign.json").read_text())
        del payload["cpu_count"]
        path = tmp_path / "BENCH_campaign.json"
        path.write_text(json.dumps(payload))
        errors = check_bench.check_provenance(path)
        assert errors == ["BENCH_campaign.json: missing provenance key 'cpu_count'"]

    def test_non_mapping_parent_is_named_not_a_crash(self, check_bench, tmp_path):
        payload = json.loads((BENCH_DIR / "BENCH_pmf.json").read_text())
        payload["crossover"] = "oops"
        path = tmp_path / "BENCH_pmf.json"
        path.write_text(json.dumps(payload))
        errors = check_bench.check_provenance(path)
        assert sorted(errors) == [
            "BENCH_pmf.json: missing provenance key 'crossover.fft_min_ops'",
            "BENCH_pmf.json: missing provenance key 'crossover.fft_min_taps'",
        ]

    def test_unregistered_artifact_is_rejected(self, check_bench, tmp_path):
        path = tmp_path / "BENCH_mystery.json"
        path.write_text("{}")
        errors = check_bench.check_provenance(path)
        assert len(errors) == 1
        assert "no provenance schema registered" in errors[0]

    def test_unreadable_artifact_is_reported(self, check_bench, tmp_path):
        path = tmp_path / "BENCH_estimator.json"
        path.write_text("{not json")
        errors = check_bench.check_provenance(path)
        assert len(errors) == 1
        assert "unreadable" in errors[0]

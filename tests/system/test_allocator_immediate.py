"""Tests for immediate-mode resource allocation (Fig. 1a)."""

import numpy as np
import pytest

from repro.core.config import PruningConfig, ToggleMode
from repro.sim.task import TaskStatus
from repro.system.serverless import ServerlessSystem
from repro.sim.task import Task

from tests.conftest import make_deterministic_pet


def tasks_from(specs):
    """specs: list of (ttype, arrival, deadline)."""
    return [
        Task(task_id=i, task_type=tt, arrival=a, deadline=d)
        for i, (tt, a, d) in enumerate(specs)
    ]


class TestMappingOnArrival:
    def test_tasks_map_immediately_to_met_machine(self):
        pet = make_deterministic_pet(np.array([[2.0, 9.0], [9.0, 2.0]]))
        sys = ServerlessSystem(pet, "MET", seed=0)
        tasks = tasks_from([(0, 0.0, 50.0), (1, 0.0, 50.0)])
        sys.run(tasks)
        assert tasks[0].machine_id == 0
        assert tasks[1].machine_id == 1
        assert all(t.status is TaskStatus.COMPLETED_ON_TIME for t in tasks)

    def test_no_batch_queue(self):
        pet = make_deterministic_pet(np.array([[2.0, 9.0]]))
        sys = ServerlessSystem(pet, "MCT", seed=0)
        assert sys.allocator.pending_tasks() == []

    def test_queue_unbounded_by_default(self):
        pet = make_deterministic_pet(np.array([[5.0, 5.0]]))
        sys = ServerlessSystem(pet, "RR", seed=0)
        assert all(m.queue_limit is None for m in sys.cluster)

    def test_completion_times_deterministic(self):
        pet = make_deterministic_pet(np.array([[4.0, 100.0]]))
        sys = ServerlessSystem(pet, "MET", seed=0)
        tasks = tasks_from([(0, 0.0, 100.0), (0, 0.0, 100.0), (0, 1.0, 100.0)])
        sys.run(tasks)
        assert [t.finished_at for t in tasks] == [4.0, 8.0, 12.0]


class TestReactiveDropping:
    def test_queued_task_past_deadline_dropped_at_next_event(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        sys = ServerlessSystem(pet, "MCT", seed=0)
        # Task 1 queues behind task 0 and its deadline (5) passes while
        # task 0 runs; the completion event at t=10 reaps it.
        tasks = tasks_from([(0, 0.0, 100.0), (0, 0.1, 5.0)])
        sys.run(tasks)
        assert tasks[1].status is TaskStatus.DROPPED_MISSED
        assert tasks[1].dropped_at == pytest.approx(10.0)

    def test_running_task_never_reaped(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        sys = ServerlessSystem(pet, "MCT", seed=0)
        tasks = tasks_from([(0, 0.0, 5.0), (0, 1.0, 100.0)])
        sys.run(tasks)
        # task 0 misses its deadline mid-run but completes (late).
        assert tasks[0].status is TaskStatus.COMPLETED_LATE


class TestProactiveDropping:
    def make_system(self, mode):
        pet = make_deterministic_pet(np.array([[10.0]]))
        return pet, ServerlessSystem(
            pet, "MCT", pruning=PruningConfig.drop_only(mode), seed=0
        )

    def test_always_dropping_reaps_hopeless_queue_entries(self):
        _, sys = self.make_system(ToggleMode.ALWAYS)
        # Three stacked tasks; the third completes at ~30 vs deadline 12.
        tasks = tasks_from([(0, 0.0, 100.0), (0, 0.5, 100.0), (0, 1.0, 12.0)])
        sys.run(tasks)
        assert tasks[2].status is TaskStatus.DROPPED_PROACTIVE
        # dropped at the next mapping event after it became hopeless
        assert tasks[2].dropped_at is not None and tasks[2].dropped_at < 12.0

    def test_reactive_waits_for_a_miss(self):
        _, sys = self.make_system(ToggleMode.REACTIVE)
        tasks = tasks_from([(0, 0.0, 100.0), (0, 0.5, 100.0), (0, 1.0, 12.0)])
        sys.run(tasks)
        # No deadline was missed before task 2's own deadline, so dropping
        # never engaged in time: it is reaped reactively instead.
        assert tasks[2].status is TaskStatus.DROPPED_MISSED

    def test_reactive_engages_after_misses(self):
        """A miss observed at a mapping event engages dropping *at that
        event*: the hopeless queued task is proactively dropped."""
        _, sys = self.make_system(ToggleMode.REACTIVE)
        tasks = tasks_from(
            [
                (0, 0.0, 100.0),  # runs 0–10
                (0, 0.5, 2.0),    # reaped at t=10 → the observed miss
                (0, 0.6, 100.0),  # starts at t=10
                (0, 0.7, 14.0),   # queued; would start at 20 → hopeless
            ]
        )
        sys.run(tasks)
        assert tasks[1].status is TaskStatus.DROPPED_MISSED
        assert tasks[3].status is TaskStatus.DROPPED_PROACTIVE
        assert tasks[3].dropped_at == pytest.approx(10.0)


class TestAccountingWiring:
    def test_counters_match_outcomes(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        sys = ServerlessSystem(pet, "MCT", seed=0)
        tasks = tasks_from([(0, 0.0, 50.0), (0, 0.1, 5.0), (0, 0.2, 100.0)])
        sys.run(tasks)
        acc = sys.accounting
        assert acc.total_arrived == 3
        assert acc.total_on_time == 2
        assert acc.total_dropped_missed == 1
        assert acc.total_defers == 0

    def test_mapping_events_counted(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        sys = ServerlessSystem(pet, "MCT", seed=0)
        tasks = tasks_from([(0, 0.0, 50.0), (0, 1.0, 50.0)])
        sys.run(tasks)
        # 2 arrivals + 2 completions
        assert sys.allocator.mapping_events == 4

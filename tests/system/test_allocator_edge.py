"""Edge-case tests for resource allocation wiring."""

import numpy as np
import pytest

from repro.core.accounting import Accounting
from repro.core.config import PruningConfig
from repro.core.pruner import Pruner
from repro.heuristics import MinMin, MCT
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.task import Task, TaskStatus
from repro.system.allocator import BatchAllocator, ImmediateAllocator
from repro.system.completion import CompletionEstimator
from repro.system.serverless import ServerlessSystem

from tests.conftest import fresh_tasks, make_deterministic_pet


def build_batch(pet, queue_limit=2, pruner=None):
    cluster = Cluster.heterogeneous(pet.num_machine_types, queue_limit=queue_limit)
    sim = Simulator()
    est = CompletionEstimator(pet)
    alloc = BatchAllocator(
        sim,
        cluster,
        est,
        heuristic=MinMin(),
        pruner=pruner,
        exec_sampler=lambda t, m: pet.mean(t.task_type, m.machine_type),
    )
    return sim, cluster, alloc


class TestWiringGuards:
    def test_mode_mismatch_immediate_heuristic_in_batch(self):
        pet = make_deterministic_pet(np.array([[4.0]]))
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        with pytest.raises(TypeError, match="BatchHeuristic"):
            BatchAllocator(
                sim, cluster, est, heuristic=MCT(), exec_sampler=lambda t, m: 1.0
            )

    def test_mode_mismatch_batch_heuristic_in_immediate(self):
        pet = make_deterministic_pet(np.array([[4.0]]))
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        with pytest.raises(TypeError, match="ImmediateHeuristic"):
            ImmediateAllocator(
                sim, cluster, est, heuristic=MinMin(), exec_sampler=lambda t, m: 1.0
            )

    def test_pruner_accounting_conflict(self):
        pet = make_deterministic_pet(np.array([[4.0]]))
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        pruner = Pruner(PruningConfig.paper_default())  # own accounting
        with pytest.raises(ValueError, match="share"):
            BatchAllocator(
                sim,
                cluster,
                est,
                heuristic=MinMin(),
                pruner=pruner,
                accounting=Accounting(),  # a different instance
                exec_sampler=lambda t, m: 1.0,
            )

    def test_pruner_accounting_shared_ok(self):
        pet = make_deterministic_pet(np.array([[4.0]]))
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        pruner = Pruner(PruningConfig.paper_default())
        alloc = BatchAllocator(
            sim,
            cluster,
            est,
            heuristic=MinMin(),
            pruner=pruner,
            accounting=pruner.accounting,
            exec_sampler=lambda t, m: 1.0,
        )
        assert alloc.accounting is pruner.accounting


class TestBatchEventTriggers:
    def test_arrival_with_full_queues_does_not_map(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        sim, cluster, alloc = build_batch(pet, queue_limit=1)
        # Fill: one running + one queued.
        for i in range(2):
            t = Task(task_id=i, task_type=0, arrival=0.0, deadline=500.0)
            sim.schedule(0.0, lambda t=t: alloc.submit(t))
        sim.run(until=0.0)
        events_before = alloc.mapping_events
        late_arrival = Task(task_id=9, task_type=0, arrival=1.0, deadline=500.0)
        sim.schedule(1.0, lambda: alloc.submit(late_arrival))
        sim.run(until=1.0)
        # queues full → no mapping event fired for this arrival
        assert alloc.mapping_events == events_before
        assert late_arrival.status is TaskStatus.PENDING
        sim.run()
        assert late_arrival.status is TaskStatus.COMPLETED_ON_TIME

    def test_multiple_machines_fill_in_one_event(self):
        pet = make_deterministic_pet(np.array([[5.0, 5.0, 5.0]]))
        sim, cluster, alloc = build_batch(pet, queue_limit=1)
        tasks = [Task(task_id=i, task_type=0, arrival=0.0, deadline=500.0) for i in range(6)]
        for t in tasks:
            sim.schedule(0.0, lambda t=t: alloc.submit(t))
        sim.run(until=0.0)
        # 3 machines × (1 running + 1 queued) = 6 placed
        assert all(t.status in (TaskStatus.RUNNING, TaskStatus.MAPPED) for t in tasks)


class TestImmediatePrunerIgnoresDefer:
    def test_defer_config_has_no_effect_in_immediate_mode(self, pet_small, small_workload):
        """Deferring applies to the batch queue only (§IV-B); an immediate
        allocator with a defer-enabled config must behave identically to
        one with defer disabled."""
        cfg_on = PruningConfig(enable_deferring=True, enable_dropping=True)
        cfg_off = PruningConfig(enable_deferring=False, enable_dropping=True)
        r_on = ServerlessSystem(pet_small, "MCT", pruning=cfg_on, seed=4).run(
            fresh_tasks(small_workload)
        )
        r_off = ServerlessSystem(pet_small, "MCT", pruning=cfg_off, seed=4).run(
            fresh_tasks(small_workload)
        )
        assert r_on.on_time == r_off.on_time
        assert r_on.defer_decisions == r_off.defer_decisions == 0


class TestObserverEvents:
    def test_observer_sees_lifecycle_in_order(self):
        pet = make_deterministic_pet(np.array([[5.0]]))
        seen = []
        sys = ServerlessSystem(
            pet, "MM", seed=0, observer=lambda kind, task, time: seen.append((kind, task.task_id))
        )
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=50.0)
        sys.run([t])
        assert seen == [("arrived", 0), ("dispatched", 0), ("completed", 0)]

    def test_observer_sees_defer(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        seen = []
        sys = ServerlessSystem(
            pet,
            "MM",
            pruning=PruningConfig.defer_only(0.5),
            queue_limit=1,
            seed=0,
            observer=lambda kind, task, time: seen.append(kind),
        )
        tasks = [
            Task(task_id=0, task_type=0, arrival=0.0, deadline=500.0),
            Task(task_id=1, task_type=0, arrival=0.0, deadline=500.0),
            Task(task_id=2, task_type=0, arrival=0.1, deadline=12.0),
        ]
        sys.run(tasks)
        assert "deferred" in seen

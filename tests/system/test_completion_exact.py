"""Exact-enumeration validation of PCT chains.

For small discrete PETs the chance of success can be computed exactly by
enumerating every combination of execution-time outcomes along the queue.
The estimator's convolution chain (Eq. 1/2) must agree to floating
precision — this pins the entire probabilistic pipeline against an
independent oracle, including the hypothesis-generated cases.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.stochastic.pet import PETMatrix
from repro.stochastic.pmf import PMF
from repro.system.completion import CompletionEstimator


def exact_queue_chances(cells: list[PMF], deadlines: list[float], start: float):
    """Oracle: enumerate all outcome combinations of the queued tasks.

    ``cells[k]`` is the PET of the k-th queued task (machine idle at
    ``start``); returns P(completion_k <= deadline_k) for each k.
    """
    supports = [list(zip(c.times(), c.probs)) for c in cells]
    chances = [0.0] * len(cells)
    for combo in itertools.product(*supports):
        prob = 1.0
        t = start
        for k, (dur, p) in enumerate(combo):
            prob *= p
            t += dur
            if t <= deadlines[k]:
                # accumulate afterwards; need per-k within this combo
                pass
        # recompute cumulative times per k for clarity
        t = start
        for k, (dur, _) in enumerate(combo):
            t += dur
            if t <= deadlines[k]:
                chances[k] += prob
    return chances


def build_queue(cells: list[PMF], deadlines: list[float]):
    pet = PETMatrix([[c] for c in cells])  # task type k → cells[k], 1 machine
    cluster = Cluster.heterogeneous(1)
    sim = Simulator()
    est = CompletionEstimator(pet)
    tasks = []
    for k, dl in enumerate(deadlines):
        t = Task(task_id=k, task_type=k, arrival=0.0, deadline=dl)
        t.mark_mapped(0, 0.0)
        # Keep the machine idle: occupy with an artificially long first
        # "runner" would change the chain; instead dispatch everything and
        # immediately treat queue[0] as running — simpler: dispatch all,
        # first starts running, so the oracle must include it too.
        cluster[0].dispatch(t, sim, lambda *a: 1.0, lambda *a: None)
        tasks.append(t)
    return cluster, est, tasks


class TestExactSmallCases:
    def test_two_tasks_two_outcomes(self):
        c0 = PMF.from_dict({2: 0.5, 4: 0.5})
        c1 = PMF.from_dict({1: 0.25, 3: 0.75})
        deadlines = [3.0, 5.0]
        cluster, est, _ = build_queue([c0, c1], deadlines)
        # Task 0 is *running* (started at 0): completion = its PET.
        # Task 1 queued behind it.
        got = est.queue_chances(cluster[0], 0.0)
        # exact: task 1 completes at c0+c1
        exact = exact_queue_chances([c0, c1], deadlines, 0.0)
        assert got[0][1] == pytest.approx(exact[1])

    def test_three_deep_chain(self):
        c0 = PMF.from_dict({2: 0.5, 4: 0.5})
        c1 = PMF.from_dict({1: 0.2, 2: 0.8})
        c2 = PMF.from_dict({3: 1.0})
        deadlines = [10.0, 5.0, 8.0]
        cluster, est, _ = build_queue([c0, c1, c2], deadlines)
        got = est.queue_chances(cluster[0], 0.0)
        exact = exact_queue_chances([c0, c1, c2], deadlines, 0.0)
        # queued tasks are indices 1 and 2 of the oracle
        assert got[0][1] == pytest.approx(exact[1])
        assert got[1][1] == pytest.approx(exact[2])


@st.composite
def small_cells(draw):
    """2–3 queued tasks, each with a 1–3 outcome integer PET."""
    n = draw(st.integers(min_value=2, max_value=3))
    cells, deadlines = [], []
    for _ in range(n):
        k = draw(st.integers(min_value=1, max_value=3))
        times = draw(
            st.lists(
                st.integers(min_value=1, max_value=6),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        weights = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0),
                min_size=k,
                max_size=k,
            )
        )
        total = sum(weights)
        cells.append(PMF.from_dict({t: w / total for t, w in zip(times, weights)}))
        deadlines.append(float(draw(st.integers(min_value=1, max_value=20))))
    return cells, deadlines


@settings(max_examples=40, deadline=None)
@given(small_cells())
def test_chain_matches_exhaustive_enumeration(case):
    cells, deadlines = case
    cluster, est, _ = build_queue(cells, deadlines)
    got = est.queue_chances(cluster[0], 0.0)
    exact = exact_queue_chances(cells, deadlines, 0.0)
    for (task, chance), want in zip(got, exact[1:]):
        assert chance == pytest.approx(want, abs=1e-9), (task.task_id, chance, want)

"""Tests for the ServerlessSystem facade."""

import numpy as np
import pytest

from repro.core.config import PruningConfig
from repro.heuristics import RoundRobin
from repro.sim.cluster import Cluster
from repro.sim.task import Task, TaskStatus
from repro.stochastic.etc import ETCMatrix
from repro.system.allocator import BatchAllocator, ImmediateAllocator
from repro.system.serverless import DEFAULT_BATCH_QUEUE_SLOTS, ServerlessSystem

from tests.conftest import fresh_tasks, make_deterministic_pet


class TestConstruction:
    def test_heuristic_by_name(self, pet_small):
        sys = ServerlessSystem(pet_small, "MM", seed=0)
        assert sys.heuristic.name == "MM"
        assert sys.mode == "batch"
        assert isinstance(sys.allocator, BatchAllocator)

    def test_heuristic_instance(self, pet_small):
        sys = ServerlessSystem(pet_small, RoundRobin(), seed=0)
        assert sys.mode == "immediate"
        assert isinstance(sys.allocator, ImmediateAllocator)

    def test_auto_queue_limits(self, pet_small):
        batch = ServerlessSystem(pet_small, "MM", seed=0)
        assert all(m.queue_limit == DEFAULT_BATCH_QUEUE_SLOTS for m in batch.cluster)
        imm = ServerlessSystem(pet_small, "MCT", seed=0)
        assert all(m.queue_limit is None for m in imm.cluster)

    def test_explicit_queue_limit(self, pet_small):
        sys = ServerlessSystem(pet_small, "MM", queue_limit=7, seed=0)
        assert all(m.queue_limit == 7 for m in sys.cluster)

    def test_cluster_matches_machine_types(self, pet_small):
        sys = ServerlessSystem(pet_small, "MM", seed=0)
        assert len(sys.cluster) == pet_small.num_machine_types

    def test_machines_per_type(self, pet_small):
        sys = ServerlessSystem(pet_small, "MM", machines_per_type=2, seed=0)
        assert len(sys.cluster) == 2 * pet_small.num_machine_types

    def test_custom_cluster(self, pet_small):
        cluster = Cluster.heterogeneous(pet_small.num_machine_types)
        sys = ServerlessSystem(pet_small, "MM", cluster=cluster, seed=0)
        assert sys.cluster is cluster
        assert cluster[0].queue_limit == DEFAULT_BATCH_QUEUE_SLOTS

    def test_pruner_shares_accounting(self, pet_small):
        sys = ServerlessSystem(
            pet_small, "MM", pruning=PruningConfig.paper_default(), seed=0
        )
        assert sys.pruner is not None
        assert sys.pruner.accounting is sys.accounting

    def test_no_pruning_no_pruner(self, pet_small):
        sys = ServerlessSystem(pet_small, "MM", seed=0)
        assert sys.pruner is None

    def test_rejects_object_without_mode(self, pet_small):
        with pytest.raises(TypeError, match="mode"):
            ServerlessSystem(pet_small, object(), seed=0)  # type: ignore[arg-type]

    def test_heuristic_state_reset_on_construction(self, pet_small):
        rr = RoundRobin()
        rr._next = 3
        ServerlessSystem(pet_small, rr, seed=0)
        assert rr._next == 0


class TestRun:
    def test_run_returns_result_over_all_tasks(self, pet_small, small_workload):
        sys = ServerlessSystem(pet_small, "MM", seed=0)
        res = sys.run(fresh_tasks(small_workload))
        assert res.total == len(small_workload)

    def test_deterministic_given_seed(self, pet_small, small_workload):
        r1 = ServerlessSystem(pet_small, "MM", seed=9).run(fresh_tasks(small_workload))
        r2 = ServerlessSystem(pet_small, "MM", seed=9).run(fresh_tasks(small_workload))
        assert r1.on_time == r2.on_time
        assert r1.makespan == r2.makespan

    def test_seed_changes_outcome(self, pet_small, oversub_workload):
        r1 = ServerlessSystem(pet_small, "MM", seed=1).run(fresh_tasks(oversub_workload))
        r2 = ServerlessSystem(pet_small, "MM", seed=2).run(fresh_tasks(oversub_workload))
        # execution-time sampling differs; outcomes should too (with
        # overwhelming probability on 200 tasks)
        assert (r1.on_time, r1.makespan) != (r2.on_time, r2.makespan)

    def test_leftover_pending_finalized_as_dropped(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        sys = ServerlessSystem(
            pet, "MM", pruning=PruningConfig.defer_only(0.5), queue_limit=1, seed=0
        )
        tasks = [
            Task(task_id=0, task_type=0, arrival=0.0, deadline=200.0),
            Task(task_id=1, task_type=0, arrival=0.0, deadline=200.0),
            Task(task_id=2, task_type=0, arrival=0.1, deadline=12.0),  # always deferred
        ]
        res = sys.run(tasks)
        assert tasks[2].status is TaskStatus.DROPPED_MISSED
        assert res.unfinished == 0

    def test_result_subset(self, pet_small, small_workload):
        sys = ServerlessSystem(pet_small, "MM", seed=0)
        tasks = fresh_tasks(small_workload)
        sys.run(tasks)
        sub = sys.result(tasks[10:-10])
        assert sub.total == len(tasks) - 20

    def test_run_until_partial(self, pet_small, small_workload):
        sys = ServerlessSystem(pet_small, "MM", seed=0)
        sys.submit_workload(fresh_tasks(small_workload))
        sys.sim.run(until=10.0)
        assert sys.sim.now == 10.0

    def test_etc_model_runs_deterministically(self, pet_small, small_workload):
        etc = ETCMatrix.from_pet(pet_small)
        sys = ServerlessSystem(etc, "MM", seed=0)
        res = sys.run(fresh_tasks(small_workload))
        assert res.total == len(small_workload)
        # with a deterministic model, every execution takes its mean
        done = [t for t in sys.tasks if t.exec_time is not None]
        assert all(
            t.exec_time == pytest.approx(etc.mean(t.task_type, sys.cluster[t.machine_id].machine_type))
            for t in done
            if t.machine_id is not None
        )


class TestResultIntegrity:
    def test_makespan_positive(self, pet_small, small_workload):
        res = ServerlessSystem(pet_small, "MM", seed=0).run(fresh_tasks(small_workload))
        assert res.makespan > 0

    def test_machine_busy_times_recorded(self, pet_small, small_workload):
        sys = ServerlessSystem(pet_small, "MM", seed=0)
        res = sys.run(fresh_tasks(small_workload))
        assert len(res.machine_busy_time) == len(sys.cluster)
        assert sum(res.machine_busy_time) > 0

    def test_tasks_property_snapshot(self, pet_small, small_workload):
        sys = ServerlessSystem(pet_small, "MM", seed=0)
        tasks = fresh_tasks(small_workload)
        sys.run(tasks)
        assert len(sys.tasks) == len(tasks)

"""End-to-end DAG scheduling invariants.

The load-bearing properties of dependency-aware allocation:

* no task ever starts before every parent completed;
* the accounting identity ``arrived = on_time + late + dropped_missed +
  dropped_proactive`` holds with cascades included, and the cascade
  tally matches the dag telemetry;
* dropping an ancestor dooms the whole transitive subgraph;
* independent-task workloads are byte-identical to the pre-DAG system
  (``dag_stats`` stays absent from the payload).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PruningConfig
from repro.core.dag import DependencyTracker
from repro.experiments.runner import pet_matrix
from repro.sim.task import Task, TaskStatus
from repro.system.serverless import ServerlessSystem
from repro.workload.generator import generate_workload
from repro.workload.spec import WorkloadSpec


def _run(spec, *, heuristic="MM", seed=7, pruning="paper"):
    pet = pet_matrix("inconsistent")
    tasks = generate_workload(spec, pet, np.random.default_rng(seed))
    config = PruningConfig.paper_default() if pruning == "paper" else pruning
    system = ServerlessSystem(pet, heuristic, pruning=config, seed=seed)
    result = system.run(tasks)
    return tasks, system, result


_SPECS = [
    WorkloadSpec(num_tasks=200, time_span=120.0, dag_layers=3),
    WorkloadSpec(num_tasks=300, time_span=30.0, dag_layers=4, dag_edge_prob=0.7),
]


@pytest.mark.parametrize("spec", _SPECS, ids=["light", "oversubscribed"])
@pytest.mark.parametrize("heuristic", ["MM", "MCT"])
def test_no_task_starts_before_its_parents_complete(spec, heuristic):
    tasks, _, _ = _run(spec, heuristic=heuristic)
    by_id = {t.task_id: t for t in tasks}
    started = [t for t in tasks if t.started_at is not None]
    assert started, "scenario must actually run tasks"
    for t in started:
        for p in t.deps:
            parent = by_id[p]
            assert parent.status in (
                TaskStatus.COMPLETED_ON_TIME,
                TaskStatus.COMPLETED_LATE,
            )
            assert parent.finished_at <= t.started_at + 1e-9


@pytest.mark.parametrize("spec", _SPECS, ids=["light", "oversubscribed"])
def test_cascade_accounting_identity(spec):
    _, system, result = _run(spec)
    acc = system.accounting
    assert acc.total_arrived == (
        acc.total_on_time
        + acc.total_late
        + acc.total_dropped_missed
        + acc.total_dropped_proactive
    )
    # Every submitted task reached a terminal state (none forgotten in a
    # held/doomed limbo).
    assert result.unfinished == 0
    assert acc.total_dropped_cascade <= acc.total_dropped_proactive
    assert result.dag_stats["cascade_drops"] == acc.total_dropped_cascade
    # Per-depth outcome counts partition the workload.
    depths = result.dag_stats["depths"]
    assert sum(row["total"] for row in depths.values()) == result.total


def test_oversubscribed_dag_actually_cascades():
    """The acceptance scenario: pruning a doomed ancestor drops its
    transitive dependents via cascade accounting."""
    _, system, result = _run(_SPECS[1])
    assert result.cascade_drops > 0
    assert system.accounting.total_dropped_cascade == result.cascade_drops
    # Cascaded tasks are proactive drops per type as well.
    per_type_cascade = sum(
        c.dropped_cascade for c in system.accounting.per_type.values()
    )
    assert per_type_cascade == result.cascade_drops


def test_without_pruning_cascades_still_follow_reactive_drops():
    """Deadline-missed drops doom their dependents even when proactive
    pruning is off: a child of a dead parent can never run."""
    tasks, system, result = _run(_SPECS[1], pruning=None)
    acc = system.accounting
    assert acc.total_arrived == (
        acc.total_on_time
        + acc.total_late
        + acc.total_dropped_missed
        + acc.total_dropped_proactive
    )
    by_id = {t.task_id: t for t in tasks}
    for t in tasks:
        if t.started_at is None:
            continue
        for p in t.deps:
            assert by_id[p].finished_at <= t.started_at + 1e-9
    assert result.unfinished == 0


def test_dependency_free_results_have_no_dag_payload():
    spec = WorkloadSpec(num_tasks=150, time_span=100.0)
    _, system, result = _run(spec)
    payload = result.to_dict()
    assert "dag_stats" not in payload
    assert system.dag is None


def test_dag_workload_must_be_submitted_in_one_batch():
    pet = pet_matrix("inconsistent")
    system = ServerlessSystem(pet, "MM", pruning=None, seed=1)
    first = [Task(task_id=0, task_type=0, arrival=0.0, deadline=50.0)]
    second = [
        Task(task_id=1, task_type=0, arrival=1.0, deadline=50.0, deps=(0,))
    ]
    system.submit_workload(first)
    with pytest.raises(ValueError, match="one batch"):
        system.submit_workload(second)


# ----------------------------------------------------------------------
# DependencyTracker unit coverage
# ----------------------------------------------------------------------
def _chain(n):
    return [
        Task(
            task_id=i,
            task_type=0,
            arrival=float(i),
            deadline=float(i) + 20.0,
            deps=(i - 1,) if i else (),
        )
        for i in range(n)
    ]


def test_tracker_release_and_cascade_semantics():
    tasks = _chain(4)
    tracker = DependencyTracker(tasks)
    assert tracker.ready(tasks[0]) and not tracker.ready(tasks[1])
    tracker.hold(tasks[1])
    tasks[0].mark_mapped(0, 0.0)
    tasks[0].mark_running(0.0, 1.0)
    tasks[0].mark_completed(1.0)
    released = tracker.note_completed(tasks[0])
    assert released == [tasks[1]]
    # Dropping the released task dooms the rest of the chain.
    tasks[1].mark_dropped(2.0, proactive=True)
    tracker.hold(tasks[2])
    victims = tracker.cascade(tasks[1])
    assert tasks[2] in victims
    assert tracker.is_doomed(tasks[3])
    assert not tracker.has_dependents(tasks[3].task_id)


def test_tracker_chance_factor_propagates_multiplicatively():
    tasks = _chain(3)
    tracker = DependencyTracker(tasks)
    # Pending parents with recorded estimates multiply along the chain.
    tracker.note_estimate(0, 0.5)
    tracker.note_estimate(1, 0.4)
    assert tracker.chance_factor(tasks[2]) == pytest.approx(0.5 * 0.4)
    # A completed parent contributes factor 1.
    tasks[0].mark_mapped(0, 0.0)
    tasks[0].mark_running(0.0, 1.0)
    tasks[0].mark_completed(1.0)
    tracker.note_completed(tasks[0])
    assert tracker.chance_factor(tasks[1]) == 1.0
    assert tracker.chance_factor(tasks[2]) == pytest.approx(0.4)
    # A dropped parent zeroes every descendant.
    tasks[1].mark_dropped(2.0, proactive=True)
    tracker.cascade(tasks[1])
    assert tracker.chance_factor(tasks[2]) == 0.0

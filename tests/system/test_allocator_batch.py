"""Tests for batch-mode resource allocation (Fig. 1b/1c + Fig. 5 loop)."""

import numpy as np
import pytest

from repro.core.config import PruningConfig, ToggleMode
from repro.sim.task import Task, TaskStatus
from repro.system.serverless import ServerlessSystem

from tests.conftest import make_deterministic_pet


def tasks_from(specs):
    return [
        Task(task_id=i, task_type=tt, arrival=a, deadline=d)
        for i, (tt, a, d) in enumerate(specs)
    ]


def one_machine_system(exec_time=10.0, queue_limit=1, pruning=None, heuristic="MM"):
    pet = make_deterministic_pet(np.array([[exec_time]]))
    return ServerlessSystem(pet, heuristic, pruning=pruning, queue_limit=queue_limit, seed=0)


class TestBatching:
    def test_default_queue_limit(self):
        sys = one_machine_system()
        assert sys.cluster[0].queue_limit == 1

    def test_auto_queue_limit_is_4(self):
        pet = make_deterministic_pet(np.array([[10.0]]))
        sys = ServerlessSystem(pet, "MM", seed=0)
        assert sys.cluster[0].queue_limit == 4

    def test_overflow_waits_in_batch_queue(self):
        sys = one_machine_system(queue_limit=1)
        # 3 arrivals at t≈0: one runs, one queues, one waits in batch.
        tasks = tasks_from([(0, 0.0, 200.0), (0, 0.1, 200.0), (0, 0.2, 200.0)])
        sys.submit_workload(tasks)
        sys.sim.run(until=0.5)
        assert tasks[0].status is TaskStatus.RUNNING
        assert tasks[1].status is TaskStatus.MAPPED
        assert tasks[2].status is TaskStatus.PENDING
        assert sys.allocator.pending_tasks() == [tasks[2]]
        sys.sim.run()
        assert all(t.status is TaskStatus.COMPLETED_ON_TIME for t in tasks)

    def test_completion_triggers_mapping_of_waiting_task(self):
        sys = one_machine_system(queue_limit=1)
        tasks = tasks_from([(0, 0.0, 200.0), (0, 0.1, 200.0), (0, 0.2, 200.0)])
        sys.run(tasks)
        # FCFS through the single machine: 10, 20, 30.
        assert [t.finished_at for t in tasks] == [10.0, 20.0, 30.0]

    def test_mm_prefers_fast_machine_affinity(self):
        pet = make_deterministic_pet(np.array([[2.0, 9.0], [9.0, 2.0]]))
        sys = ServerlessSystem(pet, "MM", seed=0)
        tasks = tasks_from([(0, 0.0, 50.0), (1, 0.0, 50.0)])
        sys.run(tasks)
        assert tasks[0].machine_id == 0
        assert tasks[1].machine_id == 1


class TestReactiveDropInBatchQueue:
    def test_stale_batch_tasks_reaped(self):
        sys = one_machine_system(queue_limit=1)
        tasks = tasks_from(
            [(0, 0.0, 200.0), (0, 0.1, 200.0), (0, 0.2, 5.0)]  # last can never map in time
        )
        sys.run(tasks)
        assert tasks[2].status is TaskStatus.DROPPED_MISSED
        # reaped at the first mapping event after its deadline (t=10).
        assert tasks[2].dropped_at == pytest.approx(10.0)


class TestDeferring:
    def test_hopeless_task_deferred_not_dispatched(self):
        sys = one_machine_system(queue_limit=2, pruning=PruningConfig.defer_only(0.5))
        # Two viable tasks occupy the machine; the third (deadline 12,
        # completion ≈30) is deferred at every event, never mapped.
        tasks = tasks_from([(0, 0.0, 200.0), (0, 0.1, 200.0), (0, 0.2, 12.0)])
        sys.run(tasks)
        assert tasks[2].defer_count >= 1
        assert tasks[2].machine_id is None
        assert tasks[2].status is TaskStatus.DROPPED_MISSED  # finalized
        assert sys.accounting.total_defers >= 1

    def test_deferred_task_eventually_maps_when_chance_improves(self):
        pet = make_deterministic_pet(np.array([[10.0, 30.0]]))
        sys = ServerlessSystem(
            pet, "MM", pruning=PruningConfig.defer_only(0.5), queue_limit=1, seed=0
        )
        # Machine 0 is busy with task 0 until t=10.  Task 1 (deadline 25)
        # would miss on machine 1 (exec 30) and behind task 0 on machine 0
        # it completes at 20 ≤ 25 — viable, maps immediately.  Task 2
        # (deadline 35) behind both completes at 30 ≤ 35 — viable.
        tasks = tasks_from([(0, 0.0, 200.0), (0, 0.1, 25.0), (0, 0.2, 35.0)])
        sys.run(tasks)
        assert tasks[1].status is TaskStatus.COMPLETED_ON_TIME
        assert tasks[2].status is TaskStatus.COMPLETED_ON_TIME

    def test_defer_disabled_maps_hopeless(self):
        sys = one_machine_system(queue_limit=2, pruning=PruningConfig.drop_only(ToggleMode.NEVER))
        tasks = tasks_from([(0, 0.0, 200.0), (0, 0.1, 200.0), (0, 0.2, 12.0)])
        sys.run(tasks)
        # mapped despite being hopeless (no deferring), completes late or
        # is reaped — but it must have been dispatched at some point.
        assert tasks[2].mapped_at is not None


class TestPruningEndToEnd:
    def test_full_pruning_improves_on_time_under_oversubscription(self, pet_small):
        from repro.workload import WorkloadSpec, generate_workload
        from tests.conftest import fresh_tasks

        spec = WorkloadSpec(num_tasks=250, time_span=70.0, num_task_types=3)
        base_tasks = generate_workload(spec, pet_small, np.random.default_rng(3))

        base = ServerlessSystem(pet_small, "MSD", seed=1)
        r0 = base.run(fresh_tasks(base_tasks))
        pruned = ServerlessSystem(
            pet_small, "MSD", pruning=PruningConfig.paper_default(), seed=1
        )
        r1 = pruned.run(fresh_tasks(base_tasks))
        assert r1.on_time > r0.on_time

    def test_late_completions_nearly_eliminated_by_pruning(self, pet_small):
        from repro.workload import WorkloadSpec, generate_workload
        from tests.conftest import fresh_tasks

        spec = WorkloadSpec(num_tasks=250, time_span=70.0, num_task_types=3)
        base_tasks = generate_workload(spec, pet_small, np.random.default_rng(3))
        base = ServerlessSystem(pet_small, "MM", seed=1)
        r0 = base.run(fresh_tasks(base_tasks))
        pruned = ServerlessSystem(
            pet_small, "MM", pruning=PruningConfig.paper_default(), seed=1
        )
        r1 = pruned.run(fresh_tasks(base_tasks))
        assert r1.late < r0.late

    def test_proactive_drops_only_with_pruning(self, pet_small, oversub_workload):
        from tests.conftest import fresh_tasks

        base = ServerlessSystem(pet_small, "MM", seed=1)
        r0 = base.run(fresh_tasks(oversub_workload))
        assert r0.dropped_proactive == 0
        pruned = ServerlessSystem(
            pet_small, "MM", pruning=PruningConfig.paper_default(), seed=1
        )
        r1 = pruned.run(fresh_tasks(oversub_workload))
        assert r1.dropped_proactive > 0


class TestPlanConsistency:
    def test_every_submitted_task_reaches_terminal_state(self, pet_small, oversub_workload):
        from tests.conftest import fresh_tasks

        for pruning in (None, PruningConfig.paper_default()):
            sys = ServerlessSystem(pet_small, "MMU", pruning=pruning, seed=2)
            sys.run(fresh_tasks(oversub_workload))
            assert all(t.is_terminal for t in sys.tasks)

    def test_conservation_of_tasks(self, pet_small, oversub_workload):
        from tests.conftest import fresh_tasks

        sys = ServerlessSystem(
            pet_small, "MM", pruning=PruningConfig.paper_default(), seed=2
        )
        res = sys.run(fresh_tasks(oversub_workload))
        assert (
            res.on_time + res.late + res.dropped_missed + res.dropped_proactive
            + res.unfinished
            == res.total
            == len(oversub_workload)
        )

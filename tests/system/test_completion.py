"""Tests for the completion estimator (Eq. 1/2 + memoization)."""


import numpy as np
import pytest

from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.stochastic.etc import ETCMatrix
from repro.stochastic.pet import PETMatrix
from repro.stochastic.pmf import PMF
from repro.system.completion import CompletionEstimator

from tests.conftest import make_deterministic_pet


def put(cluster, sim, machine_id, i, ttype=0, duration=10.0, deadline=1000.0):
    t = Task(task_id=i, task_type=ttype, arrival=0.0, deadline=deadline)
    t.mark_mapped(machine_id, sim.now)
    cluster[machine_id].dispatch(t, sim, lambda *a: duration, lambda *a: None)
    return t


@pytest.fixture
def det_env():
    pet = make_deterministic_pet(np.array([[10.0, 4.0]]))
    cluster = Cluster.heterogeneous(2)
    return pet, cluster, Simulator(), CompletionEstimator(pet)


@pytest.fixture
def stoch_env():
    """One machine; exec time is 4 or 8 with equal probability."""
    pet = PETMatrix([[PMF.from_dict({4: 0.5, 8: 0.5})]])
    cluster = Cluster.heterogeneous(1)
    return pet, cluster, Simulator(), CompletionEstimator(pet)


class TestScalarView:
    def test_idle_machine_available_now(self, det_env):
        _, cluster, _, est = det_env
        assert est.expected_available(cluster[0], 5.0) == 5.0

    def test_running_task_adds_model_mean(self, det_env):
        _, cluster, sim, est = det_env
        put(cluster, sim, 0, 0)
        assert est.expected_available(cluster[0], 0.0) == pytest.approx(10.0)

    def test_queued_tasks_accumulate(self, det_env):
        _, cluster, sim, est = det_env
        for i in range(3):
            put(cluster, sim, 0, i)
        assert est.expected_available(cluster[0], 0.0) == pytest.approx(30.0)

    def test_expected_completion_adds_new_task(self, det_env):
        _, cluster, sim, est = det_env
        put(cluster, sim, 0, 0)
        assert est.expected_completion(0, cluster[0], 0.0) == pytest.approx(20.0)

    def test_expected_completion_extra_load(self, det_env):
        _, cluster, _, est = det_env
        assert est.expected_completion(0, cluster[0], 0.0, extra_load=7.0) == pytest.approx(17.0)

    def test_expected_release(self, det_env):
        _, cluster, sim, est = det_env
        put(cluster, sim, 0, 0)
        put(cluster, sim, 0, 1)
        assert est.expected_release(cluster[0], 0.0) == pytest.approx(10.0)

    def test_conditioning_pushes_past_now(self, stoch_env):
        """At t=6 a running 4-or-8 task hasn't finished, so its remaining
        belief is 'completes at 8' — not the stale unconditioned mean 6."""
        _, cluster, sim, est = stoch_env
        put(cluster, sim, 0, 0, duration=8.0)
        assert est.expected_available(cluster[0], 6.0) == pytest.approx(8.0)

    def test_without_conditioning_uses_max_now(self, stoch_env):
        pet, cluster, sim, _ = stoch_env
        est = CompletionEstimator(pet, condition_running=False)
        put(cluster, sim, 0, 0, duration=8.0)
        # unconditioned mean finish = 6, clamped to now
        assert est.expected_available(cluster[0], 7.0) == pytest.approx(7.0)


class TestProbabilisticView:
    def test_idle_availability_is_delta_now(self, det_env):
        _, cluster, _, est = det_env
        pct = est.availability_pct(cluster[0], 3.0)
        assert pct.support_size == 1
        assert pct.min_time == 3.0

    def test_pct_for_new_on_idle(self, stoch_env):
        _, cluster, _, est = stoch_env
        pct = est.pct_for_new(0, cluster[0], 0.0)
        assert pct.cdf_at(4.0) == pytest.approx(0.5)
        assert pct.cdf_at(8.0) == pytest.approx(1.0)

    def test_chain_matches_manual_convolution(self, stoch_env):
        pet, cluster, sim, est = stoch_env
        put(cluster, sim, 0, 0, duration=8.0)  # running
        put(cluster, sim, 0, 1)                # queued
        cell = pet.pmf(0, 0)
        expected = cell.shift(0.0).convolve(cell)  # running PCT ⊛ queued PET
        got = est.availability_pct(cluster[0], 0.0)
        assert got.allclose(expected)

    def test_chance_of_success_matches_cdf(self, stoch_env):
        _, cluster, _, est = stoch_env
        t = Task(task_id=5, task_type=0, arrival=0.0, deadline=6.0)
        # New task on idle machine: completes at 4 (p=.5) or 8 (p=.5).
        assert est.chance_of_success(t, cluster[0], 0.0) == pytest.approx(0.5)

    def test_queue_chances_in_fcfs_order(self, stoch_env):
        _, cluster, sim, est = stoch_env
        put(cluster, sim, 0, 0, duration=8.0)
        a = put(cluster, sim, 0, 1, deadline=8.0)
        b = put(cluster, sim, 0, 2, deadline=12.0)
        chances = est.queue_chances(cluster[0], 0.0)
        assert [t.task_id for t, _ in chances] == [1, 2]
        # a completes at 8/12/16 w.p. .25/.5/.25 → P(≤8) = .25
        assert chances[0][1] == pytest.approx(0.25)
        # b at 12..24: P(≤12)=.125
        assert chances[1][1] == pytest.approx(0.125)

    def test_horizon_truncation_is_pessimistic(self, stoch_env):
        pet, cluster, sim, _ = stoch_env
        est = CompletionEstimator(pet, horizon=6.0)
        put(cluster, sim, 0, 0, duration=8.0)
        t = Task(task_id=9, task_type=0, arrival=0.0, deadline=30.0)
        # everything beyond now+6 got folded into the tail → chance 0
        assert est.chance_of_success(t, cluster[0], 0.0) == pytest.approx(0.0)

    def test_running_conditioning_shifts_pct(self, stoch_env):
        _, cluster, sim, est = stoch_env
        put(cluster, sim, 0, 0, duration=8.0)
        pct = est.availability_pct(cluster[0], 5.0)
        # at t=5 the 4-outcome is ruled out
        assert pct.min_time >= 8.0
        assert pct.cdf_at(8.0) == pytest.approx(1.0)


class TestETCDegeneracy:
    def test_step_chance(self):
        etc = ETCMatrix(np.array([[10.0]]))
        cluster = Cluster.heterogeneous(1)
        est = CompletionEstimator(etc)
        ok = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        bad = Task(task_id=1, task_type=0, arrival=0.0, deadline=9.9)
        assert est.chance_of_success(ok, cluster[0], 0.0) == 1.0
        assert est.chance_of_success(bad, cluster[0], 0.0) == 0.0


class TestMemoization:
    def test_chain_cache_hit(self, det_env):
        _, cluster, sim, est = det_env
        put(cluster, sim, 0, 0)
        est.availability_pct(cluster[0], 0.0)
        misses = est.cache_misses
        est.availability_pct(cluster[0], 0.0)
        assert est.cache_misses == misses
        assert est.cache_hits >= 1

    def test_queue_change_invalidates(self, det_env):
        _, cluster, sim, est = det_env
        put(cluster, sim, 0, 0)
        est.availability_pct(cluster[0], 0.0)
        put(cluster, sim, 0, 1)  # version bump
        misses = est.cache_misses
        est.availability_pct(cluster[0], 0.0)
        assert est.cache_misses > misses

    def test_now_change_reanchors_without_reconvolving(self, det_env):
        """Advancing the clock must NOT throw the chain away: the prefix
        cache re-anchors via offset fix-up, costing zero convolutions."""
        _, cluster, sim, est = det_env
        put(cluster, sim, 0, 0)
        put(cluster, sim, 0, 1)
        est.availability_pct(cluster[0], 0.0)
        convs = est.convolutions
        pct = est.availability_pct(cluster[0], 1.0)
        assert est.convolutions == convs
        # Values still match a from-scratch estimator at the new time.
        fresh = CompletionEstimator(est.model, memoize=False)
        assert pct.allclose(fresh.availability_pct(cluster[0], 1.0), atol=0.0)

    def test_now_change_invalidates_keyed_mode(self, det_env):
        """The legacy keyed mode keeps the seed behavior: any clock tick
        is a cache miss."""
        pet, cluster, sim, _ = det_env
        est = CompletionEstimator(pet, memoize="keyed")
        put(cluster, sim, 0, 0)
        est.availability_pct(cluster[0], 0.0)
        misses = est.cache_misses
        est.availability_pct(cluster[0], 1.0)
        assert est.cache_misses > misses

    def test_memoize_off(self, det_env):
        pet, cluster, sim, _ = det_env
        est = CompletionEstimator(pet, memoize=False)
        put(cluster, sim, 0, 0)
        est.availability_pct(cluster[0], 0.0)
        est.availability_pct(cluster[0], 0.0)
        assert est.cache_hits == 0

    def test_same_type_shares_new_pct(self, det_env):
        _, cluster, sim, est = det_env
        put(cluster, sim, 0, 0)
        a = est.pct_for_new(0, cluster[0], 0.0)
        b = est.pct_for_new(0, cluster[0], 0.0)
        assert a is b

    def test_results_identical_with_and_without_cache(self, stoch_env):
        pet, cluster, sim, _ = stoch_env
        put(cluster, sim, 0, 0, duration=8.0)
        put(cluster, sim, 0, 1)
        with_cache = CompletionEstimator(pet, memoize=True)
        without = CompletionEstimator(pet, memoize=False)
        t = Task(task_id=7, task_type=0, arrival=0.0, deadline=14.0)
        assert with_cache.chance_of_success(t, cluster[0], 0.0) == pytest.approx(
            without.chance_of_success(t, cluster[0], 0.0)
        )

    def test_cache_capacity_bounds_memory(self, det_env):
        """Keyed caches are real LRUs: bounded size, one eviction per
        insert once full (not the old clear-everything policy)."""
        pet, cluster, sim, _ = det_env
        est = CompletionEstimator(pet, memoize="keyed", cache_capacity=4)
        put(cluster, sim, 0, 0)
        for now in range(20):
            est.availability_pct(cluster[0], float(now))
        assert len(est._chain_cache) <= 4
        assert est._chain_cache.evictions >= 16

    def test_lru_evicts_coldest_not_everything(self, det_env):
        pet, _, _, _ = det_env
        from repro.system.completion import LRUCache

        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh "a"; "b" is now coldest
        lru.put("c", 3)
        assert "b" not in lru and "a" in lru and "c" in lru
        assert lru.evictions == 1

    def test_cache_stats(self, det_env):
        _, cluster, _, est = det_env
        est.availability_pct(cluster[0], 0.0)
        stats = est.cache_stats()
        assert set(stats) == {
            "hits",
            "misses",
            "invalidations",
            "evictions",
            "convolutions",
            "convolutions_avoided",
            "chance_evaluations",
        }


class TestValidation:
    def test_bad_horizon(self, det_env):
        pet = det_env[0]
        with pytest.raises(ValueError):
            CompletionEstimator(pet, horizon=0.0)

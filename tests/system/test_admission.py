"""Tests for the admission-control baseline."""

import numpy as np
import pytest

from repro.core.config import PruningConfig
from repro.sim.task import Task, TaskStatus
from repro.system.admission import AdmissionController
from repro.system.serverless import ServerlessSystem

from tests.conftest import fresh_tasks, make_deterministic_pet


def build(threshold=0.5, exec_time=10.0, pruning=None):
    pet = make_deterministic_pet(np.array([[exec_time]]))
    sys = ServerlessSystem(pet, "MM", pruning=pruning, queue_limit=2, seed=0)
    return AdmissionController(sys, threshold=threshold), sys


class TestDecisions:
    def test_hopeless_task_rejected_at_arrival(self):
        ac, sys = build()
        tasks = [
            Task(task_id=0, task_type=0, arrival=0.0, deadline=200.0),
            Task(task_id=1, task_type=0, arrival=0.1, deadline=12.0),  # needs 20
        ]
        ac.run(tasks)
        assert tasks[1].status is TaskStatus.DROPPED_PROACTIVE
        assert ac.stats.rejected == 1
        assert ac.stats.admitted == 1
        assert ac.rejected_tasks == [tasks[1]]

    def test_viable_task_admitted(self):
        ac, sys = build()
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=50.0)
        ac.run([t])
        assert t.status is TaskStatus.COMPLETED_ON_TIME
        assert ac.stats.rejection_rate == 0.0

    def test_threshold_zero_admits_all(self):
        ac, _ = build(threshold=0.0)
        tasks = [
            Task(task_id=0, task_type=0, arrival=0.0, deadline=200.0),
            Task(task_id=1, task_type=0, arrival=0.1, deadline=1.0),
        ]
        ac.run(tasks)
        assert ac.stats.rejected == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            build(threshold=1.5)

    def test_best_chance_uses_best_machine(self):
        """A task hopeless on one machine but fine on another is admitted."""
        pet = make_deterministic_pet(np.array([[100.0, 5.0]]))
        sys = ServerlessSystem(pet, "MM", seed=0)
        ac = AdmissionController(sys)
        t = Task(task_id=0, task_type=0, arrival=0.0, deadline=10.0)
        assert ac.best_chance(t) == pytest.approx(1.0)


class TestVersusDeferring:
    def test_deferring_saves_tasks_admission_rejects(self, pet_small, oversub_workload):
        """The design point: rejection is irrevocable, deferment is not —
        so at equal thresholds the pruning mechanism completes at least as
        many tasks as admission control."""
        pruned = ServerlessSystem(
            pet_small, "MM", pruning=PruningConfig.paper_default(), seed=1
        )
        r_prune = pruned.run(fresh_tasks(oversub_workload))

        gated = ServerlessSystem(pet_small, "MM", seed=1)
        ac = AdmissionController(gated, threshold=0.5)
        r_admit = ac.run(fresh_tasks(oversub_workload))

        assert r_prune.on_time >= r_admit.on_time

    def test_accounting_still_consistent(self, pet_small, oversub_workload):
        gated = ServerlessSystem(pet_small, "MM", seed=1)
        ac = AdmissionController(gated, threshold=0.5)
        res = ac.run(fresh_tasks(oversub_workload))
        assert res.total == len(oversub_workload)
        assert gated.accounting.total_arrived == len(oversub_workload)
        assert res.dropped_proactive >= ac.stats.rejected

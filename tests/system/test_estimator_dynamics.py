"""Estimator-cache invalidation under cluster dynamics.

A machine dying (or draining/recovering) mid-queue wipes its whole PCT
chain; the incremental estimator must answer every subsequent query
exactly like a from-scratch reference — stale prefix state leaking
through a failure would poison every chance-of-success the pruner sees.
"""

import numpy as np
import pytest

from repro.sim.cluster import Cluster
from repro.sim.dynamics import DynamicsSpec
from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.stochastic.pet import generate_pet_matrix
from repro.system.completion import CompletionEstimator
from repro.system.serverless import ServerlessSystem
from repro.workload import WorkloadSpec, generate_workload
from tests.conftest import fresh_tasks


def put(cluster, sim, machine_id, i, ttype=0, duration=10.0, deadline=1000.0):
    t = Task(task_id=i, task_type=ttype, arrival=0.0, deadline=deadline)
    t.mark_mapped(machine_id, sim.now)
    cluster[machine_id].dispatch(t, sim, lambda *a: duration, lambda *a: None)
    return t


@pytest.fixture
def pet():
    return generate_pet_matrix(2, 2, seed=42, mean_range=(4.0, 9.0), samples_per_cell=150)


def assert_chains_equal(est_inc, est_ref, cluster, now):
    for machine in cluster.machines:
        a = est_inc._pct_chain(machine, now)
        b = est_ref._pct_chain(machine, now)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.offset == y.offset
            assert x.tail == y.tail
            assert np.array_equal(x.probs, y.probs)


class TestFailureInvalidation:
    def test_machine_dies_mid_queue_then_queries_match_reference(self, pet):
        """The satellite's scenario: warm chain, failure, fresh queries."""
        cluster = Cluster.heterogeneous(2)
        sim = Simulator()
        inc = CompletionEstimator(pet, memoize=True)
        ref = CompletionEstimator(pet, memoize=False)

        for i in range(5):
            put(cluster, sim, 0, i, ttype=i % 2)
        put(cluster, sim, 1, 99, ttype=1)
        # Warm the incremental chain on the soon-to-die machine.
        assert_chains_equal(inc, ref, cluster, 0.0)
        inv0 = inc.invalidations

        sim.run(until=3.0)
        machine = cluster[0]
        interrupted, evicted = machine.fail(sim)
        assert interrupted is not None and len(evicted) == 4
        assert inc.invalidations > inv0  # on_offline reached the cache

        # Post-failure: the dead machine's chain is the idle delta; the
        # survivor is untouched.  Both must match a cold reference.
        assert_chains_equal(inc, ref, cluster, sim.now)
        probe = Task(task_id=500, task_type=1, arrival=sim.now, deadline=60.0)
        assert inc.chance_of_success(probe, cluster[1], sim.now) == ref.chance_of_success(
            probe, cluster[1], sim.now
        )

        # Recovery + new work: chain rebuilt from scratch, still exact.
        machine.recover()
        put(cluster, sim, 0, 600, ttype=0)
        assert_chains_equal(inc, ref, cluster, sim.now)
        assert inc.chance_of_success(probe, machine, sim.now) == ref.chance_of_success(
            probe, machine, sim.now
        )

    def test_drain_mid_queue_invalidates(self, pet):
        cluster = Cluster.heterogeneous(2)
        sim = Simulator()
        inc = CompletionEstimator(pet, memoize=True)
        ref = CompletionEstimator(pet, memoize=False)
        for i in range(4):
            put(cluster, sim, 0, i, ttype=i % 2)
        assert_chains_equal(inc, ref, cluster, 0.0)
        cluster[0].drain()
        assert_chains_equal(inc, ref, cluster, 0.0)

    def test_full_simulation_with_churn_identical_across_memo_modes(self, pet_small):
        """End-to-end: churn + pruning, incremental vs no cache, bit-equal."""
        spec = WorkloadSpec(num_tasks=150, time_span=60.0, num_task_types=3)
        tasks = generate_workload(spec, pet_small, np.random.default_rng(31))
        dyn = DynamicsSpec(failures=2, mean_downtime=8.0, scale_up=1, scale_down=1)
        from repro.core.config import PruningConfig

        results = []
        for memoize in (True, "keyed", False):
            system = ServerlessSystem(
                pet_small,
                "MM",
                pruning=PruningConfig.paper_default(),
                seed=7,
                dynamics=dyn,
                memoize=memoize,
            )
            r = system.run(fresh_tasks(tasks)).to_dict()
            r.pop("estimator_stats")  # counters differ by design
            results.append(r)
        assert results[0] == results[1] == results[2]

"""The incremental estimation layer against the from-scratch reference.

The prefix-convolution cache must be *invisible*: every chance of
success it reports has to be exactly what a full Eq. 1 reconvolution
would produce, no matter how the machine queues mutate or time advances.
These tests drive real simulations and hand-built scenarios, comparing
the incremental estimator against ``memoize=False`` references with
strict equality (not approx) — the cache replays identical float
operations, so the values must match bit for bit.
"""

import numpy as np
import pytest

from repro.core.config import PruningConfig
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.stochastic.pet import PETMatrix, generate_pet_matrix
from repro.stochastic.pmf import PMF
from repro.system.completion import CompletionEstimator
from repro.system.serverless import ServerlessSystem
from repro.workload import WorkloadSpec, generate_workload


def put(cluster, sim, machine_id, i, ttype=0, duration=10.0, deadline=1000.0):
    t = Task(task_id=i, task_type=ttype, arrival=0.0, deadline=deadline)
    t.mark_mapped(machine_id, sim.now)
    cluster[machine_id].dispatch(t, sim, lambda *a: duration, lambda *a: None)
    return t


@pytest.fixture
def pet():
    """2 task types × 2 machines with non-trivial stochastic supports."""
    return generate_pet_matrix(2, 2, seed=42, mean_range=(4.0, 9.0), samples_per_cell=150)


def assert_chains_equal(est_inc, est_ref, cluster, now):
    for machine in cluster.machines:
        a = est_inc._pct_chain(machine, now)
        b = est_ref._pct_chain(machine, now)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.offset == y.offset
            assert x.tail == y.tail
            assert np.array_equal(x.probs, y.probs)


class TestClusterWideQueries:
    """The cluster-wide pipeline must be a pure batching of the
    per-machine queries: same values, any memoize mode."""

    def _loaded_cluster(self, pet, mode):
        cluster = Cluster.heterogeneous(2)
        sim = Simulator()
        est = CompletionEstimator(pet, memoize=mode)
        for i in range(5):
            put(cluster, sim, i % 2, i, ttype=i % 2, deadline=12.0 + 6 * i)
        return cluster, est

    @pytest.mark.parametrize("mode", [True, "keyed", False])
    def test_cluster_queue_chances_matches_per_machine(self, pet, mode):
        cluster, est = self._loaded_cluster(pet, mode)
        per_machine = [
            [c for _, c in est.queue_chances(m, 0.0)] for m in cluster.machines
        ]
        got = est.cluster_queue_chances(cluster.machines, 0.0)
        assert [list(map(float, g)) for g in got] == per_machine

    @pytest.mark.parametrize("mode", [True, "keyed", False])
    def test_queue_chances_start_is_suffix_of_full(self, pet, mode):
        cluster, est = self._loaded_cluster(pet, mode)
        machine = cluster[0]
        full = est.queue_chances(machine, 0.0)
        for start in range(len(machine.queue) + 1):
            part = est.queue_chances(machine, 0.0, start=start)
            assert part == full[start:]
            raw = est.queue_chances_suffix(machine, 0.0, start=start)
            assert [float(c) for c in raw] == [c for _, c in part]

    @pytest.mark.parametrize("mode", [True, "keyed", False])
    def test_chances_for_pairs_dedupe_matches_pointwise(self, pet, mode):
        cluster, est = self._loaded_cluster(pet, mode)
        probes = [
            Task(task_id=100 + k, task_type=k % 2, arrival=0.0, deadline=10.0 + 3 * k)
            for k in range(6)
        ]
        # Duplicated (type, machine) pairs on purpose.
        pairs = [(t, cluster.machines[k % 2]) for k, t in enumerate(probes)]
        got = est.chances_for_pairs(pairs, 0.0)
        want = [est.chance_of_success(t, m, 0.0) for t, m in pairs]
        assert [float(c) for c in got] == want

    def test_cluster_expected_available_matches_per_machine(self, pet):
        cluster, est = self._loaded_cluster(pet, True)
        got = est.cluster_expected_available(cluster.machines, 2.5)
        want = [est.expected_available(m, 2.5) for m in cluster.machines]
        assert got.tolist() == want

    def test_cluster_query_identical_across_modes(self, pet):
        results = {}
        for mode in (True, "keyed", False):
            cluster, est = self._loaded_cluster(pet, mode)
            results[str(mode)] = [
                list(map(float, g))
                for g in est.cluster_queue_chances(cluster.machines, 1.5)
            ]
        assert results["True"] == results["keyed"] == results["False"]


class TestExactEquivalence:
    def test_collapsed_conditioning_is_not_reused(self):
        """A running-task belief whose conditioning collapses to
        ``delta(now)`` (kept mass below the epsilon floor) tracks the
        clock itself — the cached base must be rebuilt at every new
        ``now``, not reused because the cut index happens to match."""
        pmf = PMF([1.0 - 1e-13, 1e-13])
        pet = PETMatrix([[pmf]], np.array([[pmf.finite_mean()]]))
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        inc = CompletionEstimator(pet, memoize=True)
        ref = CompletionEstimator(pet, memoize=False)
        put(cluster, sim, 0, 0, duration=1.0)
        for now in (0.5, 0.9):
            assert inc.expected_release(cluster[0], now) == ref.expected_release(
                cluster[0], now
            )
            assert_chains_equal(inc, ref, cluster, now)

    def test_mutation_sequence_matches_reference(self, pet):
        """Enqueues, drops, time advance, starts: every step bit-exact."""
        cluster = Cluster.heterogeneous(2)
        sim = Simulator()
        inc = CompletionEstimator(pet, memoize=True)
        ref = CompletionEstimator(pet, memoize=False)

        tasks = [put(cluster, sim, 0, i, ttype=i % 2) for i in range(5)]
        assert_chains_equal(inc, ref, cluster, 0.0)
        # Time advances: re-anchor, no reconvolution...
        assert_chains_equal(inc, ref, cluster, 0.7)
        assert_chains_equal(inc, ref, cluster, 3.3)
        # ...mid-queue drop: suffix reconvolved.
        cluster[0].remove(tasks[2])
        assert_chains_equal(inc, ref, cluster, 3.3)
        # ...enqueue: one-step extension.
        put(cluster, sim, 0, 99, ttype=1)
        assert_chains_equal(inc, ref, cluster, 4.1)
        # ...batch removal.
        cluster[0].remove_many([tasks[1], tasks[4]])
        assert_chains_equal(inc, ref, cluster, 5.9)

    def test_full_simulation_outcomes_identical(self, pet):
        """End-to-end: incremental / keyed / uncached runs are identical."""
        spec = WorkloadSpec(num_tasks=150, time_span=80.0, num_task_types=2)

        def run(mode):
            tasks = generate_workload(spec, pet, np.random.default_rng(5))
            system = ServerlessSystem(
                pet, "MM", pruning=PruningConfig.paper_default(), memoize=mode, seed=9
            )
            system.run(tasks)
            r = system.result()
            return (r.on_time, r.late, r.dropped_missed, r.dropped_proactive,
                    r.defer_decisions, r.makespan)

        assert run(True) == run("keyed") == run(False)

    def test_chances_identical_at_every_event(self, pet):
        """Shadow estimator: at every task event of a live simulation the
        incremental chances equal an uncached estimator's, exactly."""
        spec = WorkloadSpec(num_tasks=60, time_span=40.0, num_task_types=2)
        tasks = generate_workload(spec, pet, np.random.default_rng(8))
        ref = CompletionEstimator(pet, memoize=False)
        checked = {"n": 0}

        def observer(event, task, now):
            est = system.estimator
            for machine in system.cluster.machines:
                got = est.queue_chances(machine, now)
                want = ref.queue_chances(machine, now)
                assert [c for _, c in got] == [c for _, c in want]
            probe = Task(task_id=10_000, task_type=0, arrival=now, deadline=now + 15.0)
            grid = est.chances_for([probe], system.cluster.machines, now)
            for j, machine in enumerate(system.cluster.machines):
                assert grid[0, j] == ref.chance_of_success(probe, machine, now)
            checked["n"] += 1

        system = ServerlessSystem(
            pet, "MM", pruning=PruningConfig.paper_default(), seed=3, observer=observer
        )
        system.run(tasks)
        assert checked["n"] > 50


class TestIncrementalInvalidations:
    def test_enqueue_costs_one_convolution(self, pet):
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        for i in range(4):
            put(cluster, sim, 0, i)
        est.availability_pct(cluster[0], 0.0)
        convs = est.convolutions
        put(cluster, sim, 0, 99)
        est.availability_pct(cluster[0], 0.0)
        assert est.convolutions == convs + 1

    def test_mid_queue_drop_reconvolves_only_suffix(self, pet):
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        # Alternate types so the post-drop suffix is a *novel* type
        # sequence the §V-A product cache cannot shortcut.
        tasks = [put(cluster, sim, 0, i, ttype=i % 2) for i in range(6)]
        est.availability_pct(cluster[0], 0.0)  # queue: tasks 1..5
        convs = est.convolutions
        cluster[0].remove(tasks[3])  # queue index 2 of 5
        est.availability_pct(cluster[0], 0.0)
        # entries behind the dropped task: positions 2, 3 (4 queued left)
        assert est.convolutions == convs + 2

    def test_mid_queue_drop_replays_memoized_products(self, pet):
        """Uniform-type queue: the re-convolved suffix is a task-type
        product the §V-A cache has already materialized, so the drop
        costs zero convolutions — and the chain still matches the
        from-scratch reference bit for bit."""
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        ref = CompletionEstimator(pet, memoize=False)
        tasks = [put(cluster, sim, 0, i) for i in range(6)]
        est.availability_pct(cluster[0], 0.0)
        convs = est.convolutions
        cluster[0].remove(tasks[3])
        est.availability_pct(cluster[0], 0.0)
        assert est.convolutions == convs
        assert_chains_equal(est, ref, cluster, 0.0)

    def test_untouched_machine_is_pure_hit_across_time(self, pet):
        """While the running task's conditioning cut is unchanged (PET
        offsets are >= 1, so nothing is ruled out before now=1), a clock
        tick re-anchors the chain without any convolution."""
        cluster = Cluster.heterogeneous(2)
        sim = Simulator()
        est = CompletionEstimator(pet)
        for i in range(3):
            put(cluster, sim, 0, i)
        est.availability_pct(cluster[0], 0.0)
        convs, hits = est.convolutions, est.cache_hits
        est.availability_pct(cluster[0], 0.9)
        assert est.convolutions == convs
        assert est.cache_hits > hits

    def test_conditioning_cross_rebuilds_and_matches(self, pet):
        """Once `now` rules out early completions of the running task, the
        base genuinely changes; the rebuild must match the reference."""
        cluster = Cluster.heterogeneous(2)
        sim = Simulator()
        est = CompletionEstimator(pet)
        for i in range(3):
            put(cluster, sim, 0, i)
        est.availability_pct(cluster[0], 0.0)
        ref = CompletionEstimator(pet, memoize=False)
        assert_chains_equal(est, ref, cluster, 6.0)

    def test_defer_check_promotes_into_chain(self, pet):
        """pct_for_new immediately followed by a dispatch of that type
        reuses the product as the chain extension (no extra convolution)."""
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        put(cluster, sim, 0, 0)  # running
        put(cluster, sim, 0, 1)  # queued, keeps machine busy
        est.pct_for_new(0, cluster[0], 0.0)
        convs = est.convolutions
        put(cluster, sim, 0, 2, ttype=0)  # enqueue same type at same now
        est.availability_pct(cluster[0], 0.0)
        assert est.convolutions == convs  # promotion, not reconvolution
        # and the promoted chain matches the reference exactly
        ref = CompletionEstimator(pet, memoize=False)
        assert_chains_equal(est, ref, cluster, 0.0)

    def test_empty_queue_chain(self, pet):
        """Empty-queue machines: trivial chains, batched queries included."""
        cluster = Cluster.heterogeneous(2)
        sim = Simulator()
        est = CompletionEstimator(pet)
        # Idle machine: chain is a single delta at `now`.
        chain = est._pct_chain(cluster[0], 5.0)
        assert len(chain) == 1
        assert chain[0].support_size == 1 and chain[0].min_time == 5.0
        assert est.queue_chances(cluster[0], 5.0) == []
        # Running task, empty queue.
        put(cluster, sim, 1, 0)
        chain = est._pct_chain(cluster[1], 0.0)
        assert len(chain) == 1
        assert est.queue_chances(cluster[1], 0.0) == []
        # Batched grid over both still answers (uses pct_for_new).
        probe = Task(task_id=1, task_type=0, arrival=0.0, deadline=30.0)
        grid = est.chances_for([probe], cluster.machines, 0.0)
        assert grid.shape == (1, 2)
        ref = CompletionEstimator(pet, memoize=False)
        for j, m in enumerate(cluster.machines):
            assert grid[0, j] == ref.chance_of_success(probe, m, 0.0)


class TestBatchedQueries:
    def test_pairs_match_pointwise(self, pet):
        cluster = Cluster.heterogeneous(2)
        sim = Simulator()
        est = CompletionEstimator(pet)
        put(cluster, sim, 0, 0)
        put(cluster, sim, 1, 1, ttype=1)
        probes = [
            Task(task_id=10 + k, task_type=k % 2, arrival=0.0, deadline=8.0 + 3 * k)
            for k in range(4)
        ]
        pairs = [(t, cluster.machines[k % 2]) for k, t in enumerate(probes)]
        got = est.chances_for_pairs(pairs, 1.0)
        ref = CompletionEstimator(pet, memoize=False)
        for g, (t, m) in zip(got, pairs):
            assert g == ref.chance_of_success(t, m, 1.0)

    def test_grid_shape_and_type_sharing(self, pet):
        cluster = Cluster.heterogeneous(2)
        est = CompletionEstimator(pet)
        probes = [
            Task(task_id=k, task_type=0, arrival=0.0, deadline=10.0 + k) for k in range(3)
        ]
        convs_before = est.convolutions + est.convolutions_avoided
        grid = est.chances_for(probes, cluster.machines, 0.0)
        assert grid.shape == (3, 2)
        # Same type on the same machine shares one availability ⊛ PET
        # product: 2 machines -> exactly 2 products for 6 cells (the grid
        # deduplicates (task type, machine) pairs before any PCT work).
        assert (est.convolutions + est.convolutions_avoided) - convs_before == 2
        # A repeat query re-anchors the shared products out of the cache.
        grid2 = est.chances_for(probes, cluster.machines, 0.0)
        assert np.array_equal(grid, grid2)
        assert est.cache_hits >= 2


class TestModesAndStats:
    def test_invalid_memoize_mode_rejected(self, pet):
        with pytest.raises(ValueError):
            CompletionEstimator(pet, memoize="turbo")

    def test_memoize_strings_accepted(self, pet):
        assert CompletionEstimator(pet, memoize="incremental").memoize
        assert CompletionEstimator(pet, memoize="keyed").memoize
        assert not CompletionEstimator(pet, memoize=False).memoize

    def test_invalidation_counter_moves(self, pet):
        cluster = Cluster.heterogeneous(1)
        sim = Simulator()
        est = CompletionEstimator(pet)
        put(cluster, sim, 0, 0)
        est.availability_pct(cluster[0], 0.0)  # subscribes
        inv = est.invalidations
        put(cluster, sim, 0, 1)
        assert est.invalidations > inv

    def test_result_carries_estimator_stats(self, pet):
        spec = WorkloadSpec(num_tasks=40, time_span=30.0, num_task_types=2)
        tasks = generate_workload(spec, pet, np.random.default_rng(2))
        system = ServerlessSystem(pet, "MM", pruning=PruningConfig.paper_default(), seed=1)
        result = system.run(tasks)
        stats = result.estimator_stats
        assert stats["hits"] > 0
        assert stats["convolutions"] > 0
        assert stats["convolutions_avoided"] > 0
        assert stats["invalidations"] > 0

"""Tests for the batched campaign executor layer (ISSUE 6).

The plan resolver's adaptive contract (clamp to ``min(jobs, pending,
cpu_count)``, auto-serial when a pool cannot win — in particular the
``cpu_count == 1`` regression behind BENCH_campaign's 0.96x parallel
pathology), and byte-identity of every executor kind against serial.
"""

import json
import os

import pytest

from repro.experiments import campaign as campaign_mod
from repro.experiments.campaign import (
    CHUNKS_PER_WORKER,
    MIN_PARALLEL_PENDING,
    ResultCache,
    _chunked,
    resolve_execution_plan,
    run_cell_trials,
)
from repro.experiments.runner import ExperimentConfig
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(num_tasks=60, time_span=50.0, num_task_types=3)


def _configs(trials: int = 3) -> list[ExperimentConfig]:
    return [
        ExperimentConfig(heuristic="MM", spec=SPEC, trials=trials, base_seed=11),
        ExperimentConfig(heuristic="MSD", spec=SPEC, trials=trials, base_seed=11),
    ]


def _dumps(cells):
    return [
        [json.dumps(r.to_dict(), sort_keys=True) for r in cell] for cell in cells
    ]


# ======================================================================
class TestResolveExecutionPlan:
    def test_single_core_never_goes_parallel(self, monkeypatch):
        """The BENCH_campaign regression: on one core the default plan
        must be serial no matter how many --jobs were asked for — a pool
        only adds pickling on the core that would run the trials."""
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        for jobs in (2, 4, 64):
            assert resolve_execution_plan(jobs, pending=100) == ("serial", 1)

    def test_live_cpu_count_is_consulted(self, monkeypatch):
        """The resolver reads os.cpu_count() at call time (so the mock
        above is the real code path, not a copied-at-import constant)."""
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_execution_plan(4, pending=100) == ("process", 4)

    def test_clamped_to_min_of_jobs_pending_cpu(self):
        assert resolve_execution_plan(64, pending=5, cpu_count=8) == ("process", 5)
        assert resolve_execution_plan(3, pending=100, cpu_count=8) == ("process", 3)
        assert resolve_execution_plan(64, pending=100, cpu_count=6) == ("process", 6)

    def test_jobs_unset_stays_serial(self):
        """Parallelism is opt-in: no --jobs, no pool (historical contract)."""
        assert resolve_execution_plan(None, pending=100, cpu_count=8) == ("serial", 1)
        assert resolve_execution_plan(1, pending=100, cpu_count=8) == ("serial", 1)

    def test_tiny_workload_stays_serial(self):
        pending = MIN_PARALLEL_PENDING - 1
        assert resolve_execution_plan(8, pending, cpu_count=8) == ("serial", 1)

    def test_nothing_pending_is_serial_for_every_kind(self):
        for executor in ("auto", "serial", "thread", "process"):
            assert resolve_execution_plan(8, 1, executor=executor, cpu_count=8) == (
                "serial",
                1,
            )

    def test_explicit_executor_honored_on_one_core(self):
        """Forcing thread/process must work even at cpu_count == 1 — it
        is how the determinism harness exercises the pool paths."""
        assert resolve_execution_plan(2, 10, executor="thread", cpu_count=1) == (
            "thread",
            2,
        )
        assert resolve_execution_plan(2, 10, executor="process", cpu_count=1) == (
            "process",
            2,
        )
        # jobs unset: an explicit kind sizes itself from the cpu count.
        assert resolve_execution_plan(None, 10, executor="thread", cpu_count=4) == (
            "thread",
            4,
        )

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor must be one of"):
            resolve_execution_plan(2, 10, executor="mpi")


# ======================================================================
class TestChunking:
    def test_chunks_partition_in_order(self):
        todo = [(0, t) for t in range(17)]
        chunks = _chunked(todo, workers=2)
        assert [p for c in chunks for p in c] == todo
        assert all(chunks)

    def test_chunk_count_tracks_workers(self):
        todo = [(0, t) for t in range(100)]
        chunks = _chunked(todo, workers=3)
        assert len(chunks) <= 3 * CHUNKS_PER_WORKER + 1
        assert len(chunks) > 3  # more chunks than workers: stragglers rebalance

    def test_short_todo_never_yields_empty_chunks(self):
        assert _chunked([(0, 0), (0, 1)], workers=8) == [[(0, 0)], [(0, 1)]]


# ======================================================================
class TestExecutorByteIdentity:
    def test_all_executors_identical_to_serial(self):
        """The tentpole determinism guarantee: thread and chunked-process
        plans reproduce the serial per-trial results byte-for-byte."""
        configs = _configs(trials=3)
        serial = run_cell_trials(configs, executor="serial")
        thread = run_cell_trials(configs, jobs=2, executor="thread")
        process = run_cell_trials(configs, jobs=2, executor="process")
        assert _dumps(serial) == _dumps(thread) == _dumps(process)

    def test_pool_failure_caches_completed_siblings(self, tmp_path):
        """The chunked path keeps the per-trial failure contract: one bad
        trial surfaces after its finished siblings were cached."""
        good = _configs(trials=2)[0]
        bad = ExperimentConfig(heuristic="NOPE", spec=SPEC, trials=1, base_seed=11)
        cache = ResultCache(tmp_path)
        with pytest.raises(KeyError, match="unknown heuristic"):
            run_cell_trials([good, bad], jobs=2, cache=cache, executor="thread")
        assert cache.get(good, 0) is not None
        assert cache.get(good, 1) is not None

    def test_pool_failure_without_cache_fails_fast(self):
        bad = ExperimentConfig(heuristic="NOPE", spec=SPEC, trials=2, base_seed=11)
        with pytest.raises(KeyError, match="unknown heuristic"):
            run_cell_trials([bad], jobs=2, executor="thread")

    def test_worker_initializer_installs_shared_inputs(self):
        """Thread workers read the configs installed by the initializer
        (the table travels via initargs, not per-submitted chunk)."""
        configs = _configs(trials=2)
        run_cell_trials(configs, jobs=2, executor="thread")
        assert campaign_mod._WORKER_CONFIGS is not None
        assert list(campaign_mod._WORKER_CONFIGS) == configs

"""Tests for the experiment trial runner."""

import pytest

from repro.core.config import PruningConfig
from repro.experiments.runner import (
    ExperimentConfig,
    _trial_workload,
    pet_matrix,
    run_experiment,
    run_trial,
)
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(num_tasks=80, time_span=60.0, num_task_types=3)


class TestPetMatrix:
    def test_cached(self):
        assert pet_matrix() is pet_matrix()

    def test_homogeneous_kind(self):
        assert pet_matrix("homogeneous").is_homogeneous()
        assert not pet_matrix("inconsistent").is_homogeneous()

    def test_paper_dimensions(self):
        pet = pet_matrix()
        assert pet.num_task_types == 12
        assert pet.num_machine_types == 8

    def test_shared_matrix_is_read_only(self):
        """Regression: the lru-cached matrix is shared by every
        experiment in the process — writes must raise, not silently
        corrupt all later experiments."""
        pet = pet_matrix()
        with pytest.raises(ValueError):
            pet.means[0, 0] = 0.0
        with pytest.raises((AttributeError, TypeError)):
            pet.pmfs[0][0] = None  # tuples reject item assignment


class TestTrialWorkloads:
    def test_same_trial_same_tasks(self):
        pet = pet_matrix()
        a = _trial_workload(SPEC, pet, 42, 0)
        b = _trial_workload(SPEC, pet, 42, 0)
        assert [(t.arrival, t.deadline) for t in a] == [(t.arrival, t.deadline) for t in b]

    def test_trials_differ(self):
        pet = pet_matrix()
        a = _trial_workload(SPEC, pet, 42, 0)
        b = _trial_workload(SPEC, pet, 42, 1)
        assert [t.arrival for t in a] != [t.arrival for t in b]

    def test_workload_independent_of_variant(self):
        """Both variants of a comparison see the *same* workload trial —
        the paper's paired-trial methodology."""
        cfg_a = ExperimentConfig(heuristic="MM", spec=SPEC, trials=1)
        cfg_b = ExperimentConfig(
            heuristic="MSD", spec=SPEC, pruning=PruningConfig.paper_default(), trials=1
        )
        pet = pet_matrix()
        a = _trial_workload(cfg_a.spec, pet, cfg_a.base_seed, 0)
        b = _trial_workload(cfg_b.spec, pet, cfg_b.base_seed, 0)
        assert [(t.arrival, t.task_type) for t in a] == [(t.arrival, t.task_type) for t in b]


class TestRunTrial:
    def test_returns_trimmed_result(self):
        cfg = ExperimentConfig(heuristic="MM", spec=SPEC, trials=1)
        res = run_trial(cfg, 0)
        # trimmed window: total < generated count
        assert 0 < res.total

    def test_deterministic(self):
        cfg = ExperimentConfig(heuristic="MM", spec=SPEC, trials=1)
        r1, r2 = run_trial(cfg, 0), run_trial(cfg, 0)
        assert r1.on_time == r2.on_time

    def test_label(self):
        cfg = ExperimentConfig(heuristic="MM", spec=SPEC)
        assert cfg.display_label == "MM"
        cfg_p = ExperimentConfig(
            heuristic="MM", spec=SPEC, pruning=PruningConfig.paper_default()
        )
        assert cfg_p.display_label == "MM-P"
        assert ExperimentConfig(heuristic="MM", spec=SPEC, label="x").display_label == "x"


class TestRunExperiment:
    def test_aggregates_all_trials(self):
        cfg = ExperimentConfig(heuristic="MM", spec=SPEC, trials=3)
        agg = run_experiment(cfg)
        assert agg.trials == 3
        assert 0.0 <= agg.mean_pct <= 100.0

    def test_homogeneous_experiment_runs(self):
        cfg = ExperimentConfig(
            heuristic="EDF", spec=SPEC, heterogeneity="homogeneous", trials=2
        )
        agg = run_experiment(cfg)
        assert agg.trials == 2


class TestParallelTrials:
    def test_parallel_matches_serial(self):
        cfg = ExperimentConfig(heuristic="MM", spec=SPEC, trials=3)
        serial = run_experiment(cfg)
        parallel = run_experiment(cfg, processes=2)
        assert serial.per_trial_pct == parallel.per_trial_pct

    def test_single_process_path(self):
        cfg = ExperimentConfig(heuristic="MM", spec=SPEC, trials=2)
        assert run_experiment(cfg, processes=1).trials == 2

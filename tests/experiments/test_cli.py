"""Tests for the experiments CLI."""

import json

import pytest

from repro.experiments.cli import PAPER_SCALE, build_parser, main


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig7b"])
        assert args.figure == "fig7b"
        # None sentinel: figures resolve it to 10 at run time, sweeps
        # let the grid's own value win.
        assert args.trials is None
        assert parser.parse_args(["fig7b", "--trials", "10"]).trials == 10

    def test_all_and_headline_accepted(self):
        parser = build_parser()
        assert parser.parse_args(["all"]).figure == "all"
        assert parser.parse_args(["headline"]).figure == "headline"

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_paper_scale_value(self):
        assert PAPER_SCALE == pytest.approx(15000 / 900)

    def test_sweep_with_grid_accepted(self):
        args = build_parser().parse_args(["sweep", "smoke", "--jobs", "2"])
        assert args.figure == "sweep"
        assert args.grid == "smoke"
        assert args.jobs == 2

    def test_processes_is_a_jobs_alias(self):
        assert build_parser().parse_args(["fig7b", "--processes", "3"]).jobs == 3
        assert build_parser().parse_args(["fig7b", "-j", "4"]).jobs == 4

    def test_cache_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig7b", "--cache-dir", str(tmp_path), "--no-cache"]
        )
        assert args.cache_dir == tmp_path
        assert args.no_cache is True


class TestMain:
    def test_fig6_runs(self, capsys):
        rc = main(["fig6", "--scale", "0.2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out

    def test_figure_table_printed(self, capsys):
        rc = main(
            ["fig7b", "--trials", "1", "--scale", "0.12", "--seed", "1", "--no-cache"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig7b" in out
        assert "MM" in out and "reactive Toggle" in out

    def test_json_output(self, tmp_path, capsys):
        rc = main(
            [
                "fig7b",
                "--trials",
                "1",
                "--scale",
                "0.12",
                "--seed",
                "1",
                "--no-cache",
                "--json-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        payload = json.loads((tmp_path / "fig7b.json").read_text())
        assert payload["figure_id"] == "fig7b"

    def test_stray_grid_argument_rejected(self, capsys):
        """Regression: `fig7b oversub` (user meant `sweep oversub`) must
        error out instead of silently running fig7b."""
        assert main(["fig7b", "oversub"]) == 2
        assert "sweep oversub" in capsys.readouterr().err

    def test_figure_uses_cache_dir(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = [
            "fig7b", "--trials", "1", "--scale", "0.12", "--seed", "1",
            "--cache-dir", str(cache),
        ]
        assert main(argv) == 0
        cached = set(cache.rglob("*.json"))
        assert cached  # cold run populated the cache
        assert main(argv) == 0  # warm run served from it
        assert set(cache.rglob("*.json")) == cached


class TestSweep:
    def test_sweep_smoke(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "smoke",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign smoke" in out
        payload = json.loads((tmp_path / "campaign-smoke.json").read_text())
        assert payload["name"] == "smoke"
        assert (tmp_path / "campaign-smoke.csv").exists()

    def test_sweep_grid_file(self, tmp_path, capsys):
        grid = {
            "name": "mini",
            "heuristics": ["MM"],
            "levels": [{"name": "t", "num_tasks": 40, "time_span": 30.0,
                        "num_task_types": 3}],
            "pruning": ["none"],
            "trials": 1,
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid))
        rc = main(["sweep", str(path), "--no-cache"])
        assert rc == 0
        assert "campaign mini" in capsys.readouterr().out

    def test_sweep_trials_override(self, tmp_path, capsys):
        rc = main(
            ["sweep", "smoke", "--trials", "1", "--no-cache",
             "--json-dir", str(tmp_path)]
        )
        assert rc == 0
        payload = json.loads((tmp_path / "campaign-smoke.json").read_text())
        assert all(r["stats"]["trials"] == 1 for r in payload["rows"])

    def test_sweep_explicit_override_matching_figure_default(self, tmp_path, capsys):
        """Regression: an explicit --trials equal to the figure default
        (10) must still override the grid's own trial count."""
        grid = {
            "name": "ovr",
            "heuristics": ["MM"],
            "levels": [{"name": "t", "num_tasks": 40, "time_span": 30.0,
                        "num_task_types": 3}],
            "pruning": ["none"],
            "trials": 1,
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid))
        rc = main(["sweep", str(path), "--trials", "10", "--no-cache",
                   "--json-dir", str(tmp_path)])
        assert rc == 0
        payload = json.loads((tmp_path / "campaign-ovr.json").read_text())
        assert all(r["stats"]["trials"] == 10 for r in payload["rows"])

    def test_sweep_name_sanitized_in_output_paths(self, tmp_path, capsys):
        grid = {
            "name": "bad/name",
            "heuristics": ["MM"],
            "levels": [{"name": "t", "num_tasks": 40, "time_span": 30.0,
                        "num_task_types": 3}],
            "pruning": ["none"],
            "trials": 1,
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid))
        rc = main(["sweep", str(path), "--no-cache", "--json-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "campaign-bad_name.json").exists()

    def test_sweep_without_grid_errors(self, capsys):
        assert main(["sweep"]) == 2
        assert "sweep needs a grid" in capsys.readouterr().err

    def test_sweep_rejects_chart_flag(self, capsys):
        assert main(["sweep", "smoke", "--chart"]) == 2
        assert "--chart" in capsys.readouterr().err

    def test_sweep_unknown_grid_errors_cleanly(self, capsys):
        """A typo'd preset gets the one-line stderr + exit 2 treatment,
        not a traceback."""
        assert main(["sweep", "oversubb"]) == 2
        assert "neither a preset" in capsys.readouterr().err

    def test_sweep_bad_grid_content_errors_cleanly(self, tmp_path, capsys):
        """Grid-content errors (surfacing at expand time) get the same
        clean exit as load errors, whichever axis they come from."""
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "bad", "pruning": ["bogus"], "trials": 1}))
        assert main(["sweep", str(path), "--no-cache"]) == 2
        assert "unrecognized pruning entry" in capsys.readouterr().err
        path.write_text(json.dumps({"name": "bad", "levels": ["16k"], "trials": 1}))
        assert main(["sweep", str(path), "--no-cache"]) == 2
        assert "unknown level" in capsys.readouterr().err
        path.write_text(json.dumps({"name": "bad", "heuristics": ["NOPE"], "trials": 1}))
        assert main(["sweep", str(path), "--no-cache"]) == 2
        assert "unknown heuristic" in capsys.readouterr().err

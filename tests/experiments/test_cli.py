"""Tests for the experiments CLI."""

import json

import pytest

from repro.experiments.cli import PAPER_SCALE, build_parser, main


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig7b"])
        assert args.figure == "fig7b"
        assert args.trials == 10

    def test_all_and_headline_accepted(self):
        parser = build_parser()
        assert parser.parse_args(["all"]).figure == "all"
        assert parser.parse_args(["headline"]).figure == "headline"

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_paper_scale_value(self):
        assert PAPER_SCALE == pytest.approx(15000 / 900)


class TestMain:
    def test_fig6_runs(self, capsys):
        rc = main(["fig6", "--scale", "0.2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out

    def test_figure_table_printed(self, capsys):
        rc = main(["fig7b", "--trials", "1", "--scale", "0.12", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig7b" in out
        assert "MM" in out and "reactive Toggle" in out

    def test_json_output(self, tmp_path, capsys):
        rc = main(
            [
                "fig7b",
                "--trials",
                "1",
                "--scale",
                "0.12",
                "--seed",
                "1",
                "--json-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        payload = json.loads((tmp_path / "fig7b.json").read_text())
        assert payload["figure_id"] == "fig7b"

"""Smoke tests for the per-figure scenarios at tiny scale.

Full-scale shape assertions live in tests/test_integration.py; here each
scenario runs at scale 0.15 with 1–2 trials to verify wiring, labels, and
grid structure.
"""

import pytest

from repro.experiments import scenarios
from repro.experiments.report import FigureResult
from repro.workload.spec import ArrivalPattern

TINY = dict(trials=1, base_seed=1, scale=0.15)


class TestLevelSpec:
    def test_levels_keep_paper_ratios(self):
        n15 = scenarios.level_spec("15k").num_tasks
        n20 = scenarios.level_spec("20k").num_tasks
        n25 = scenarios.level_spec("25k").num_tasks
        assert n20 / n15 == pytest.approx(20 / 15, rel=0.01)
        assert n25 / n15 == pytest.approx(25 / 15, rel=0.01)

    def test_scale_preserves_rate(self):
        base = scenarios.level_spec("15k")
        scaled = scenarios.level_spec("15k", scale=2.0)
        assert scaled.mean_arrival_rate == pytest.approx(base.mean_arrival_rate, rel=0.01)
        assert scaled.time_span == pytest.approx(2 * base.time_span)

    def test_unknown_level(self):
        with pytest.raises(KeyError):
            scenarios.level_spec("30k")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            scenarios.level_spec("15k", scale=0.0)


class TestFig6:
    def test_series_shape(self):
        series = scenarios.fig6(base_seed=1, scale=0.25, num_types_shown=2)
        assert set(series) == {0, 1}
        centers, rates = series[0]
        assert centers.size == rates.size > 0

    def test_text_rendering(self):
        text = scenarios.fig6_text(base_seed=1, scale=0.25, num_types_shown=2)
        assert "Fig. 6" in text
        assert "type0" in text and "type1" in text


class TestGrids:
    def test_fig7a_structure(self):
        grid = scenarios.fig7a(**TINY)
        assert isinstance(grid, FigureResult)
        assert grid.rows == ["RR", "MCT", "MET", "KPB"]
        assert len(grid.cols) == 3
        assert all(0 <= grid.get(r, c).mean_pct <= 100 for r in grid.rows for c in grid.cols)

    def test_fig7b_structure(self):
        grid = scenarios.fig7b(**TINY)
        assert grid.rows == ["MM", "MSD", "MMU"]

    def test_fig8_structure(self):
        grid = scenarios.fig8(**TINY)
        assert grid.cols == ["0%", "25%", "50%", "75%"]

    def test_fig9_both_patterns(self):
        a = scenarios.fig9(ArrivalPattern.CONSTANT, **TINY)
        b = scenarios.fig9(ArrivalPattern.SPIKY, **TINY)
        assert a.figure_id == "fig9a"
        assert b.figure_id == "fig9b"
        assert a.rows == ["MM", "MSD", "MMU", "MM-P", "MSD-P", "MMU-P"]
        assert a.cols == ["15k", "20k", "25k"]

    def test_fig10_homogeneous(self):
        grid = scenarios.fig10(ArrivalPattern.SPIKY, **TINY)
        assert grid.figure_id == "fig10b"
        assert grid.rows == ["FCFS-RR", "SJF", "EDF", "FCFS-RR-P", "SJF-P", "EDF-P"]

    def test_all_figures_registry(self):
        assert set(scenarios.ALL_FIGURES) == {
            "fig6",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9a",
            "fig9b",
            "fig10a",
            "fig10b",
            "churn",
        }


class TestHeadline:
    def test_summary_text(self):
        f9 = scenarios.fig9(ArrivalPattern.SPIKY, **TINY)
        f10 = scenarios.fig10(ArrivalPattern.SPIKY, **TINY)
        text = scenarios.headline_summary(f9, f10)
        assert "max pruning gain" in text
        assert "paper" in text

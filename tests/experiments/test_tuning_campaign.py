"""Campaign-layer coverage for the ``tuning`` sweep axis.

The axis patches tuned parameter sets — explicit ``params`` or a tuner
trial ledger — onto each *pruned* cell of a grid, so a searched
configuration races the hand-set grid inside one campaign.  Contracts
pinned here: cell-count math and label suffixes, baseline cells emitted
once and untouched, ledger-entry resolution, named errors for malformed
entries, and sparse ``tuning`` row serialization (old payloads and
golden fixtures stay byte-identical).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.campaign import Campaign, SweepGrid, _resolve_tuning
from repro.experiments.report import CAMPAIGN_CSV_FIELDS, CampaignRow, CampaignSummary
from repro.metrics.robustness import AggregateStats
from repro.tuning.ledger import TrialRecord, write_ledger
from repro.tuning.params import params_label


def grid(**overrides):
    base = dict(
        name="tunegrid",
        heuristics=("MM",),
        levels=(
            {"name": "t", "num_tasks": 30, "time_span": 20.0, "num_task_types": 3},
        ),
        pruning=("none", "paper"),
        tuning=("none", {"params": {"beta": 0.7}, "label": "hot"}),
        trials=1,
        base_seed=3,
    )
    base.update(overrides)
    return SweepGrid(**base)


class TestResolveTuning:
    def test_none_forms(self):
        assert _resolve_tuning("none") == ("none", None)
        assert _resolve_tuning(None) == ("none", None)

    def test_params_entry_with_derived_label(self):
        params = {"beta": 0.7, "alpha": 2}
        label, resolved = _resolve_tuning({"params": params})
        assert resolved == params
        assert label == params_label(params)

    def test_explicit_label_wins(self):
        label, _ = _resolve_tuning({"params": {"beta": 0.7}, "label": "hot"})
        assert label == "hot"

    def test_ledger_entry_replays_ranked_params(self, tmp_path):
        path = tmp_path / "ledger.json"
        write_ledger(
            path,
            "key",
            {},
            [
                TrialRecord(index=0, params={"beta": 0.3}, score=41.0),
                TrialRecord(index=1, params={"beta": 0.6}, score=44.0),
            ],
        )
        label, params = _resolve_tuning({"ledger": str(path)})
        assert params == {"beta": 0.6}
        assert label == params_label({"beta": 0.6})
        _, second = _resolve_tuning({"ledger": str(path), "rank": 1, "label": "x"})
        assert second == {"beta": 0.3}

    def test_rejections_name_the_problem(self, tmp_path):
        with pytest.raises(ValueError, match='exactly one of "params" or "ledger"'):
            _resolve_tuning({})
        with pytest.raises(ValueError, match='exactly one of "params" or "ledger"'):
            _resolve_tuning({"params": {"beta": 0.7}, "ledger": "x.json"})
        with pytest.raises(ValueError, match="unknown tuning-entry keys"):
            _resolve_tuning({"params": {"beta": 0.7}, "rank": 0})
        with pytest.raises(ValueError, match="non-empty mapping"):
            _resolve_tuning({"params": {}})
        with pytest.raises(ValueError, match='"rank" must be an integer'):
            _resolve_tuning({"ledger": "x.json", "rank": 0.5})
        with pytest.raises(ValueError, match="unrecognized tuning entry"):
            _resolve_tuning(7)
        with pytest.raises(ValueError, match="cannot read"):
            _resolve_tuning({"ledger": str(tmp_path / "missing.json")})


class TestTuningAxis:
    def test_axis_multiplies_pruned_cells_only(self):
        g = grid()
        cells = g.expand()
        # 1 baseline + 2 tuning variants of the pruned cell.
        assert len(cells) == g.num_cells == 3
        by_tuning = {c.tuning_label: c for c in cells}
        assert set(by_tuning) == {"none", "hot"}
        labels = [c.config.label for c in cells]
        assert sum("~hot" in lb for lb in labels) == 1
        # The tuned cell got β patched; the untuned pruned cell did not.
        tuned = by_tuning["hot"]
        assert tuned.config.pruning.pruning_threshold == pytest.approx(0.7)
        untouched = [
            c for c in cells if c.tuning_label == "none" and c.config.pruning
        ]
        assert untouched[0].config.pruning.pruning_threshold == pytest.approx(0.5)

    def test_baseline_cells_emitted_once(self):
        cells = grid().expand()
        baselines = [c for c in cells if c.config.pruning is None]
        assert len(baselines) == 1
        assert baselines[0].tuning_label == "none"

    def test_num_cells_matches_expansion_with_controllers(self):
        g = grid(
            pruning=("none", "paper"),
            controller=("none", "hysteresis"),
            tuning=("none", {"params": {"beta": 0.7}}, {"params": {"beta": 0.9}}),
        )
        assert g.num_cells == len(g.expand())

    def test_all_none_axis_is_the_historical_grid(self):
        old = grid(tuning=("none",))
        assert [c.config.label for c in old.expand()] == [
            c.config.label
            for c in grid(tuning=("none",), name="again").expand()
        ]
        assert all("~" not in c.config.label for c in old.expand())

    def test_bad_entry_fails_at_expand_with_context(self):
        with pytest.raises(ValueError, match="tuning axis"):
            grid(tuning=("none", {"params": {}})).expand()
        # A knob invalid *for the cell* names the entry that carried it.
        with pytest.raises(ValueError, match="tuning entry 'bad'"):
            grid(
                tuning=({"params": {"controller.high": 0.3}, "label": "bad"},)
            ).expand()

    def test_json_round_trip_preserves_tuning_axis(self, tmp_path):
        g = grid(name="rt")
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(g.to_dict()))
        loaded = SweepGrid.from_json(path)
        assert loaded.to_dict()["tuning"] == g.to_dict()["tuning"]
        assert [c.config.label for c in loaded.expand()] == [
            c.config.label for c in g.expand()
        ]


class TestRowSerialization:
    def test_rows_carry_tuning_sparsely(self):
        summary = Campaign.from_grid(grid()).run()
        by_tuning = {row.tuning: row for row in summary.rows}
        assert set(by_tuning) == {"none", "hot"}
        payload = summary.to_dict()
        tuned_payload = next(r for r in payload["rows"] if "~hot" in r["label"])
        assert tuned_payload["tuning"] == "hot"
        for r in payload["rows"]:
            if "~hot" not in r["label"]:
                assert "tuning" not in r  # sparse: old payloads unchanged
        # Round trip, then CSV carries the appended column.
        summary2 = CampaignSummary.from_dict(json.loads(json.dumps(payload)))
        assert {r.tuning for r in summary2.rows} == {"none", "hot"}
        assert CAMPAIGN_CSV_FIELDS[-1] == "tuning"
        lines = summary.to_csv().splitlines()
        assert lines[0].endswith(",tuning")
        assert next(ln for ln in lines[1:] if "~hot" in ln).endswith(",hot")

    def test_pre_tuning_payloads_still_parse(self):
        row = CampaignRow.from_dict(
            {
                "label": "MM/P@t/spiky/inconsistent",
                "heuristic": "MM",
                "level": "t",
                "pattern": "spiky",
                "heterogeneity": "inconsistent",
                "pruning": "P",
                "stats": AggregateStats(
                    mean_pct=50.0, ci95_pct=1.0, trials=1, per_trial_pct=(50.0,)
                ).to_dict(),
            }
        )
        assert row.tuning == "none"

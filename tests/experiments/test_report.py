"""Tests for FigureResult tables."""

import json

import pytest

from repro.experiments.report import FigureResult
from repro.metrics.robustness import AggregateStats


def stat(mean, ci=1.0):
    return AggregateStats(mean_pct=mean, ci95_pct=ci, trials=3, per_trial_pct=(mean,) * 3)


@pytest.fixture
def grid():
    return FigureResult(
        figure_id="fig9b",
        title="demo",
        row_axis="heuristic",
        col_axis="level",
        rows=["MM", "MM-P"],
        cols=["15k", "25k"],
        cells={
            "MM": {"15k": stat(70.0), "25k": stat(40.0)},
            "MM-P": {"15k": stat(80.0), "25k": stat(55.0)},
        },
    )


class TestText:
    def test_contains_all_labels_and_values(self, grid):
        text = grid.to_text()
        for label in ("fig9b", "MM", "MM-P", "15k", "25k", "70.0", "55.0"):
            assert label in text

    def test_notes_rendered(self, grid):
        grid.notes = "a note"
        assert "a note" in grid.to_text()


class TestAccessors:
    def test_get(self, grid):
        assert grid.get("MM", "15k").mean_pct == 70.0

    def test_improvement(self, grid):
        assert grid.improvement("MM", "MM-P", "25k") == pytest.approx(15.0)

    def test_max_improvement(self, grid):
        assert grid.max_improvement() == pytest.approx(15.0)

    def test_max_improvement_no_pairs(self):
        g = FigureResult(
            figure_id="x",
            title="t",
            row_axis="r",
            col_axis="c",
            rows=["A"],
            cols=["1"],
            cells={"A": {"1": stat(1.0)}},
        )
        assert g.max_improvement() == float("-inf")


class TestJson:
    def test_roundtrip_via_dict(self, grid):
        d = grid.to_dict()
        assert d["cells"]["MM-P"]["25k"]["mean_pct"] == 55.0
        assert d["rows"] == ["MM", "MM-P"]

    def test_save_json(self, grid, tmp_path):
        path = tmp_path / "fig.json"
        grid.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["figure_id"] == "fig9b"

"""Tests for the campaign orchestration subsystem.

The three guarantees under test (see the module docstring of
``repro.experiments.campaign``): parallel execution is bit-for-bit
identical to serial, the result cache is content-addressed, and
aggregation is order-independent.
"""

import json
import time

import pytest

from repro.core.config import PruningConfig
from repro.experiments.campaign import (
    PRESETS,
    Campaign,
    ResultCache,
    SweepGrid,
    run_cell_trials,
    run_cells,
    trial_key,
)
from repro.experiments.runner import ExperimentConfig, run_trial
from repro.metrics.collector import SimulationResult
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(num_tasks=60, time_span=50.0, num_task_types=3)


def _configs(trials: int = 2) -> list[ExperimentConfig]:
    return [
        ExperimentConfig(heuristic="MM", spec=SPEC, trials=trials, base_seed=11),
        ExperimentConfig(
            heuristic="MM",
            spec=SPEC,
            pruning=PruningConfig.paper_default(),
            trials=trials,
            base_seed=11,
        ),
    ]


# ======================================================================
class TestSweepGrid:
    def test_expansion_is_full_cross_product(self):
        grid = SweepGrid(
            heuristics=("MM", "MSD"),
            levels=("15k", "25k"),
            pruning=("none", "paper"),
            trials=3,
        )
        cells = grid.expand()
        assert len(cells) == grid.num_cells == 8
        assert grid.total_trials == 24
        assert len({c.config.label for c in cells}) == 8  # labels unique

    def test_cell_labels_carry_coordinates(self):
        cells = SweepGrid(heuristics=("MSD",), levels=("25k",)).expand()
        assert cells[0].config.label == "MSD/base@25k/spiky/inconsistent"
        assert cells[1].config.label == "MSD/P@25k/spiky/inconsistent"

    def test_custom_level_mapping(self):
        grid = SweepGrid(
            levels=({"name": "mini", "num_tasks": 50, "time_span": 40.0},),
            pruning=("none",),
            trials=1,
        )
        (cell,) = grid.expand()
        assert cell.level == "mini"
        assert cell.config.spec.num_tasks == 50
        assert cell.config.spec.time_span == 40.0

    def test_scale_applies_to_custom_levels(self):
        grid = SweepGrid(
            levels=({"num_tasks": 100, "time_span": 40.0},),
            pruning=("none",),
            scale=0.5,
            trials=1,
        )
        (cell,) = grid.expand()
        assert cell.config.spec.num_tasks == 50
        assert cell.config.spec.time_span == 20.0
        # the derived name reports what actually runs, not the pre-scale count
        assert cell.level == "50t"

    def test_scale_preserves_spike_period_for_custom_levels(self):
        """Matching level_spec: the spike *period* is the regime, so the
        spike count stretches with the span unless explicitly given."""
        grid = SweepGrid(
            levels=({"num_tasks": 100, "time_span": 40.0},),
            pruning=("none",),
            scale=3.0,
            trials=1,
        )
        (cell,) = grid.expand()
        assert cell.config.spec.num_spikes == 12  # default 4 x scale 3
        pinned = SweepGrid(
            levels=({"num_tasks": 100, "time_span": 40.0, "num_spikes": 2},),
            pruning=("none",),
            scale=3.0,
            trials=1,
        ).expand()[0]
        assert pinned.config.spec.num_spikes == 2  # explicit value wins

    def test_level_integral_floats_coerced(self):
        """40.0 and 40 must be the same experiment — the count feeds RNG
        stream names and cache keys."""
        a = SweepGrid(levels=({"num_tasks": 40.0, "time_span": 30.0},), trials=1)
        b = SweepGrid(levels=({"num_tasks": 40, "time_span": 30.0},), trials=1)
        cfg_a, cfg_b = a.expand()[0].config, b.expand()[0].config
        assert cfg_a.spec.num_tasks == 40 and isinstance(cfg_a.spec.num_tasks, int)
        assert trial_key(cfg_a, 0) == trial_key(cfg_b, 0)
        with pytest.raises(ValueError, match="num_tasks must be an integer"):
            SweepGrid(levels=({"num_tasks": 40.5},), trials=1).expand()

    def test_json_integral_floats_coerced(self):
        grid = SweepGrid.from_dict({"name": "j", "trials": 2.0, "base_seed": 7.0})
        assert grid.trials == 2 and isinstance(grid.trials, int)
        assert grid.base_seed == 7 and isinstance(grid.base_seed, int)
        with pytest.raises(ValueError, match="trials must be an integer"):
            SweepGrid(trials=2.5)
        with pytest.raises(ValueError, match="scale must be positive"):
            SweepGrid(scale=0.0)

    def test_pruning_variants_resolve(self):
        grid = SweepGrid(
            pruning=(
                "none",
                "paper",
                "defer-only",
                "drop-only",
                {"threshold": 0.75, "toggle": "never", "drop": False},
            ),
            trials=1,
        )
        cells = grid.expand()
        labels = [c.pruning_label for c in cells]
        assert labels == ["base", "P", "D50", "T", "P75-never-nodrop"]
        assert cells[0].config.pruning is None
        assert cells[2].config.pruning.enable_dropping is False
        assert cells[4].config.pruning.pruning_threshold == 0.75

    def test_bad_entries_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(pruning=("bogus",)).expand()
        with pytest.raises(ValueError):
            SweepGrid(levels=(3.14,)).expand()
        with pytest.raises(ValueError):
            SweepGrid(trials=0)

    def test_pruning_typo_keys_rejected(self):
        """Regression: a typo'd key must not silently run the default
        configuration under a wrong label."""
        with pytest.raises(ValueError, match="unknown pruning keys"):
            SweepGrid(pruning=({"thresold": 0.75},)).expand()

    def test_level_typo_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown level keys"):
            SweepGrid(levels=({"num_task": 40},)).expand()

    def test_all_axes_validated_at_expand_time(self):
        """Typos on any axis must fail before a single trial runs."""
        with pytest.raises(ValueError, match="unknown heuristic"):
            SweepGrid(heuristics=("NOPE",)).expand()
        with pytest.raises(ValueError, match="unknown heterogeneity"):
            SweepGrid(heterogeneity=("bogus",)).expand()
        with pytest.raises(KeyError, match="unknown level"):
            SweepGrid(levels=("16k",)).expand()

    def test_colliding_cell_labels_rejected(self):
        """Regression: distinct variants deriving the same label would
        be indistinguishable in summaries — expand() must refuse."""
        with pytest.raises(ValueError, match="duplicate cell labels"):
            SweepGrid(
                pruning=(
                    {"threshold": 0.5, "dropping_toggle": 1},
                    {"threshold": 0.5, "fairness_factor": 0.1},
                )
            ).expand()
        # distinct switches get distinct derived labels
        cells = SweepGrid(
            pruning=({"drop": False}, {"fairness": False})
        ).expand()
        assert [c.pruning_label for c in cells] == ["P50-nodrop", "P50-nofair"]

    def test_json_round_trip(self, tmp_path):
        grid = SweepGrid(name="rt", heuristics=("MM", "MMU"), trials=5, scale=0.5)
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid.to_dict()))
        loaded = SweepGrid.from_json(path)
        assert loaded == grid

    def test_non_list_and_empty_axes_rejected(self):
        """A scalar or empty axis is a typo'd grid, not a 0-cell
        campaign that silently exits green."""
        with pytest.raises(ValueError, match="levels must be a list"):
            SweepGrid.from_dict({"name": "x", "levels": 15})
        with pytest.raises(ValueError, match="heuristics must not be empty"):
            SweepGrid.from_dict({"name": "x", "heuristics": []})

    def test_unknown_grid_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep-grid keys"):
            SweepGrid.from_dict({"name": "x", "heuristic": ["MM"]})

    def test_malformed_grid_sources_raise_value_error(self, tmp_path):
        """Directories, broken JSON, and non-object payloads all fail
        as ValueError so the CLI's clean-exit path catches them."""
        with pytest.raises(ValueError, match="must be a JSON object"):
            SweepGrid.from_dict([{"name": "x"}])
        with pytest.raises(ValueError, match="cannot read grid file"):
            SweepGrid.from_json(tmp_path)  # a directory
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            SweepGrid.from_json(bad)

    def test_string_booleans_rejected(self):
        """bool('false') is True — a stringly-typed switch must error,
        not silently run the opposite configuration."""
        with pytest.raises(ValueError, match="expected true/false"):
            SweepGrid(pruning=({"defer": "false"},), trials=1).expand()

    def test_mutating_loaded_grid_does_not_corrupt_presets(self):
        grid = SweepGrid.preset("smoke")
        grid.levels[0]["num_tasks"] = 9999
        fresh = SweepGrid.preset("smoke")
        assert fresh.levels[0]["num_tasks"] != 9999

    def test_presets_all_expand(self):
        for name in PRESETS:
            grid = SweepGrid.preset(name)
            assert grid.name == name
            assert grid.num_cells == len(grid.expand())

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            SweepGrid.preset("nope")

    def test_load_resolves_preset_and_path(self, tmp_path):
        assert SweepGrid.load("smoke").name == "smoke"
        path = tmp_path / "g.json"
        path.write_text(json.dumps(SweepGrid(name="fromfile").to_dict()))
        assert SweepGrid.load(str(path)).name == "fromfile"
        with pytest.raises(ValueError):
            SweepGrid.load("no/such/thing.json")


# ======================================================================
class TestTrialKey:
    def test_stable_for_equal_configs(self):
        a, b = _configs()[0], _configs()[0]
        assert trial_key(a, 0) == trial_key(b, 0)

    def test_differs_across_trials_and_params(self):
        cfg = _configs()[0]
        assert trial_key(cfg, 0) != trial_key(cfg, 1)
        assert trial_key(cfg, 0) != trial_key(
            ExperimentConfig(heuristic="MSD", spec=SPEC, trials=2, base_seed=11), 0
        )
        assert trial_key(cfg, 0) != trial_key(
            ExperimentConfig(heuristic="MM", spec=SPEC, trials=2, base_seed=12), 0
        )

    def test_pruning_threshold_changes_key(self):
        base = ExperimentConfig(
            heuristic="MM", spec=SPEC, pruning=PruningConfig(pruning_threshold=0.5)
        )
        variant = ExperimentConfig(
            heuristic="MM", spec=SPEC, pruning=PruningConfig(pruning_threshold=0.75)
        )
        assert trial_key(base, 0) != trial_key(variant, 0)

    def test_display_label_does_not_change_key(self):
        cfg = _configs()[0]
        relabelled = ExperimentConfig(
            heuristic="MM", spec=SPEC, trials=2, base_seed=11, label="pretty"
        )
        assert trial_key(cfg, 0) == trial_key(relabelled, 0)

    def test_code_changes_change_key(self, monkeypatch):
        """Editing simulation source must invalidate cached trials —
        the key carries a digest of the repro source tree."""
        from repro.experiments import campaign as campaign_mod

        before = trial_key(_configs()[0], 0)
        monkeypatch.setattr(campaign_mod, "_CODE_FINGERPRINT", "deadbeef")
        assert trial_key(_configs()[0], 0) != before


# ======================================================================
class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = _configs()[0]
        assert cache.get(cfg, 0) is None
        result = run_trial(cfg, 0)
        cache.put(cfg, 0, result)
        restored = cache.get(cfg, 0)
        assert restored == result
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = _configs()[0]
        cache.path_for(cfg, 0).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(cfg, 0).write_text("{not json")
        assert cache.get(cfg, 0) is None

    def test_entries_segregated_by_provenance(self, tmp_path, monkeypatch):
        """A 'code edit' (different fingerprint) writes to a separate
        subdirectory; neither version sees the other's entries."""
        from repro.experiments import campaign as campaign_mod

        cache = ResultCache(tmp_path)
        cfg = _configs()[0]
        result = run_trial(cfg, 0)
        cache.put(cfg, 0, result)
        old_dir = cache.current_dir
        monkeypatch.setattr(campaign_mod, "_CODE_FINGERPRINT", "deadbeef")
        assert cache.current_dir != old_dir
        assert cache.get(cfg, 0) is None  # other provenance, no hit
        cache.put(cfg, 0, result)
        assert len([p for p in tmp_path.iterdir() if p.is_dir()]) == 2

    def test_prune_stale_ages_out_old_provenances(self, tmp_path, monkeypatch):
        import os as os_mod

        from repro.experiments import campaign as campaign_mod

        cache = ResultCache(tmp_path)
        cfg = _configs()[0]
        cache.put(cfg, 0, run_trial(cfg, 0))
        old_dir = cache.current_dir
        orphan = old_dir / f"{'0' * 32}.tmp123"
        orphan.write_text("partial write")
        monkeypatch.setattr(campaign_mod, "_CODE_FINGERPRINT", "deadbeef")
        # A fresh tmp file may be a concurrent writer's in-flight entry:
        # never reaped young, only once stale.
        assert cache.prune_stale() == 0
        assert orphan.exists()
        hour_old = time.time() - 2 * 3600  # reprolint: ignore[D001] forging mtimes to test wall-clock cache pruning
        os_mod.utime(orphan, (hour_old, hour_old))
        assert cache.prune_stale() == 1
        assert not orphan.exists() and old_dir.is_dir()
        # aged past the cutoff -> whole directory removed
        stale = time.time() - 8 * 86400  # reprolint: ignore[D001] forging mtimes to test wall-clock cache pruning
        os_mod.utime(old_dir, (stale, stale))
        assert cache.prune_stale() == 1
        assert not old_dir.exists()

    def test_prune_never_touches_foreign_content(self, tmp_path):
        """--cache-dir pointed at a directory with unrelated content
        must not destroy any of it."""
        import os as os_mod

        foreign_dir = tmp_path / "results"
        foreign_dir.mkdir()
        (foreign_dir / "data.json").write_text("{}")
        foreign_tmp = tmp_path / "notes.tmp.txt"
        foreign_tmp.write_text("keep me")
        week_old = time.time() - 8 * 86400  # reprolint: ignore[D001] forging mtimes to test wall-clock cache pruning
        for path in (foreign_dir, foreign_tmp):
            os_mod.utime(path, (week_old, week_old))
        assert ResultCache(tmp_path).prune_stale() == 0
        assert foreign_dir.is_dir() and foreign_tmp.exists()

    def test_result_dict_round_trip_is_exact(self):
        result = run_trial(_configs()[1], 0)
        clone = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone == result


# ======================================================================
class TestParallelEquivalence:
    def test_jobs2_identical_to_serial(self):
        """A sharded campaign reproduces the serial per-trial results
        bit-for-bit (same seeds, any completion order)."""
        configs = _configs(trials=2)
        serial = run_cell_trials(configs, jobs=1)
        parallel = run_cell_trials(configs, jobs=2)
        assert serial == parallel
        # byte-level check through the canonical serialized form
        assert [
            [json.dumps(r.to_dict(), sort_keys=True) for r in cell] for cell in serial
        ] == [
            [json.dumps(r.to_dict(), sort_keys=True) for r in cell] for cell in parallel
        ]

    def test_cache_hits_on_immediate_rerun(self, tmp_path):
        configs = _configs(trials=2)
        cache = ResultCache(tmp_path)
        cold = run_cell_trials(configs, jobs=2, cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 4}
        warm = run_cell_trials(configs, jobs=2, cache=cache)
        assert cache.stats() == {"hits": 4, "misses": 4}
        assert warm == cold

    def test_partial_cache_resumes(self, tmp_path):
        """An interrupted campaign (some trials cached) completes the
        rest and matches an uncached run exactly."""
        configs = _configs(trials=2)
        reference = run_cell_trials(configs, jobs=1)
        cache = ResultCache(tmp_path)
        cache.put(configs[0], 1, reference[0][1])  # pretend one trial survived
        resumed = run_cell_trials(configs, cache=cache)
        assert resumed == reference
        assert cache.hits == 1

    def test_failing_trial_caches_completed_siblings(self, tmp_path):
        """A crashing cell must not discard the other cells' finished
        work: everything completed is cached before the error surfaces,
        so a resumed run re-executes only the broken piece."""
        good = _configs(trials=2)[0]
        # unknown heuristic -> run_trial raises inside the worker
        bad = ExperimentConfig(heuristic="NOPE", spec=SPEC, trials=1, base_seed=11)
        cache = ResultCache(tmp_path)
        with pytest.raises(KeyError, match="unknown heuristic"):
            run_cell_trials([good, bad], jobs=2, cache=cache)
        # the good cell's trials survived the sibling failure
        assert cache.get(good, 0) is not None
        assert cache.get(good, 1) is not None

    def test_heuristic_names_normalized(self):
        """'mm' and 'MM' are the same experiment: one cache identity,
        one label spelling."""
        lower = SweepGrid(heuristics=("mm",), pruning=("none",), trials=1).expand()
        upper = SweepGrid(heuristics=("MM",), pruning=("none",), trials=1).expand()
        assert lower[0].config.heuristic == "MM"
        assert lower[0].config.label == upper[0].config.label
        assert trial_key(lower[0].config, 0) == trial_key(upper[0].config, 0)

    def test_pruning_mapping_defaults_match_dataclass(self):
        """An empty mapping entry must equal PruningConfig() exactly —
        the defaults live in one place."""
        (cell,) = SweepGrid(pruning=({},), trials=1).expand()
        assert cell.config.pruning == PruningConfig()

    def test_run_cells_aggregates_in_trial_order(self):
        configs = _configs(trials=3)
        stats = run_cells(configs, jobs=2)
        serial_stats = run_cells(configs)
        assert [s.per_trial_pct for s in stats] == [
            s.per_trial_pct for s in serial_stats
        ]


# ======================================================================
class TestCampaign:
    def test_run_produces_summary(self, tmp_path):
        grid = SweepGrid.preset("smoke")
        cache = ResultCache(tmp_path)
        summary = Campaign.from_grid(grid).run(jobs=2, cache=cache)
        assert summary.name == "smoke"
        assert summary.labels == [c.config.label for c in grid.expand()]
        assert summary.cache_misses == grid.total_trials
        assert summary.jobs == 2
        rerun = Campaign.from_grid(grid).run(cache=cache)
        assert rerun.cache_hits == grid.total_trials
        assert [r.stats for r in rerun.rows] == [r.stats for r in summary.rows]

    def test_compare_cells(self):
        summary = Campaign.from_configs(_configs(trials=3), name="cmp").run()
        comparison = summary.compare(summary.labels[0], summary.labels[1])
        assert comparison.trials == 3

    def test_from_configs_rejects_colliding_labels(self):
        """Same guard as expand(): two configs deriving the same display
        label would be indistinguishable in the summary."""
        twins = [
            ExperimentConfig(heuristic="MM", spec=SPEC, trials=1, base_seed=1),
            ExperimentConfig(heuristic="MM", spec=SPEC, trials=1, base_seed=2),
        ]
        with pytest.raises(ValueError, match="duplicate cell labels"):
            Campaign.from_configs(twins)

    def test_non_numeric_scale_rejected(self):
        with pytest.raises(ValueError, match="scale must be a number"):
            SweepGrid.from_dict({"name": "s", "scale": "2"})

    def test_summary_json_and_csv_round_trip(self, tmp_path):
        summary = Campaign.from_grid(SweepGrid.preset("smoke")).run()
        path = tmp_path / "c.json"
        summary.save_json(path)
        from repro.experiments.report import CampaignSummary

        loaded = CampaignSummary.load_json(path)
        assert loaded.rows == summary.rows
        summary.save_csv(tmp_path / "c.csv")
        header = (tmp_path / "c.csv").read_text().splitlines()[0]
        assert header.startswith("label,heuristic,level,")

    def test_unknown_label_raises(self):
        summary = Campaign.from_grid(SweepGrid.preset("smoke")).run()
        with pytest.raises(KeyError):
            summary.get("nope")

"""SweepGrid ``controller`` axis, the ``adaptive`` preset, and the new
CLI overrides (``--controller`` / ``--pruning-threshold`` /
``--toggle-alpha``)."""

from __future__ import annotations

import pytest

from repro.core.config import ControllerConfig, PruningConfig
from repro.experiments.campaign import Campaign, SweepGrid, trial_key
from repro.experiments.cli import main
from repro.experiments.report import CampaignSummary
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scenarios import _apply_pruning_overrides
from repro.workload.spec import WorkloadSpec

TINY_LEVEL = {"name": "tiny", "num_tasks": 80, "time_span": 50.0, "num_task_types": 4}


class TestGridAxis:
    def test_default_axis_is_no_controller(self):
        cells = SweepGrid(levels=[TINY_LEVEL]).expand()
        for cell in cells:
            assert cell.controller_label == ""
            if cell.config.pruning is not None:
                assert cell.config.pruning.controller is None

    def test_controller_attaches_to_pruned_cells_only(self):
        grid = SweepGrid(
            levels=[TINY_LEVEL],
            pruning=["none", "paper"],
            controller=["none", "hysteresis"],
        )
        cells = grid.expand()
        labels = [c.config.display_label for c in cells]
        assert len(cells) == grid.num_cells == 3  # base, P, P+hysteresis
        assert any("P+hysteresis@" in label for label in labels)
        adaptive = [c for c in cells if c.controller_label == "hysteresis"]
        assert len(adaptive) == 1
        assert adaptive[0].config.pruning.controller.kind == "hysteresis"

    def test_baseline_not_duplicated_without_none_entry(self):
        grid = SweepGrid(
            levels=[TINY_LEVEL],
            pruning=["none", "paper"],
            controller=["hysteresis", "target-success"],
        )
        cells = grid.expand()
        assert len(cells) == grid.num_cells == 3  # base once, P × 2 controllers
        base = [c for c in cells if c.config.pruning is None]
        assert len(base) == 1

    def test_spec_string_and_mapping_entries(self):
        grid = SweepGrid(
            levels=[TINY_LEVEL],
            pruning=["paper"],
            controller=[
                "hysteresis:low=0.02,high=0.4",
                {"kind": "schedule", "schedule": [[0, 0.3], [30, 0.7]], "label": "ramp"},
            ],
        )
        cells = grid.expand()
        assert [c.controller_label for c in cells] == ["hysteresis", "ramp"]
        assert cells[0].config.pruning.controller.high == 0.4
        assert cells[1].config.pruning.controller.schedule == ((0.0, 0.3), (30.0, 0.7))

    def test_bad_controller_entry_fails_at_expand(self):
        grid = SweepGrid(levels=[TINY_LEVEL], controller=["pid"])
        with pytest.raises(ValueError, match="controller axis"):
            grid.expand()

    def test_round_trip_through_dict(self):
        grid = SweepGrid(
            levels=[TINY_LEVEL],
            controller=["none", {"kind": "hysteresis", "label": "h"}],
        )
        rebuilt = SweepGrid.from_dict(grid.to_dict())
        assert [c.config for c in rebuilt.expand()] == [
            c.config for c in grid.expand()
        ]

    def test_controller_changes_cache_identity(self):
        spec = WorkloadSpec(**{k: v for k, v in TINY_LEVEL.items() if k != "name"})
        base = ExperimentConfig(heuristic="MM", spec=spec, pruning=PruningConfig())
        adaptive = ExperimentConfig(
            heuristic="MM",
            spec=spec,
            pruning=PruningConfig(controller=ControllerConfig(kind="hysteresis")),
        )
        assert trial_key(base, 0) != trial_key(adaptive, 0)

    def test_adaptive_preset_expands(self):
        grid = SweepGrid.preset("adaptive")
        cells = grid.expand()
        assert len(cells) == grid.num_cells
        labels = {c.controller_label for c in cells}
        assert {"", "hysteresis", "target-success"} <= labels


class TestCampaignRows:
    def test_rows_carry_controller_and_sufferage(self):
        grid = SweepGrid(
            levels=[TINY_LEVEL],
            pruning=["paper"],
            controller=["none", "static"],
            trials=1,
            base_seed=5,
        )
        summary = Campaign.from_grid(grid).run()
        by_controller = {row.controller: row for row in summary.rows}
        assert set(by_controller) == {"", "static"}
        # Telemetry rides the control plane: only the controlled cell
        # reports sufferage; both report identical robustness (static ≡
        # no controller).
        assert by_controller[""].max_sufferage == 0.0
        assert by_controller["static"].max_sufferage >= 0.0
        assert by_controller[""].stats.per_trial_pct == pytest.approx(
            by_controller["static"].stats.per_trial_pct
        )

    def test_summary_round_trip_and_csv_columns(self):
        grid = SweepGrid(
            levels=[TINY_LEVEL], pruning=["paper"], controller=["static"],
            trials=1, base_seed=5,
        )
        summary = Campaign.from_grid(grid).run()
        rebuilt = CampaignSummary.from_dict(summary.to_dict())
        assert rebuilt.rows[0].controller == "static"
        assert rebuilt.rows[0].max_sufferage == summary.rows[0].max_sufferage
        header = summary.to_csv().splitlines()[0]
        # Columns are append-only: the controller pair keeps its position
        # even as later axes (dag, …) append after it.
        assert ",controller,max_sufferage," in header + ","

    def test_legacy_summary_payload_defaults(self):
        grid = SweepGrid(levels=[TINY_LEVEL], pruning=["paper"], trials=1, base_seed=5)
        summary = Campaign.from_grid(grid).run()
        payload = summary.to_dict()
        for row in payload["rows"]:
            del row["controller"], row["max_sufferage"]  # pre-PR-5 shape
        rebuilt = CampaignSummary.from_dict(payload)
        assert rebuilt.rows[0].controller == ""
        assert rebuilt.rows[0].max_sufferage == 0.0


class TestOverrideHelper:
    def _config(self, pruning):
        return ExperimentConfig(
            heuristic="MM",
            spec=WorkloadSpec(num_tasks=50, time_span=40.0),
            pruning=pruning,
        )

    def test_baseline_untouched(self):
        config = self._config(None)
        assert _apply_pruning_overrides(config, 0.9, 3, None) is config

    def test_no_overrides_is_identity(self):
        config = self._config(PruningConfig())
        assert _apply_pruning_overrides(config, None, None, None) is config

    def test_overrides_applied(self):
        ctl = ControllerConfig(kind="static")
        out = _apply_pruning_overrides(self._config(PruningConfig()), 0.75, 2, ctl)
        assert out.pruning.pruning_threshold == 0.75
        assert out.pruning.dropping_toggle == 2
        assert out.pruning.controller is ctl


class TestCLI:
    def test_figure_with_overrides_runs(self, capsys):
        rc = main(
            [
                "fig7b", "--trials", "1", "--scale", "0.12", "--seed", "1",
                "--no-cache", "--pruning-threshold", "0.75", "--toggle-alpha", "1",
                "--controller", "hysteresis:low=0.02,high=0.3",
            ]
        )
        assert rc == 0
        assert "fig7b" in capsys.readouterr().out

    def test_sweep_controller_override_replaces_axis(self, capsys):
        rc = main(
            [
                "sweep", "smoke", "--trials", "1", "--no-cache",
                "--controller", "static",
            ]
        )
        assert rc == 0
        assert "P+static@" in capsys.readouterr().out

    def test_sweep_rejects_beta_alpha_flags(self, capsys):
        rc = main(["sweep", "smoke", "--pruning-threshold", "0.9"])
        assert rc == 2
        assert "apply to figures" in capsys.readouterr().err

    def test_bad_controller_spec_clean_exit(self, capsys):
        rc = main(["fig7b", "--controller", "pid"])
        assert rc == 2
        assert "unknown controller" in capsys.readouterr().err

    def test_bad_sweep_controller_spec_clean_exit(self, capsys):
        rc = main(["sweep", "smoke", "--no-cache", "--controller", "pid"])
        assert rc == 2
        assert "unknown controller" in capsys.readouterr().err

"""Campaign-layer coverage for the DAG axis and trace adapters.

Three contracts: the ``dag`` grid axis expands/labels/serializes like
every other axis (and refuses trace levels, which carry their own
edges); DAG and adapted-trace cells are byte-identical across the
serial/thread/process executors; campaign rows and CSV output carry the
new ``dag``/``cascade_drops``/``depths`` telemetry sparsely.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.campaign import (
    PRESETS,
    Campaign,
    SweepGrid,
    _resolve_dag,
    run_cell_trials,
)
from repro.experiments.cli import main
from repro.experiments.report import CAMPAIGN_CSV_FIELDS, CampaignRow, CampaignSummary
from repro.experiments.runner import ExperimentConfig
from repro.metrics.robustness import AggregateStats
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import trace_spec

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
AZURE_MINI = REPO_ROOT / "tests" / "data" / "azure_mini.csv"
EXAMPLE_TRACE = REPO_ROOT / "examples" / "traces" / "bursty_small.csv"

DAG_SPEC = WorkloadSpec(
    num_tasks=80, time_span=40.0, num_task_types=3, dag_layers=3
)


def _dumps(cells):
    return [
        [json.dumps(r.to_dict(), sort_keys=True) for r in cell] for cell in cells
    ]


# ======================================================================
class TestResolveDag:
    def test_none_forms(self):
        assert _resolve_dag("none") == ("none", None)
        assert _resolve_dag(None) == ("none", None)

    def test_layered_shorthand(self):
        assert _resolve_dag("layered") == ("dag4", {"dag_layers": 4})

    def test_mapping_with_derived_label(self):
        label, fields = _resolve_dag({"layers": 3})
        assert (label, fields) == ("dag3", {"dag_layers": 3})
        # Non-default knobs surface in the label so variants don't collide.
        label, fields = _resolve_dag({"layers": 3, "edge_prob": 0.25})
        assert label == "dag3-p0.25"
        assert fields == {"dag_layers": 3, "dag_edge_prob": 0.25}
        label, _ = _resolve_dag({"layers": 2, "max_parents": 1})
        assert label == "dag2-m1"

    def test_explicit_label_wins(self):
        label, _ = _resolve_dag({"layers": 5, "label": "deep"})
        assert label == "deep"

    def test_integral_floats_coerced(self):
        _, fields = _resolve_dag({"layers": 3.0, "max_parents": 2.0})
        assert fields == {"dag_layers": 3, "dag_max_parents": 2}
        assert all(isinstance(v, int) for v in fields.values())

    def test_rejections(self):
        with pytest.raises(ValueError, match="unknown dag keys"):
            _resolve_dag({"layers": 3, "depth": 9})
        with pytest.raises(ValueError, match='must set "layers"'):
            _resolve_dag({"edge_prob": 0.5})
        with pytest.raises(ValueError, match="must be an integer"):
            _resolve_dag({"layers": 2.5})
        with pytest.raises(ValueError, match="unrecognized dag entry"):
            _resolve_dag(7)


# ======================================================================
class TestDagAxis:
    def _grid(self, **overrides):
        base = dict(
            heuristics=("MM",),
            levels=({"name": "t", "num_tasks": 50, "time_span": 40.0,
                     "num_task_types": 3},),
            pruning=("none", "paper"),
            dag=("none", {"layers": 3}),
            trials=1,
        )
        base.update(overrides)
        return SweepGrid(**base)

    def test_axis_multiplies_cells_and_labels(self):
        grid = self._grid()
        cells = grid.expand()
        assert len(cells) == grid.num_cells == 4
        labels = [c.config.label for c in cells]
        # Flat cells keep the historical label shape; DAG cells append
        # the variant so old cache keys and reports are untouched.
        assert sum("/dag3" in lb for lb in labels) == 2
        assert len(set(labels)) == 4
        by_dag = {c.dag_label for c in cells}
        assert by_dag == {"none", "dag3"}
        for cell in cells:
            if cell.dag_label == "dag3":
                assert cell.config.spec.dag_layers == 3
            else:
                assert cell.config.spec.dag_layers == 0

    def test_dag_axis_rejects_trace_levels(self):
        grid = self._grid(
            levels=({"trace": str(EXAMPLE_TRACE), "name": "rec"},),
            patterns=("trace",),
        )
        with pytest.raises(ValueError, match="dag axis applies only to synthetic"):
            grid.expand()
        # An all-"none" dag axis is the historical grid: traces still fine.
        grid = self._grid(
            levels=({"trace": str(EXAMPLE_TRACE), "name": "rec"},),
            patterns=("trace",),
            dag=("none",),
        )
        assert len(grid.expand()) == 2

    def test_json_round_trip_preserves_dag_axis(self, tmp_path):
        grid = self._grid(name="rt")
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid.to_dict()))
        loaded = SweepGrid.from_json(path)
        assert loaded.to_dict()["dag"] == grid.to_dict()["dag"]
        assert [c.config.label for c in loaded.expand()] == [
            c.config.label for c in grid.expand()
        ]

    def test_new_presets_ship_the_new_axes(self):
        assert PRESETS["dag"]["dag"][-1]["layers"] == 3
        levels = PRESETS["azure"]["levels"]
        assert any(lv.get("sample") for lv in levels if isinstance(lv, dict))
        for name in ("dag", "azure", "gcluster"):
            grid = SweepGrid.preset(name)
            assert grid.num_cells == len(grid.expand())


# ======================================================================
class TestExecutorByteIdentity:
    def test_dag_and_adapted_trace_cells_identical_across_executors(self):
        """The acceptance contract: a DAG cell and a downsampled
        adapted-trace replay are bit-identical under every executor."""
        configs = [
            ExperimentConfig(
                heuristic="MM", spec=DAG_SPEC, trials=2, base_seed=11
            ),
            ExperimentConfig(
                heuristic="MM",
                spec=trace_spec(str(AZURE_MINI), fmt="azure", sample=0.6),
                trials=2,
                base_seed=11,
            ),
        ]
        serial = run_cell_trials(configs, executor="serial")
        thread = run_cell_trials(configs, jobs=2, executor="thread")
        process = run_cell_trials(configs, jobs=2, executor="process")
        assert _dumps(serial) == _dumps(thread) == _dumps(process)
        # The DAG cell actually exercised the new machinery…
        assert any(r.dag_stats for r in serial[0])
        # …and the sampled replay is a strict subset of the mini trace.
        assert all(r.total < 48 for r in serial[1])


# ======================================================================
class TestCampaignTelemetry:
    def test_rows_carry_dag_columns(self, tmp_path):
        grid = SweepGrid(
            name="dagmini",
            heuristics=("MM",),
            levels=({"name": "t", "num_tasks": 50, "time_span": 25.0,
                     "num_task_types": 3},),
            pruning=("paper",),
            dag=("none", {"layers": 3}),
            trials=1,
        )
        summary = Campaign.from_grid(grid).run()
        by_dag = {row.dag: row for row in summary.rows}
        assert set(by_dag) == {"none", "dag3"}
        flat, dag = by_dag["none"], by_dag["dag3"]
        assert flat.depths == {} and flat.cascade_drops == 0.0
        assert dag.depths  # per-depth outcome table present
        assert all(set(v) >= {"total", "on_time"} for v in dag.depths.values())
        # Round-trip: the sparse payload survives JSON and keeps the
        # flat row's payload free of the new keys.
        payload = summary.to_dict()
        summary2 = CampaignSummary.from_dict(json.loads(json.dumps(payload)))
        assert {r.dag: r.depths for r in summary2.rows} == {
            r.dag: {k: dict(v) for k, v in r.depths.items()} for r in summary.rows
        }
        flat_payload = next(r for r in payload["rows"] if r["label"] == flat.label)
        assert "dag" not in flat_payload and "depths" not in flat_payload
        # CSV: the new columns are appended (never inserted) and filled.
        assert CAMPAIGN_CSV_FIELDS[-3:] == ("dag", "cascade_drops", "tuning")
        lines = summary.to_csv().splitlines()
        assert lines[0] == ",".join(CAMPAIGN_CSV_FIELDS)
        dag_line = next(ln for ln in lines[1:] if "/dag3" in ln)
        assert ",dag3," in dag_line

    def test_row_defaults_stay_backward_compatible(self):
        """Pre-DAG row payloads (older JSON) still parse."""
        row = CampaignRow.from_dict(
            {
                "label": "MM/P@15k/spiky/inconsistent",
                "heuristic": "MM",
                "level": "15k",
                "pattern": "spiky",
                "heterogeneity": "inconsistent",
                "pruning": "P",
                "stats": AggregateStats(
                    mean_pct=50.0, ci95_pct=1.0, trials=1, per_trial_pct=(50.0,)
                ).to_dict(),
            }
        )
        assert row.dag == "none"
        assert row.cascade_drops == 0.0
        assert row.depths == {}


# ======================================================================
class TestTraceSampleCli:
    def _trace_grid(self, tmp_path, **level_extra):
        grid = {
            "name": "tg",
            "heuristics": ["MM"],
            "patterns": ["trace"],
            "levels": [{"trace": str(EXAMPLE_TRACE), "name": "rec", **level_extra}],
            "pruning": ["none"],
            "trials": 1,
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid))
        return path

    def test_figure_mode_rejects_the_flag(self, capsys):
        assert main(["fig7b", "--trace-sample", "0.5"]) == 2
        assert "applies to sweeps" in capsys.readouterr().err

    def test_grid_without_trace_levels_rejected(self, capsys):
        assert main(["sweep", "smoke", "--trace-sample", "0.5"]) == 2
        assert "the grid has none" in capsys.readouterr().err

    def test_flag_stamps_sample_onto_trace_levels(self, tmp_path, capsys):
        path = self._trace_grid(tmp_path)
        rc = main(
            ["sweep", str(path), "--trace-sample", "0.4", "--no-cache",
             "--json-dir", str(tmp_path)]
        )
        assert rc == 0
        sampled = json.loads((tmp_path / "campaign-tg.json").read_text())
        rc = main(
            ["sweep", str(path), "--no-cache", "--json-dir", str(tmp_path)]
        )
        assert rc == 0
        full = json.loads((tmp_path / "campaign-tg.json").read_text())
        # The sampled campaign replays a different (smaller) workload, so
        # its per-trial robustness diverges from the full replay.
        assert sampled["rows"][0]["stats"] != full["rows"][0]["stats"]
        capsys.readouterr()

"""Campaign-layer guarantees extended to dynamics and trace-replay cells.

The load-bearing property: a failure schedule is a pure function of
(config, trial index), so ``--jobs N`` stays bit-identical to a serial
run even when machines die mid-trial — this is what makes the whole
campaign layer trustworthy for churn experiments.
"""

import json

import numpy as np
import pytest

from repro.experiments.campaign import (
    Campaign,
    ResultCache,
    SweepGrid,
    _resolve_dynamics,
    run_cell_trials,
    trial_key,
)
from repro.experiments.runner import ExperimentConfig
from repro.sim.dynamics import DynamicsSpec
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import save_csv_trace, trace_spec
from repro.workload.generator import generate_workload


def _dyn_config(**overrides):
    defaults = dict(
        heuristic="MM",
        spec=WorkloadSpec(num_tasks=100, time_span=60.0, num_task_types=4),
        trials=2,
        base_seed=3,
        dynamics=DynamicsSpec(failures=2, mean_downtime=10.0, scale_up=1),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestParallelIdentityUnderDynamics:
    def test_jobs2_identical_to_serial_with_failures(self):
        configs = [
            _dyn_config(),
            _dyn_config(heuristic="MCT"),
            _dyn_config(dynamics=DynamicsSpec(failures=1, mean_downtime=0.0)),
        ]
        serial = run_cell_trials(configs)
        parallel = run_cell_trials(configs, jobs=2)
        assert [
            [json.dumps(r.to_dict(), sort_keys=True) for r in cell] for cell in serial
        ] == [
            [json.dumps(r.to_dict(), sort_keys=True) for r in cell] for cell in parallel
        ]
        # The cells actually churned — this test must not pass vacuously.
        assert any(
            r.dynamics_stats.get("failures", 0) + r.dynamics_stats.get("skipped", 0)
            for cell in serial
            for r in cell
        )

    def test_trace_replay_identical_across_jobs(self, tmp_path, pet_small):
        spec = WorkloadSpec(num_tasks=80, time_span=40.0, num_task_types=3)
        tasks = generate_workload(spec, pet_small, np.random.default_rng(5))
        path = tmp_path / "t.csv"
        save_csv_trace(path, tasks)
        config = ExperimentConfig(
            heuristic="MM", spec=trace_spec(path), trials=3, base_seed=3
        )
        serial = run_cell_trials([config])
        parallel = run_cell_trials([config], jobs=2)
        assert [r.to_dict() for r in serial[0]] == [r.to_dict() for r in parallel[0]]
        # Replay trials share the task list but not execution sampling.
        assert serial[0][0].to_dict() != serial[0][1].to_dict()


class TestCacheKeysCoverDynamics:
    def test_dynamics_changes_cache_key(self):
        static = _dyn_config(dynamics=None)
        churn = _dyn_config()
        churn2 = _dyn_config(dynamics=DynamicsSpec(failures=3, mean_downtime=10.0))
        keys = {trial_key(c, 0) for c in (static, churn, churn2)}
        assert len(keys) == 3

    def test_trace_content_changes_cache_key(self, tmp_path, pet_small):
        spec = WorkloadSpec(num_tasks=60, time_span=40.0, num_task_types=3)
        tasks = generate_workload(spec, pet_small, np.random.default_rng(5))
        path = tmp_path / "t.csv"
        save_csv_trace(path, tasks)
        config = ExperimentConfig(heuristic="MM", spec=trace_spec(path), trials=1)
        key_before = trial_key(config, 0)
        # Same path, edited contents: must be a different cache identity.
        save_csv_trace(path, tasks[:-1])
        key_after = trial_key(config, 0)
        assert key_before != key_after

    def test_dynamics_cells_hit_cache_on_rerun(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = _dyn_config()
        run_cell_trials([config], cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 2}
        run_cell_trials([config], cache=cache)
        assert cache.stats() == {"hits": 2, "misses": 2}


class TestGridDynamicsAxis:
    def test_resolve_named_and_mapping_entries(self):
        label, spec = _resolve_dynamics("churn")
        assert label == "churn" and spec.failures == 3
        label, spec = _resolve_dynamics(
            {"failures": 1, "scale_up": 2, "window": [0.1, 0.5]}
        )
        assert label == "dyn-f1-up2"
        assert spec.window == (0.1, 0.5)
        assert _resolve_dynamics("none") == ("static", None)

    def test_unknown_dynamics_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown dynamics keys"):
            _resolve_dynamics({"failure": 3})

    def test_all_zero_mapping_is_the_static_cell(self):
        # {"failures": 0} must share identity with "none" — otherwise a
        # grid double-computes byte-identical cells under two labels.
        assert _resolve_dynamics({"failures": 0}) == ("static", None)

    def test_distinct_downtimes_get_distinct_derived_labels(self):
        a, _ = _resolve_dynamics({"failures": 2, "mean_downtime": 10.0})
        b, _ = _resolve_dynamics({"failures": 2, "mean_downtime": 99.0})
        assert a != b
        grid = SweepGrid(
            levels=({"num_tasks": 50, "time_span": 30.0},),
            pruning=("none",),
            dynamics=(
                {"failures": 2, "mean_downtime": 10.0},
                {"failures": 2, "mean_downtime": 99.0},
            ),
            trials=1,
        )
        assert len(grid.expand()) == 2

    def test_trace_level_not_duplicated_across_pattern_axis(self, tmp_path, pet_small):
        spec = WorkloadSpec(num_tasks=40, time_span=30.0, num_task_types=3)
        tasks = generate_workload(spec, pet_small, np.random.default_rng(5))
        path = tmp_path / "t.csv"
        save_csv_trace(path, tasks)
        grid = SweepGrid(
            levels=({"trace": str(path), "name": "t"},),
            patterns=("spiky", "constant"),
            pruning=("none",),
            trials=1,
        )
        # The pattern axis does not apply to a replayed file: one cell,
        # not two colliding ones — and num_cells must agree with expand().
        cells = grid.expand()
        assert len(cells) == 1
        assert cells[0].pattern == "trace"
        assert grid.num_cells == len(cells)
        assert grid.total_trials == len(cells) * grid.trials

    def test_grid_expands_dynamics_cross_product(self):
        grid = SweepGrid(
            heuristics=("MM",),
            levels=({"num_tasks": 50, "time_span": 30.0},),
            pruning=("none",),
            dynamics=("none", "churn"),
            trials=1,
        )
        cells = grid.expand()
        assert len(cells) == 2
        assert [c.dynamics_label for c in cells] == ["static", "churn"]
        assert cells[0].config.dynamics is None
        assert cells[1].config.dynamics == DynamicsSpec(failures=3)
        assert cells[1].config.display_label.endswith("/churn")

    def test_grid_json_round_trip_preserves_dynamics(self, tmp_path):
        grid = SweepGrid(
            dynamics=("none", {"label": "c", "failures": 2, "mean_downtime": 5.0}),
            trials=1,
        )
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid.to_dict()))
        loaded = SweepGrid.from_json(path)
        assert loaded.dynamics == grid.dynamics
        assert [c.config.dynamics for c in loaded.expand()] == [
            c.config.dynamics for c in grid.expand()
        ]

    def test_trace_pattern_with_synthetic_level_gets_clear_error(self):
        grid = SweepGrid(patterns=("trace",), levels=("20k",), trials=1)
        with pytest.raises(ValueError, match="applies only to trace levels"):
            grid.expand()

    def test_presets_expand(self):
        for name in ("churn", "bursty", "trace"):
            grid = SweepGrid.preset(name)
            if name == "trace":
                # Repo-relative trace paths: resolvable from the checkout
                # root (where tests run).
                cells = Campaign.from_grid(grid).cells
                assert all(
                    c.config.spec.pattern.value == "trace" for c in cells
                )
            else:
                assert grid.num_cells == len(Campaign.from_grid(grid).cells)

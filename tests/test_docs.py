"""Documentation is part of tier-1: examples must run, links must resolve.

Thin pytest wrapper around ``tools/check_docs.py`` (which CI also runs
directly) so a broken fenced example or dead intra-repo link fails the
ordinary test suite with a per-file breakdown.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
from check_docs import check_examples, check_links, doc_files, fenced_blocks  # noqa: E402

DOCS = doc_files()


def test_doc_set_is_complete():
    names = {p.name for p in DOCS}
    assert {"README.md", "architecture.md", "api.md", "experiments.md"} <= names


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_examples_run(path):
    errors = check_examples(path)
    assert not errors, "\n".join(errors)


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    errors = check_links(path)
    assert not errors, "\n".join(errors)


def test_fence_parser_sees_examples():
    """Guard against the checker silently checking nothing."""
    readme_blocks = fenced_blocks((Path(__file__).parents[1] / "README.md").read_text())
    assert any(lang == "python" and ">>>" in body for lang, _, body in readme_blocks)


def test_unclosed_fence_is_an_error(tmp_path):
    """A missing closing fence must fail the check, not silently skip
    the block and everything after it."""
    with pytest.raises(ValueError, match="unclosed code fence"):
        fenced_blocks("text\n```python\n>>> broken\n")
    doc = tmp_path / "doc.md"
    doc.write_text("```python\n>>> 1 + 1\n3\n")
    errors = check_examples(doc)
    assert errors and "unclosed" in errors[0]

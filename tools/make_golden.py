#!/usr/bin/env python3
"""Regenerate the golden-trace regression fixtures and example traces.

Produces (all deterministic — fixed seeds, no wall-clock input):

* ``examples/traces/*.csv`` — small recorded traces the ``trace`` sweep
  preset replays;
* ``tests/data/azure_mini.csv`` / ``tests/data/gcluster_mini.csv`` —
  miniature public-trace-shaped fixtures (Azure-Functions-style and
  Google-cluster-usage-style columns) the adapter tests and the
  ``azure``/``gcluster`` sweep presets consume;
* ``tests/golden/cases.json`` — the manifest of golden scenarios;
* ``tests/golden/<name>.trace.json`` — the workload trace each scenario
  replays (format v2; v3 when the workload carries DAG edges);
* ``tests/golden/<name>.expected.json`` — the exact
  ``SimulationResult.to_dict()`` the replay must reproduce.

``tests/test_golden.py`` replays every case and diffs the result
*exactly*, so any refactor that shifts schedules — event ordering, RNG
stream consumption, estimator behavior with side effects — fails loudly
instead of silently changing every figure.

Run after an *intentional* behavior change, then review the fixture
diff like any other code change::

    python tools/make_golden.py
    git diff tests/golden examples/traces
"""

from __future__ import annotations

import csv
import json
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import ControllerConfig, PruningConfig  # noqa: E402
from repro.experiments.runner import pet_matrix  # noqa: E402
from repro.sim.dynamics import DynamicsSpec  # noqa: E402
from repro.system.serverless import ServerlessSystem  # noqa: E402
from repro.workload.generator import generate_workload  # noqa: E402
from repro.workload.spec import WorkloadSpec  # noqa: E402
from repro.workload.trace import (  # noqa: E402
    load_any_trace,
    load_trace,
    save_csv_trace,
    save_trace,
    trace_spec,
)

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"
TRACES_DIR = REPO_ROOT / "examples" / "traces"
DATA_DIR = REPO_ROOT / "tests" / "data"

#: The golden scenarios: one static, one churn, one bursty workload.
#: ``trace_seed`` generates the workload; everything else configures the
#: replaying system exactly as tests/test_golden.py rebuilds it.
CASES = [
    {
        "name": "static_mm_pruned",
        "spec": {
            "num_tasks": 120,
            "time_span": 80.0,
            "num_task_types": 6,
            "pattern": "spiky",
        },
        "trace_seed": 20260701,
        "heuristic": "MM",
        "pruning": "paper",
        "dynamics": None,
        "seed": 123,
    },
    {
        "name": "churn_mm_pruned",
        "spec": {
            "num_tasks": 140,
            "time_span": 90.0,
            "num_task_types": 6,
            "pattern": "spiky",
        },
        "trace_seed": 20260702,
        "heuristic": "MM",
        "pruning": "paper",
        "dynamics": {
            "failures": 2,
            "mean_downtime": 15.0,
            "scale_up": 1,
            "scale_down": 1,
        },
        "seed": 77,
    },
    {
        "name": "bursty_mct_baseline",
        "spec": {
            "num_tasks": 130,
            "time_span": 85.0,
            "num_task_types": 6,
            "pattern": "bursty",
        },
        "trace_seed": 20260703,
        "heuristic": "MCT",
        "pruning": None,
        "dynamics": {"failures": 1, "mean_downtime": 0.0},
        "seed": 9,
    },
    # Adaptive control plane: pins the hysteresis controller's setpoint
    # trajectory (controller_stats) and the fairness telemetry exactly —
    # any change to signal computation, tick ordering, or band logic
    # shifts the trajectory and fails here first.
    {
        "name": "adaptive_mm_hysteresis",
        "spec": {
            "num_tasks": 140,
            "time_span": 90.0,
            "num_task_types": 6,
            "pattern": "bursty",
        },
        "trace_seed": 20260704,
        "heuristic": "MM",
        "pruning": "paper",
        "controller": {
            "kind": "hysteresis",
            "low": 0.02,
            "high": 0.2,
            "step": 0.1,
            "cooldown": 4,
            "window": 4,
        },
        "dynamics": None,
        "seed": 31,
    },
    # DAG workload: pins release-on-parent-completion ordering, the
    # critical-path chance propagation, and doomed-subgraph cascades
    # (the trace file is format v3 — it carries the dependency edges).
    {
        "name": "dag_mm_pruned",
        "spec": {
            "num_tasks": 150,
            "time_span": 60.0,
            "num_task_types": 6,
            "pattern": "spiky",
            "dag_layers": 3,
            "dag_edge_prob": 0.6,
        },
        "trace_seed": 20260805,
        "heuristic": "MM",
        "pruning": "paper",
        "dynamics": None,
        "seed": 55,
    },
    # Adapted public trace: the workload is tests/data/azure_mini.csv
    # normalized through the Azure-Functions adapter, so any drift in
    # column parsing, arrival derivation, or deadline slack fails here.
    {
        "name": "azure_mini_mm_pruned",
        "trace_from": {"format": "azure", "path": "tests/data/azure_mini.csv"},
        "heuristic": "MM",
        "pruning": "paper",
        "dynamics": None,
        "seed": 101,
    },
]

#: The example traces the ``trace`` sweep preset replays.
EXAMPLE_TRACES = [
    (
        "bursty_small.csv",
        {
            "num_tasks": 150,
            "time_span": 100.0,
            "num_task_types": 6,
            "pattern": "bursty",
        },
        20260710,
    ),
    (
        "steady_small.csv",
        {
            "num_tasks": 150,
            "time_span": 100.0,
            "num_task_types": 6,
            "pattern": "constant",
        },
        20260711,
    ),
]


def write_azure_mini(path: Path, *, seed: int = 20260801, rows: int = 48) -> None:
    """Synthesize a miniature Azure-Functions-style invocation CSV.

    Columns ``app,func,end_timestamp,duration`` — the shape
    :func:`repro.workload.adapters.load_azure_trace` normalizes.  End
    timestamps are nondecreasing (the adapter enforces it) and the
    (app, func) pairs map to 6 distinct task types.
    """
    rng = np.random.default_rng(seed)
    pairs = [("a", "f0"), ("a", "f1"), ("b", "f0"), ("b", "f1"), ("c", "f0"), ("c", "f1")]
    end = 5.0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["app", "func", "end_timestamp", "duration"])
        for _ in range(rows):
            app, func = pairs[int(rng.integers(len(pairs)))]
            end += float(rng.uniform(0.2, 1.6))
            duration = float(rng.uniform(0.5, 3.0))
            writer.writerow([app, func, f"{end:.3f}", f"{duration:.3f}"])


def write_gcluster_mini(path: Path, *, seed: int = 20260802, rows: int = 40) -> None:
    """Synthesize a miniature Google-cluster-usage-style task-event CSV.

    Columns ``job_id,task_index,start_time,end_time`` — the shape
    :func:`repro.workload.adapters.load_gcluster_trace` normalizes.
    Start times are nondecreasing and the job ids map to 5 task types.
    """
    rng = np.random.default_rng(seed)
    jobs = [6251000000 + j for j in range(5)]
    start = 2.0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["job_id", "task_index", "start_time", "end_time"])
        for i in range(rows):
            job = jobs[int(rng.integers(len(jobs)))]
            start += float(rng.uniform(0.3, 2.0))
            duration = float(rng.uniform(0.4, 2.5))
            writer.writerow([job, i, f"{start:.3f}", f"{start + duration:.3f}"])


def case_pruning(case: dict) -> PruningConfig | None:
    """The pruning config a golden case names (shared with the test)."""
    if case["pruning"] != "paper":
        return None
    pruning = PruningConfig.paper_default()
    if case.get("controller"):
        pruning = pruning.with_(controller=ControllerConfig(**case["controller"]))
    return pruning


def run_case(case: dict, tasks) -> dict:
    """Replay one golden case — the exact recipe tests/test_golden.py uses."""
    pet = pet_matrix("inconsistent")
    system = ServerlessSystem(
        pet,
        case["heuristic"],
        pruning=case_pruning(case),
        seed=case["seed"],
        dynamics=DynamicsSpec(**case["dynamics"]) if case["dynamics"] else None,
    )
    return system.run(tasks).to_dict()


def run_case_live(case: dict, tasks) -> dict:
    """Replay one golden case through the *live service* under a virtual
    clock — the second driver over the same mapping core.  The golden
    suite asserts this returns byte-identically what :func:`run_case`
    returns, and ``main`` cross-checks it before writing any fixture, so
    a fixture that breaks replay-vs-live equivalence can never land."""
    import asyncio

    from repro.service import AsyncTimeline, SchedulerService, VirtualClock
    from repro.service.service import run_until_quiescent

    async def scenario():
        system = ServerlessSystem(
            pet_matrix("inconsistent"),
            case["heuristic"],
            pruning=case_pruning(case),
            seed=case["seed"],
            dynamics=DynamicsSpec(**case["dynamics"]) if case["dynamics"] else None,
            sim=AsyncTimeline(VirtualClock()),
        )
        service = SchedulerService(system)
        await service.start()
        service.replay(tasks)
        await run_until_quiescent(service)
        await service.stop()
        return service.finalize().to_dict()

    return asyncio.run(scenario())


def main() -> int:
    pet = pet_matrix("inconsistent")
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    TRACES_DIR.mkdir(parents=True, exist_ok=True)
    DATA_DIR.mkdir(parents=True, exist_ok=True)

    for filename, spec_fields, seed in EXAMPLE_TRACES:
        spec = WorkloadSpec(**spec_fields)
        tasks = generate_workload(spec, pet, np.random.default_rng(seed))
        save_csv_trace(TRACES_DIR / filename, tasks)
        print(f"wrote {TRACES_DIR / filename} ({len(tasks)} tasks)")

    write_azure_mini(DATA_DIR / "azure_mini.csv")
    write_gcluster_mini(DATA_DIR / "gcluster_mini.csv")
    print(f"wrote {DATA_DIR / 'azure_mini.csv'} + {DATA_DIR / 'gcluster_mini.csv'}")

    manifest = []
    for case in CASES:
        if "trace_from" in case:
            # Adapted public trace: normalize the raw CSV through its
            # adapter; the golden trace.json then pins the adapter's
            # exact output alongside the replay result.
            src = case["trace_from"]
            path = REPO_ROOT / src["path"]
            tasks = load_any_trace(path, src["format"])
            # Store the repo-relative path so the fixture is byte-stable
            # across checkouts (the absolute path only reads the file).
            spec = trace_spec(path, fmt=src["format"]).with_(
                trace_path=src["path"]
            )
        else:
            spec = WorkloadSpec(**case["spec"])
            tasks = generate_workload(
                spec, pet, np.random.default_rng(case["trace_seed"])
            )
        trace_path = GOLDEN_DIR / f"{case['name']}.trace.json"
        save_trace(trace_path, tasks, spec)
        expected = run_case(case, tasks)
        # Replay-vs-live equivalence gate: the live-service driver must
        # reproduce the simulator's result byte-identically before the
        # fixture is allowed to land (fresh tasks — run_case mutated ours).
        live_tasks, _ = load_trace(trace_path)
        live = run_case_live(case, live_tasks)
        if live != expected:
            diverged = sorted(
                k for k in set(live) | set(expected) if live.get(k) != expected.get(k)
            )
            raise SystemExit(
                f"replay-vs-live divergence in {case['name']} (fields: {diverged})"
            )
        expected_path = GOLDEN_DIR / f"{case['name']}.expected.json"
        expected_path.write_text(json.dumps(expected, indent=2, sort_keys=True) + "\n")
        manifest.append(
            {
                k: v
                for k, v in case.items()
                if k not in ("spec", "trace_seed", "trace_from")
            }
        )
        print(f"wrote {trace_path} + expected ({len(tasks)} tasks)")

    (GOLDEN_DIR / "cases.json").write_text(json.dumps(manifest, indent=2) + "\n")
    print(f"wrote {GOLDEN_DIR / 'cases.json'} ({len(manifest)} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

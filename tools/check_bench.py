#!/usr/bin/env python3
"""Benchmark smoke gate: the mapping-event pipeline may not regress.

Also validates the committed ``benchmarks/BENCH_control.json`` (the
adaptive-pruning control-plane artifact): payload shape, internal
consistency, and the ISSUE-5 acceptance inequalities — adaptive ≥ best
static β, adaptive materially above worst static β.  That artifact is
produced by a fully deterministic simulation comparison, so the
committed numbers are re-assertable without re-running it here (the
re-run gate lives in ``benchmarks/bench_control.py``'s pytest entry).

Runs the estimator benchmark (``benchmarks/bench_sim.py``'s measurement
core) on a *reduced* Fig. 7 workload and compares it against the
committed ``benchmarks/BENCH_estimator.json``:

* ``identical_outcomes`` must be true — the cache/pipeline layers are
  correctness-invisible, whatever the hardware;
* the *incremental-over-naive* events/sec ratio must not fall more than
  ``--max-regression`` (default 20 %) below the committed payload's
  ratio.  Both modes are measured in the same fresh run, so runner
  hardware cancels out — the gate tracks the pipeline's relative
  advantage (what the code controls), not the runner's absolute speed.

Absolute events/sec for both runs are printed for the record.  The
workload is reduced in *trials* (default 1 vs the committed 2), not in
scale: per-event economics depend on queue depths, so only a same-scale
run produces a comparable ratio.

Run directly (CI's bench-smoke job)::

    python tools/check_bench.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_SRC = REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

BASELINE = REPO_ROOT / "benchmarks" / "BENCH_estimator.json"
CONTROL = REPO_ROOT / "benchmarks" / "BENCH_control.json"

#: Must match ``benchmarks.bench_control.MATERIAL_MARGIN_PP`` (kept
#: literal here so the validator never imports the module under test).
CONTROL_MARGIN_PP = 2.0


def check_control_payload(path: Path) -> list[str]:
    """Shape + consistency errors of the control-plane artifact."""
    errors: list[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]

    for key in ("benchmark", "workload", "static_grid", "controller", "results", "comparison"):
        if key not in payload:
            errors.append(f"{path.name}: missing top-level key {key!r}")
    if errors:
        return errors
    if payload["benchmark"] != "control":
        errors.append(f"{path.name}: benchmark is {payload['benchmark']!r}, not 'control'")

    levels = payload["workload"].get("levels", {})
    if not levels:
        errors.append(f"{path.name}: workload.levels is empty")
    grid_labels = {f"P{int(beta * 100)}" for beta in payload["static_grid"]}
    expected_variants = grid_labels | {"adaptive"}
    if set(payload["results"]) != expected_variants:
        errors.append(
            f"{path.name}: results cover {sorted(payload['results'])}, "
            f"expected {sorted(expected_variants)}"
        )
    for vname, record in payload["results"].items():
        if not isinstance(record.get("pooled_mean_pct"), (int, float)):
            errors.append(f"{path.name}: results[{vname!r}] lacks pooled_mean_pct")
            continue
        missing = set(levels) - set(record.get("per_level", {}))
        if missing:
            errors.append(f"{path.name}: results[{vname!r}] missing levels {sorted(missing)}")
        for lname, cellstats in record.get("per_level", {}).items():
            for field in ("mean_pct", "ci95_pct", "trials"):
                if field not in cellstats:
                    errors.append(
                        f"{path.name}: results[{vname!r}][{lname!r}] lacks {field}"
                    )
    if errors:
        return errors

    cmp = payload["comparison"]
    for key in (
        "best_static", "best_static_pct", "worst_static", "worst_static_pct",
        "adaptive_pct", "adaptive_minus_best_pp", "adaptive_minus_worst_pp",
    ):
        if key not in cmp:
            errors.append(f"{path.name}: comparison lacks {key!r}")
    if errors:
        return errors
    # Internal consistency: the comparison block must agree with results.
    statics = {v: payload["results"][v]["pooled_mean_pct"] for v in grid_labels}
    if abs(cmp["best_static_pct"] - max(statics.values())) > 1e-6:
        errors.append(f"{path.name}: best_static_pct disagrees with results")
    if abs(cmp["worst_static_pct"] - min(statics.values())) > 1e-6:
        errors.append(f"{path.name}: worst_static_pct disagrees with results")
    if abs(cmp["adaptive_pct"] - payload["results"]["adaptive"]["pooled_mean_pct"]) > 1e-6:
        errors.append(f"{path.name}: adaptive_pct disagrees with results")
    # The acceptance inequalities the artifact exists to witness.
    if cmp["adaptive_pct"] < cmp["best_static_pct"] - 1e-9:
        errors.append(
            f"{path.name}: adaptive {cmp['adaptive_pct']:.2f}% < best static "
            f"{cmp['best_static_pct']:.2f}%"
        )
    if cmp["adaptive_pct"] <= cmp["worst_static_pct"] + CONTROL_MARGIN_PP:
        errors.append(
            f"{path.name}: adaptive {cmp['adaptive_pct']:.2f}% not materially "
            f"above worst static {cmp['worst_static_pct']:.2f}%"
        )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE, help="committed BENCH_estimator.json"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default: the committed payload's scale, so rates compare)",
    )
    parser.add_argument("--trials", type=int, default=1, help="trials per mode")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=float(os.environ.get("BENCH_SMOKE_MAX_REGRESSION", "0.2")),
        help=(
            "allowed fractional drop of the incremental-over-naive events/sec "
            "ratio vs the committed payload's ratio (default 0.2)"
        ),
    )
    parser.add_argument(
        "--control", type=Path, default=CONTROL, help="committed BENCH_control.json"
    )
    args = parser.parse_args(argv)

    control_errors = check_control_payload(args.control)
    if control_errors:
        for error in control_errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"control payload OK ({args.control.name})")

    from benchmarks.bench_sim import run_estimator_bench

    baseline = json.loads(args.baseline.read_text())
    base_eps = baseline["events_per_sec"]
    base_ratio = base_eps["incremental"] / base_eps["naive"]
    scale = args.scale if args.scale is not None else baseline["workload"]["scale"]

    fresh = run_estimator_bench(trials=args.trials, scale=scale, json_path=None)
    fresh_eps = fresh["events_per_sec"]
    fresh_ratio = fresh_eps["incremental"] / fresh_eps["naive"]

    print(
        f"bench smoke: scale={scale} trials={args.trials} — incremental "
        f"{fresh_eps['incremental']:.0f} events/s, naive {fresh_eps['naive']:.0f}; "
        f"pipeline advantage {fresh_ratio:.2f}x vs committed {base_ratio:.2f}x, "
        f"identical_outcomes={fresh['identical_outcomes']}"
    )

    if not fresh["identical_outcomes"]:
        print(
            "FAIL: memoization modes diverged — the estimation layers are "
            "no longer correctness-invisible.",
            file=sys.stderr,
        )
        return 1
    floor = (1.0 - args.max_regression) * base_ratio
    if fresh_ratio < floor:
        print(
            f"FAIL: incremental-over-naive events/sec ratio {fresh_ratio:.2f}x "
            f"fell below the {floor:.2f}x floor ({args.max_regression:.0%} under "
            f"the committed {base_ratio:.2f}x).",
            file=sys.stderr,
        )
        return 1
    print("bench smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

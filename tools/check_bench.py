#!/usr/bin/env python3
"""Benchmark smoke gate: the mapping-event pipeline may not regress.

Runs the estimator benchmark (``benchmarks/bench_sim.py``'s measurement
core) on a *reduced* Fig. 7 workload and compares it against the
committed ``benchmarks/BENCH_estimator.json``:

* ``identical_outcomes`` must be true — the cache/pipeline layers are
  correctness-invisible, whatever the hardware;
* the *incremental-over-naive* events/sec ratio must not fall more than
  ``--max-regression`` (default 20 %) below the committed payload's
  ratio.  Both modes are measured in the same fresh run, so runner
  hardware cancels out — the gate tracks the pipeline's relative
  advantage (what the code controls), not the runner's absolute speed.

Absolute events/sec for both runs are printed for the record.  The
workload is reduced in *trials* (default 1 vs the committed 2), not in
scale: per-event economics depend on queue depths, so only a same-scale
run produces a comparable ratio.

Run directly (CI's bench-smoke job)::

    python tools/check_bench.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_SRC = REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

BASELINE = REPO_ROOT / "benchmarks" / "BENCH_estimator.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE, help="committed BENCH_estimator.json"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default: the committed payload's scale, so rates compare)",
    )
    parser.add_argument("--trials", type=int, default=1, help="trials per mode")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=float(os.environ.get("BENCH_SMOKE_MAX_REGRESSION", "0.2")),
        help=(
            "allowed fractional drop of the incremental-over-naive events/sec "
            "ratio vs the committed payload's ratio (default 0.2)"
        ),
    )
    args = parser.parse_args(argv)

    from benchmarks.bench_sim import run_estimator_bench

    baseline = json.loads(args.baseline.read_text())
    base_eps = baseline["events_per_sec"]
    base_ratio = base_eps["incremental"] / base_eps["naive"]
    scale = args.scale if args.scale is not None else baseline["workload"]["scale"]

    fresh = run_estimator_bench(trials=args.trials, scale=scale, json_path=None)
    fresh_eps = fresh["events_per_sec"]
    fresh_ratio = fresh_eps["incremental"] / fresh_eps["naive"]

    print(
        f"bench smoke: scale={scale} trials={args.trials} — incremental "
        f"{fresh_eps['incremental']:.0f} events/s, naive {fresh_eps['naive']:.0f}; "
        f"pipeline advantage {fresh_ratio:.2f}x vs committed {base_ratio:.2f}x, "
        f"identical_outcomes={fresh['identical_outcomes']}"
    )

    if not fresh["identical_outcomes"]:
        print(
            "FAIL: memoization modes diverged — the estimation layers are "
            "no longer correctness-invisible.",
            file=sys.stderr,
        )
        return 1
    floor = (1.0 - args.max_regression) * base_ratio
    if fresh_ratio < floor:
        print(
            f"FAIL: incremental-over-naive events/sec ratio {fresh_ratio:.2f}x "
            f"fell below the {floor:.2f}x floor ({args.max_regression:.0%} under "
            f"the committed {base_ratio:.2f}x).",
            file=sys.stderr,
        )
        return 1
    print("bench smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

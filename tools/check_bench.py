#!/usr/bin/env python3
"""Benchmark smoke gate: the mapping-event pipeline may not regress.

Also validates the committed benchmark artifacts without re-running
them (each has a re-run gate in its own pytest entry):

* ``BENCH_control.json`` — shape, internal consistency, and the ISSUE-5
  acceptance inequalities (adaptive ≥ best static β, adaptive
  materially above worst static β);
* ``BENCH_pmf.json`` — the ISSUE-6 tensor-core artifact: FFT crossover
  classification, FFT-vs-direct error bound, stacked-vs-looped
  ``batch_cdf_at`` identity, and both internal speedups ≥ 1x;
* ``BENCH_campaign.json`` — executor byte-identity flags, cache
  effectiveness, and (on one core) the serial-resolved plan with the
  auto leg no slower than serial — the ISSUE-6 fix for PR 4's 0.96x
  parallel pathology;
* ``BENCH_estimator.json`` — the committed anchors: identical
  outcomes, convolution ratio ≥ 3x, and ≥ 2x the session-matched PR 4
  events/sec baseline (the ISSUE-6 acceptance bar);
* ``BENCH_tuning.json`` — the ISSUE-10 auto-tuner artifact: the
  searched hysteresis configuration matches-or-beats the committed
  hand-set contender and beats the best static β, and its copied
  reference numbers agree with ``BENCH_control.json``.

Runs the estimator benchmark (``benchmarks/bench_sim.py``'s measurement
core) on a *reduced* Fig. 7 workload and compares it against the
committed ``benchmarks/BENCH_estimator.json``:

* ``identical_outcomes`` must be true — the cache/pipeline layers are
  correctness-invisible, whatever the hardware;
* the *incremental-over-naive* events/sec ratio must not fall more than
  ``--max-regression`` (default 20 %) below the committed payload's
  ratio.  Both modes are measured in the same fresh run, so runner
  hardware cancels out — the gate tracks the pipeline's relative
  advantage (what the code controls), not the runner's absolute speed.

Absolute events/sec for both runs are printed for the record.  The
workload is reduced in *trials* (default 1 vs the committed 2), not in
scale: per-event economics depend on queue depths, so only a same-scale
run produces a comparable ratio.

Run directly (CI's bench-smoke job)::

    python tools/check_bench.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_SRC = REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

BASELINE = REPO_ROOT / "benchmarks" / "BENCH_estimator.json"
CONTROL = REPO_ROOT / "benchmarks" / "BENCH_control.json"
PMF = REPO_ROOT / "benchmarks" / "BENCH_pmf.json"
CAMPAIGN = REPO_ROOT / "benchmarks" / "BENCH_campaign.json"
TUNING = REPO_ROOT / "benchmarks" / "BENCH_tuning.json"

#: Must match ``benchmarks.bench_control.MATERIAL_MARGIN_PP`` (kept
#: literal here so the validator never imports the module under test).
CONTROL_MARGIN_PP = 2.0

#: The ISSUE-6 acceptance bar: the committed estimator artifact must
#: show >= 2x the session-matched PR 4 events/sec baseline.
MIN_SPEEDUP_PR4 = 2.0

#: Anchor-provenance schema: artifact file name → dotted key paths that
#: must exist for the payload to be traceable to the run that produced
#: it (what workload, at what scale, against which baseline).  Every
#: ``BENCH_*.json`` in ``benchmarks/`` must have an entry here; a new
#: artifact without one fails the gate by name instead of sailing
#: through unchecked.  The schema also front-loads every key the live
#: smoke run dereferences (``workload.scale``, ``events_per_sec.*``) so
#: a truncated payload fails with the missing key's name, not a
#: ``KeyError`` traceback.
PROVENANCE_KEYS: dict[str, tuple[str, ...]] = {
    "BENCH_estimator.json": (
        "benchmark",
        "workload.figure",
        "workload.level",
        "workload.pattern",
        "workload.scale",
        "workload.heuristic",
        "workload.pruning",
        "workload.trials",
        "events_per_sec.incremental",
        "events_per_sec.naive",
        "events_per_sec_protocol",
        "pr4_session_matched_events_per_sec",
    ),
    "BENCH_control.json": (
        "benchmark",
        "workload.pattern",
        "workload.levels",
        "workload.trials",
        "workload.base_seed",
        "workload.heuristic",
        "static_grid",
        "controller",
    ),
    "BENCH_pmf.json": (
        "benchmark",
        "crossover.fft_min_taps",
        "crossover.fft_min_ops",
    ),
    "BENCH_campaign.json": (
        "benchmark",
        "workload.figure",
        "workload.scale",
        "workload.trials",
        "workload.total_trials",
        "cpu_count",
        "jobs",
        "resolved_plan",
    ),
    "BENCH_tuning.json": (
        "benchmark",
        "workload.pattern",
        "workload.levels",
        "workload.trials",
        "workload.base_seed",
        "workload.heuristic",
        "search.preset",
        "search.space",
        "search.strategy",
        "search.objective",
        "search.budget",
        "search.seed",
        "references.source",
        "tuner_stats.best_score",
        "tuner_stats.best_params",
    ),
}


def missing_provenance(payload: object, keys: tuple[str, ...]) -> list[str]:
    """Dotted key paths from ``keys`` that ``payload`` does not contain."""
    missing: list[str] = []
    for dotted in keys:
        node = payload
        for part in dotted.split("."):
            if not isinstance(node, dict) or part not in node:
                missing.append(dotted)
                break
            node = node[part]
    return missing


def check_provenance(path: Path) -> list[str]:
    """Named-key provenance errors for one ``BENCH_*.json`` artifact."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    keys = PROVENANCE_KEYS.get(path.name)
    if keys is None:
        return [
            f"{path.name}: no provenance schema registered — add its anchor "
            f"keys to PROVENANCE_KEYS in tools/check_bench.py"
        ]
    return [
        f"{path.name}: missing provenance key {key!r}"
        for key in missing_provenance(payload, keys)
    ]


def check_control_payload(path: Path) -> list[str]:
    """Shape + consistency errors of the control-plane artifact."""
    errors: list[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]

    for key in ("benchmark", "workload", "static_grid", "controller", "results", "comparison"):
        if key not in payload:
            errors.append(f"{path.name}: missing top-level key {key!r}")
    if errors:
        return errors
    if payload["benchmark"] != "control":
        errors.append(f"{path.name}: benchmark is {payload['benchmark']!r}, not 'control'")

    levels = payload["workload"].get("levels", {})
    if not levels:
        errors.append(f"{path.name}: workload.levels is empty")
    grid_labels = {f"P{int(beta * 100)}" for beta in payload["static_grid"]}
    expected_variants = grid_labels | {"adaptive"}
    if set(payload["results"]) != expected_variants:
        errors.append(
            f"{path.name}: results cover {sorted(payload['results'])}, "
            f"expected {sorted(expected_variants)}"
        )
    for vname, record in payload["results"].items():
        if not isinstance(record.get("pooled_mean_pct"), (int, float)):
            errors.append(f"{path.name}: results[{vname!r}] lacks pooled_mean_pct")
            continue
        missing = set(levels) - set(record.get("per_level", {}))
        if missing:
            errors.append(f"{path.name}: results[{vname!r}] missing levels {sorted(missing)}")
        for lname, cellstats in record.get("per_level", {}).items():
            for field in ("mean_pct", "ci95_pct", "trials"):
                if field not in cellstats:
                    errors.append(
                        f"{path.name}: results[{vname!r}][{lname!r}] lacks {field}"
                    )
    if errors:
        return errors

    cmp = payload["comparison"]
    for key in (
        "best_static", "best_static_pct", "worst_static", "worst_static_pct",
        "adaptive_pct", "adaptive_minus_best_pp", "adaptive_minus_worst_pp",
    ):
        if key not in cmp:
            errors.append(f"{path.name}: comparison lacks {key!r}")
    if errors:
        return errors
    # Internal consistency: the comparison block must agree with results.
    statics = {v: payload["results"][v]["pooled_mean_pct"] for v in grid_labels}
    if abs(cmp["best_static_pct"] - max(statics.values())) > 1e-6:
        errors.append(f"{path.name}: best_static_pct disagrees with results")
    if abs(cmp["worst_static_pct"] - min(statics.values())) > 1e-6:
        errors.append(f"{path.name}: worst_static_pct disagrees with results")
    if abs(cmp["adaptive_pct"] - payload["results"]["adaptive"]["pooled_mean_pct"]) > 1e-6:
        errors.append(f"{path.name}: adaptive_pct disagrees with results")
    # The acceptance inequalities the artifact exists to witness.
    if cmp["adaptive_pct"] < cmp["best_static_pct"] - 1e-9:
        errors.append(
            f"{path.name}: adaptive {cmp['adaptive_pct']:.2f}% < best static "
            f"{cmp['best_static_pct']:.2f}%"
        )
    if cmp["adaptive_pct"] <= cmp["worst_static_pct"] + CONTROL_MARGIN_PP:
        errors.append(
            f"{path.name}: adaptive {cmp['adaptive_pct']:.2f}% not materially "
            f"above worst static {cmp['worst_static_pct']:.2f}%"
        )
    return errors


def check_pmf_payload(path: Path) -> list[str]:
    """Shape + acceptance errors of the tensor-core artifact
    (``benchmarks/bench_pmf.py`` → ``BENCH_pmf.json``)."""
    errors: list[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]

    for key in ("benchmark", "crossover", "convolution_scaling", "batch_cdf"):
        if key not in payload:
            errors.append(f"{path.name}: missing top-level key {key!r}")
    if errors:
        return errors
    if payload["benchmark"] != "pmf-tensor-core":
        errors.append(
            f"{path.name}: benchmark is {payload['benchmark']!r}, not 'pmf-tensor-core'"
        )
    curve = payload["convolution_scaling"]
    if not curve:
        errors.append(f"{path.name}: convolution_scaling is empty")
        return errors
    min_taps = payload["crossover"].get("fft_min_taps")
    min_ops = payload["crossover"].get("fft_min_ops")
    for point in curve:
        for field in ("n", "direct_s", "fft_s", "auto_method", "max_abs_err"):
            if field not in point:
                errors.append(f"{path.name}: scaling point lacks {field!r}")
                break
        else:
            expected = (
                "fft"
                if point["n"] >= min_taps and point["n"] ** 2 >= min_ops
                else "direct"
            )
            if point["auto_method"] != expected:
                errors.append(
                    f"{path.name}: auto crossover misclassified n={point['n']}"
                )
            if point["max_abs_err"] >= 1e-12:
                errors.append(
                    f"{path.name}: FFT error {point['max_abs_err']:.2e} at "
                    f"n={point['n']}"
                )
    ns = [point["n"] for point in curve]
    if not (min(ns) < min_taps <= max(ns)):
        errors.append(f"{path.name}: scaling curve does not straddle the crossover")
    batch = payload["batch_cdf"]
    for field in ("rows", "looped_s", "stacked_s", "speedup_stacked_over_looped",
                  "values_identical"):
        if field not in batch:
            errors.append(f"{path.name}: batch_cdf lacks {field!r}")
    if errors:
        return errors
    # The acceptance flags the artifact exists to witness.
    if not batch["values_identical"]:
        errors.append(f"{path.name}: stacked batch_cdf_at diverged from scalar loop")
    if payload.get("fft_speedup_at_largest", 0) < 1.0:
        errors.append(
            f"{path.name}: FFT lost to direct at the largest size "
            f"({payload.get('fft_speedup_at_largest'):.2f}x)"
        )
    if batch["speedup_stacked_over_looped"] < 1.0:
        errors.append(
            f"{path.name}: stacked batch_cdf_at lost to the scalar loop "
            f"({batch['speedup_stacked_over_looped']:.2f}x)"
        )
    return errors


def check_campaign_payload(path: Path) -> list[str]:
    """Shape + acceptance errors of the executor-layer artifact
    (``benchmarks/bench_campaign.py`` → ``BENCH_campaign.json``)."""
    errors: list[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]

    for key in ("benchmark", "workload", "cpu_count", "resolved_plan", "serial_s",
                "auto_s", "speedup_auto_over_serial", "identical", "cache",
                "warm_fraction_of_serial", "pr4_artifact"):
        if key not in payload:
            errors.append(f"{path.name}: missing top-level key {key!r}")
    if errors:
        return errors
    if payload["benchmark"] != "campaign-sharding":
        errors.append(
            f"{path.name}: benchmark is {payload['benchmark']!r}, not 'campaign-sharding'"
        )
    identical = payload["identical"]
    for leg in ("auto", "thread", "process", "warm"):
        if not identical.get(leg):
            errors.append(f"{path.name}: {leg} executor diverged from serial")
    total = payload["workload"].get("total_trials")
    if payload["cache"] != {"hits": total, "misses": total}:
        errors.append(f"{path.name}: cache stats {payload['cache']} != {total} each")
    if payload["warm_fraction_of_serial"] >= 0.25:
        errors.append(
            f"{path.name}: warm re-run at "
            f"{payload['warm_fraction_of_serial']:.1%} of serial — cache ineffective"
        )
    if payload["cpu_count"] == 1:
        # The ISSUE-6 acceptance pair: one core must resolve to the
        # serial plan, and requesting --jobs must no longer cost
        # anything (PR 4's artifact recorded 0.96x).
        if payload["resolved_plan"].get("kind") != "serial":
            errors.append(
                f"{path.name}: one core resolved to "
                f"{payload['resolved_plan']!r}, not the serial plan"
            )
        if payload["speedup_auto_over_serial"] < 1.0:
            errors.append(
                f"{path.name}: auto plan {payload['speedup_auto_over_serial']:.2f}x "
                f"< 1x serial on one core"
            )
    return errors


def check_tuning_payload(path: Path, control_path: Path) -> list[str]:
    """Shape + acceptance errors of the auto-tuner artifact
    (``benchmarks/bench_tuning.py`` → ``BENCH_tuning.json``)."""
    errors: list[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]

    for key in ("benchmark", "workload", "search", "tuner_stats", "trials",
                "references", "comparison"):
        if key not in payload:
            errors.append(f"{path.name}: missing top-level key {key!r}")
    if errors:
        return errors
    if payload["benchmark"] != "tuning":
        errors.append(f"{path.name}: benchmark is {payload['benchmark']!r}, not 'tuning'")

    trials = payload["trials"]
    if not trials:
        errors.append(f"{path.name}: no recorded trials")
        return errors
    for i, record in enumerate(trials):
        for field in ("index", "params", "score", "fidelity"):
            if field not in record:
                errors.append(f"{path.name}: trial {i} lacks {field!r}")
        if record.get("index") != i:
            errors.append(f"{path.name}: trial ledger not contiguous at {i}")
    cmp = payload["comparison"]
    for key in ("tuned_pct", "tuned_params", "hysteresis_pct", "best_static",
                "best_static_pct", "tuned_minus_hysteresis_pp",
                "tuned_minus_best_static_pp"):
        if key not in cmp:
            errors.append(f"{path.name}: comparison lacks {key!r}")
    if errors:
        return errors

    # Internal consistency: the comparison block must agree with the
    # tuner's own stats and with the trial ledger.
    stats = payload["tuner_stats"]
    if abs(cmp["tuned_pct"] - stats["best_score"]) > 1e-9:
        errors.append(f"{path.name}: tuned_pct disagrees with tuner_stats.best_score")
    if cmp["tuned_params"] != stats["best_params"]:
        errors.append(f"{path.name}: tuned_params disagrees with tuner_stats.best_params")
    full_scores = [t["score"] for t in trials if t.get("fidelity", 1.0) >= 1.0]
    if full_scores and abs(max(full_scores) - cmp["tuned_pct"]) > 1e-9:
        errors.append(f"{path.name}: tuned_pct is not the best full-fidelity trial score")

    # The copied reference numbers must agree with the source artifact —
    # a stale copy would make the comparison meaningless.
    try:
        control = json.loads(control_path.read_text())
    except (OSError, ValueError) as exc:
        errors.append(f"{path.name}: reference source unreadable ({exc})")
        return errors
    control_cmp = control["comparison"]
    for mine, theirs in (
        ("hysteresis_pct", "adaptive_pct"),
        ("best_static", "best_static"),
        ("best_static_pct", "best_static_pct"),
    ):
        if payload["references"][mine] != control_cmp[theirs]:
            errors.append(
                f"{path.name}: references.{mine} disagrees with "
                f"{control_path.name} comparison.{theirs}"
            )
    # The acceptance inequalities the artifact exists to witness
    # (ISSUE 10): searched config >= hand-set hysteresis, > best static.
    if cmp["tuned_pct"] < cmp["hysteresis_pct"] - 1e-9:
        errors.append(
            f"{path.name}: tuned {cmp['tuned_pct']:.2f}% < hand-set hysteresis "
            f"{cmp['hysteresis_pct']:.2f}%"
        )
    if cmp["tuned_pct"] <= cmp["best_static_pct"]:
        errors.append(
            f"{path.name}: tuned {cmp['tuned_pct']:.2f}% does not beat the best "
            f"static β ({cmp['best_static_pct']:.2f}%)"
        )
    return errors


def check_estimator_payload(path: Path) -> list[str]:
    """Anchor + consistency errors of the committed estimator artifact
    (the live re-run gate is in ``main``)."""
    errors: list[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]

    for key in ("events_per_sec", "ratio_seed_over_incremental",
                "speedup_pr4_session_matched", "identical_outcomes"):
        if key not in payload:
            errors.append(f"{path.name}: missing key {key!r}")
    if errors:
        return errors
    if not payload["identical_outcomes"]:
        errors.append(f"{path.name}: committed run had divergent outcomes")
    if payload["ratio_seed_over_incremental"] < 3.0:
        errors.append(
            f"{path.name}: seed-over-incremental ratio "
            f"{payload['ratio_seed_over_incremental']:.2f}x < 3x"
        )
    if payload["speedup_pr4_session_matched"] < MIN_SPEEDUP_PR4:
        errors.append(
            f"{path.name}: {payload['speedup_pr4_session_matched']:.2f}x the "
            f"session-matched PR 4 baseline < {MIN_SPEEDUP_PR4:.1f}x (ISSUE 6)"
        )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE, help="committed BENCH_estimator.json"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default: the committed payload's scale, so rates compare)",
    )
    parser.add_argument("--trials", type=int, default=1, help="trials per mode")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=float(os.environ.get("BENCH_SMOKE_MAX_REGRESSION", "0.2")),
        help=(
            "allowed fractional drop of the incremental-over-naive events/sec "
            "ratio vs the committed payload's ratio (default 0.2)"
        ),
    )
    parser.add_argument(
        "--control", type=Path, default=CONTROL, help="committed BENCH_control.json"
    )
    parser.add_argument(
        "--pmf", type=Path, default=PMF, help="committed BENCH_pmf.json"
    )
    parser.add_argument(
        "--campaign", type=Path, default=CAMPAIGN, help="committed BENCH_campaign.json"
    )
    parser.add_argument(
        "--tuning", type=Path, default=TUNING, help="committed BENCH_tuning.json"
    )
    args = parser.parse_args(argv)

    static_errors: list[str] = []
    # Provenance first: every committed BENCH_*.json (plus whichever
    # paths this invocation points at) must name its anchors before the
    # shape checkers dereference them.
    provenance_paths = {args.control, args.pmf, args.campaign, args.baseline, args.tuning}
    provenance_paths.update((REPO_ROOT / "benchmarks").glob("BENCH_*.json"))
    for path in sorted(provenance_paths):
        errors = check_provenance(path)
        static_errors.extend(errors)
        if not errors:
            print(f"provenance OK ({path.name})")
    for label, checker, path in (
        ("control", check_control_payload, args.control),
        ("pmf", check_pmf_payload, args.pmf),
        ("campaign", check_campaign_payload, args.campaign),
        ("estimator", check_estimator_payload, args.baseline),
        ("tuning", lambda p: check_tuning_payload(p, args.control), args.tuning),
    ):
        errors = checker(path)
        static_errors.extend(errors)
        if not errors:
            print(f"{label} payload OK ({path.name})")
    if static_errors:
        for error in static_errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1

    from benchmarks.bench_sim import run_estimator_bench

    baseline = json.loads(args.baseline.read_text())
    base_eps = baseline["events_per_sec"]
    base_ratio = base_eps["incremental"] / base_eps["naive"]
    scale = args.scale if args.scale is not None else baseline["workload"]["scale"]

    fresh = run_estimator_bench(trials=args.trials, scale=scale, json_path=None)
    fresh_eps = fresh["events_per_sec"]
    fresh_ratio = fresh_eps["incremental"] / fresh_eps["naive"]

    print(
        f"bench smoke: scale={scale} trials={args.trials} — incremental "
        f"{fresh_eps['incremental']:.0f} events/s, naive {fresh_eps['naive']:.0f}; "
        f"pipeline advantage {fresh_ratio:.2f}x vs committed {base_ratio:.2f}x, "
        f"identical_outcomes={fresh['identical_outcomes']}"
    )

    if not fresh["identical_outcomes"]:
        print(
            "FAIL: memoization modes diverged — the estimation layers are "
            "no longer correctness-invisible.",
            file=sys.stderr,
        )
        return 1
    floor = (1.0 - args.max_regression) * base_ratio
    if fresh_ratio < floor:
        print(
            f"FAIL: incremental-over-naive events/sec ratio {fresh_ratio:.2f}x "
            f"fell below the {floor:.2f}x floor ({args.max_regression:.0%} under "
            f"the committed {base_ratio:.2f}x).",
            file=sys.stderr,
        )
        return 1
    print("bench smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

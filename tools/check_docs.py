#!/usr/bin/env python3
"""Documentation checks: runnable examples and intra-repo links.

Two passes over ``README.md`` and ``docs/*.md``:

* **Examples** — every fenced ``python`` block is executed: blocks
  containing ``>>>`` prompts run under :mod:`doctest` (expected output
  is verified); prompt-less blocks are compiled for syntax.  Fenced
  ``json`` blocks must parse.  Each block is self-contained (fresh
  namespace), so examples never depend on document order.
* **Links** — every relative markdown link target must exist on disk
  (anchors are stripped; ``http(s)``/``mailto`` links are skipped).

Run directly (CI's docs job)::

    python tools/check_docs.py

or through pytest (``tests/test_docs.py``), which is part of tier-1.
"""

from __future__ import annotations

import doctest
import io
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Doc examples import `repro`; make the src layout importable even when
# the package is not installed (plain checkout, CI before `pip install`).
_SRC = REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

_FENCE_RE = re.compile(r"^```([\w+-]*)\s*$")
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path = REPO_ROOT) -> list[Path]:
    """The documentation set under check."""
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def fenced_blocks(text: str) -> list[tuple[str, int, str]]:
    """All fenced code blocks as ``(language, start_line, body)``.

    Raises ``ValueError`` on an unclosed fence — silently dropping the
    partial block (and everything after it) would let broken examples
    pass the checks.
    """
    blocks: list[tuple[str, int, str]] = []
    lang: str | None = None
    start = 0
    body: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _FENCE_RE.match(line.strip())
        if match and lang is None:
            lang, start, body = match.group(1).lower(), lineno + 1, []
        elif line.strip() == "```" and lang is not None:
            blocks.append((lang, start, "\n".join(body) + "\n"))
            lang = None
        elif lang is not None:
            body.append(line)
    if lang is not None:
        raise ValueError(f"unclosed code fence opened before line {start}")
    return blocks


def _run_doctest_block(path: Path, lineno: int, body: str) -> list[str]:
    parser = doctest.DocTestParser()
    test = parser.get_doctest(
        body, globs={}, name=f"{path.name}:{lineno}", filename=str(path), lineno=lineno
    )
    out = io.StringIO()
    runner = doctest.DocTestRunner(verbose=False, optionflags=doctest.ELLIPSIS)
    results = runner.run(test, out=out.write)
    if results.failed:
        return [f"{path}:{lineno}: doctest failed\n{out.getvalue()}"]
    return []


def check_examples(path: Path) -> list[str]:
    """Errors from executing the file's fenced ``python``/``json`` blocks."""
    errors: list[str] = []
    try:
        blocks = fenced_blocks(path.read_text())
    except ValueError as exc:
        return [f"{path}: {exc}"]
    for lang, lineno, body in blocks:
        if lang in ("python", "py", "pycon"):
            if ">>>" in body:
                errors += _run_doctest_block(path, lineno, body)
            else:
                try:
                    compile(body, f"{path}:{lineno}", "exec")
                except SyntaxError as exc:
                    errors.append(f"{path}:{lineno}: syntax error in example: {exc}")
        elif lang == "json":
            try:
                json.loads(body)
            except ValueError as exc:
                errors.append(f"{path}:{lineno}: invalid JSON block: {exc}")
    return errors


def check_links(path: Path) -> list[str]:
    """Errors for relative links whose targets do not exist."""
    errors: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for target in _LINK_RE.findall(line):
            if target.startswith(_SKIP_SCHEMES):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str] | None = None) -> int:
    paths = [Path(p) for p in (argv or [])] or doc_files()
    errors: list[str] = []
    checked = 0
    for path in paths:
        errors += check_examples(path)
        errors += check_links(path)
        checked += 1
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} file(s): {'FAIL' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""End-to-end smoke of the live scheduler service over real HTTP.

The CI service-smoke job runs this: a wall-clock service (high rate so
the whole recorded trace streams through in well under a second of real
time) behind the HTTP endpoint on an ephemeral loopback port, fed every
task of ``examples/traces/steady_small.csv`` as a JSON POST.  It then
polls ``/v1/stats`` until the core drains and asserts the accounting
identities — every admitted task reached exactly one outcome.

This is deliberately the *wall-clock* path: the deterministic suite pins
byte-identical behavior under a virtual clock; this smoke proves the
production configuration (real sockets, real time) ships the same core
without hanging, dropping, or double-counting.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import PruningConfig  # noqa: E402
from repro.experiments.runner import pet_matrix  # noqa: E402
from repro.service import AsyncTimeline, SchedulerService, WallClock  # noqa: E402
from repro.service.http import ServiceHTTP  # noqa: E402
from repro.system.serverless import ServerlessSystem  # noqa: E402
from repro.workload.trace import load_any_trace  # noqa: E402

TRACE = REPO_ROOT / "examples" / "traces" / "steady_small.csv"
#: Service-time units per wall second: the 100-unit trace drains fast.
RATE = 500.0
#: Hard wall-clock cap on the whole smoke (generous; CI boxes are slow).
TIMEOUT_S = 60.0


async def _request(port: int, method: str, path: str, payload: dict | None = None):
    body = json.dumps(payload).encode() if payload is not None else b""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = f"{method} {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    writer.write(head.encode() + body)
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    while (await reader.readline()) not in (b"\r\n", b""):
        pass
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    return status, json.loads(data) if data else {}


async def main() -> int:
    tasks = load_any_trace(TRACE, "csv")
    system = ServerlessSystem(
        pet_matrix("inconsistent"),
        "MM",
        pruning=PruningConfig.paper_default(),
        seed=0,
        sim=AsyncTimeline(WallClock(rate=RATE)),
    )
    service = SchedulerService(system, admission_threshold=0.05)
    http = ServiceHTTP(service)
    await service.start()
    await http.start()
    print(f"service up on {http.address}, posting {len(tasks)} tasks from {TRACE.name}")

    deadline = time.monotonic() + TIMEOUT_S
    posted = {"admitted": 0, "rejected": 0}
    for task in tasks:
        record = {
            "task_type": task.task_type,
            "deadline_slack": task.deadline - task.arrival,
        }
        status, body = await _request(http.port, "POST", "/v1/tasks", record)
        assert status in (202, 422), f"unexpected status {status}: {body}"
        posted[body["status"]] += 1

    status, health = await _request(http.port, "GET", "/v1/healthz")
    assert (status, health["status"]) == (200, "ok"), health

    # Poll until the core drains: no pending events, no queued ingress.
    while True:
        status, stats = await _request(http.port, "GET", "/v1/stats")
        assert status == 200, stats
        if stats["pending_events"] == 0 and stats["ingress_depth"] == 0:
            break
        if time.monotonic() > deadline:
            raise SystemExit(f"smoke timed out; last stats: {stats}")
        await asyncio.sleep(0.05)

    await http.stop()
    await service.stop()

    # Accounting identities: every posted task was accounted, and every
    # admitted task reached exactly one terminal outcome.
    acc = stats["accounting"]
    ingress = stats["ingress"]
    assert ingress["received"] == len(tasks), ingress
    assert ingress["admitted"] == posted["admitted"], ingress
    assert ingress["rejected"] == posted["rejected"], ingress
    assert ingress["shed"] == ingress["malformed"] == 0, ingress
    assert acc["arrived"] == len(tasks), acc
    outcomes = (
        acc["on_time"] + acc["late"] + acc["dropped_missed"] + acc["dropped_proactive"]
    )
    assert outcomes == len(tasks), (acc, len(tasks))
    result = service.finalize()
    assert result.total == len(tasks)
    print(
        f"smoke ok: {acc['on_time']} on-time, {acc['late']} late, "
        f"{acc['dropped_missed']} dropped-missed, "
        f"{acc['dropped_proactive']} dropped-proactive "
        f"over {stats['mapping_events']} mapping events"
    )
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))

#!/usr/bin/env python3
"""CI launcher for the determinism linter (``repro.lint``).

Equivalent to ``repro lint`` / ``python -m repro.lint`` but runs from a
bare checkout with no install — it puts ``src/`` on ``sys.path`` itself,
the same trick :mod:`tools.check_bench` uses::

    python tools/reprolint.py [--json] [paths...]
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.lint.cli import main  # noqa: E402  (path setup must precede)

if __name__ == "__main__":
    raise SystemExit(main())

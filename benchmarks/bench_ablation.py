"""Ablation benches for the design choices the paper calls out.

* PCT-chain memoization on/off (§V-A: "memorization of partial results")
* Fairness factor sweep (§IV-D)
* Dropping-toggle α sweep (§IV-C)
* Probabilistic PET vs deterministic ETC chance estimation (§VI, the
  Khemka et al. comparison)
"""

import numpy as np
import pytest

from benchmarks.conftest import show
from repro.core.config import PruningConfig
from repro.experiments.runner import pet_matrix
from repro.stochastic.etc import ETCMatrix
from repro.system.serverless import ServerlessSystem
from repro.workload import WorkloadSpec, generate_workload
from repro.workload.generator import trimmed_slice

SPEC = WorkloadSpec(num_tasks=450, time_span=250.0)


def _workload(trial=0):
    return generate_workload(SPEC, pet_matrix(), np.random.default_rng(500 + trial))


def _run(model, pruning, tasks, *, memoize=True, seed=1):
    sys = ServerlessSystem(model, "MM", pruning=pruning, memoize=memoize, seed=seed)
    sys.run(tasks)
    return sys


class TestMemoization:
    def test_memoized(self, benchmark, show):
        """Incremental prefix-convolution cache (the default)."""
        sys = benchmark.pedantic(
            lambda: _run(pet_matrix(), PruningConfig.paper_default(), _workload()),
            rounds=1,
            iterations=1,
        )
        stats = sys.estimator.cache_stats()
        show(
            f"memoization ON : {stats['hits']} hits / {stats['misses']} misses "
            f"({100 * stats['hits'] / max(stats['hits'] + stats['misses'], 1):.0f}% hit rate), "
            f"{stats['convolutions']} convolutions performed / "
            f"{stats['convolutions_avoided']} avoided, "
            f"{stats['invalidations']} delta invalidations"
        )
        assert stats["hits"] > 0
        assert stats["convolutions_avoided"] > stats["convolutions"]

    def test_keyed_seed_baseline(self, benchmark, show):
        """The seed's whole-chain (machine, version, now) keyed cache."""
        sys = benchmark.pedantic(
            lambda: _run(
                pet_matrix(), PruningConfig.paper_default(), _workload(), memoize="keyed"
            ),
            rounds=1,
            iterations=1,
        )
        stats = sys.estimator.cache_stats()
        show(
            f"memoization KEYED (seed): {stats['hits']} hits / {stats['misses']} misses, "
            f"{stats['convolutions']} convolutions performed"
        )
        assert stats["hits"] > 0

    def test_unmemoized(self, benchmark, show):
        sys = benchmark.pedantic(
            lambda: _run(
                pet_matrix(), PruningConfig.paper_default(), _workload(), memoize=False
            ),
            rounds=1,
            iterations=1,
        )
        show(
            "memoization OFF: every PCT chain recomputed "
            f"({sys.estimator.convolutions} convolutions)"
        )
        assert sys.estimator.cache_hits == 0

    def test_results_identical(self):
        """Memoization is a pure optimization: identical outcomes across
        the incremental cache, the seed-style keyed cache, and no cache."""
        runs = {
            mode: _run(pet_matrix(), PruningConfig.paper_default(), _workload(), memoize=mode)
            for mode in (True, "keyed", False)
        }
        outcomes = {
            mode: (
                s.result().on_time,
                s.result().late,
                s.result().dropped_proactive,
                s.result().defer_decisions,
                s.result().makespan,
            )
            for mode, s in runs.items()
        }
        assert outcomes[True] == outcomes["keyed"] == outcomes[False]
        # And the incremental layer pays strictly fewer convolutions.
        assert runs[True].estimator.convolutions < runs["keyed"].estimator.convolutions
        assert runs["keyed"].estimator.convolutions <= runs[False].estimator.convolutions

    def test_fig7_convolution_ratio(self, show):
        """Acceptance: >= 3x fewer convolutions per mapping event than the
        seed estimator on the fig7 workload (dropping engaged); see also
        benchmarks/bench_sim.py::test_estimator_incremental which records
        the full series in BENCH_estimator.json."""
        from benchmarks.bench_sim import _estimator_cell

        per_event = {}
        for mode in (True, "keyed"):
            sys, _ = _estimator_cell(mode, trial=0)
            per_event[mode] = sys.estimator.convolutions / sys.allocator.mapping_events
        ratio = per_event["keyed"] / per_event[True]
        show(
            f"fig7 convolutions/event: incremental {per_event[True]:.2f} vs "
            f"seed {per_event['keyed']:.2f}  ->  {ratio:.2f}x fewer"
        )
        assert ratio >= 3.0


class TestFairnessSweep:
    @pytest.mark.parametrize("c", [0.0, 0.05, 0.2])
    def test_fairness_factor(self, benchmark, show, c):
        cfg = PruningConfig(fairness_factor=c, enable_fairness=c > 0)
        sys = benchmark.pedantic(
            lambda: _run(pet_matrix(), cfg, _workload()), rounds=1, iterations=1
        )
        res = sys.result(trimmed_slice(sys.tasks, SPEC.trim_count))
        worst = min(t.robustness for t in res.per_type.values())
        show(
            f"fairness c={c:<5}: total {res.robustness_pct:5.1f}%, "
            f"worst-type {100 * worst:5.1f}%"
        )
        assert res.total > 0


class TestToggleAlphaSweep:
    @pytest.mark.parametrize("alpha", [0, 2, 8])
    def test_alpha(self, benchmark, show, alpha):
        cfg = PruningConfig(dropping_toggle=alpha)
        sys = benchmark.pedantic(
            lambda: _run(pet_matrix(), cfg, _workload()), rounds=1, iterations=1
        )
        res = sys.result(trimmed_slice(sys.tasks, SPEC.trim_count))
        show(
            f"toggle α={alpha}: total {res.robustness_pct:5.1f}%, "
            f"proactive drops {res.dropped_proactive}"
        )
        assert res.total > 0


class TestETCBaseline:
    def test_probabilistic_vs_deterministic_chance(self, benchmark, show):
        """The §VI comparison: scalar ETC chance estimation (0/1 step,
        Khemka-style) vs the paper's probabilistic PET.  The PET keeps the
        execution-time ground truth in both runs; only the *scheduler's
        model* changes."""
        pet = pet_matrix()
        etc = ETCMatrix.from_pet(pet)
        tasks_a, tasks_b = _workload(), _workload()

        pet_sys = benchmark.pedantic(
            lambda: _run(pet, PruningConfig.paper_default(), tasks_a),
            rounds=1,
            iterations=1,
        )
        # ETC scheduler estimating over deterministic deltas, while tasks
        # still execute stochastically: build system on PET but swap the
        # estimator's model to ETC.
        sys_etc = ServerlessSystem(pet, "MM", pruning=PruningConfig.paper_default(), seed=1)
        sys_etc.estimator.model = etc
        sys_etc.run(tasks_b)

        res_pet = pet_sys.result(trimmed_slice(pet_sys.tasks, SPEC.trim_count))
        res_etc = sys_etc.result(trimmed_slice(sys_etc.tasks, SPEC.trim_count))
        show(
            f"probabilistic PET pruning: {res_pet.robustness_pct:5.1f}% | "
            f"deterministic ETC pruning: {res_etc.robustness_pct:5.1f}%"
        )
        assert res_pet.total > 0 and res_etc.total > 0


class TestHeterogeneityKinds:
    """§I taxonomy: the pruning gain across inconsistent / consistent /
    homogeneous execution-time structure (same aggregate load)."""

    @pytest.mark.parametrize("kind", ["inconsistent", "consistent", "homogeneous"])
    def test_kind(self, benchmark, show, kind):
        pet = pet_matrix(kind)
        tasks_a = generate_workload(SPEC, pet, np.random.default_rng(77))
        tasks_b = generate_workload(SPEC, pet, np.random.default_rng(77))

        def run_pair():
            base = ServerlessSystem(pet, "MM", seed=1)
            base.run(tasks_a)
            pruned = ServerlessSystem(pet, "MM", pruning=PruningConfig.paper_default(), seed=1)
            pruned.run(tasks_b)
            return base, pruned

        base, pruned = benchmark.pedantic(run_pair, rounds=1, iterations=1)
        b = base.result(trimmed_slice(base.tasks, SPEC.trim_count)).robustness_pct
        p = pruned.result(trimmed_slice(pruned.tasks, SPEC.trim_count)).robustness_pct
        show(f"heterogeneity={kind:13s}: baseline {b:5.1f}% → pruned {p:5.1f}% ({p - b:+.1f} pp)")
        assert p > b - 3.0


class TestQueueSlotSweep:
    """Machine-queue slots bound how much work is committed ahead of the
    pruner; the paper's batch-mode design assumes small queues."""

    @pytest.mark.parametrize("slots", [1, 4, 16])
    def test_slots(self, benchmark, show, slots):
        pet = pet_matrix()
        tasks = generate_workload(SPEC, pet, np.random.default_rng(88))

        sys = benchmark.pedantic(
            lambda: _run_with_slots(pet, tasks, slots), rounds=1, iterations=1
        )
        res = sys.result(trimmed_slice(sys.tasks, SPEC.trim_count))
        show(f"queue slots={slots:2d}: pruned robustness {res.robustness_pct:5.1f}%")
        assert res.total > 0


def _run_with_slots(pet, tasks, slots):
    sys = ServerlessSystem(
        pet, "MM", pruning=PruningConfig.paper_default(), queue_limit=slots, seed=1
    )
    sys.run(list(tasks) if all(t.status.value == "pending" for t in tasks) else tasks)
    return sys


class TestKPBSweep:
    """KPB's k interpolates between MET (k→0) and MCT (k=1)."""

    @pytest.mark.parametrize("k", [0.125, 0.25, 0.5, 1.0])
    def test_k(self, benchmark, show, k):
        from repro.heuristics import KPB

        pet = pet_matrix()
        tasks = generate_workload(SPEC, pet, np.random.default_rng(99))

        def run():
            sys = ServerlessSystem(
                pet, KPB(k=k), pruning=PruningConfig.drop_only(), seed=1
            )
            sys.run(tasks)
            return sys

        sys = benchmark.pedantic(run, rounds=1, iterations=1)
        res = sys.result(trimmed_slice(sys.tasks, SPEC.trim_count))
        show(f"KPB k={k:5.3f}: robustness {res.robustness_pct:5.1f}%")
        assert res.total > 0

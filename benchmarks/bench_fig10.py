"""Fig. 10 benches: pruning mechanism on homogeneous systems.

Regenerates both panels (constant / spiky) for FCFS-RR, SJF and EDF with
and without pruning across the oversubscription levels.
"""

from benchmarks.conftest import run_figure
from repro.experiments.scenarios import fig10
from repro.workload.spec import ArrivalPattern


def _check(grid):
    # §V-F: pruning significantly helps homogeneous heuristics too, and
    # the benefit holds at every oversubscription level for EDF (the
    # heuristic the paper highlights).
    for h in ("FCFS-RR", "SJF", "EDF"):
        assert grid.get(f"{h}-P", "25k").mean_pct > grid.get(h, "25k").mean_pct
    for level in grid.cols:
        assert grid.get("EDF-P", level).mean_pct > grid.get("EDF", level).mean_pct


def test_fig10a_constant(benchmark, show):
    grid = run_figure(benchmark, fig10, pattern=ArrivalPattern.CONSTANT)
    show(grid.to_text())
    _check(grid)


def test_fig10b_spiky(benchmark, show):
    grid = run_figure(benchmark, fig10, pattern=ArrivalPattern.SPIKY)
    show(grid.to_text())
    _check(grid)

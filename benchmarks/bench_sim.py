"""Simulator-substrate throughput benches.

Not tied to a paper figure — these quantify the cost of the substrate the
evaluation runs on (event throughput, mapping-event cost), which is what
made the paper's 30-trial × 25k-task campaigns tractable.

``test_estimator_incremental`` additionally emits ``BENCH_estimator.json``
next to this file: events/sec and convolutions per mapping event for the
incremental prefix-convolution estimator versus the seed's keyed-memo
estimator and a no-cache reference, on the Fig. 7 workload.  CI archives
the file so the estimation layer's perf trajectory is tracked PR over PR.

Three gates ride on the payload (all env-tunable for shared runners):

* the seed-over-incremental convolution ratio must stay >= 3 (PR 1);
* end-to-end events/sec of the incremental mode must stay >= 2x the
  PR 1 incremental number (the ISSUE-4 cluster-wide mapping pipeline);
* events/sec must also stay >= 2x the *session-matched* PR 4 baseline
  (the ISSUE-6 tensor-core acceptance bar) —
  disable all wall-clock gates with ``BENCH_SIM_STRICT=0`` on hardware
  unrelated to the committed baseline.  ``tools/check_bench.py`` provides the
  reduced-workload smoke variant CI runs against the *committed* JSON.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS
from repro.core.config import PruningConfig, ToggleMode
from repro.experiments.runner import pet_matrix
from repro.experiments.scenarios import level_spec
from repro.sim.engine import Simulator
from repro.system.serverless import ServerlessSystem
from repro.workload import WorkloadSpec, generate_workload
from repro.workload.spec import ArrivalPattern

ESTIMATOR_JSON = Path(__file__).resolve().parent / "BENCH_estimator.json"

#: Incremental-mode events/sec recorded by PR 1 on the reference machine
#: — the denominator of the ISSUE-4 ">= 2x end-to-end" speedup gate
#: (the acceptance criterion is anchored to this committed artifact
#: value).  PR 1 measured it as total-events / total-wall with the
#: process's cold-start paid inside the first timed trial.
PR1_INCREMENTAL_EVENTS_PER_SEC = 1845.3721330399992

#: The same PR 1 estimator re-measured on the reference machine under
#: the *current* protocol (untimed warmup, best-of-trials rate, see
#: ``run_estimator_bench``), interleaved with current-code runs in one
#: session.  Reported alongside the anchored speedup so the payload
#: never overstates the end-to-end improvement: dividing a warm
#: best-of rate by PR 1's cold aggregate rate flatters the numerator.
PR1_PROTOCOL_MATCHED_EVENTS_PER_SEC = 2550.0

#: Incremental-mode events/sec from the PR 4 committed artifact — the
#: denominator of the ISSUE-6 tensor-core speedup gate.  Recorded under
#: the current protocol, but on an earlier (faster) state of the
#: reference machine.
PR4_INCREMENTAL_EVENTS_PER_SEC = 5073.157641005318

#: The PR 4 estimator re-measured in the same session as the current
#: code, interleaved on the same machine state (the committed number
#: above predates a slowdown of the reference box, so dividing by it
#: understates the improvement).  This is the like-for-like denominator
#: the ISSUE-6 ">= 2x" acceptance bar gates against.
PR4_SESSION_MATCHED_EVENTS_PER_SEC = 2896.30


def test_event_engine_throughput(benchmark):
    """Raw engine: schedule + fire 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 97), lambda: None, priority=i % 3)
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 10_000


def _trial(pruning):
    pet = pet_matrix()
    spec = WorkloadSpec(num_tasks=600, time_span=400.0)
    tasks = generate_workload(spec, pet, np.random.default_rng(BENCH_SEED))
    sys = ServerlessSystem(pet, "MM", pruning=pruning, seed=2)
    sys.run(tasks)
    return sys


def test_full_trial_baseline(benchmark):
    """End-to-end 600-task trial, MM, no pruning."""
    sys = benchmark.pedantic(lambda: _trial(None), rounds=1, iterations=1)
    assert sys.result().total > 0


def test_full_trial_with_pruning(benchmark):
    """Same trial with the full pruning mechanism (convolutions active)."""
    sys = benchmark.pedantic(
        lambda: _trial(PruningConfig.paper_default()), rounds=1, iterations=1
    )
    assert sys.result().dropped_proactive >= 0


# ----------------------------------------------------------------------
# Estimation-layer tracking: BENCH_estimator.json
# ----------------------------------------------------------------------
def _estimator_cell(memoize, trial, scale=BENCH_SCALE):
    """One Fig. 7 dropping-cell trial under the given memoization mode."""
    pet = pet_matrix()
    spec = level_spec("15k", ArrivalPattern.SPIKY, scale)
    tasks = generate_workload(spec, pet, np.random.default_rng(BENCH_SEED + 100 * trial))
    sys = ServerlessSystem(
        pet,
        "MM",
        pruning=PruningConfig.drop_only(ToggleMode.ALWAYS),
        memoize=memoize,
        seed=2,
    )
    t0 = time.perf_counter()
    sys.run(tasks)
    elapsed = time.perf_counter() - t0
    return sys, elapsed


def run_estimator_bench(trials=BENCH_TRIALS, scale=BENCH_SCALE, json_path=ESTIMATOR_JSON):
    """Measure all three memoization modes on the Fig. 7 workload.

    Returns the ``BENCH_estimator.json`` payload (and writes it to
    ``json_path`` unless ``None``).  Plain function so both the pytest
    bench below and ``tools/check_bench.py`` (the CI smoke gate, which
    runs a reduced workload) share one measurement path.
    """
    modes = {"incremental": True, "keyed": "keyed", "naive": False}
    totals = {
        name: {"convolutions": 0, "avoided": 0, "events": 0, "wall_s": 0.0}
        for name in modes
    }
    outcomes = {name: [] for name in modes}
    rates = {name: [] for name in modes}
    # Untimed warmup: build the (cached) PET matrix and touch every code
    # path once, so the first timed mode doesn't pay the process's
    # one-off costs and the three modes see comparable conditions.
    _estimator_cell(True, 0, min(scale, 0.1))
    for trial in range(trials):
        for name, memoize in modes.items():
            sys, elapsed = _estimator_cell(memoize, trial, scale)
            r = sys.result()
            outcomes[name].append(
                (r.on_time, r.late, r.dropped_missed, r.dropped_proactive, r.makespan)
            )
            totals[name]["convolutions"] += sys.estimator.convolutions
            totals[name]["avoided"] += sys.estimator.convolutions_avoided
            totals[name]["events"] += sys.allocator.mapping_events
            totals[name]["wall_s"] += elapsed
            if elapsed > 0:
                rates[name].append(sys.allocator.mapping_events / elapsed)

    identical = outcomes["incremental"] == outcomes["keyed"] == outcomes["naive"]
    per_event = {
        name: t["convolutions"] / t["events"] for name, t in totals.items()
    }
    # Best-of-trials rate (the minimum-time principle): scheduler noise
    # and throttling only ever *slow* a trial down, so the fastest trial
    # is the least-contaminated estimate of the code's true rate.
    events_per_sec = {
        name: max(rates[name]) if rates[name] else None for name in modes
    }
    eps_inc = events_per_sec["incremental"]
    payload = {
        "benchmark": "estimator-incremental",
        "workload": {
            "figure": "fig7",
            "level": "15k",
            "pattern": "spiky",
            "scale": scale,
            "heuristic": "MM",
            "pruning": "drop_only/ALWAYS",
            "trials": trials,
        },
        "mapping_events": totals["incremental"]["events"],
        "events_per_sec": events_per_sec,
        "events_per_sec_protocol": "best-of-trials rate after an untimed warmup",
        "speedup_over_pr1_incremental": (
            eps_inc / PR1_INCREMENTAL_EVENTS_PER_SEC if eps_inc else None
        ),
        "pr1_protocol_matched_events_per_sec": PR1_PROTOCOL_MATCHED_EVENTS_PER_SEC,
        "speedup_protocol_matched": (
            eps_inc / PR1_PROTOCOL_MATCHED_EVENTS_PER_SEC if eps_inc else None
        ),
        "pr4_incremental_events_per_sec": PR4_INCREMENTAL_EVENTS_PER_SEC,
        "speedup_over_pr4_incremental": (
            eps_inc / PR4_INCREMENTAL_EVENTS_PER_SEC if eps_inc else None
        ),
        "pr4_session_matched_events_per_sec": PR4_SESSION_MATCHED_EVENTS_PER_SEC,
        "speedup_pr4_session_matched": (
            eps_inc / PR4_SESSION_MATCHED_EVENTS_PER_SEC if eps_inc else None
        ),
        "convolutions": {name: t["convolutions"] for name, t in totals.items()},
        "convolutions_per_event": per_event,
        "convolutions_avoided_incremental": totals["incremental"]["avoided"],
        "ratio_seed_over_incremental": per_event["keyed"] / per_event["incremental"],
        "ratio_naive_over_incremental": per_event["naive"] / per_event["incremental"],
        "identical_outcomes": identical,
    }
    if json_path is not None:
        Path(json_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_estimator_incremental(benchmark, show):
    """Incremental prefix-convolution estimator vs the seed estimator.

    Runs the Fig. 7 workload (15k-level spiky arrivals, MM, dropping
    engaged) under all three memoization modes, checks the simulation
    outcomes are identical, and records events/sec plus convolutions per
    mapping event in ``BENCH_estimator.json``.  Gates: the
    seed-over-incremental convolution ratio must stay >= 3 (PR 1), and
    — unless ``BENCH_SIM_STRICT=0`` — incremental events/sec must stay
    >= 2x the PR 1 number (ISSUE 4's cluster-wide mapping pipeline).
    """
    payload = benchmark.pedantic(run_estimator_bench, rounds=1, iterations=1)

    # The cache layers must be invisible: identical outcomes per trial.
    assert payload["identical_outcomes"]

    ratio = payload["ratio_seed_over_incremental"]
    per_event = payload["convolutions_per_event"]
    speedup = payload["speedup_over_pr1_incremental"]
    show(
        "estimator convolutions/event: "
        f"incremental {per_event['incremental']:.2f} | "
        f"seed (keyed) {per_event['keyed']:.2f} | "
        f"naive {per_event['naive']:.2f}  ->  "
        f"{ratio:.2f}x fewer than seed; "
        f"{payload['events_per_sec']['incremental']:.0f} events/s = "
        f"{speedup:.2f}x the PR 1 artifact "
        f"({payload['speedup_protocol_matched']:.2f}x protocol-matched; "
        f"JSON: {ESTIMATOR_JSON.name})"
    )
    assert ratio >= 3.0, f"incremental estimator ratio regressed: {ratio:.2f}x < 3x"
    if os.environ.get("BENCH_SIM_STRICT", "1") != "0":
        # Two wall-clock gates, both against reference-machine numbers —
        # disable on unrelated/shared hardware.  The anchored gate holds
        # the ISSUE-4 acceptance bar against the committed PR 1 artifact
        # (1845/s, recorded under the old cold-aggregate protocol); the
        # protocol-matched gate is the like-for-like floor that catches a
        # real end-to-end regression the protocol difference would mask.
        min_speedup = float(os.environ.get("BENCH_MIN_SPEEDUP", "2.0"))
        assert speedup >= min_speedup, (
            f"mapping-pipeline events/sec regressed: {speedup:.2f}x the PR 1 "
            f"artifact < {min_speedup:.2f}x"
        )
        matched = payload["speedup_protocol_matched"]
        min_matched = float(os.environ.get("BENCH_MIN_SPEEDUP_MATCHED", "1.7"))
        assert matched >= min_matched, (
            f"mapping-pipeline events/sec regressed: {matched:.2f}x the "
            f"protocol-matched PR 1 baseline < {min_matched:.2f}x"
        )
        # The ISSUE-6 tensor-core acceptance bar: >= 2x the PR 4
        # estimator measured like-for-like (same session, same machine
        # state — see PR4_SESSION_MATCHED_EVENTS_PER_SEC).
        pr4_matched = payload["speedup_pr4_session_matched"]
        min_pr4 = float(os.environ.get("BENCH_MIN_SPEEDUP_PR4", "2.0"))
        assert pr4_matched >= min_pr4, (
            f"mapping-pipeline events/sec regressed: {pr4_matched:.2f}x the "
            f"session-matched PR 4 baseline < {min_pr4:.2f}x"
        )

"""Simulator-substrate throughput benches.

Not tied to a paper figure — these quantify the cost of the substrate the
evaluation runs on (event throughput, mapping-event cost), which is what
made the paper's 30-trial × 25k-task campaigns tractable.

``test_estimator_incremental`` additionally emits ``BENCH_estimator.json``
next to this file: events/sec and convolutions per mapping event for the
incremental prefix-convolution estimator versus the seed's keyed-memo
estimator and a no-cache reference, on the Fig. 7 workload.  CI archives
the file so the estimation layer's perf trajectory is tracked PR over PR.
"""

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS
from repro.core.config import PruningConfig, ToggleMode
from repro.experiments.runner import pet_matrix
from repro.experiments.scenarios import level_spec
from repro.sim.engine import Simulator
from repro.system.serverless import ServerlessSystem
from repro.workload import WorkloadSpec, generate_workload
from repro.workload.spec import ArrivalPattern

ESTIMATOR_JSON = Path(__file__).resolve().parent / "BENCH_estimator.json"


def test_event_engine_throughput(benchmark):
    """Raw engine: schedule + fire 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 97), lambda: None, priority=i % 3)
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 10_000


def _trial(pruning):
    pet = pet_matrix()
    spec = WorkloadSpec(num_tasks=600, time_span=400.0)
    tasks = generate_workload(spec, pet, np.random.default_rng(BENCH_SEED))
    sys = ServerlessSystem(pet, "MM", pruning=pruning, seed=2)
    sys.run(tasks)
    return sys


def test_full_trial_baseline(benchmark):
    """End-to-end 600-task trial, MM, no pruning."""
    sys = benchmark.pedantic(lambda: _trial(None), rounds=1, iterations=1)
    assert sys.result().total > 0


def test_full_trial_with_pruning(benchmark):
    """Same trial with the full pruning mechanism (convolutions active)."""
    sys = benchmark.pedantic(
        lambda: _trial(PruningConfig.paper_default()), rounds=1, iterations=1
    )
    assert sys.result().dropped_proactive >= 0


# ----------------------------------------------------------------------
# Estimation-layer tracking: BENCH_estimator.json
# ----------------------------------------------------------------------
def _estimator_cell(memoize, trial):
    """One Fig. 7 dropping-cell trial under the given memoization mode."""
    pet = pet_matrix()
    spec = level_spec("15k", ArrivalPattern.SPIKY, BENCH_SCALE)
    tasks = generate_workload(spec, pet, np.random.default_rng(BENCH_SEED + 100 * trial))
    sys = ServerlessSystem(
        pet,
        "MM",
        pruning=PruningConfig.drop_only(ToggleMode.ALWAYS),
        memoize=memoize,
        seed=2,
    )
    t0 = time.perf_counter()
    sys.run(tasks)
    elapsed = time.perf_counter() - t0
    return sys, elapsed


def test_estimator_incremental(benchmark, show):
    """Incremental prefix-convolution estimator vs the seed estimator.

    Runs the Fig. 7 workload (15k-level spiky arrivals, MM, dropping
    engaged) under all three memoization modes, checks the simulation
    outcomes are identical, and records events/sec plus convolutions per
    mapping event in ``BENCH_estimator.json``.  The headline number is
    the seed-over-incremental convolution ratio, which must stay >= 3.
    """
    modes = {"incremental": True, "keyed": "keyed", "naive": False}
    totals = {
        name: {"convolutions": 0, "avoided": 0, "events": 0, "wall_s": 0.0}
        for name in modes
    }
    outcomes = {name: [] for name in modes}

    def run_all_trials():
        for trial in range(BENCH_TRIALS):
            for name, memoize in modes.items():
                sys, elapsed = _estimator_cell(memoize, trial)
                r = sys.result()
                outcomes[name].append(
                    (r.on_time, r.late, r.dropped_missed, r.dropped_proactive, r.makespan)
                )
                totals[name]["convolutions"] += sys.estimator.convolutions
                totals[name]["avoided"] += sys.estimator.convolutions_avoided
                totals[name]["events"] += sys.allocator.mapping_events
                totals[name]["wall_s"] += elapsed
        return totals

    benchmark.pedantic(run_all_trials, rounds=1, iterations=1)
    avoided = totals["incremental"]["avoided"]

    # The cache layers must be invisible: identical outcomes per trial.
    assert outcomes["incremental"] == outcomes["keyed"] == outcomes["naive"]

    per_event = {
        name: t["convolutions"] / t["events"] for name, t in totals.items()
    }
    ratio = per_event["keyed"] / per_event["incremental"]
    payload = {
        "benchmark": "estimator-incremental",
        "workload": {
            "figure": "fig7",
            "level": "15k",
            "pattern": "spiky",
            "scale": BENCH_SCALE,
            "heuristic": "MM",
            "pruning": "drop_only/ALWAYS",
            "trials": BENCH_TRIALS,
        },
        "mapping_events": totals["incremental"]["events"],
        "events_per_sec": {
            name: t["events"] / t["wall_s"] if t["wall_s"] > 0 else None
            for name, t in totals.items()
        },
        "convolutions": {name: t["convolutions"] for name, t in totals.items()},
        "convolutions_per_event": per_event,
        "convolutions_avoided_incremental": avoided,
        "ratio_seed_over_incremental": ratio,
        "ratio_naive_over_incremental": per_event["naive"] / per_event["incremental"],
        "identical_outcomes": True,
    }
    ESTIMATOR_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    show(
        "estimator convolutions/event: "
        f"incremental {per_event['incremental']:.2f} | "
        f"seed (keyed) {per_event['keyed']:.2f} | "
        f"naive {per_event['naive']:.2f}  ->  "
        f"{ratio:.2f}x fewer than seed (JSON: {ESTIMATOR_JSON.name})"
    )
    assert ratio >= 3.0, f"incremental estimator ratio regressed: {ratio:.2f}x < 3x"

"""Simulator-substrate throughput benches.

Not tied to a paper figure — these quantify the cost of the substrate the
evaluation runs on (event throughput, mapping-event cost), which is what
made the paper's 30-trial × 25k-task campaigns tractable.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED
from repro.core.config import PruningConfig
from repro.experiments.runner import pet_matrix
from repro.sim.engine import Simulator
from repro.system.serverless import ServerlessSystem
from repro.workload import WorkloadSpec, generate_workload


def test_event_engine_throughput(benchmark):
    """Raw engine: schedule + fire 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 97), lambda: None, priority=i % 3)
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 10_000


def _trial(pruning):
    pet = pet_matrix()
    spec = WorkloadSpec(num_tasks=600, time_span=400.0)
    tasks = generate_workload(spec, pet, np.random.default_rng(BENCH_SEED))
    sys = ServerlessSystem(pet, "MM", pruning=pruning, seed=2)
    sys.run(tasks)
    return sys


def test_full_trial_baseline(benchmark):
    """End-to-end 600-task trial, MM, no pruning."""
    sys = benchmark.pedantic(lambda: _trial(None), rounds=1, iterations=1)
    assert sys.result().total > 0


def test_full_trial_with_pruning(benchmark):
    """Same trial with the full pruning mechanism (convolutions active)."""
    sys = benchmark.pedantic(
        lambda: _trial(PruningConfig.paper_default()), rounds=1, iterations=1
    )
    assert sys.result().dropped_proactive >= 0

"""Fig. 9 benches: full pruning mechanism on batch-mode heuristics.

Regenerates both panels — constant (9a) and spiky (9b) arrival patterns —
across the three oversubscription levels, with and without pruning.
"""

from benchmarks.conftest import run_figure
from repro.experiments.scenarios import fig9
from repro.workload.spec import ArrivalPattern


def _check(grid):
    # §V-E: pruning strictly helps the deadline-chasing heuristics at the
    # heaviest level, and never substantially hurts MM (whose baseline is
    # already strong; at bench trial counts a small tie is noise).
    for h in ("MSD", "MMU"):
        assert grid.get(f"{h}-P", "25k").mean_pct > grid.get(h, "25k").mean_pct
    assert grid.get("MM-P", "25k").mean_pct > grid.get("MM", "25k").mean_pct - 3.0


def test_fig9a_constant(benchmark, show):
    grid = run_figure(benchmark, fig9, pattern=ArrivalPattern.CONSTANT)
    show(grid.to_text())
    _check(grid)


def test_fig9b_spiky(benchmark, show):
    grid = run_figure(benchmark, fig9, pattern=ArrivalPattern.SPIKY)
    show(grid.to_text())
    _check(grid)
    show(
        f"headline: max pruning gain {grid.max_improvement():+.1f} pp "
        "(paper reports up to +35 pp on batch-mode HC systems)"
    )

"""Fig. 7 benches: impact of the Toggle module (dropping policies).

Regenerates both panels — immediate-mode (7a) and batch-mode (7b)
heuristics under {no dropping, always dropping, reactive Toggle} — and
prints the grid the paper plots as grouped bars.
"""

from benchmarks.conftest import run_figure
from repro.experiments.scenarios import fig7a, fig7b

NO_DROP = "no Toggle, no dropping"
ALWAYS = "no Toggle, always dropping"
REACTIVE = "reactive Toggle"


def test_fig7a(benchmark, show):
    grid = run_figure(benchmark, fig7a)
    show(grid.to_text())
    # Shape check (§V-C): reactive dropping helps the informed
    # immediate-mode heuristics.
    for h in ("MCT", "KPB"):
        assert grid.get(h, REACTIVE).mean_pct >= grid.get(h, NO_DROP).mean_pct - 2.0


def test_fig7b(benchmark, show):
    grid = run_figure(benchmark, fig7b)
    show(grid.to_text())
    # Shape check: dropping (either policy) lifts every batch heuristic.
    for h in ("MM", "MSD", "MMU"):
        assert grid.get(h, REACTIVE).mean_pct >= grid.get(h, NO_DROP).mean_pct - 2.0

"""Fig. 8 bench: task-deferring threshold sweep on batch heuristics.

Regenerates the pruning-threshold sweep (0/25/50/75 %) at the heaviest
oversubscription level (25k-equivalent, spiky arrivals).
"""

from benchmarks.conftest import run_figure
from repro.experiments.scenarios import fig8


def test_fig8(benchmark, show):
    grid = run_figure(benchmark, fig8)
    show(grid.to_text())
    # Shape checks (§V-D): deferring at 50 % lifts the deadline-chasing
    # heuristics far above their no-pruning baseline...
    for h in ("MSD", "MMU"):
        assert grid.get(h, "50%").mean_pct > grid.get(h, "0%").mean_pct
    # ...and the three heuristics converge once deferring is active.
    at50 = [grid.get(h, "50%").mean_pct for h in grid.rows]
    at0 = [grid.get(h, "0%").mean_pct for h in grid.rows]
    assert max(at50) - min(at50) < max(at0) - min(at0)

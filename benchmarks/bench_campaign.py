"""Campaign-orchestration benches: sharded figure regeneration + cache.

Measures the acceptance scenario of the campaign subsystem on the Fig.
7b grid (9 cells × N trials):

* **sequential** — one process, no cache (the pre-campaign baseline);
* **parallel** — ``--jobs``-style sharding of every (cell, trial) pair
  across a process pool, writing the result cache;
* **warm** — an immediate re-run served entirely from the cache.

Emits ``BENCH_campaign.json`` next to this file with the wall-clock
series, the measured speedup, and the cache hit counts; CI archives it
so the orchestration layer's perf trajectory is tracked PR over PR.
The parallel run must be bit-identical to the sequential one on every
machine; the ≥2× speedup is asserted only where it is physically
possible (≥4 cores — the acceptance criterion's environment).
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.experiments.scenarios import fig7b
from repro.experiments.campaign import ResultCache

CAMPAIGN_JSON = Path(__file__).resolve().parent / "BENCH_campaign.json"

#: Trials per cell — the acceptance run uses 10; the default keeps the
#: bench in CI-friendly territory while still giving the pool 27 shards.
CAMPAIGN_TRIALS = int(os.environ.get("BENCH_CAMPAIGN_TRIALS", "3"))

#: Worker processes for the parallel leg (the acceptance run's ``--jobs 4``).
CAMPAIGN_JOBS = int(os.environ.get("BENCH_CAMPAIGN_JOBS", "4"))

#: ``BENCH_CAMPAIGN_STRICT=0`` records the speedup without gating on it —
#: for shared CI runners where a few-second workload is noise-sensitive.
#: The identity and cache-effectiveness asserts always apply.
CAMPAIGN_STRICT = os.environ.get("BENCH_CAMPAIGN_STRICT", "1") != "0"


def _fig7b(**kwargs):
    return fig7b(
        trials=CAMPAIGN_TRIALS, base_seed=BENCH_SEED, scale=BENCH_SCALE, **kwargs
    )


def test_campaign_sharding(tmp_path, show):
    """fig7b sequentially, sharded (jobs=N), and cache-warm."""
    t0 = time.perf_counter()
    sequential = _fig7b()
    sequential_s = time.perf_counter() - t0

    cache = ResultCache(tmp_path / "cache")
    t0 = time.perf_counter()
    parallel = _fig7b(jobs=CAMPAIGN_JOBS, cache=cache)
    parallel_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = _fig7b(jobs=CAMPAIGN_JOBS, cache=cache)
    warm_s = time.perf_counter() - t0

    # Identical metrics in all three modes — per-trial, not just means.
    for r in sequential.rows:
        for c in sequential.cols:
            assert sequential.get(r, c).per_trial_pct == parallel.get(r, c).per_trial_pct
            assert sequential.get(r, c).per_trial_pct == warm.get(r, c).per_trial_pct

    total_trials = len(sequential.rows) * len(sequential.cols) * CAMPAIGN_TRIALS
    assert cache.stats() == {"hits": total_trials, "misses": total_trials}

    cores = os.cpu_count() or 1
    speedup = sequential_s / parallel_s if parallel_s > 0 else float("inf")
    warm_fraction = warm_s / sequential_s if sequential_s > 0 else 0.0
    payload = {
        "benchmark": "campaign-sharding",
        "workload": {
            "figure": "fig7b",
            "scale": BENCH_SCALE,
            "trials": CAMPAIGN_TRIALS,
            "cells": len(sequential.rows) * len(sequential.cols),
            "total_trials": total_trials,
        },
        "cpu_count": cores,
        "jobs": CAMPAIGN_JOBS,
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "speedup_parallel_over_sequential": speedup,
        "warm_s": warm_s,
        "warm_fraction_of_sequential": warm_fraction,
        "cache": cache.stats(),
        "identical_metrics": True,
    }
    CAMPAIGN_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    show(
        f"campaign fig7b ({total_trials} trials): sequential {sequential_s:.1f}s | "
        f"jobs={CAMPAIGN_JOBS} {parallel_s:.1f}s ({speedup:.2f}x, {cores} cores) | "
        f"cache-warm {warm_s:.2f}s ({warm_fraction:.1%}) "
        f"(JSON: {CAMPAIGN_JSON.name})"
    )

    # The cache must make re-runs nearly free everywhere.
    assert warm_fraction < 0.25, (
        f"warm re-run took {warm_fraction:.1%} of the cold run — cache not effective"
    )
    # The sharding speedup needs real cores to show up.
    if cores >= 4 and CAMPAIGN_STRICT:
        assert speedup >= 2.0, (
            f"jobs={CAMPAIGN_JOBS} speedup {speedup:.2f}x < 2x on {cores} cores"
        )

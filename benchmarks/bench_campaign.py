"""Campaign-orchestration benches: executor plans, sharding + cache.

Measures the acceptance scenario of the batched executor layer (ISSUE 6)
on the Fig. 7b grid (9 cells × N trials):

* **serial** — the forced one-process plan (the baseline);
* **auto** — ``--jobs``-style sharding under the adaptive plan resolver.
  On one core this must resolve to the serial plan (no pool can win
  there), so the run may not be slower than serial — the fix for the
  PR 4 artifact's 0.96x parallel pathology, recorded below;
* **thread** / **process** — the forced pool plans, run for byte-identity
  (and, for thread, to exercise the pool + result-cache path);
* **warm** — an immediate re-run served entirely from the cache.

Emits ``BENCH_campaign.json`` next to this file with the wall-clock
series, the resolved plan, per-executor identity flags, and cache hit
counts; ``tools/check_bench.py`` validates the committed payload in CI.
Every executor must reproduce the serial per-trial results byte-for-byte
on every machine; wall-clock gates are env-escapable for shared runners.
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.experiments.campaign import ResultCache, resolve_execution_plan
from repro.experiments.scenarios import fig7b

CAMPAIGN_JSON = Path(__file__).resolve().parent / "BENCH_campaign.json"

#: Trials per cell — the acceptance run uses 10; the default keeps the
#: bench in CI-friendly territory while still giving the pool 27 shards.
CAMPAIGN_TRIALS = int(os.environ.get("BENCH_CAMPAIGN_TRIALS", "3"))

#: Worker budget for the auto leg (the acceptance run's ``--jobs 4``).
CAMPAIGN_JOBS = int(os.environ.get("BENCH_CAMPAIGN_JOBS", "4"))

#: ``BENCH_CAMPAIGN_STRICT=0`` records the speedups without gating on
#: them — for shared CI runners where a few-second workload is
#: noise-sensitive.  The identity and cache-effectiveness asserts
#: always apply.
CAMPAIGN_STRICT = os.environ.get("BENCH_CAMPAIGN_STRICT", "1") != "0"

#: The PR 4 committed artifact on the single-core reference machine:
#: ``--jobs 4`` forced a process pool whose pickling overhead *lost* to
#: the serial run — the pathology the adaptive plan resolver removes.
#: Kept inside the new payload so the trajectory reads PR over PR.
PR4_ARTIFACT = {
    "sequential_s": 4.533215763000044,
    "parallel_s": 4.72731675400064,
    "speedup_parallel_over_sequential": 0.9589405573814507,
}


def _fig7b(**kwargs):
    return fig7b(
        trials=CAMPAIGN_TRIALS, base_seed=BENCH_SEED, scale=BENCH_SCALE, **kwargs
    )


def _per_trial(figure):
    return [
        figure.get(r, c).per_trial_pct for r in figure.rows for c in figure.cols
    ]


def test_campaign_sharding(tmp_path, show):
    """fig7b under every executor plan, plus the cache-warm re-run."""
    # Timed legs run in alternating order, best-of-three: on a shared
    # single-core box successive legs measure progressively slower
    # (throttling), so a fixed order hands whoever runs first a
    # systematic edge — alternation spreads the drift over both legs.
    serial_s = auto_s = float("inf")
    serial = auto = None
    for order in (("auto", "serial"), ("serial", "auto"), ("auto", "serial")):
        for leg in order:
            t0 = time.perf_counter()
            if leg == "serial":
                serial = _fig7b(executor="serial")
                serial_s = min(serial_s, time.perf_counter() - t0)
            else:
                auto = _fig7b(jobs=CAMPAIGN_JOBS)
                auto_s = min(auto_s, time.perf_counter() - t0)

    cache = ResultCache(tmp_path / "cache")
    t0 = time.perf_counter()
    thread = _fig7b(jobs=2, executor="thread", cache=cache)
    thread_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    process = _fig7b(jobs=2, executor="process")
    process_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = _fig7b(jobs=2, executor="thread", cache=cache)
    warm_s = time.perf_counter() - t0

    # Byte-identity of every plan against serial — per-trial, not means.
    reference = _per_trial(serial)
    identical = {
        "auto": _per_trial(auto) == reference,
        "thread": _per_trial(thread) == reference,
        "process": _per_trial(process) == reference,
        "warm": _per_trial(warm) == reference,
    }

    total_trials = len(serial.rows) * len(serial.cols) * CAMPAIGN_TRIALS
    cores = os.cpu_count() or 1
    kind, workers = resolve_execution_plan(CAMPAIGN_JOBS, total_trials)
    speedup = serial_s / auto_s if auto_s > 0 else float("inf")
    warm_fraction = warm_s / serial_s if serial_s > 0 else 0.0
    payload = {
        "benchmark": "campaign-sharding",
        "workload": {
            "figure": "fig7b",
            "scale": BENCH_SCALE,
            "trials": CAMPAIGN_TRIALS,
            "cells": len(serial.rows) * len(serial.cols),
            "total_trials": total_trials,
        },
        "cpu_count": cores,
        "jobs": CAMPAIGN_JOBS,
        "resolved_plan": {"kind": kind, "workers": workers},
        "serial_s": serial_s,
        "auto_s": auto_s,
        "speedup_auto_over_serial": speedup,
        "thread_s": thread_s,
        "process_s": process_s,
        "identical": identical,
        "warm_s": warm_s,
        "warm_fraction_of_serial": warm_fraction,
        "cache": cache.stats(),
        "pr4_artifact": PR4_ARTIFACT,
    }
    CAMPAIGN_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    show(
        f"campaign fig7b ({total_trials} trials): serial {serial_s:.1f}s | "
        f"auto(jobs={CAMPAIGN_JOBS} -> {kind}x{workers}) {auto_s:.1f}s "
        f"({speedup:.2f}x, {cores} cores) | thread {thread_s:.1f}s | "
        f"process {process_s:.1f}s | warm {warm_s:.2f}s ({warm_fraction:.1%}) "
        f"(JSON: {CAMPAIGN_JSON.name})"
    )

    assert all(identical.values()), (
        f"executor plans diverged from serial: {identical}"
    )
    assert cache.stats() == {"hits": total_trials, "misses": total_trials}
    # The cache must make re-runs nearly free everywhere.
    assert warm_fraction < 0.25, (
        f"warm re-run took {warm_fraction:.1%} of the serial run — cache not effective"
    )
    if cores == 1:
        # The adaptive resolver's whole point on one core.
        assert kind == "serial", f"one core resolved to a {kind} pool"
    if CAMPAIGN_STRICT:
        # On one core auto *is* serial, so this asserts near-parity (the
        # PR 4 pathology was 0.96x with real pool overhead on top);
        # on multi-core it asserts the pool actually wins.
        floor = 0.95 if cores == 1 else (2.0 if cores >= 4 else 1.0)
        assert speedup >= floor, (
            f"auto plan {speedup:.2f}x < {floor}x serial on {cores} cores"
        )

"""Offline auto-tuner benchmark → ``BENCH_tuning.json``.

The claim under test (ISSUE 10 acceptance): on the control-plane
benchmark's own bursty sweep (``benchmarks/bench_control.py`` — three
oversubscription levels of the MMPP family), a *searched* hysteresis
configuration matches-or-beats the hand-set hysteresis contender that
``BENCH_control.json`` committed, and beats the best static β of the
paper's threshold grid — i.e. the tuner recovers (at least) the
hand-tuning effort automatically.

The search is the ``control-bursty`` tuning preset: the pure-NumPy
GP/EI strategy (6 random init trials, then 6 surrogate-guided) over the
hysteresis knobs (``controller.high`` log-scaled, ``controller.step``,
``controller.cooldown``, ``controller.window``), scored by pooled
on-time % over the same cells, seeds and trial counts the control
benchmark uses — so the tuned score is directly comparable to the
committed ``adaptive_pct`` and ``best_static_pct`` reference numbers,
which this artifact copies from ``BENCH_control.json`` rather than
re-deriving.

Everything is deterministic (named-stream proposals, fixed seeds, pure
controllers), so the trajectory and the final comparison are
hardware-independent and safe to gate in CI; ``--jobs`` only changes
wall-clock.  The payload shape is validated against the committed
artifact by ``tools/check_bench.py``.

Run directly to regenerate the artifact::

    python benchmarks/bench_tuning.py --jobs 4

or through pytest (asserts, no artifact rewrite)::

    python -m pytest benchmarks/bench_tuning.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Direct-script convenience (CI and pytest install the package; a plain
# checkout runs `python benchmarks/bench_tuning.py` without it).
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.campaign import ResultCache  # noqa: E402
from repro.tuning import Tuner, get_preset  # noqa: E402

TUNING_JSON = Path(__file__).resolve().parent / "BENCH_tuning.json"
CONTROL_JSON = Path(__file__).resolve().parent / "BENCH_control.json"


def _references() -> dict:
    """The committed control-benchmark numbers the tuned score races.

    Copied from ``BENCH_control.json`` instead of re-run: both
    benchmarks are deterministic over the same cells and seeds, so the
    committed numbers *are* the numbers, and ``tools/check_bench.py``
    cross-checks the copy against the source artifact.
    """
    committed = json.loads(CONTROL_JSON.read_text())
    cmp = committed["comparison"]
    return {
        "source": CONTROL_JSON.name,
        "hysteresis_pct": cmp["adaptive_pct"],
        "best_static": cmp["best_static"],
        "best_static_pct": cmp["best_static_pct"],
        "worst_static": cmp["worst_static"],
        "worst_static_pct": cmp["worst_static_pct"],
    }


def run_tuning_bench(
    *,
    jobs: int | None = None,
    cache_dir: Path | None = None,
    json_path: Path | None = TUNING_JSON,
) -> dict:
    """Run the search and return (optionally write) the payload."""
    preset = get_preset("control-bursty")
    configs = preset.configs()
    cache = None
    if cache_dir is not None:
        cache = ResultCache(cache_dir)
        cache.prune_stale()
    tuner = Tuner(
        preset.space,
        configs,
        strategy=preset.strategy,
        objective=preset.objective,
        budget=preset.budget,
        seed=preset.seed,
        cache=cache,
        jobs=jobs,
        name="bench-tuning",
    )
    result = tuner.run()
    stats = result.stats()
    references = _references()
    tuned_pct = stats["best_score"]
    payload = {
        "benchmark": "tuning",
        "workload": {
            "pattern": "bursty",
            "time_span": 150.0,
            "num_task_types": 8,
            "burst_amplitude": 8.0,
            "burst_fraction": 0.15,
            "burst_cycles": 4.0,
            "levels": {c.label.split("@")[1]: c.spec.num_tasks for c in configs},
            "trials": configs[0].trials,
            "base_seed": configs[0].base_seed,
            "heuristic": "MM",
        },
        "search": {
            "preset": preset.name,
            "space": preset.space.to_dict(),
            "strategy": stats["strategy"],
            "objective": stats["objective"],
            "budget": stats["budget"],
            "seed": stats["seed"],
            "ledger_key": tuner.key,
        },
        "tuner_stats": stats,
        "trials": [r.to_dict() for r in result.records],
        "references": references,
        "comparison": {
            "tuned_pct": tuned_pct,
            "tuned_params": stats["best_params"],
            "hysteresis_pct": references["hysteresis_pct"],
            "best_static": references["best_static"],
            "best_static_pct": references["best_static_pct"],
            "tuned_minus_hysteresis_pp": tuned_pct - references["hysteresis_pct"],
            "tuned_minus_best_static_pp": tuned_pct - references["best_static_pct"],
        },
    }
    if json_path is not None:
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_payload(payload: dict) -> None:
    """The acceptance gates (shared by the pytest entry and __main__)."""
    cmp = payload["comparison"]
    assert cmp["tuned_pct"] >= cmp["hysteresis_pct"] - 1e-9, (
        f"tuned config {cmp['tuned_pct']:.2f}% fell below the hand-set "
        f"hysteresis contender ({cmp['hysteresis_pct']:.2f}%)"
    )
    assert cmp["tuned_pct"] > cmp["best_static_pct"], (
        f"tuned config {cmp['tuned_pct']:.2f}% does not beat the best static "
        f"β ({cmp['best_static']}: {cmp['best_static_pct']:.2f}%)"
    )


def _trajectory(trials: list[dict]) -> list[dict]:
    """Trial records minus the cache hit/miss telemetry.

    The determinism contract pins proposals, params and scores; the
    cache counters legitimately depend on whether the run was warm or
    cold (the committed artifact is regenerated with ``--cache-dir``,
    the pytest gate runs cache-less).
    """
    skip = {"cache_hits", "cache_misses"}
    return [{k: v for k, v in t.items() if k not in skip} for t in trials]


def test_tuner_recovers_hand_tuning():
    """Deterministic gate: the GP/EI search over the hysteresis knobs
    matches-or-beats the committed hand-set controller and beats the
    best static β — and reproduces the committed artifact trial for
    trial (named-stream proposals, fixed seeds)."""
    payload = run_tuning_bench(jobs=2, json_path=None)
    check_payload(payload)
    if TUNING_JSON.exists():
        committed = json.loads(TUNING_JSON.read_text())
        assert committed["comparison"] == payload["comparison"], (
            "BENCH_tuning.json is stale — regenerate with "
            "`python benchmarks/bench_tuning.py`"
        )
        assert _trajectory(committed["trials"]) == _trajectory(payload["trials"]), (
            "tuner trajectory diverged from the committed ledger — "
            "same seed must mean byte-identical proposals"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", "-j", type=int, default=None)
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="optional campaign result cache (regeneration re-runs warm)",
    )
    parser.add_argument(
        "--json", type=Path, default=TUNING_JSON, help="output artifact path"
    )
    args = parser.parse_args(argv)
    payload = run_tuning_bench(
        jobs=args.jobs, cache_dir=args.cache_dir, json_path=args.json
    )
    cmp = payload["comparison"]
    print(
        f"bench tuning: tuned {cmp['tuned_pct']:.2f}% | hysteresis "
        f"{cmp['hysteresis_pct']:.2f}% ({cmp['tuned_minus_hysteresis_pp']:+.2f} pp) "
        f"| best static {cmp['best_static']} {cmp['best_static_pct']:.2f}% "
        f"({cmp['tuned_minus_best_static_pp']:+.2f} pp)"
    )
    print(f"tuned params: {cmp['tuned_params']}")
    check_payload(payload)
    print("tuning gates OK")
    print(f"[written: {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Adaptive-pruning control-plane benchmark → ``BENCH_control.json``.

The claim under test (ISSUE 5 acceptance): on a bursty oversubscription
sweep, a feedback controller started at the paper's default β = 0.5
*recovers* at least the on-time completion of the best static β in the
paper's own threshold grid {0.25, 0.5, 0.75} — without anyone running
that sweep — while beating the worst static β materially.

The sweep is three oversubscription levels of one MMPP (bursty) workload
family: quiet stretches around the 15k-equivalent load with 8× bursts.
Under these (paper-default) deadlines the robustness response to β is
monotone-saturating: every burst pushes the best operating point above
the static grid's top, which is exactly the regime where a fixed β is
wrong for part of the run and a miss-rate-driven controller is not.

Everything is deterministic (fixed seeds, pure-function controllers), so
the comparison is hardware-independent and safe to gate in CI; ``jobs``
only changes wall-clock, never outcomes.  The payload shape is validated
against the committed artifact by ``tools/check_bench.py``.

Run directly to regenerate the artifact::

    python benchmarks/bench_control.py --jobs 4

or through pytest (asserts, no artifact rewrite)::

    python -m pytest benchmarks/bench_control.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Direct-script convenience (CI and pytest install the package; a plain
# checkout runs `python benchmarks/bench_control.py` without it).
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import ControllerConfig, PruningConfig  # noqa: E402
from repro.experiments.campaign import run_cell_trials  # noqa: E402
from repro.experiments.runner import ExperimentConfig  # noqa: E402
from repro.metrics.robustness import aggregate_robustness  # noqa: E402
from repro.workload.spec import WorkloadSpec  # noqa: E402

CONTROL_JSON = Path(__file__).resolve().parent / "BENCH_control.json"

#: Oversubscription levels: task count over the fixed 150-unit span.
LEVELS = {"mild": 320, "heavy": 400, "extreme": 480}

#: The paper's Fig. 8 threshold grid, run as static β settings.
STATIC_GRID = (0.25, 0.5, 0.75)

#: The adaptive contender: an asymmetric hysteresis ratchet.  Misses
#: (late completions + reactive drops) push β up fast — work that burned
#: capacity and still failed means pruning is too lax — and β relaxes
#: only when the miss EWMA is pinned at zero.  Started at the paper
#: default β = 0.5.
ADAPTIVE = ControllerConfig(
    kind="hysteresis",
    low=0.0,
    high=0.1,
    step=0.25,
    cooldown=2,
    window=3,
    beta_min=0.25,
    beta_max=0.95,
)

TRIALS = 5
BASE_SEED = 42

#: "Materially better than the worst static β" — the assertion margin in
#: robustness percentage points (the measured gap is ~8 pp).
MATERIAL_MARGIN_PP = 2.0


def _spec(num_tasks: int) -> WorkloadSpec:
    return WorkloadSpec(
        num_tasks=num_tasks,
        time_span=150.0,
        num_task_types=8,
        pattern="bursty",
        burst_amplitude=8.0,
        burst_fraction=0.15,
        burst_cycles=4.0,
    )


def _variants() -> dict[str, PruningConfig]:
    variants = {
        f"P{int(beta * 100)}": PruningConfig(pruning_threshold=beta)
        for beta in STATIC_GRID
    }
    variants["adaptive"] = PruningConfig(
        pruning_threshold=0.5, controller=ADAPTIVE
    )
    return variants


def run_control_bench(
    *,
    trials: int = TRIALS,
    jobs: int | None = None,
    json_path: Path | None = CONTROL_JSON,
) -> dict:
    """Run the sweep and return (optionally write) the payload."""
    variants = _variants()
    configs, keys = [], []
    for vname, pruning in variants.items():
        for lname, num_tasks in LEVELS.items():
            configs.append(
                ExperimentConfig(
                    heuristic="MM",
                    spec=_spec(num_tasks),
                    pruning=pruning,
                    trials=trials,
                    base_seed=BASE_SEED,
                    label=f"{vname}@{lname}",
                )
            )
            keys.append((vname, lname))

    per_variant: dict[str, dict] = {v: {"per_level": {}} for v in variants}
    pooled: dict[str, list[float]] = {v: [] for v in variants}
    for (vname, lname), cell_trials in zip(keys, run_cell_trials(configs, jobs=jobs)):
        agg = aggregate_robustness(cell_trials)
        per_variant[vname]["per_level"][lname] = {
            "mean_pct": agg.mean_pct,
            "ci95_pct": agg.ci95_pct,
            "trials": agg.trials,
        }
        pooled[vname].extend(agg.per_trial_pct)
    for vname in variants:
        per_variant[vname]["pooled_mean_pct"] = sum(pooled[vname]) / len(pooled[vname])

    statics = {v: per_variant[v]["pooled_mean_pct"] for v in variants if v != "adaptive"}
    best_static = max(statics, key=statics.get)
    worst_static = min(statics, key=statics.get)
    adaptive_mean = per_variant["adaptive"]["pooled_mean_pct"]
    payload = {
        "benchmark": "control",
        "workload": {
            "pattern": "bursty",
            "time_span": 150.0,
            "num_task_types": 8,
            "burst_amplitude": 8.0,
            "burst_fraction": 0.15,
            "burst_cycles": 4.0,
            "levels": dict(LEVELS),
            "trials": trials,
            "base_seed": BASE_SEED,
            "heuristic": "MM",
        },
        "static_grid": list(STATIC_GRID),
        "controller": {
            "kind": ADAPTIVE.kind,
            "low": ADAPTIVE.low,
            "high": ADAPTIVE.high,
            "step": ADAPTIVE.step,
            "cooldown": ADAPTIVE.cooldown,
            "window": ADAPTIVE.window,
            "beta_min": ADAPTIVE.beta_min,
            "beta_max": ADAPTIVE.beta_max,
            "initial_beta": 0.5,
        },
        "results": per_variant,
        "comparison": {
            "best_static": best_static,
            "best_static_pct": statics[best_static],
            "worst_static": worst_static,
            "worst_static_pct": statics[worst_static],
            "adaptive_pct": adaptive_mean,
            "adaptive_minus_best_pp": adaptive_mean - statics[best_static],
            "adaptive_minus_worst_pp": adaptive_mean - statics[worst_static],
        },
    }
    if json_path is not None:
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_payload(payload: dict) -> None:
    """The acceptance gates (shared by the pytest entry and __main__)."""
    cmp = payload["comparison"]
    assert cmp["adaptive_pct"] >= cmp["best_static_pct"] - 1e-9, (
        f"adaptive {cmp['adaptive_pct']:.2f}% fell below the best static "
        f"β ({cmp['best_static']}: {cmp['best_static_pct']:.2f}%)"
    )
    assert cmp["adaptive_pct"] > cmp["worst_static_pct"] + MATERIAL_MARGIN_PP, (
        f"adaptive {cmp['adaptive_pct']:.2f}% is not materially above the "
        f"worst static β ({cmp['worst_static']}: {cmp['worst_static_pct']:.2f}%)"
    )


def test_adaptive_recovers_best_static():
    """Deterministic gate: the hysteresis controller, started at the
    paper default, matches-or-beats the best static β of the paper's
    threshold grid and clears the worst by a material margin."""
    payload = run_control_bench(jobs=2, json_path=None)
    check_payload(payload)
    # The run must match the committed artifact (same seeds, pure
    # controllers ⇒ hardware-independent robustness numbers).
    if CONTROL_JSON.exists():
        committed = json.loads(CONTROL_JSON.read_text())
        assert committed["comparison"] == payload["comparison"], (
            "BENCH_control.json is stale — regenerate with "
            "`python benchmarks/bench_control.py`"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=TRIALS)
    parser.add_argument("--jobs", "-j", type=int, default=None)
    parser.add_argument(
        "--json", type=Path, default=CONTROL_JSON, help="output artifact path"
    )
    args = parser.parse_args(argv)
    payload = run_control_bench(trials=args.trials, jobs=args.jobs, json_path=args.json)
    cmp = payload["comparison"]
    print(
        f"bench control: adaptive {cmp['adaptive_pct']:.2f}% | best static "
        f"{cmp['best_static']} {cmp['best_static_pct']:.2f}% "
        f"({cmp['adaptive_minus_best_pp']:+.2f} pp) | worst static "
        f"{cmp['worst_static']} {cmp['worst_static_pct']:.2f}% "
        f"({cmp['adaptive_minus_worst_pp']:+.2f} pp)"
    )
    if args.trials == TRIALS:
        check_payload(payload)
        print("control gates OK")
    else:
        print("(non-default trial count: gates skipped, artifact recorded)")
    print(f"[written: {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

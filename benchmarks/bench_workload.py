"""Fig. 6 bench: regenerating the spiky arrival pattern.

Prints the windowed per-type arrival-rate series the figure plots and
measures full workload generation throughput.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.experiments.scenarios import fig6
from repro.stochastic.pet import generate_pet_matrix
from repro.workload import WorkloadSpec, generate_workload


def test_fig6_series(benchmark, show):
    """Regenerate the Fig. 6 arrival-rate series (4 task types shown)."""
    series = benchmark.pedantic(
        lambda: fig6(base_seed=BENCH_SEED, scale=BENCH_SCALE), rounds=1, iterations=1
    )
    lines = ["Fig. 6 — spiky arrival rates (tasks/unit):"]
    for ttype, (_centers, rates) in series.items():
        peaks = rates.max()
        lines.append(
            f"  type {ttype}: lull≈{np.median(rates):.2f}, peak≈{peaks:.2f}, "
            f"{rates.size} windows"
        )
    show("\n".join(lines))
    # Spikes must be visible: peak well above the lull.
    for _, rates in series.values():
        assert rates.max() > 1.5 * max(np.median(rates), 1e-9)


def test_workload_generation_throughput(benchmark):
    """Generate a full 15k-equivalent trial (arrivals + Eq. 4 deadlines)."""
    pet = generate_pet_matrix(seed=BENCH_SEED)
    spec = WorkloadSpec(num_tasks=900, time_span=600.0)
    tasks = benchmark(lambda: generate_workload(spec, pet, np.random.default_rng(3)))
    assert len(tasks) == pytest.approx(900, rel=0.15)


def test_constant_pattern_generation(benchmark):
    pet = generate_pet_matrix(seed=BENCH_SEED)
    spec = WorkloadSpec(num_tasks=900, time_span=600.0, pattern="constant")
    tasks = benchmark(lambda: generate_workload(spec, pet, np.random.default_rng(3)))
    assert len(tasks) == pytest.approx(900, rel=0.15)

"""Shared benchmark configuration.

Each benchmark regenerates one table/figure of the paper (printing the
same rows/series the paper reports) and measures how long the regeneration
takes.  Scale/trial defaults keep the full suite in the minutes range;
crank ``BENCH_SCALE``/``BENCH_TRIALS`` env vars up for paper-size runs.
"""

import os

import pytest

#: Workload scale for figure benches (1.0 = the library's default scale,
#: ~1/16.7 of the paper's trace length; see DESIGN.md).
BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.4"))

#: Workload trials per experimental cell.
BENCH_TRIALS = int(os.environ.get("BENCH_TRIALS", "2"))

#: Base seed for all benches.
BENCH_SEED = int(os.environ.get("BENCH_SEED", "7"))


def run_figure(benchmark, fn, **kwargs):
    """Benchmark one figure-regeneration callable (single round — these
    are end-to-end simulation campaigns, not microbenchmarks)."""
    kwargs.setdefault("trials", BENCH_TRIALS)
    kwargs.setdefault("base_seed", BENCH_SEED)
    kwargs.setdefault("scale", BENCH_SCALE)
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)


@pytest.fixture
def show(capsys):
    """Print a figure table to the real terminal from inside a test."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _show

"""Microbenchmarks of the probabilistic substrate (Fig. 2 / Eq. 1).

The paper notes (§V-A) that completion-time estimation "involves multiple
convolutions which impose calculation overhead"; these benches quantify
that overhead for the exact Fig. 2 example, for realistic PET supports,
and for a full machine-queue PCT chain.

``test_pmf_tensor_core`` additionally emits ``BENCH_pmf.json`` next to
this file (the ISSUE-6 tensor-core artifact): the direct-vs-FFT
convolution scaling curve across support sizes straddling the
``FFT_MIN_TAPS``/``FFT_MIN_OPS`` crossover, and stacked
(:class:`PMFStack.batch_cdf_at`) versus looped scalar ``cdf_at`` on a
campaign-sized row set.  ``tools/check_bench.py`` validates the
committed payload shape and its acceptance flags in CI.

Run directly to regenerate the artifact::

    python benchmarks/bench_pmf.py
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.stochastic.pet import generate_pet_matrix  # noqa: E402
from repro.stochastic.pmf import (  # noqa: E402
    FFT_MIN_OPS,
    FFT_MIN_TAPS,
    PMF,
    PMFStack,
    convolve_probs,
)

PMF_JSON = Path(__file__).resolve().parent / "BENCH_pmf.json"


def test_fig2_convolution(benchmark, capsys):
    """The paper's Fig. 2: 3-bin PET ⊛ 3-bin PCT."""
    pet = PMF.from_dict({1: 0.125, 2: 0.75, 3: 0.125})
    pct_last = PMF.from_dict({4: 0.17, 5: 0.33, 6: 0.50})
    result = benchmark(lambda: pet.convolve(pct_last))
    with capsys.disabled():
        print("\nFig. 2 PCT:", {int(t): round(float(p), 2) for t, p in zip(result.times(), result.probs)})
    assert result.total_mass == pytest.approx(1.0)


def test_realistic_pet_convolution(benchmark):
    """One Eq. 1 step with paper-recipe PET cells (~50–150 bin supports)."""
    pet = generate_pet_matrix(seed=3, mean_range=(10.0, 30.0))
    a = pet.pmf(0, 0)
    b = pet.pmf(1, 0)
    out = benchmark(lambda: a.convolve(b))
    assert out.total_mass == pytest.approx(1.0)


def test_pct_chain_depth_8(benchmark):
    """Full PCT chain over an 8-deep machine queue (worst case for the
    drop scan without memoization)."""
    pet = generate_pet_matrix(seed=3, mean_range=(10.0, 30.0))
    cells = [pet.pmf(t % pet.num_task_types, 0) for t in range(8)]

    def chain():
        acc = PMF.delta(0.0)
        for cell in cells:
            acc = acc.convolve(cell)
        return acc

    out = benchmark(chain)
    assert out.total_mass == pytest.approx(1.0)


def test_cdf_query(benchmark):
    pet = generate_pet_matrix(seed=3)
    cell = pet.pmf(0, 0)
    chained = cell
    for _ in range(4):
        chained = chained.convolve(cell)
    val = benchmark(lambda: chained.cdf_at(40.0))
    assert 0.0 <= val <= 1.0


def test_histogram_construction(benchmark):
    """PET-cell construction: histogram of 500 gamma samples (§V-B)."""
    rng = np.random.default_rng(5)
    samples = rng.gamma(6.0, 3.0, size=500)
    out = benchmark(lambda: PMF.from_samples(samples, min_value=1.0))
    assert out.total_mass == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Tensor-core tracking: BENCH_pmf.json
# ----------------------------------------------------------------------
#: Support sizes for the scaling curve — straddles the auto crossover
#: (FFT needs both operands >= FFT_MIN_TAPS *and* the multiply-add count
#: >= FFT_MIN_OPS, i.e. n >= 1024 for equal-length operands).
CURVE_SIZES = (64, 256, 512, 1024, 2048)

#: Row count of the stacked-vs-looped batch_cdf_at comparison (a
#: campaign-sized chance-of-success sweep over one cluster snapshot).
STACK_ROWS = 512

_REPS = 7


def _best_of(fn, reps=_REPS):
    fn()  # untimed warmup
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_pmf_bench(json_path=PMF_JSON):
    """Measure the tensor core; return (and optionally write) the payload.

    Everything asserted here is hardware-independent except the two
    wall-clock speedups, which compare two measurements from the *same*
    run — the runner's absolute speed cancels out.
    """
    rng = np.random.default_rng(13)

    curve = []
    for n in CURVE_SIZES:
        a = rng.random(n)
        a /= a.sum()
        b = rng.random(n)
        b /= b.sum()
        direct_s = _best_of(lambda: convolve_probs(a, b, method="direct"))
        fft_s = _best_of(lambda: convolve_probs(a, b, method="fft"))
        auto_is_fft = n >= FFT_MIN_TAPS and n * n >= FFT_MIN_OPS
        max_abs_err = float(
            np.abs(
                convolve_probs(a, b, method="fft")
                - convolve_probs(a, b, method="direct")
            ).max()
        )
        curve.append(
            {
                "n": n,
                "direct_s": direct_s,
                "fft_s": fft_s,
                "speedup_fft_over_direct": direct_s / fft_s if fft_s > 0 else None,
                "auto_method": "fft" if auto_is_fft else "direct",
                "max_abs_err": max_abs_err,
            }
        )

    # Stacked vs looped CDF queries on realistic PET-chain supports.
    pet = generate_pet_matrix(seed=3, mean_range=(10.0, 30.0))
    base = [pet.pmf(i % pet.num_task_types, i % pet.num_machine_types) for i in range(8)]
    rows = []
    for i in range(STACK_ROWS):
        p = base[i % len(base)].convolve(base[(i + 3) % len(base)])
        rows.append(p.shift(float(i % 17)))
    times = rng.uniform(20.0, 90.0, size=STACK_ROWS)
    stack = PMFStack.from_pmfs(rows)

    looped_s = _best_of(
        lambda: np.array([p.cdf_at(float(t)) for p, t in zip(rows, times)])
    )
    stack.batch_cdf_at(times)  # populate the cached cumsum table once…
    stacked_s = _best_of(lambda: stack.batch_cdf_at(times))
    # …then verify against a cold stack so cache state is not the story.
    cold = PMFStack.from_pmfs(rows).batch_cdf_at(times)
    looped_vals = np.array([p.cdf_at(float(t)) for p, t in zip(rows, times)])
    values_identical = bool(np.allclose(cold, looped_vals, rtol=0.0, atol=1e-12))

    largest = curve[-1]
    payload = {
        "benchmark": "pmf-tensor-core",
        "crossover": {"fft_min_taps": FFT_MIN_TAPS, "fft_min_ops": FFT_MIN_OPS},
        "convolution_scaling": curve,
        "fft_speedup_at_largest": largest["speedup_fft_over_direct"],
        "batch_cdf": {
            "rows": STACK_ROWS,
            "looped_s": looped_s,
            "stacked_s": stacked_s,
            "speedup_stacked_over_looped": (
                looped_s / stacked_s if stacked_s > 0 else None
            ),
            "values_identical": values_identical,
        },
    }
    if json_path is not None:
        Path(json_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_pmf_gates(payload: dict) -> None:
    """Acceptance flags (shared by the pytest entry and ``__main__``)."""
    assert payload["batch_cdf"]["values_identical"], (
        "stacked batch_cdf_at diverged from looped scalar cdf_at"
    )
    for point in payload["convolution_scaling"]:
        expected = (
            "fft"
            if point["n"] >= FFT_MIN_TAPS and point["n"] ** 2 >= FFT_MIN_OPS
            else "direct"
        )
        assert point["auto_method"] == expected, (
            f"auto crossover misclassified n={point['n']}"
        )
        assert point["max_abs_err"] < 1e-12, (
            f"FFT convolution error {point['max_abs_err']:.2e} at n={point['n']}"
        )
    import os

    if os.environ.get("BENCH_PMF_STRICT", "1") != "0":
        fft_speedup = payload["fft_speedup_at_largest"]
        assert fft_speedup >= 1.0, (
            f"FFT lost to direct at n={CURVE_SIZES[-1]}: {fft_speedup:.2f}x"
        )
        batch_speedup = payload["batch_cdf"]["speedup_stacked_over_looped"]
        assert batch_speedup >= 1.0, (
            f"stacked batch_cdf_at lost to the scalar loop: {batch_speedup:.2f}x"
        )


def test_pmf_tensor_core(benchmark, capsys):
    """Direct-vs-FFT scaling curve + stacked-vs-looped CDF queries."""
    payload = benchmark.pedantic(run_pmf_bench, rounds=1, iterations=1)
    check_pmf_gates(payload)
    largest = payload["convolution_scaling"][-1]
    batch = payload["batch_cdf"]
    with capsys.disabled():
        print(
            f"\npmf tensor core: FFT {payload['fft_speedup_at_largest']:.1f}x direct "
            f"at n={largest['n']} | batch_cdf_at {batch['speedup_stacked_over_looped']:.1f}x "
            f"the scalar loop over {batch['rows']} rows (JSON: {PMF_JSON.name})"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=PMF_JSON, help="artifact path")
    args = parser.parse_args(argv)
    payload = run_pmf_bench(json_path=args.json)
    check_pmf_gates(payload)
    largest = payload["convolution_scaling"][-1]
    batch = payload["batch_cdf"]
    print(
        f"pmf tensor core: FFT {payload['fft_speedup_at_largest']:.2f}x direct at "
        f"n={largest['n']} | batch_cdf_at "
        f"{batch['speedup_stacked_over_looped']:.2f}x the scalar loop "
        f"({batch['rows']} rows) | gates OK"
    )
    print(f"[written: {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

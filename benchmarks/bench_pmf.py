"""Microbenchmarks of the probabilistic substrate (Fig. 2 / Eq. 1).

The paper notes (§V-A) that completion-time estimation "involves multiple
convolutions which impose calculation overhead"; these benches quantify
that overhead for the exact Fig. 2 example, for realistic PET supports,
and for a full machine-queue PCT chain.
"""

import numpy as np
import pytest

from repro.stochastic.pet import generate_pet_matrix
from repro.stochastic.pmf import PMF


def test_fig2_convolution(benchmark, capsys):
    """The paper's Fig. 2: 3-bin PET ⊛ 3-bin PCT."""
    pet = PMF.from_dict({1: 0.125, 2: 0.75, 3: 0.125})
    pct_last = PMF.from_dict({4: 0.17, 5: 0.33, 6: 0.50})
    result = benchmark(lambda: pet.convolve(pct_last))
    with capsys.disabled():
        print("\nFig. 2 PCT:", {int(t): round(float(p), 2) for t, p in zip(result.times(), result.probs)})
    assert result.total_mass == pytest.approx(1.0)


def test_realistic_pet_convolution(benchmark):
    """One Eq. 1 step with paper-recipe PET cells (~50–150 bin supports)."""
    pet = generate_pet_matrix(seed=3, mean_range=(10.0, 30.0))
    a = pet.pmf(0, 0)
    b = pet.pmf(1, 0)
    out = benchmark(lambda: a.convolve(b))
    assert out.total_mass == pytest.approx(1.0)


def test_pct_chain_depth_8(benchmark):
    """Full PCT chain over an 8-deep machine queue (worst case for the
    drop scan without memoization)."""
    pet = generate_pet_matrix(seed=3, mean_range=(10.0, 30.0))
    cells = [pet.pmf(t % pet.num_task_types, 0) for t in range(8)]

    def chain():
        acc = PMF.delta(0.0)
        for cell in cells:
            acc = acc.convolve(cell)
        return acc

    out = benchmark(chain)
    assert out.total_mass == pytest.approx(1.0)


def test_cdf_query(benchmark):
    pet = generate_pet_matrix(seed=3)
    cell = pet.pmf(0, 0)
    chained = cell
    for _ in range(4):
        chained = chained.convolve(cell)
    val = benchmark(lambda: chained.cdf_at(40.0))
    assert 0.0 <= val <= 1.0


def test_histogram_construction(benchmark):
    """PET-cell construction: histogram of 500 gamma samples (§V-B)."""
    rng = np.random.default_rng(5)
    samples = rng.gamma(6.0, 3.0, size=500)
    out = benchmark(lambda: PMF.from_samples(samples, min_value=1.0))
    assert out.total_mass == pytest.approx(1.0)

"""Ablation: prune-at-arrival (admission control) vs the paper's
prune-at-mapping (defer + drop).

Same 50 % chance threshold, same workloads.  Deferring should win: a
rejected task is gone forever, a deferred one can still be mapped when a
better machine frees up (§IV-B's argument for deferment).
"""

import numpy as np

from repro.core.config import PruningConfig
from repro.experiments.runner import pet_matrix
from repro.system.admission import AdmissionController
from repro.system.serverless import ServerlessSystem
from repro.workload import WorkloadSpec, generate_workload

SPEC = WorkloadSpec(num_tasks=450, time_span=250.0)


def _tasks(trial=0):
    return generate_workload(SPEC, pet_matrix(), np.random.default_rng(300 + trial))


def test_pruning_mechanism(benchmark, show):
    def run():
        sys = ServerlessSystem(pet_matrix(), "MM", pruning=PruningConfig.paper_default(), seed=1)
        sys.run(_tasks())
        return sys

    sys = benchmark.pedantic(run, rounds=1, iterations=1)
    res = sys.result()
    show(f"pruning mechanism (defer+drop): {res.robustness_pct:5.1f}% on time")
    assert res.total > 0


def test_admission_control(benchmark, show):
    def run():
        sys = ServerlessSystem(pet_matrix(), "MM", seed=1)
        ac = AdmissionController(sys, threshold=0.5)
        ac.run(_tasks())
        return sys, ac

    sys, ac = benchmark.pedantic(run, rounds=1, iterations=1)
    res = sys.result()
    show(
        f"admission control (reject<50%): {res.robustness_pct:5.1f}% on time "
        f"({ac.stats.rejected} rejected at the gate)"
    )
    assert res.total > 0


def test_deferring_beats_rejection(show):
    """Paired-trial comparison with significance (not a timing bench)."""
    from repro.metrics import compare_paired
    from repro.workload.generator import trimmed_slice

    base, var = [], []
    for trial in range(4):
        sys_a = ServerlessSystem(pet_matrix(), "MM", seed=trial)
        ac = AdmissionController(sys_a, threshold=0.5)
        ac.run(_tasks(trial))
        base.append(sys_a.result(trimmed_slice(sys_a.tasks, SPEC.trim_count)))

        sys_b = ServerlessSystem(
            pet_matrix(), "MM", pruning=PruningConfig.paper_default(), seed=trial
        )
        sys_b.run(_tasks(trial))
        var.append(sys_b.result(trimmed_slice(sys_b.tasks, SPEC.trim_count)))
    cmp = compare_paired(base, var)
    show(f"pruning vs admission control: {cmp}")
    assert cmp.mean_delta_pp >= 0

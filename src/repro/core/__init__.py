"""The paper's contribution: probabilistic task pruning (§IV)."""

from .accounting import Accounting, TypeCounters
from .config import ControllerConfig, PruningConfig, ToggleMode
from .fairness import FairnessTracker
from .pruner import DropDecision, Pruner
from .toggle import AlwaysDrop, NeverDrop, ReactiveToggle, Toggle, make_toggle

__all__ = [
    "PruningConfig",
    "ControllerConfig",
    "ToggleMode",
    "Accounting",
    "TypeCounters",
    "FairnessTracker",
    "Pruner",
    "DropDecision",
    "Toggle",
    "NeverDrop",
    "AlwaysDrop",
    "ReactiveToggle",
    "make_toggle",
]

"""Fairness module (§IV-D): sufferage scores per task type.

Pruning purely by chance of success is biased toward task types with short
execution times.  The Fairness module tracks a *sufferage score* γ_k per
task type k:

* each on-time completion of type k: ``γ_k -= c``
* each (proactive) drop of type k:   ``γ_k += c``

where ``c`` is the *fairness factor*.  γ_k then offsets the pruning
threshold for that type: a task of type k is pruned only when its chance
of success ≤ ``β - γ_k`` (Fig. 5 steps 6 and 10) — types that suffered
many drops get a lower effective bar and survive longer.

Sufferage is floored at zero: on-time completions repay accumulated
suffering but never push γ_k negative.  (A negative score would *raise*
the effective threshold of frequently-succeeding types without bound,
eventually pruning every task of a type that is doing well — the opposite
of the module's purpose.)  The ceiling defaults to 1.0 so a maximally
suffered type has effective threshold 0, i.e. is never pruned.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["FairnessTracker"]


class FairnessTracker:
    """Sufferage scores γ_k and effective-threshold computation."""

    def __init__(
        self,
        fairness_factor: float = 0.05,
        *,
        enabled: bool = True,
        clamp: float = 1.0,
    ) -> None:
        if fairness_factor < 0:
            raise ValueError("fairness_factor must be >= 0")
        if clamp <= 0:
            raise ValueError("clamp must be positive")
        self.c = float(fairness_factor)
        self.enabled = enabled
        self.clamp = float(clamp)
        self._scores: defaultdict[int, float] = defaultdict(float)
        #: Bumped on every score mutation.  An unchanged epoch proves the
        #: whole γ table — hence every effective threshold — is unchanged,
        #: which is what lets the Pruner's drop scan skip machines whose
        #: chance arrays the estimator also proved unchanged.
        self.epoch = 0

    # ------------------------------------------------------------------
    def score(self, task_type: int) -> float:
        """Current sufferage score γ_k (0 when fairness is disabled)."""
        if not self.enabled:
            return 0.0
        return self._scores[task_type]

    def scores(self) -> dict[int, float]:
        return dict(self._scores)

    def effective_threshold(self, base_threshold: float, task_type: int) -> float:
        """``β - γ_k`` clamped to [0, 1] (Fig. 5 steps 6/10)."""
        eff = base_threshold - self.score(task_type)
        return min(max(eff, 0.0), 1.0)

    # ------------------------------------------------------------------
    def note_on_time_completion(self, task_type: int) -> None:
        """Fig. 5 step 2: γ_k ← γ_k − c (floored at zero)."""
        if not self.enabled:
            return
        self.epoch += 1
        self._scores[task_type] = max(self._scores[task_type] - self.c, 0.0)

    def note_drop(self, task_type: int) -> None:
        """Fig. 5 step 6 side effect: γ_k ← γ_k + c."""
        if not self.enabled:
            return
        self.epoch += 1
        self._scores[task_type] = min(self._scores[task_type] + self.c, self.clamp)

    def reset(self) -> None:
        self.epoch += 1
        self._scores.clear()

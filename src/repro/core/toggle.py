"""Toggle module (§IV-C): decides when dropping is engaged.

"The current implementation of Toggle checks the number of tasks missing
their deadlines since the previous mapping event and identifies the system
as oversubscribed if the number is beyond a configurable Dropping Toggle."

Three policies cover the paper's Fig. 7 scenarios:

* :class:`NeverDrop` — "no Toggle, no dropping";
* :class:`AlwaysDrop` — "no Toggle, always dropping";
* :class:`ReactiveToggle` — dropping engaged when misses since the last
  mapping event exceed α (α = 0 ⇒ at least one miss).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from .accounting import Accounting
from .config import PruningConfig, ToggleMode

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..control.signals import Setpoints

__all__ = ["Toggle", "NeverDrop", "AlwaysDrop", "ReactiveToggle", "make_toggle"]


class Toggle(abc.ABC):
    """Oversubscription detector driving the dropping decision."""

    @abc.abstractmethod
    def dropping_engaged(self, accounting: Accounting) -> bool:
        """Whether proactive dropping should run at this mapping event."""


class NeverDrop(Toggle):
    """Dropping permanently disengaged."""

    def dropping_engaged(self, accounting: Accounting) -> bool:
        return False


class AlwaysDrop(Toggle):
    """Dropping engaged at every mapping event, oversubscribed or not."""

    def dropping_engaged(self, accounting: Accounting) -> bool:
        return True


class ReactiveToggle(Toggle):
    """Engage dropping when misses since the last event exceed α.

    α is read through the live :class:`~repro.control.signals.Setpoints`
    when one is bound (the control plane's actuation point); a bare
    ``ReactiveToggle(alpha=n)`` keeps the paper's frozen constant.
    """

    def __init__(self, alpha: int = 0, *, setpoints: Setpoints | None = None) -> None:
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self._alpha = alpha
        self._setpoints = setpoints

    @property
    def alpha(self) -> int:
        """The live α (the frozen constant when no setpoints are bound)."""
        if self._setpoints is not None:
            return self._setpoints.alpha
        return self._alpha

    def dropping_engaged(self, accounting: Accounting) -> bool:
        return accounting.misses_since_last_event > self.alpha

    def __repr__(self) -> str:  # pragma: no cover
        return f"ReactiveToggle(alpha={self.alpha})"


def make_toggle(
    config: PruningConfig, setpoints: Setpoints | None = None
) -> Toggle:
    """Build the Toggle implied by a :class:`PruningConfig`.

    ``setpoints`` binds the reactive Toggle's α to the control plane's
    live value; without it (or for never/always policies, which have no
    α) the config constant applies.
    """
    if not config.enable_dropping or config.toggle_mode is ToggleMode.NEVER:
        return NeverDrop()
    if config.toggle_mode is ToggleMode.ALWAYS:
        return AlwaysDrop()
    return ReactiveToggle(alpha=config.dropping_toggle, setpoints=setpoints)

"""Accounting module (Fig. 4): gathers task meta-data for Toggle/Fairness.

The Accounting module observes the resource-allocation system and keeps
two horizons of bookkeeping:

* *per-mapping-event* counters — deadline misses and on-time completions
  since the previous mapping event; the Toggle reads misses, the Fairness
  module consumes completions (Fig. 5 step 2);
* *cumulative* counters per task type — totals over the whole run, used
  by metrics and the fairness analysis example.

A "deadline miss" is either a reactive drop (deadline already passed) or
a completion after the deadline; both signal oversubscription.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..sim.task import Task, TaskStatus

__all__ = ["Accounting", "TypeCounters"]


@dataclass
class TypeCounters:
    """Cumulative per-task-type tallies."""

    arrived: int = 0
    completed_on_time: int = 0
    completed_late: int = 0
    dropped_missed: int = 0
    dropped_proactive: int = 0
    deferred: int = 0  #: defer decisions (a task may be deferred many times)
    requeued: int = 0  #: churn evictions readmitted (failures/drains)
    #: Subset of ``dropped_proactive``: drops cascaded from a dropped
    #: ancestor in a DAG workload (always 0 for independent tasks).
    dropped_cascade: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_missed + self.dropped_proactive

    @property
    def finished(self) -> int:
        return self.completed_on_time + self.completed_late + self.dropped


class Accounting:
    """Event-horizon and cumulative task statistics."""

    def __init__(self) -> None:
        self.per_type: dict[int, TypeCounters] = {}
        # Since-last-mapping-event buffers (flushed by the pruner).
        self._event_on_time: list[Task] = []
        self._event_misses: int = 0
        # Cumulative totals.
        self.total_arrived = 0
        self.total_on_time = 0
        self.total_late = 0
        self.total_dropped_missed = 0
        self.total_dropped_proactive = 0
        self.total_defers = 0
        self.total_requeues = 0
        self.total_dropped_cascade = 0

    def _type(self, task: Task) -> TypeCounters:
        c = self.per_type.get(task.task_type)
        if c is None:
            c = self.per_type[task.task_type] = TypeCounters()
        return c

    # ------------------------------------------------------------------
    # Observation hooks, called by the allocator as things happen.
    # ------------------------------------------------------------------
    def record_arrival(self, task: Task) -> None:
        self._type(task).arrived += 1
        self.total_arrived += 1

    def record_completion(self, task: Task) -> None:
        if task.status is TaskStatus.COMPLETED_ON_TIME:
            self._type(task).completed_on_time += 1
            self.total_on_time += 1
            self._event_on_time.append(task)
        elif task.status is TaskStatus.COMPLETED_LATE:
            self._type(task).completed_late += 1
            self.total_late += 1
            self._event_misses += 1
        else:
            raise ValueError(f"record_completion on status {task.status}")

    def record_drop(self, task: Task) -> None:
        if task.status is TaskStatus.DROPPED_MISSED:
            self._type(task).dropped_missed += 1
            self.total_dropped_missed += 1
            self._event_misses += 1
        elif task.status is TaskStatus.DROPPED_PROACTIVE:
            self._type(task).dropped_proactive += 1
            self.total_dropped_proactive += 1
        else:
            raise ValueError(f"record_drop on status {task.status}")

    def record_cascade(self, task: Task) -> None:
        """The drop just recorded for this task was cascaded from a
        dropped ancestor (call *after* :meth:`record_drop`) — a
        sub-tally that lets reports separate the pruner's own decisions
        from their downstream subgraph cost."""
        if task.status is not TaskStatus.DROPPED_PROACTIVE:
            raise ValueError(f"record_cascade on status {task.status}")
        self._type(task).dropped_cascade += 1
        self.total_dropped_cascade += 1

    def record_defer(self, task: Task) -> None:
        self._type(task).deferred += 1
        self.total_defers += 1

    def record_requeue(self, task: Task) -> None:
        """A machine failure/drain evicted the task and it re-entered
        admission (not a miss: the task is still live)."""
        self._type(task).requeued += 1
        self.total_requeues += 1

    # ------------------------------------------------------------------
    # Mapping-event horizon (consumed by Toggle and Fairness).
    # ------------------------------------------------------------------
    @property
    def misses_since_last_event(self) -> int:
        """Deadline misses (reactive drops + late completions) since the
        previous mapping event — the Toggle's oversubscription signal."""
        return self._event_misses

    def on_time_since_last_event(self) -> list[Task]:
        """Tasks completed on time since the previous mapping event
        (Fig. 5 step 2 input)."""
        return list(self._event_on_time)

    def flush_event(self) -> None:
        """Reset the since-last-event buffers (end of Fig. 5 procedure)."""
        self._event_on_time.clear()
        self._event_misses = 0

    # ------------------------------------------------------------------
    def type_histogram(self) -> Counter:
        """On-time completions per task type (fairness analysis)."""
        return Counter({k: v.completed_on_time for k, v in self.per_type.items()})

    def drop_histogram(self) -> Counter:
        return Counter({k: v.dropped for k, v in self.per_type.items()})

"""Runtime dependency semantics for DAG workloads.

The paper's allocator (§III) maps every arriving task immediately or
from the batch queue; with workflow edges a task must instead wait
until every parent completes.  :class:`DependencyTracker` is the
runtime side of that model, shared by both allocator modes:

* **Gating** — an arrived task whose parents are incomplete is *held*
  here (outside every mapping queue) and released into the allocator
  the moment its last parent completes.
* **Cascade drops** — dropping a task dooms its entire transitive
  dependent subgraph: held dependents are dropped on the spot,
  not-yet-arrived ones are marked doomed and dropped on arrival.  The
  invariant that makes this sound: a task is only ever mapped after all
  parents completed, so cascade victims are provably unmapped and no
  machine queue needs fixing up.
* **Chance propagation** — the estimator multiplies a held task's
  chance of success by :meth:`chance_factor`, the min-propagated
  (critical-path) chance of its ancestors: completed parents contribute
  1, dropped/doomed ones 0, and in-flight ones their most recent
  Eq. 2 estimate (recorded via :meth:`note_estimate`).  The pruner's
  gate scan uses the product to drop doomed subgraphs early.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..sim.task import Task
from ..workload.dag import count_edges, task_depths, validate_deps

__all__ = ["DependencyTracker"]


class DependencyTracker:
    """Dependency state for one simulation run (one DAG workload)."""

    def __init__(self, tasks: Sequence[Task]) -> None:
        self.deps: dict[int, tuple[int, ...]] = {
            t.task_id: t.deps for t in tasks
        }
        validate_deps(self.deps, source="dag workload")
        #: Longest-path depth per task (roots 0) — drives per-depth
        #: outcome reporting.
        self.depth: dict[int, int] = task_depths(self.deps)
        self.num_edges: int = count_edges(self.deps)
        self.max_depth: int = max(self.depth.values(), default=0)
        # parent id -> child ids, in submission order (deterministic).
        self._children: dict[int, list[int]] = {}
        for t in tasks:
            for p in t.deps:
                self._children.setdefault(p, []).append(t.task_id)
        self._completed: set[int] = set()
        self._dead: set[int] = set()      # dropped or doomed ancestors
        self._held: dict[int, Task] = {}  # arrived, waiting on parents
        self._estimates: dict[int, float] = {}
        self.released_count: int = 0
        self.held_peak: int = 0

    # -- gating --------------------------------------------------------
    def ready(self, task: Task) -> bool:
        """All parents completed (vacuously true for root tasks)."""
        return all(p in self._completed for p in task.deps)

    def is_doomed(self, task: Task) -> bool:
        """Some ancestor was dropped — this task can never be released."""
        return task.task_id in self._dead

    def hold(self, task: Task) -> None:
        self._held[task.task_id] = task
        self.held_peak = max(self.held_peak, len(self._held))

    def held_tasks(self) -> list[Task]:
        """Arrived-but-unreleased tasks, in submission order."""
        return list(self._held.values())

    def drop_held(self, task: Task) -> None:
        """A held task was dropped directly (gate scan / deadline miss)."""
        self._held.pop(task.task_id, None)
        self._dead.add(task.task_id)

    def held_deadline_missed(self, now: float) -> list[Task]:
        """Pop held tasks whose hard deadline has passed."""
        missed = [t for t in self._held.values() if now > t.deadline]
        for t in missed:
            self.drop_held(t)
        return missed

    # -- release -------------------------------------------------------
    def note_completed(self, task: Task) -> list[Task]:
        """Record a completion; returns newly released held tasks."""
        self._completed.add(task.task_id)
        released = []
        for child_id in self._children.get(task.task_id, ()):
            child = self._held.get(child_id)
            if child is not None and self.ready(child):
                del self._held[child_id]
                released.append(child)
        self.released_count += len(released)
        return released

    # -- cascade -------------------------------------------------------
    def cascade(self, task: Task) -> list[Task]:
        """Doom every transitive dependent of a dropped task.

        Returns the held (arrived, unreleased, non-terminal) victims in
        deterministic BFS order for the caller to drop; dependents that
        have not arrived yet are merely marked and will be dropped at
        submission.  Victims are never mapped (see module docstring),
        so no machine or batch queue contains them.
        """
        self._dead.add(task.task_id)
        victims: list[Task] = []
        frontier = list(self._children.get(task.task_id, ()))
        while frontier:
            child_id = frontier.pop(0)
            if child_id in self._dead:
                continue
            self._dead.add(child_id)
            frontier.extend(self._children.get(child_id, ()))
            held = self._held.pop(child_id, None)
            if held is not None and not held.is_terminal:
                victims.append(held)
        return victims

    # -- chance propagation --------------------------------------------
    def has_dependents(self, task_id: int) -> bool:
        return task_id in self._children

    def note_estimate(self, task_id: int, chance: float) -> None:
        """Record a task's own Eq. 2 estimate for its dependents' factors.

        Only parents matter — estimates of leaf tasks are discarded so
        the map stays small on wide DAGs.
        """
        if task_id in self._children:
            self._estimates[task_id] = chance

    def chance_factor(self, task: Task) -> float:
        """Multiplicative critical-path factor for a task's chance.

        ``min`` over parents of the propagated chance: 1 for completed
        parents, 0 for dropped/doomed ones, and the parent's own latest
        estimate times *its* factor otherwise (unknown estimates default
        to 1 — optimism never drops a subgraph spuriously).
        """
        if not task.deps:
            return 1.0
        memo: dict[int, float] = {}

        def prop(tid: int) -> float:
            cached = memo.get(tid)
            if cached is not None:
                return cached
            if tid in self._completed:
                value = 1.0
            elif tid in self._dead:
                value = 0.0
            else:
                value = self._estimates.get(tid, 1.0)
                parents = self.deps.get(tid, ())
                if parents:
                    value *= min(prop(p) for p in parents)
            memo[tid] = value
            return value

        return min(prop(p) for p in task.deps)

    # -- reporting -----------------------------------------------------
    def depth_outcomes(self, tasks: Iterable[Task]) -> dict[str, dict]:
        """Per-depth outcome counts over an evaluation universe."""
        from ..sim.task import TaskStatus

        buckets: dict[int, dict[str, int]] = {}
        for task in tasks:
            d = self.depth.get(task.task_id, 0)
            b = buckets.setdefault(
                d,
                {
                    "total": 0,
                    "on_time": 0,
                    "late": 0,
                    "dropped_missed": 0,
                    "dropped_proactive": 0,
                    "unfinished": 0,
                },
            )
            b["total"] += 1
            if task.status is TaskStatus.COMPLETED_ON_TIME:
                b["on_time"] += 1
            elif task.status is TaskStatus.COMPLETED_LATE:
                b["late"] += 1
            elif task.status is TaskStatus.DROPPED_MISSED:
                b["dropped_missed"] += 1
            elif task.status is TaskStatus.DROPPED_PROACTIVE:
                b["dropped_proactive"] += 1
            else:
                b["unfinished"] += 1
        return {str(d): buckets[d] for d in sorted(buckets)}

    def stats(self, tasks: Iterable[Task], cascade_drops: int) -> dict:
        """Telemetry payload for ``SimulationResult.dag_stats``."""
        return {
            "edges": self.num_edges,
            "max_depth": self.max_depth,
            "released": self.released_count,
            "held_peak": self.held_peak,
            "cascade_drops": cascade_drops,
            "depths": self.depth_outcomes(tasks),
        }

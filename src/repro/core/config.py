"""Pruning Configuration (Fig. 4, left input).

The service provider tunes the pruning mechanism through this object:

* ``pruning_threshold`` (β) — minimum chance of success a task needs to be
  mapped (deferring) or to stay in a machine queue once dropping is
  engaged.  The paper's default, established by Fig. 8, is 50 %.
* ``dropping_toggle`` (α) — how many deadline misses since the previous
  mapping event flip the Toggle into dropping mode (reactive Toggle uses
  α = 0, i.e. "at least one missed task").
* ``fairness_factor`` (c) — per-event sufferage-score step (§IV-D);
  default 0.05 per §V-A.
* ``controller`` — optional :class:`ControllerConfig` attaching a runtime
  control plane (:mod:`repro.control`) that adapts β/α to observed load;
  ``None`` (the default) keeps the paper's static setpoints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["PruningConfig", "ToggleMode", "ControllerConfig", "CONTROLLER_KINDS"]

#: Registered controller kinds (the :mod:`repro.control` registry keys).
CONTROLLER_KINDS = ("static", "schedule", "hysteresis", "target-success", "bandit")


@dataclass(frozen=True)
class ControllerConfig:
    """Declarative spec of one β/α feedback controller (:mod:`repro.control`).

    One flat record covers every registered kind — only the fields the
    chosen ``kind`` reads matter; the rest keep their defaults.  Keeping
    the config a plain frozen dataclass (no callables, no live state)
    is what makes controller setpoints a pure function of config +
    observed simulation state: campaign cache keys stay sound and
    parallel sweeps stay bit-identical to serial ones.

    Fields by kind
    --------------
    ``static``
        No knobs — β/α frozen at the :class:`PruningConfig` values
        (bit-identical to running without a controller, but with
        controller/fairness telemetry collected).
    ``schedule``
        ``schedule`` — piecewise-constant β(t) as ``((t, β), ...)``
        breakpoints, and optionally ``alpha_schedule`` as
        ``((t, α), ...)``.  Before the first breakpoint the
        :class:`PruningConfig` values apply.
    ``hysteresis``
        Step β between ``beta_min``/``beta_max`` by ``step`` when the
        EWMA deadline-miss rate leaves the ``low``..``high`` dead-band,
        with ``cooldown`` quiet ticks between moves and EWMA gain
        ``2 / (window + 1)``.  ``adapt_alpha`` additionally drops α to 0
        while the miss rate is above the band.
    ``target-success``
        Successive-approximation search driving the windowed on-time
        rate toward ``target``: every ``settle`` ticks the observed rate
        halves the bracket [``beta_min``, ``beta_max``] around β.
    ``bandit``
        Contextual ε-greedy/UCB over a discretized (β, α) arm grid:
        every ``window`` ticks the windowed on-time rate rewards the
        pulled arm, the (miss-rate band × queue-depth band) context is
        re-classified against ``miss_bands``/``queue_bands``, and the
        next arm is drawn from ``betas`` × ``alphas`` (α falls back to
        the :class:`PruningConfig` Toggle when ``alphas`` is empty).
        ``ucb_c > 0`` selects deterministic UCB1; otherwise exploration
        is ε-greedy at rate ``epsilon``, drawn from the dedicated
        ``tuning`` named stream of :mod:`repro.sim.rng` rooted at
        ``seed`` — so the policy stays a pure function of (config,
        observed snapshots).
    """

    kind: str = "static"
    # -- schedule ------------------------------------------------------
    schedule: tuple = ()
    alpha_schedule: tuple = ()
    # -- hysteresis ----------------------------------------------------
    low: float = 0.05
    high: float = 0.25
    step: float = 0.1
    cooldown: int = 8
    window: int = 8
    adapt_alpha: bool = False
    # -- shared bounds / target-success --------------------------------
    beta_min: float = 0.05
    beta_max: float = 0.95
    target: float = 0.5
    settle: int = 16
    # -- bandit --------------------------------------------------------
    betas: tuple = ()
    alphas: tuple = ()
    epsilon: float = 0.1
    ucb_c: float = 0.0
    seed: int = 0
    miss_bands: tuple = (0.05, 0.25)
    queue_bands: tuple = (4, 16)

    def __post_init__(self) -> None:
        if self.kind not in CONTROLLER_KINDS:
            raise ValueError(
                f"unknown controller kind {self.kind!r}; choose from {CONTROLLER_KINDS}"
            )
        for name in ("schedule", "alpha_schedule"):
            points = tuple(
                (float(t), float(v)) for t, v in getattr(self, name)
            )
            if any(t < 0.0 for t, _ in points):
                raise ValueError(f"{name} breakpoint times must be >= 0")
            if list(points) != sorted(points, key=lambda p: p[0]):
                raise ValueError(f"{name} breakpoints must be in ascending time order")
            object.__setattr__(self, name, points)
        if self.kind == "schedule" and not (self.schedule or self.alpha_schedule):
            raise ValueError("schedule controller needs at least one breakpoint")
        if not 0.0 <= self.beta_min <= self.beta_max <= 1.0:
            raise ValueError(
                f"need 0 <= beta_min <= beta_max <= 1, got "
                f"[{self.beta_min}, {self.beta_max}]"
            )
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise ValueError(f"need 0 <= low <= high <= 1, got [{self.low}, {self.high}]")
        if self.step <= 0.0:
            raise ValueError(f"step must be positive, got {self.step}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        for name in ("cooldown", "window", "settle"):
            value = getattr(self, name)
            # JSON producers emit 8 as 8.0; these count ticks, so coerce
            # integral floats and reject the rest.
            if isinstance(value, float):
                if not value.is_integer():
                    raise ValueError(f"{name} must be an integer, got {value!r}")
                object.__setattr__(self, name, int(value))
                value = int(value)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        self._init_bandit_fields()

    def _init_bandit_fields(self) -> None:
        """Coerce/validate the bandit-family fields (all kinds carry
        them, so canonicalization is unconditional — cache payloads
        round-trip through plain JSON lists)."""
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {self.epsilon}")
        if self.ucb_c < 0.0:
            raise ValueError(f"ucb_c must be >= 0, got {self.ucb_c}")
        seed = self.seed
        if isinstance(seed, float):
            if not seed.is_integer():
                raise ValueError(f"seed must be an integer, got {seed!r}")
            object.__setattr__(self, "seed", int(seed))
        elif not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(f"seed must be an integer, got {seed!r}")
        betas = tuple(float(b) for b in self.betas)
        if self.kind == "bandit" and not betas:
            betas = (0.25, 0.5, 0.75, 0.95)  # canonical default arm grid
        if any(not 0.0 <= b <= 1.0 for b in betas):
            raise ValueError(f"betas must lie in [0, 1], got {betas}")
        if list(betas) != sorted(set(betas)):
            raise ValueError(f"betas must be strictly ascending, got {betas}")
        object.__setattr__(self, "betas", betas)
        alphas = []
        for a in self.alphas:
            if isinstance(a, float):
                if not a.is_integer():
                    raise ValueError(f"alphas must be integers, got {a!r}")
                a = int(a)
            if a < 0:
                raise ValueError(f"alphas must be >= 0, got {a}")
            alphas.append(int(a))
        if alphas != sorted(set(alphas)):
            raise ValueError(f"alphas must be strictly ascending, got {tuple(alphas)}")
        object.__setattr__(self, "alphas", tuple(alphas))
        bands = tuple(float(b) for b in self.miss_bands)
        if not bands or any(not 0.0 <= b <= 1.0 for b in bands):
            raise ValueError(f"miss_bands must be non-empty rates in [0, 1], got {bands}")
        if list(bands) != sorted(set(bands)):
            raise ValueError(f"miss_bands must be strictly ascending, got {bands}")
        object.__setattr__(self, "miss_bands", bands)
        qbands = []
        for q in self.queue_bands:
            if isinstance(q, float):
                if not q.is_integer():
                    raise ValueError(f"queue_bands must be integers, got {q!r}")
                q = int(q)
            if q < 0:
                raise ValueError(f"queue_bands must be >= 0, got {q}")
            qbands.append(int(q))
        if not qbands or qbands != sorted(set(qbands)):
            raise ValueError(
                f"queue_bands must be non-empty and strictly ascending, got {tuple(qbands)}"
            )
        object.__setattr__(self, "queue_bands", tuple(qbands))

    def with_(self, **changes) -> ControllerConfig:
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)


class ToggleMode(enum.Enum):
    """How the Toggle module engages task dropping (§V-C scenarios)."""

    NEVER = "never"        #: "no Toggle, no dropping"
    ALWAYS = "always"      #: "no Toggle, always dropping"
    REACTIVE = "reactive"  #: "reactive Toggle" — dropping under oversubscription


@dataclass(frozen=True)
class PruningConfig:
    """Immutable pruning-mechanism settings (paper defaults, §V-A)."""

    pruning_threshold: float = 0.5
    dropping_toggle: int = 0
    fairness_factor: float = 0.05
    toggle_mode: ToggleMode = ToggleMode.REACTIVE
    #: Master switches so experiments can isolate deferring vs dropping.
    enable_deferring: bool = True
    enable_dropping: bool = True
    #: Disable the Fairness module entirely (sufferage scores frozen at 0).
    enable_fairness: bool = True
    #: Optional runtime control plane adapting β/α to observed load
    #: (``None`` → the paper's static setpoints, bit-identical pre-PR-5
    #: behavior and result payloads).
    controller: ControllerConfig | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.pruning_threshold <= 1.0:
            raise ValueError(
                f"pruning_threshold must be in [0, 1], got {self.pruning_threshold}"
            )
        if self.dropping_toggle < 0:
            raise ValueError(f"dropping_toggle must be >= 0, got {self.dropping_toggle}")
        if self.fairness_factor < 0:
            raise ValueError(f"fairness_factor must be >= 0, got {self.fairness_factor}")
        if isinstance(self.toggle_mode, str):
            object.__setattr__(self, "toggle_mode", ToggleMode(self.toggle_mode))
        if isinstance(self.controller, dict):
            # Round-tripping through dataclasses.asdict (the campaign
            # cache payload) flattens the nested config to a mapping.
            object.__setattr__(self, "controller", ControllerConfig(**self.controller))

    # Convenience presets -------------------------------------------------
    @classmethod
    def paper_default(cls) -> PruningConfig:
        """Threshold 50 %, fairness factor 0.05, reactive Toggle (§V-A)."""
        return cls()

    @classmethod
    def defer_only(cls, threshold: float = 0.5) -> PruningConfig:
        """Fig. 8 setting: deferring enabled, dropping never engaged."""
        return cls(
            pruning_threshold=threshold,
            toggle_mode=ToggleMode.NEVER,
            enable_dropping=False,
        )

    @classmethod
    def drop_only(cls, mode: ToggleMode = ToggleMode.REACTIVE) -> PruningConfig:
        """Fig. 7 setting: dropping per ``mode``, deferring disabled."""
        return cls(toggle_mode=mode, enable_deferring=False)

    def with_(self, **changes) -> PruningConfig:
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)

"""Pruning Configuration (Fig. 4, left input).

The service provider tunes the pruning mechanism through this object:

* ``pruning_threshold`` (β) — minimum chance of success a task needs to be
  mapped (deferring) or to stay in a machine queue once dropping is
  engaged.  The paper's default, established by Fig. 8, is 50 %.
* ``dropping_toggle`` (α) — how many deadline misses since the previous
  mapping event flip the Toggle into dropping mode (reactive Toggle uses
  α = 0, i.e. "at least one missed task").
* ``fairness_factor`` (c) — per-event sufferage-score step (§IV-D);
  default 0.05 per §V-A.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

__all__ = ["PruningConfig", "ToggleMode"]


class ToggleMode(enum.Enum):
    """How the Toggle module engages task dropping (§V-C scenarios)."""

    NEVER = "never"        #: "no Toggle, no dropping"
    ALWAYS = "always"      #: "no Toggle, always dropping"
    REACTIVE = "reactive"  #: "reactive Toggle" — dropping under oversubscription


@dataclass(frozen=True)
class PruningConfig:
    """Immutable pruning-mechanism settings (paper defaults, §V-A)."""

    pruning_threshold: float = 0.5
    dropping_toggle: int = 0
    fairness_factor: float = 0.05
    toggle_mode: ToggleMode = ToggleMode.REACTIVE
    #: Master switches so experiments can isolate deferring vs dropping.
    enable_deferring: bool = True
    enable_dropping: bool = True
    #: Disable the Fairness module entirely (sufferage scores frozen at 0).
    enable_fairness: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.pruning_threshold <= 1.0:
            raise ValueError(
                f"pruning_threshold must be in [0, 1], got {self.pruning_threshold}"
            )
        if self.dropping_toggle < 0:
            raise ValueError(f"dropping_toggle must be >= 0, got {self.dropping_toggle}")
        if self.fairness_factor < 0:
            raise ValueError(f"fairness_factor must be >= 0, got {self.fairness_factor}")
        if isinstance(self.toggle_mode, str):
            object.__setattr__(self, "toggle_mode", ToggleMode(self.toggle_mode))

    # Convenience presets -------------------------------------------------
    @classmethod
    def paper_default(cls) -> "PruningConfig":
        """Threshold 50 %, fairness factor 0.05, reactive Toggle (§V-A)."""
        return cls()

    @classmethod
    def defer_only(cls, threshold: float = 0.5) -> "PruningConfig":
        """Fig. 8 setting: deferring enabled, dropping never engaged."""
        return cls(
            pruning_threshold=threshold,
            toggle_mode=ToggleMode.NEVER,
            enable_dropping=False,
        )

    @classmethod
    def drop_only(cls, mode: ToggleMode = ToggleMode.REACTIVE) -> "PruningConfig":
        """Fig. 7 setting: dropping per ``mode``, deferring disabled."""
        return cls(toggle_mode=mode, enable_deferring=False)

    def with_(self, **changes) -> "PruningConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)

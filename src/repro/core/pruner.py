"""The Pruner (§IV, Fig. 4/5): probabilistic task dropping and deferring.

The Pruner is a *decision* component: it computes chances of success and
says which tasks to drop from machine queues (Fig. 5 steps 3–6) and which
freshly-mapped tasks to defer back to the batch queue (steps 9–10).  The
resource allocator (:mod:`repro.system.allocator`) *enacts* those
decisions — removing tasks from queues, flipping statuses, recording
metrics — so the Pruner stays pluggable into any allocation system, which
is the paper's headline design property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

# Only the dependency-free signals module is imported at module level:
# the registry imports the controllers, which import core.config — a
# cycle if resolved while ``repro.control`` itself is mid-import.
from ..control.signals import ControlSignals, Setpoints
from ..sim.cluster import Cluster
from ..sim.machine import Machine
from ..sim.task import Task
from .accounting import Accounting

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..system.completion import CompletionEstimator
from .config import PruningConfig
from .fairness import FairnessTracker
from .toggle import Toggle, make_toggle

__all__ = ["Pruner", "DropDecision"]


@dataclass(frozen=True)
class DropDecision:
    """One proactive drop chosen by the drop scan."""

    task: Task
    machine: Machine
    chance: float
    effective_threshold: float


class Pruner:
    """Probabilistic task pruning mechanism (Fig. 4).

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.PruningConfig` (threshold β,
        dropping toggle α, fairness factor c, enable switches).
    accounting:
        Shared :class:`~repro.core.accounting.Accounting` instance; the
        allocator records events into it, the Pruner consumes them.
    """

    def __init__(self, config: PruningConfig, accounting: Accounting | None = None) -> None:
        self.config = config
        self.accounting = accounting if accounting is not None else Accounting()
        self.fairness = FairnessTracker(
            config.fairness_factor, enabled=config.enable_fairness
        )
        #: Live β/α.  Without a controller these stay the frozen config
        #: constants (bit-identical to pre-control-plane behavior); with
        #: one, the driver moves them as load is observed.
        self.setpoints = Setpoints(
            beta=config.pruning_threshold, alpha=config.dropping_toggle
        )
        self.toggle: Toggle = make_toggle(config, self.setpoints)
        # Deferred import: breaks the core ↔ control module cycle (see
        # the module-level import note above).
        from ..control.registry import make_driver

        #: The control plane (``None`` unless ``config.controller`` is set).
        self.driver = make_driver(config.controller, config, self.setpoints)
        # Decision tallies (for ablation/analysis).
        self.drop_decisions = 0
        self.defer_decisions = 0
        #: machine_id -> (chances array, fairness epoch, β) of the last
        #: *no-drop* scan of that machine.  When the estimator hands back
        #: the *same array object* (its proof that no queue/chain change
        #: touched the machine) under the same fairness epoch and β, the
        #: scan's decisions are provably identical — nothing to drop —
        #: and the per-task threshold loop is skipped (see ``drop_scan``).
        self._scan_memo: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Fig. 5 step 0 (beyond the paper) — controller tick.
    # ------------------------------------------------------------------
    def control_tick(
        self,
        cluster: Cluster,
        estimator: CompletionEstimator,
        now: float,
        *,
        mapping_events: int,
        batch_queued: int = 0,
    ) -> None:
        """Feed the control plane one mapping-event snapshot (no-op when
        no controller is configured).

        Runs *before* fairness/toggle/drop-scan so the event's own
        decisions already use the fresh setpoints, and before the
        accounting horizon flush so ``misses_since_last_event`` is the
        same signal the Toggle sees.
        """
        if self.driver is None:
            return
        acc = self.accounting
        queued = 0
        running = 0
        for machine in cluster.machines:
            queued += len(machine.queue)
            if machine.running is not None:
                running += 1
        self.driver.tick(
            ControlSignals(
                now=now,
                mapping_events=mapping_events,
                misses_since_last_event=acc.misses_since_last_event,
                arrived=acc.total_arrived,
                on_time=acc.total_on_time,
                late=acc.total_late,
                dropped_missed=acc.total_dropped_missed,
                dropped_proactive=acc.total_dropped_proactive,
                defers=acc.total_defers,
                queued=queued,
                batch_queued=batch_queued,
                running=running,
                mean_chance=estimator.observed_mean_chance(),
                sufferage=self.fairness.scores(),
                beta=self.setpoints.beta,
                alpha=self.setpoints.alpha,
            )
        )

    # ------------------------------------------------------------------
    # Fig. 5 step 2 — fairness update from completions since last event.
    # ------------------------------------------------------------------
    def update_fairness(self) -> None:
        for task in self.accounting.on_time_since_last_event():
            self.fairness.note_on_time_completion(task.task_type)

    # ------------------------------------------------------------------
    # Fig. 5 step 3 — Toggle consultation.
    # ------------------------------------------------------------------
    def dropping_engaged(self) -> bool:
        return self.config.enable_dropping and self.toggle.dropping_engaged(
            self.accounting
        )

    # ------------------------------------------------------------------
    # Fig. 5 steps 4–6 — drop scan over machine queues.
    # ------------------------------------------------------------------
    def _scan_skip(self, task: Task) -> bool:
        """Hook: tasks the drop scan must never prune (subclass policy)."""
        return False

    def _scan_threshold(self, task: Task) -> float:
        """Hook: effective pruning threshold for ``task`` (β − γ_k).

        β is the *live* setpoint — the frozen config constant unless a
        controller moved it; fairness offsets apply on top either way.
        """
        return self.fairness.effective_threshold(
            self.setpoints.beta, task.task_type
        )

    def drop_scan(
        self,
        cluster: Cluster,
        estimator: CompletionEstimator,
        now: float,
    ) -> list[DropDecision]:
        """Select queued tasks whose chance of success ≤ β − γ_k.

        The scan walks each machine queue front-to-back and applies drop
        decisions *cumulatively*: once a task is marked for dropping, the
        chance of the tasks behind it is recomputed without the dropped
        task's PET in the convolution chain (§II — "their PCT is changed
        in a way that their compound uncertainty is reduced").  Fairness
        scores update as drops are decided, exactly as the pseudo-code's
        in-loop ``γ_k ← γ_k + c``.

        The whole cluster's opening pass is **one** batched chance query
        (:meth:`~repro.system.completion.CompletionEstimator.
        cluster_queue_chances`).  After a drop at queue index ``i`` the
        scan *resumes from ``i``*: only the suffix behind the dropped
        task is re-queried (:meth:`~repro.system.completion.
        CompletionEstimator.queue_chances_suffix`), matching the
        estimator's suffix-only re-convolution.  Tasks in front of a
        drop are never re-examined — their PCTs are untouched by a drop
        behind them, and within one scan effective thresholds only
        *decrease* (``note_drop`` raises γ_k), so a survivor stays a
        survivor; the resumed scan is decision-for-decision identical to
        a restart-from-front rescan at a fraction of the work.
        """
        decisions: list[DropDecision] = []
        machines = [m for m in cluster.machines if m.queue]
        if not machines:
            return decisions
        # The memo shortcut is only sound while the scan hooks are the
        # base-class ones (pure functions of chance / fairness / β); a
        # subclass override (e.g. priority classes) may consult state the
        # memo key cannot see.
        pristine = (
            type(self)._scan_skip is Pruner._scan_skip
            and type(self)._scan_threshold is Pruner._scan_threshold
        )
        memo = self._scan_memo
        beta = self.setpoints.beta
        all_chances = estimator.cluster_queue_chances(machines, now)
        for machine, chances in zip(machines, all_chances):
            fepoch = self.fairness.epoch
            if pristine:
                prior = memo.get(machine.machine_id)
                if (
                    prior is not None
                    and prior[0] is chances
                    and prior[1] == fepoch
                    and prior[2] == beta
                ):
                    # Same chance values (same array object: the estimator
                    # reused its cached scan), same thresholds — the last
                    # scan dropped nothing here, so neither would this one.
                    continue
            dropped = False
            tasks = list(machine.queue)
            idx = 0
            base = 0  # queue index of chances[0]; the scan never looks back
            while idx < len(tasks):
                task = tasks[idx]
                if self._scan_skip(task):
                    idx += 1
                    continue
                chance = float(chances[idx - base])
                eff = self._scan_threshold(task)
                if chance <= eff:
                    decisions.append(DropDecision(task, machine, chance, eff))
                    self.fairness.note_drop(task.task_type)
                    self.drop_decisions += 1
                    dropped = True
                    machine.remove(task)  # invalidates only the chain suffix
                    del tasks[idx]
                    if idx >= len(tasks):
                        break  # dropped the tail: nothing behind to re-judge
                    # Survivors behind the drop shifted onto index `idx`;
                    # re-query their chances against the shortened chain.
                    chances = estimator.queue_chances_suffix(machine, now, start=idx)
                    base = idx
                else:
                    idx += 1
            if pristine:
                if dropped:
                    memo.pop(machine.machine_id, None)
                else:
                    memo[machine.machine_id] = (chances, fepoch, beta)
        return decisions

    # ------------------------------------------------------------------
    # Doomed-subgraph gate scan (beyond the paper) — held DAG tasks.
    # ------------------------------------------------------------------
    def gate_scan(
        self,
        held: list[Task],
        cluster: Cluster,
        estimator: CompletionEstimator,
        now: float,
    ) -> list[DropDecision]:
        """Select held (unreleased) DAG tasks whose propagated chance of
        success ≤ β − γ_k on *every* online machine.

        A held task has no queue position yet, so its Eq. 2 chance is
        evaluated hypothetically at the tail of each machine
        (:meth:`~repro.system.completion.CompletionEstimator.chances_for`,
        which multiplies in the critical-path dependency factor) and the
        *best* placement is judged against the effective threshold — a
        task is only doomed if no machine could save it.  The allocator
        cascades each decision to the task's transitive dependents.
        """
        decisions: list[DropDecision] = []
        if not held:
            return decisions
        machines = cluster.online_machines()
        if not machines:
            return decisions
        grid = estimator.chances_for(held, machines, now)
        for i, task in enumerate(held):
            if self._scan_skip(task):
                continue
            best = int(grid[i].argmax())
            chance = float(grid[i, best])
            eff = self._scan_threshold(task)
            if chance <= eff:
                decisions.append(
                    DropDecision(task, machines[best], chance, eff)
                )
                self.fairness.note_drop(task.task_type)
                self.drop_decisions += 1
        return decisions

    # ------------------------------------------------------------------
    # Fig. 5 steps 9–10 — defer check for a freshly mapped task.
    # ------------------------------------------------------------------
    def should_defer(self, task: Task, chance: float) -> bool:
        """Whether a task the heuristic just mapped must be pulled back."""
        if not self.config.enable_deferring:
            return False
        eff = self.fairness.effective_threshold(
            self.setpoints.beta, task.task_type
        )
        if chance <= eff:
            self.defer_decisions += 1
            return True
        return False

    # ------------------------------------------------------------------
    def end_mapping_event(self) -> None:
        """Flush the per-event accounting buffers (end of Fig. 5)."""
        self.accounting.flush_event()

"""Name-based heuristic registry.

The experiment harness and CLI refer to heuristics by the names the paper
uses (Fig. 3): ``RR MET MCT KPB`` (immediate, heterogeneous),
``MM MSD MMU`` (batch, heterogeneous), ``FCFS-RR EDF SJF`` (homogeneous).
"""

from __future__ import annotations

from collections.abc import Callable

from .base import BatchHeuristic, ImmediateHeuristic
from .batch import MMU, MSD, MinMin
from .extra import LLF, MaxMin, RandomBatch
from .homogeneous import EDF, FCFSRR, SJF
from .immediate import KPB, MCT, MET, RoundRobin

__all__ = [
    "IMMEDIATE_HEURISTICS",
    "BATCH_HEURISTICS",
    "HOMOGENEOUS_HEURISTICS",
    "EXTRA_HEURISTICS",
    "ALL_HEURISTICS",
    "make_heuristic",
]

Heuristic = ImmediateHeuristic | BatchHeuristic

IMMEDIATE_HEURISTICS: dict[str, Callable[[], ImmediateHeuristic]] = {
    "RR": RoundRobin,
    "MET": MET,
    "MCT": MCT,
    "KPB": KPB,
}

BATCH_HEURISTICS: dict[str, Callable[[], BatchHeuristic]] = {
    "MM": MinMin,
    "MSD": MSD,
    "MMU": MMU,
}

#: Heuristics beyond the paper's §III set (see :mod:`repro.heuristics.extra`).
EXTRA_HEURISTICS: dict[str, Callable[[], BatchHeuristic]] = {
    "LLF": LLF,
    "MAXMIN": MaxMin,
    "RANDOM": RandomBatch,
}

HOMOGENEOUS_HEURISTICS: dict[str, Callable[[], BatchHeuristic]] = {
    "FCFS-RR": FCFSRR,
    "EDF": EDF,
    "SJF": SJF,
}

ALL_HEURISTICS: dict[str, Callable[[], Heuristic]] = {
    **IMMEDIATE_HEURISTICS,
    **BATCH_HEURISTICS,
    **HOMOGENEOUS_HEURISTICS,
    **EXTRA_HEURISTICS,
}


def make_heuristic(name: str, **kwargs) -> Heuristic:
    """Instantiate a heuristic by its paper name (case-insensitive)."""
    key = name.upper().replace("_", "-")
    try:
        factory = ALL_HEURISTICS[key]
    except KeyError:
        raise KeyError(
            f"unknown heuristic {name!r}; choose from {sorted(ALL_HEURISTICS)}"
        ) from None
    return factory(**kwargs)

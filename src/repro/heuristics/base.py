"""Heuristic interfaces and the shared two-phase batch planner.

§III of the paper: immediate-mode heuristics map each arriving task on the
spot; batch-mode heuristics keep an arrival (batch) queue and, at every
mapping event, run a two-phase process over a *virtual queue*:

  phase 1 — for every unmapped task find its best machine (per-heuristic
            objective, here: minimum expected completion time);
  phase 2 — among the resulting (task, machine) pairs pick the winner by
            the heuristic's selection rule, virtually assign it, repeat
            until machine-queue slots are exhausted or no tasks remain.

The planner below vectorizes both phases with NumPy: each iteration builds
the full ``(tasks, machines)`` expected-completion matrix from per-machine
availability accumulators — no Python loops over the batch queue.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..sim.cluster import Cluster
from ..sim.machine import Machine
from ..sim.task import Task

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..system.completion import CompletionEstimator

__all__ = [
    "ImmediateHeuristic",
    "BatchHeuristic",
    "TwoPhaseBatchHeuristic",
    "Plan",
    "PlanEntry",
]

#: One planned assignment: (task, machine).
PlanEntry = tuple[Task, Machine]
Plan = list[PlanEntry]


class ImmediateHeuristic(abc.ABC):
    """Maps each task to a machine immediately upon arrival (Fig. 1a)."""

    #: Registry name, e.g. ``"MCT"``.
    name: str = "?"
    mode = "immediate"

    @abc.abstractmethod
    def select_machine(
        self,
        task: Task,
        cluster: Cluster,
        estimator: CompletionEstimator,
        now: float,
    ) -> Machine:
        """Pick the machine for ``task``."""

    def reset(self) -> None:
        """Clear any internal state (e.g. round-robin pointers)."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class BatchHeuristic(abc.ABC):
    """Plans assignments for a batch of unmapped tasks (Fig. 1b)."""

    name: str = "?"
    mode = "batch"

    @abc.abstractmethod
    def plan(
        self,
        tasks: Sequence[Task],
        cluster: Cluster,
        estimator: CompletionEstimator,
        now: float,
    ) -> Plan:
        """Return virtual assignments respecting machine-queue slots.

        The plan is ordered (earlier entries were selected first); the
        allocator dispatches entries in order, re-checking chance of
        success against the *real* queue state as it goes.
        """

    def reset(self) -> None:
        """Clear any internal state."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


def _exec_mean_matrix(
    tasks: Sequence[Task], machines: Sequence[Machine], estimator: CompletionEstimator
) -> np.ndarray:
    """``(len(tasks), len(machines))`` expected execution times."""
    model = estimator.model
    means = getattr(model, "means", None)
    if means is not None:
        ttypes = np.fromiter((t.task_type for t in tasks), dtype=np.int64, count=len(tasks))
        mtypes = np.fromiter(
            (m.machine_type for m in machines), dtype=np.int64, count=len(machines)
        )
        return np.asarray(means)[np.ix_(ttypes, mtypes)]
    # Fallback for models without a dense means table.
    return np.array(
        [[model.mean(t.task_type, m.machine_type) for m in machines] for t in tasks]
    )


class TwoPhaseBatchHeuristic(BatchHeuristic):
    """Shared machinery for MM / MSD / MMU (§III-C) and friends.

    Subclasses provide :meth:`select_winner`, phase 2's selection rule.
    """

    def plan(
        self,
        tasks: Sequence[Task],
        cluster: Cluster,
        estimator: CompletionEstimator,
        now: float,
    ) -> Plan:
        if not tasks:
            return []
        machines = list(cluster.machines)
        if len(tasks) == 1:
            # Single-task batch — the norm under event-driven arrivals,
            # where every arrival triggers its own mapping event.  The
            # (1, M) matrix machinery collapses to one pass over machines
            # with free slots: same values, same first-minimum tie-break
            # as ``np.argmin`` over the completion row, and availability
            # is only computed for machines whose completion the general
            # path would actually read (slot-less machines are ``inf``
            # either way).  ``select_winner`` is still consulted — some
            # subclasses draw RNG there (``RandomBatch``), and skipping
            # it would desynchronize their stream.
            task = tasks[0]
            model = estimator.model
            ttype = task.task_type
            best = np.inf
            best_m = -1
            for i, m in enumerate(machines):
                free = m.free_slots()
                if free is not None and free <= 0:
                    continue
                c = estimator._scalar_chain(m, now)[-1] + model.mean(ttype, m.machine_type)
                if c < best:
                    best = c
                    best_m = i
            if best_m < 0 or not np.isfinite(best):
                return []
            w = self.select_winner(
                np.array([best]),
                np.array([task.deadline]),
                np.ones(1, dtype=bool),
            )
            return [(tasks[w], machines[best_m])]
        slots = np.array(
            [np.inf if m.free_slots() is None else m.free_slots() for m in machines],
            dtype=np.float64,
        )
        if not np.any(slots > 0):
            return []
        avail = estimator.cluster_expected_available(machines, now)
        exec_means = _exec_mean_matrix(tasks, machines, estimator)
        deadlines = np.fromiter((t.deadline for t in tasks), dtype=np.float64, count=len(tasks))
        active = np.ones(len(tasks), dtype=bool)

        plan: Plan = []
        # The completion matrix is built once; each virtual assignment
        # only moves one machine's availability, so the loop refreshes
        # that single column in place instead of rebuilding (T, M) —
        # values (and argmin tie-breaks) are identical to a rebuild.
        completion = np.where(slots[None, :] > 0, avail[None, :] + exec_means, np.inf)
        task_ids = np.arange(len(tasks))
        while np.any(active) and np.any(slots > 0):
            # Phase 1: best machine (min expected completion) per task.
            best_m = np.argmin(completion, axis=1)
            best_completion = completion[task_ids, best_m]
            best_completion = np.where(active, best_completion, np.inf)
            if not np.any(np.isfinite(best_completion)):
                break
            # Phase 2: heuristic-specific winner among (task, best machine).
            w = self.select_winner(best_completion, deadlines, active)
            m = int(best_m[w])
            plan.append((tasks[w], machines[m]))
            avail[m] += exec_means[w, m]
            slots[m] -= 1
            completion[:, m] = avail[m] + exec_means[:, m] if slots[m] > 0 else np.inf
            active[w] = False
        return plan

    @abc.abstractmethod
    def select_winner(
        self,
        best_completion: np.ndarray,
        deadlines: np.ndarray,
        active: np.ndarray,
    ) -> int:
        """Index of the winning task.  ``best_completion`` is ``inf`` for
        inactive tasks; implementations must never pick those."""

"""Batch-mode mapping heuristics for heterogeneous systems (§III-C).

All three share phase 1 (best machine = minimum expected completion time)
and differ only in phase 2's winner selection:

* **MM**  (MinCompletion–MinCompletion): winner has the globally minimum
  expected completion time — the classic Min-Min.
* **MSD** (MinCompletion–Soonest Deadline): winner has the soonest
  deadline; ties break by minimum expected completion time.
* **MMU** (MinCompletion–MaxUrgency): winner maximizes urgency
  ``U = 1 / (deadline - E[completion])`` (Eq. 3).
"""

from __future__ import annotations

import numpy as np

from .base import TwoPhaseBatchHeuristic

__all__ = ["MinMin", "MSD", "MMU"]


class MinMin(TwoPhaseBatchHeuristic):
    """MinCompletion-MinCompletion (MM)."""

    name = "MM"

    def select_winner(
        self, best_completion: np.ndarray, deadlines: np.ndarray, active: np.ndarray
    ) -> int:
        return int(np.argmin(best_completion))


class MSD(TwoPhaseBatchHeuristic):
    """MinCompletion-Soonest Deadline."""

    name = "MSD"

    def select_winner(
        self, best_completion: np.ndarray, deadlines: np.ndarray, active: np.ndarray
    ) -> int:
        d = np.where(active, deadlines, np.inf)
        soonest = d.min()
        # Tie-break on minimum expected completion time (paper §III-C-b).
        tied = np.flatnonzero(d == soonest)
        return int(tied[np.argmin(best_completion[tied])])


class MMU(TwoPhaseBatchHeuristic):
    """MinCompletion-MaxUrgency (Eq. 3): ``U = 1 / (deadline - E[C])``.

    The formula is applied exactly as printed: a task whose expected
    completion already exceeds its deadline gets *negative* urgency and is
    only selected after every positive-urgency task — mirroring the
    paper's observation that MMU chases short-deadline tasks and thus
    benefits the most from pruning.
    """

    name = "MMU"

    #: Guard against division by zero when slack is exactly 0.
    _SLACK_EPS = 1e-9

    def select_winner(
        self, best_completion: np.ndarray, deadlines: np.ndarray, active: np.ndarray
    ) -> int:
        slack = deadlines - best_completion
        slack = np.where(np.abs(slack) < self._SLACK_EPS, self._SLACK_EPS, slack)
        urgency = 1.0 / slack
        urgency = np.where(active & np.isfinite(best_completion), urgency, -np.inf)
        return int(np.argmax(urgency))

"""Mapping heuristics for homogeneous systems (§III-D).

These are batch-mode by nature but with simpler logic than the two-phase
heterogeneous heuristics: sort the arrival queue by the heuristic's key,
then repeatedly assign the head to the machine offering the minimum
expected completion time (which, in a homogeneous system, is simply the
least-loaded machine).

* **FCFS-RR** — first-come-first-served order, machines cycled round-robin.
* **EDF** — earliest deadline first (functionally similar to MSD).
* **SJF** — shortest (expected) job first (functionally similar to MM).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..sim.cluster import Cluster
from ..sim.task import Task
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..system.completion import CompletionEstimator
from .base import BatchHeuristic, Plan, _exec_mean_matrix

__all__ = ["FCFSRR", "EDF", "SJF"]


class _SortedAssign(BatchHeuristic):
    """Sort the batch queue by a key, then greedily assign heads to the
    machine with minimum expected completion time."""

    def sort_indices(
        self, tasks: Sequence[Task], exec_means: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def plan(
        self,
        tasks: Sequence[Task],
        cluster: Cluster,
        estimator: CompletionEstimator,
        now: float,
    ) -> Plan:
        if not tasks:
            return []
        machines = list(cluster.machines)
        slots = np.array(
            [np.inf if m.free_slots() is None else m.free_slots() for m in machines],
            dtype=np.float64,
        )
        if not np.any(slots > 0):
            return []
        avail = estimator.cluster_expected_available(machines, now)
        exec_means = _exec_mean_matrix(tasks, machines, estimator)
        order = self.sort_indices(tasks, exec_means)

        plan: Plan = []
        for w in order:
            if not np.any(slots > 0):
                break
            completion = np.where(slots > 0, avail + exec_means[w], np.inf)
            m = int(np.argmin(completion))
            plan.append((tasks[int(w)], machines[m]))
            avail[m] += exec_means[w, m]
            slots[m] -= 1
        return plan


class FCFSRR(BatchHeuristic):
    """First Come First Served — Round Robin.

    Tasks are taken in arrival order and placed on the next machine in a
    cyclic scan that has a free queue slot ("the first available machine
    in a round robin manner").
    """

    name = "FCFS-RR"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def plan(
        self,
        tasks: Sequence[Task],
        cluster: Cluster,
        estimator: CompletionEstimator,
        now: float,
    ) -> Plan:
        machines = list(cluster.machines)
        slots = [m.free_slots() for m in machines]
        plan: Plan = []
        ordered = sorted(tasks, key=lambda t: (t.arrival, t.task_id))
        n = len(machines)
        for task in ordered:
            placed = False
            for probe in range(n):
                idx = (self._next + probe) % n
                if slots[idx] is None or slots[idx] > 0:
                    plan.append((task, machines[idx]))
                    if slots[idx] is not None:
                        slots[idx] -= 1
                    self._next = (idx + 1) % n
                    placed = True
                    break
            if not placed:
                break  # every queue is full
        return plan


class EDF(_SortedAssign):
    """Earliest Deadline First."""

    name = "EDF"

    def sort_indices(self, tasks: Sequence[Task], exec_means: np.ndarray) -> np.ndarray:
        deadlines = np.fromiter((t.deadline for t in tasks), dtype=np.float64, count=len(tasks))
        ids = np.fromiter((t.task_id for t in tasks), dtype=np.int64, count=len(tasks))
        return np.lexsort((ids, deadlines))


class SJF(_SortedAssign):
    """Shortest (expected) Job First.

    In a homogeneous system the expected execution time of a task is the
    same on every machine; we sort by the per-task mean across machines so
    the heuristic also behaves sensibly if run on a heterogeneous cluster.
    """

    name = "SJF"

    def sort_indices(self, tasks: Sequence[Task], exec_means: np.ndarray) -> np.ndarray:
        mean_exec = exec_means.mean(axis=1)
        ids = np.fromiter((t.task_id for t in tasks), dtype=np.int64, count=len(tasks))
        return np.lexsort((ids, mean_exec))

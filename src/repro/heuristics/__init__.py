"""Mapping heuristics (§III): immediate-mode, batch-mode, homogeneous."""

from .base import BatchHeuristic, ImmediateHeuristic, Plan, TwoPhaseBatchHeuristic
from .batch import MMU, MSD, MinMin
from .extra import LLF, MaxMin, RandomBatch
from .homogeneous import EDF, FCFSRR, SJF
from .immediate import KPB, MCT, MET, RoundRobin
from .registry import (
    ALL_HEURISTICS,
    EXTRA_HEURISTICS,
    BATCH_HEURISTICS,
    HOMOGENEOUS_HEURISTICS,
    IMMEDIATE_HEURISTICS,
    make_heuristic,
)

__all__ = [
    "ImmediateHeuristic",
    "BatchHeuristic",
    "TwoPhaseBatchHeuristic",
    "Plan",
    "RoundRobin",
    "MET",
    "MCT",
    "KPB",
    "MinMin",
    "LLF",
    "MaxMin",
    "RandomBatch",
    "MSD",
    "MMU",
    "FCFSRR",
    "EDF",
    "SJF",
    "make_heuristic",
    "ALL_HEURISTICS",
    "IMMEDIATE_HEURISTICS",
    "BATCH_HEURISTICS",
    "EXTRA_HEURISTICS",
    "HOMOGENEOUS_HEURISTICS",
]

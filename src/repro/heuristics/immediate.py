"""Immediate-mode mapping heuristics for heterogeneous systems (§III-B).

Each arriving task is mapped on the spot, with no arrival queue:

* **RR** — round robin over machines, blind to execution/completion times.
* **MET** — minimum expected execution time (pure task-machine affinity;
  ignores load, so it can pile everything on one machine).
* **MCT** — minimum expected completion time (affinity + current load).
* **KPB** — k-percent best: MCT restricted to the ``k`` fraction of
  machines with the lowest expected execution time for the task's type.
"""

from __future__ import annotations

import math

import numpy as np

from ..sim.cluster import Cluster
from ..sim.machine import Machine
from ..sim.task import Task
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..system.completion import CompletionEstimator
from .base import ImmediateHeuristic

__all__ = ["RoundRobin", "MET", "MCT", "KPB"]


class RoundRobin(ImmediateHeuristic):
    """Cyclic assignment Machine 0 → Machine n, skipping full queues."""

    name = "RR"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def select_machine(
        self, task: Task, cluster: Cluster, estimator: CompletionEstimator, now: float
    ) -> Machine:
        n = len(cluster)
        for probe in range(n):
            machine = cluster.machines[(self._next + probe) % n]
            if machine.has_free_slot:
                self._next = (self._next + probe + 1) % n
                return machine
        raise RuntimeError("no machine with a free slot (immediate mode expects unbounded queues)")


class MET(ImmediateHeuristic):
    """Minimum expected execution time (ignores queue lengths)."""

    name = "MET"

    def select_machine(
        self, task: Task, cluster: Cluster, estimator: CompletionEstimator, now: float
    ) -> Machine:
        best, best_exec = None, math.inf
        for machine in cluster.machines:
            if not machine.has_free_slot:
                continue
            e = estimator.model.mean(task.task_type, machine.machine_type)
            if e < best_exec:
                best, best_exec = machine, e
        if best is None:
            raise RuntimeError("no machine with a free slot")
        return best


class MCT(ImmediateHeuristic):
    """Minimum expected completion time (availability + execution)."""

    name = "MCT"

    def select_machine(
        self, task: Task, cluster: Cluster, estimator: CompletionEstimator, now: float
    ) -> Machine:
        candidates = [m for m in cluster.machines if m.has_free_slot]
        if not candidates:
            raise RuntimeError("no machine with a free slot")
        # One cluster-wide scalar query; ties resolve to the first machine,
        # matching the sequential strict-< scan this replaces.
        completion = estimator.cluster_expected_available(candidates, now) + np.fromiter(
            (estimator.model.mean(task.task_type, m.machine_type) for m in candidates),
            dtype=np.float64,
            count=len(candidates),
        )
        return candidates[int(np.argmin(completion))]


class KPB(ImmediateHeuristic):
    """K-percent best: MCT among the top-``k`` fraction of machines by
    expected execution time for the task's type.

    ``k = 1.0`` degenerates to MCT; ``k -> 0`` degenerates to MET (only
    the single best-affinity machine is considered).
    """

    name = "KPB"

    def __init__(self, k: float = 0.25) -> None:
        if not 0.0 < k <= 1.0:
            raise ValueError(f"k must be in (0, 1], got {k}")
        self.k = k

    def select_machine(
        self, task: Task, cluster: Cluster, estimator: CompletionEstimator, now: float
    ) -> Machine:
        candidates = [m for m in cluster.machines if m.has_free_slot]
        if not candidates:
            raise RuntimeError("no machine with a free slot")
        execs = np.array(
            [estimator.model.mean(task.task_type, m.machine_type) for m in candidates]
        )
        keep = max(1, math.ceil(self.k * len(candidates)))
        best_idx = np.argsort(execs, kind="stable")[:keep]
        shortlist = [candidates[int(i)] for i in best_idx]
        # One cluster-wide scalar query over the k-percent shortlist; ties
        # resolve to the earliest-sorted machine like the scan it replaces.
        completion = estimator.cluster_expected_available(shortlist, now) + execs[best_idx]
        return shortlist[int(np.argmin(completion))]

    def __repr__(self) -> str:  # pragma: no cover
        return f"KPB(k={self.k})"

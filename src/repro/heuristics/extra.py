"""Additional mapping heuristics beyond the paper's §III set.

These demonstrate the mechanism's pluggability claim on heuristics the
paper did *not* evaluate — anything implementing the two-phase interface
gets pruning for free:

* **LLF** (Least Laxity First) — classic real-time policy: phase 2 picks
  the task with the smallest laxity ``deadline − now − E[execution]``.
  Differs from MMU in using laxity directly (linear) instead of inverse
  urgency, so deeply negative-slack tasks sort *first* (most urgent by
  laxity), making LLF maximally dependent on pruning to shed hopeless
  work — a stress test for the mechanism.
* **MaxMin** — the classic Max-Min variant of MM: phase 2 picks the task
  whose *minimum* completion time is *largest*, scheduling long tasks
  early; known to help when task lengths are skewed.
* **RandomBatch** — uniformly random winner; the floor any informed
  heuristic must beat, useful in tests and sanity benchmarks.
"""

from __future__ import annotations

import numpy as np

from .base import TwoPhaseBatchHeuristic

__all__ = ["LLF", "MaxMin", "RandomBatch"]


class LLF(TwoPhaseBatchHeuristic):
    """Least Laxity First (laxity = deadline − expected completion)."""

    name = "LLF"

    def select_winner(
        self, best_completion: np.ndarray, deadlines: np.ndarray, active: np.ndarray
    ) -> int:
        laxity = np.where(
            active & np.isfinite(best_completion),
            deadlines - best_completion,
            np.inf,
        )
        return int(np.argmin(laxity))


class MaxMin(TwoPhaseBatchHeuristic):
    """Max-Min: largest minimum-completion-time task first."""

    name = "MAXMIN"

    def select_winner(
        self, best_completion: np.ndarray, deadlines: np.ndarray, active: np.ndarray
    ) -> int:
        masked = np.where(active & np.isfinite(best_completion), best_completion, -np.inf)
        return int(np.argmax(masked))


class RandomBatch(TwoPhaseBatchHeuristic):
    """Uniformly random phase-2 winner (seeded, reproducible)."""

    name = "RANDOM"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        # Seeded from an explicit constructor argument; rerouting through
        # stream_seed would change the draws and break golden fixtures.
        self._rng = np.random.default_rng(seed)  # reprolint: ignore[D002] explicit config seed predates named streams

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)  # reprolint: ignore[D002] replays the constructor stream exactly

    def select_winner(
        self, best_completion: np.ndarray, deadlines: np.ndarray, active: np.ndarray
    ) -> int:
        candidates = np.flatnonzero(active & np.isfinite(best_completion))
        return int(self._rng.choice(candidates))

"""Terminal charts: render FigureResults the way the paper plots them.

The paper's evaluation figures are grouped bar charts (Fig. 7/8) and
line-ish level series (Fig. 9/10).  This module renders both as Unicode
terminal graphics so ``python -m repro.experiments fig9b --chart`` shows
a picture, not just a table — no plotting dependency required.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..experiments.report import FigureResult

__all__ = ["bar_chart", "grouped_bars", "render_figure"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉"


def _bar(value: float, peak: float, width: int) -> str:
    """A horizontal bar of ``value``/``peak`` scaled to ``width`` cells."""
    if peak <= 0:
        return ""
    cells = value / peak * width
    whole = int(cells)
    frac = cells - whole
    partial = _PART[int(frac * 8)] if whole < width else ""
    return _FULL * whole + partial.strip()


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    peak: float | None = None,
    unit: str = "%",
) -> str:
    """Simple labelled horizontal bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal lengths")
    if not labels:
        return "(empty chart)"
    peak = peak if peak is not None else max(max(values), 1e-9)
    label_w = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        lines.append(
            f"{str(label):>{label_w}} |{_bar(value, peak, width):<{width}} "
            f"{value:5.1f}{unit}"
        )
    return "\n".join(lines)


def grouped_bars(
    figure: FigureResult,
    *,
    width: int = 40,
    peak: float = 100.0,
) -> str:
    """Grouped bar rendering of a figure grid: one group per column
    (the paper's x-axis), one bar per row within the group."""
    lines = [f"{figure.figure_id}: {figure.title}", ""]
    label_w = max(len(r) for r in figure.rows)
    for col in figure.cols:
        lines.append(f"[{figure.col_axis} = {col}]")
        for row in figure.rows:
            stat = figure.get(row, col)
            bar = _bar(stat.mean_pct, peak, width)
            lines.append(
                f"  {row:>{label_w}} |{bar:<{width}} "
                f"{stat.mean_pct:5.1f} ±{stat.ci95_pct:4.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_figure(figure: FigureResult, *, width: int = 40) -> str:
    """Chart + the underlying table (what the CLI's ``--chart`` prints)."""
    return grouped_bars(figure, width=width) + "\n\n" + figure.to_text()

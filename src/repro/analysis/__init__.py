"""Post-run analysis: event timelines, windowed series, terminal charts."""

from .charts import bar_chart, grouped_bars, render_figure
from .timeline import TimelineEvent, TimelineRecorder

__all__ = [
    "TimelineEvent",
    "TimelineRecorder",
    "bar_chart",
    "grouped_bars",
    "render_figure",
]

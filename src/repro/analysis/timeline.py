"""Timeline analysis: what happened *during* a trial.

The aggregate robustness number (§V) hides the dynamics — when the spikes
hit, when the Toggle engaged dropping, how the batch queue backed up.
:class:`TimelineRecorder` subscribes to the resource allocator's observer
hook and materializes per-event records that can be rolled up into
windowed time series (the kind of plot an operator would watch).

Usage::

    recorder = TimelineRecorder()
    system = ServerlessSystem(pet, "MM", pruning=cfg, observer=recorder)
    system.run(tasks)
    for t, rate in zip(*recorder.on_time_rate_series(window=20.0)):
        ...
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..sim.task import Task

__all__ = ["TimelineEvent", "TimelineRecorder"]

#: Event kinds emitted by the allocator's observer hook.
EVENT_KINDS = (
    "arrived",
    "dispatched",
    "deferred",
    "completed",
    "dropped_missed",
    "dropped_proactive",
    # Cluster dynamics: a machine failure/drain evicted the task and it
    # re-entered admission.
    "requeued",
)


@dataclass(frozen=True)
class TimelineEvent:
    """One observed scheduling event."""

    time: float
    kind: str
    task_id: int
    task_type: int
    on_time: bool | None = None  #: for ``completed`` events


class TimelineRecorder:
    """Callable observer collecting the full event timeline of a trial."""

    def __init__(self) -> None:
        self.events: list[TimelineEvent] = []

    # -- observer protocol ------------------------------------------------
    def __call__(self, kind: str, task: Task, time: float) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown timeline event kind {kind!r}")
        on_time = None
        if kind == "completed":
            on_time = task.completed_on_time
        self.events.append(
            TimelineEvent(
                time=time,
                kind=kind,
                task_id=task.task_id,
                task_type=task.task_type,
                on_time=on_time,
            )
        )

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TimelineEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Counter:
        return Counter(e.kind for e in self.events)

    def times_of(self, kind: str) -> np.ndarray:
        return np.array([e.time for e in self.events if e.kind == kind])

    # -- time series -------------------------------------------------------
    def _window_counts(
        self, times: np.ndarray, span: float, window: float
    ) -> tuple[np.ndarray, np.ndarray]:
        if window <= 0:
            raise ValueError("window must be positive")
        edges = np.arange(0.0, span + window, window)
        counts, _ = np.histogram(times, bins=edges)
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, counts.astype(np.float64)

    def span(self) -> float:
        return max((e.time for e in self.events), default=0.0)

    def rate_series(
        self, kind: str, window: float, span: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Windowed event rate (events per time unit) of one kind."""
        span = span if span is not None else self.span()
        centers, counts = self._window_counts(self.times_of(kind), span, window)
        return centers, counts / window

    def on_time_rate_series(
        self, window: float, span: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fraction of completions in each window that met their deadline.

        Windows with no completions report NaN (nothing finished there).
        """
        span = span if span is not None else self.span()
        completed = [e for e in self.events if e.kind == "completed"]
        all_times = np.array([e.time for e in completed])
        good_times = np.array([e.time for e in completed if e.on_time])
        centers, total = self._window_counts(all_times, span, window)
        _, good = self._window_counts(good_times, span, window)
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = np.where(total > 0, good / np.maximum(total, 1), np.nan)
        return centers, ratio

    def backlog_series(
        self, window: float, span: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate batch-queue backlog: arrivals minus departures
        (dispatch or drop-from-pending) accumulated over time, sampled at
        window boundaries."""
        span = span if span is not None else self.span()
        deltas: list[tuple[float, int]] = []
        waiting: set[int] = set()
        for e in sorted(self.events, key=lambda ev: ev.time):
            if e.kind == "arrived":
                waiting.add(e.task_id)
                deltas.append((e.time, +1))
            elif e.kind in ("dispatched", "dropped_missed", "dropped_proactive"):
                if e.task_id in waiting:
                    waiting.discard(e.task_id)
                    deltas.append((e.time, -1))
        if not deltas:
            centers = np.arange(0.0, span + window, window)[:-1] + window / 2
            return centers, np.zeros_like(centers)
        times = np.array([t for t, _ in deltas])
        steps = np.cumsum([d for _, d in deltas])
        edges = np.arange(0.0, span + window, window)
        centers = (edges[:-1] + edges[1:]) / 2.0
        idx = np.searchsorted(times, edges[1:], side="right") - 1
        values = np.where(idx >= 0, steps[np.clip(idx, 0, None)], 0.0)
        return centers, values.astype(np.float64)

    def defer_churn(self) -> dict[int, int]:
        """Defer decisions per task — how often each waited out an event."""
        churn: Counter = Counter()
        for e in self.events:
            if e.kind == "deferred":
                churn[e.task_id] += 1
        return dict(churn)

    def summary(self) -> str:
        c = self.counts()
        return (
            f"{c.get('arrived', 0)} arrivals, {c.get('dispatched', 0)} dispatches, "
            f"{c.get('deferred', 0)} defers, {c.get('completed', 0)} completions, "
            f"{c.get('dropped_missed', 0)}+{c.get('dropped_proactive', 0)} drops "
            f"(reactive+proactive) over {self.span():.1f} time units"
        )

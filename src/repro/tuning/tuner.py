"""The offline auto-tuner: Campaign sweeps as a search's inner loop.

A :class:`Tuner` glues the pieces together: a
:class:`~repro.tuning.space.SearchSpace` says *what* can vary, a
strategy (:mod:`repro.tuning.strategies`) says *where to look next*, an
objective (:mod:`repro.tuning.objective`) says *what better means*, and
the evaluation mix — a :class:`~repro.experiments.campaign.SweepGrid`
or explicit configs — says *on which workloads*.  Every proposal runs
as an ordinary campaign, so the content-addressed
:class:`~repro.experiments.campaign.ResultCache` is the search's
experience store: re-proposed or promoted configurations hit instead of
re-simulating, and a warm re-run of a whole search costs zero
simulations.

Determinism: proposals are pure functions of (seed, space, history) —
see :mod:`repro.tuning.strategies` — and evaluations are pure functions
of (config, trial), so the entire trajectory is byte-identical across
runs, machines, and interrupt/resume cycles (the JSON trial ledger,
:mod:`repro.tuning.ledger`, carries the history).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from pathlib import Path
from collections.abc import Callable, Sequence

from ..experiments.campaign import Campaign, ResultCache, SweepGrid
from ..experiments.runner import ExperimentConfig
from ..sim.rng import fingerprint
from .ledger import TrialRecord, read_ledger, write_ledger
from .objective import make_objective
from .params import apply_params
from .space import SearchSpace
from .strategies import Proposal, make_strategy

__all__ = ["Tuner", "TunerResult"]


@dataclass
class TunerResult:
    """Outcome of one (possibly resumed) search."""

    records: list[TrialRecord]
    best: TrialRecord
    #: Records replayed from the ledger rather than evaluated this run.
    resumed: int = 0
    strategy: dict | None = None
    objective: str = ""
    seed: int = 0
    budget: int = 0

    @property
    def best_params(self) -> dict:
        return dict(self.best.params)

    def stats(self) -> dict:
        """JSON-ready ``tuner_stats`` telemetry payload."""
        return {
            "strategy": dict(self.strategy) if self.strategy else None,
            "objective": self.objective,
            "seed": self.seed,
            "budget": self.budget,
            "trials": len(self.records),
            "resumed": self.resumed,
            "cache_hits": sum(r.cache_hits for r in self.records),
            "cache_misses": sum(r.cache_misses for r in self.records),
            "best_index": self.best.index,
            "best_score": self.best.score,
            "best_params": dict(self.best.params),
        }


def _best_record(records: Sequence[TrialRecord]) -> TrialRecord:
    """Highest score among full-fidelity records (ties → earliest).

    Reduced-fidelity scores are measured on fewer workload trials and
    are not comparable to full evaluations, so they only compete when
    *no* full-fidelity record exists.
    """
    full = [r for r in records if r.fidelity >= 1.0] or list(records)
    return max(full, key=lambda r: (r.score, -r.index))


class Tuner:
    """Drives a strategy's proposals through campaign evaluations.

    ``mix`` is either a :class:`SweepGrid` (expanded once; its
    ``trials`` is the full-fidelity trial count) or a sequence of
    explicit :class:`ExperimentConfig` cells.  ``ledger_path`` (optional)
    persists the trajectory for interrupt/resume; ``cache``/``jobs``/
    ``executor`` pass straight to the inner campaigns.
    """

    def __init__(
        self,
        space: SearchSpace,
        mix: SweepGrid | Sequence[ExperimentConfig],
        *,
        strategy: object = "random",
        objective: object = "pooled-on-time",
        budget: int = 8,
        seed: int = 0,
        ledger_path: str | Path | None = None,
        cache: ResultCache | None = None,
        jobs: int | None = None,
        executor: str = "auto",
        name: str = "tune",
    ) -> None:
        self.space = space
        if isinstance(mix, SweepGrid):
            self.base_configs = [cell.config for cell in mix.expand()]
            mix_payload: object = mix.to_dict()
        else:
            self.base_configs = list(mix)
            from ..experiments.campaign import _config_payload

            mix_payload = [_config_payload(c) for c in self.base_configs]
        if not self.base_configs:
            raise ValueError("evaluation mix has no cells")
        self.budget = int(budget)
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.seed = int(seed)
        self.strategy = make_strategy(strategy, space, seed=self.seed, budget=self.budget)
        self.objective_name, self.objective = make_objective(objective)
        self.ledger_path = Path(ledger_path) if ledger_path is not None else None
        self.cache = cache
        self.jobs = jobs
        self.executor = executor
        self.name = name
        #: Search identity — what a ledger must match to be resumed.
        #: The budget is deliberately absent (extending a search must
        #: resume, not restart); strategy defaults that *depend* on the
        #: budget are resolved into the strategy spec itself.
        self.key = fingerprint(
            {
                "space": space.to_dict(),
                "mix": mix_payload,
                "strategy": self.strategy.spec_dict(),
                "objective": self.objective_name,
                "seed": self.seed,
            }
        )

    # ------------------------------------------------------------------
    def _evaluate(self, index: int, proposal: Proposal) -> TrialRecord:
        """Run one proposal as a campaign and score the summary."""
        configs = []
        trials_run = 0
        for base in self.base_configs:
            trials = max(1, math.ceil(base.trials * proposal.fidelity))
            trials_run = max(trials_run, trials)
            configs.append(apply_params(replace(base, trials=trials), proposal.params))
        campaign = Campaign.from_configs(configs, name=f"{self.name}-{index}")
        summary = campaign.run(jobs=self.jobs, cache=self.cache, executor=self.executor)
        return TrialRecord(
            index=index,
            params=dict(proposal.params),
            score=float(self.objective(summary)),
            fidelity=float(proposal.fidelity),
            trials=trials_run,
            cells={row.label: row.stats.mean_pct for row in summary.rows},
            cache_hits=summary.cache_hits,
            cache_misses=summary.cache_misses,
        )

    def _problem_payload(self) -> dict:
        """Human-readable ledger header (the ``key`` is authoritative)."""
        return {
            "name": self.name,
            "space": self.space.to_dict(),
            "strategy": self.strategy.spec_dict(),
            "objective": self.objective_name,
            "seed": self.seed,
            "budget": self.budget,
            "cells": [c.display_label for c in self.base_configs],
        }

    # ------------------------------------------------------------------
    def run(
        self, progress: Callable[[TrialRecord], None] | None = None
    ) -> TunerResult:
        """Propose/evaluate until the strategy stops or the budget is
        spent; returns every record (resumed + fresh) plus the best."""
        records: list[TrialRecord] = []
        if self.ledger_path is not None:
            records = read_ledger(self.ledger_path, self.key)
            if len(records) > self.budget:
                records = records[: self.budget]
        resumed = len(records)
        while len(records) < self.budget:
            proposal = self.strategy.propose(records)
            if proposal is None:
                break
            record = self._evaluate(len(records), proposal)
            records.append(record)
            if self.ledger_path is not None:
                write_ledger(self.ledger_path, self.key, self._problem_payload(), records)
            if progress is not None:
                progress(record)
        if not records:
            raise ValueError(
                f"strategy {self.strategy.name!r} proposed nothing within budget "
                f"{self.budget}"
            )
        return TunerResult(
            records=records,
            best=_best_record(records),
            resumed=resumed,
            strategy=self.strategy.spec_dict(),
            objective=self.objective_name,
            seed=self.seed,
            budget=self.budget,
        )

"""Objectives: scoring a :class:`CampaignSummary` with one number.

The tuner's inner loop evaluates a proposal by running the evaluation
mix as a campaign; an objective reduces the resulting summary to the
scalar the search maximizes.  Two families ship:

``pooled-on-time``
    Mean robustness (% tasks on time) pooled over every per-trial value
    of every *pruned* cell — the number the control-plane benchmark
    gates on.  Baseline (no-pruning) cells are excluded when pruned
    cells exist: they are the yardstick, not the thing being tuned.

``paired-delta:<label>``
    Mean paired per-trial delta (percentage points) of every other cell
    against the named baseline cell — the
    :func:`~repro.metrics.compare.compare_paired_stats` machinery, so
    seed-matched trials cancel workload noise.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from ..experiments.report import CampaignSummary

__all__ = ["make_objective", "pooled_on_time", "paired_delta", "OBJECTIVES"]

Objective = Callable[[CampaignSummary], float]


def pooled_on_time(summary: CampaignSummary) -> float:
    """Pooled mean per-trial on-time % over the summary's pruned cells."""
    rows = [r for r in summary.rows if r.pruning != "base"] or summary.rows
    values = [pct for row in rows for pct in row.stats.per_trial_pct]
    if not values:
        raise ValueError("campaign summary has no per-trial values to score")
    return sum(values) / len(values)


def paired_delta(summary: CampaignSummary, baseline: str) -> float:
    """Mean paired delta (pp) of every non-baseline cell vs ``baseline``."""
    if baseline not in summary.labels:
        raise ValueError(
            f"objective baseline cell {baseline!r} is not in the evaluation mix "
            f"(cells: {summary.labels})"
        )
    deltas = [
        summary.compare(baseline, row.label).mean_delta_pp
        for row in summary.rows
        if row.label != baseline
    ]
    if not deltas:
        raise ValueError(
            f"objective baseline {baseline!r} is the mix's only cell — "
            f"nothing to compare against"
        )
    return sum(deltas) / len(deltas)


#: Registered objective kinds (canonical spec spellings documented above).
OBJECTIVES = ("pooled-on-time", "paired-delta")


def make_objective(spec: object) -> tuple[str, Objective]:
    """Resolve an objective spec to ``(canonical name, callable)``.

    Accepted: ``"pooled-on-time"``, ``"paired-delta:<baseline label>"``,
    or the mapping forms ``{"kind": "paired-delta", "baseline": "..."}``.
    The canonical name is part of the trial-ledger identity.
    """
    if isinstance(spec, Mapping):
        fields = dict(spec)
        kind = fields.pop("kind", None)
        if kind == "pooled-on-time" and not fields:
            return "pooled-on-time", pooled_on_time
        if kind == "paired-delta" and set(fields) == {"baseline"}:
            baseline = str(fields["baseline"])
            return (
                f"paired-delta:{baseline}",
                lambda summary: paired_delta(summary, baseline),
            )
        raise ValueError(
            f"unrecognized objective {spec!r}; expected kind in {list(OBJECTIVES)} "
            f"(paired-delta takes exactly one 'baseline' key)"
        )
    if isinstance(spec, str):
        kind, _, rest = spec.partition(":")
        if kind == "pooled-on-time" and not rest:
            return "pooled-on-time", pooled_on_time
        if kind == "paired-delta" and rest:
            return spec, lambda summary: paired_delta(summary, rest)
        raise ValueError(
            f"unrecognized objective {spec!r}; expected 'pooled-on-time' or "
            f"'paired-delta:<baseline label>'"
        )
    raise ValueError(f"unrecognized objective {spec!r}")

"""Applying tuning parameters to experiment cells.

The shared vocabulary between the offline tuner, the ``tuning`` sweep
axis, and the CLI: a flat ``{knob: value}`` mapping patched onto an
:class:`~repro.experiments.runner.ExperimentConfig`.

Knobs
-----
``heuristic``
    Mapping-heuristic registry name (``"MM"``, ``"MSD"``, …).
``beta``
    The pruning threshold β of the cell's :class:`PruningConfig`.
``alpha``
    The dropping-Toggle α.
``controller``
    A controller spec string (``"hysteresis:high=0.2"``,
    ``"bandit:betas=[0.3,0.7]"``) or ``"none"`` to detach the control
    plane.
``controller.<field>``
    One :class:`~repro.core.config.ControllerConfig` field of the
    cell's controller (``controller.high``, ``controller.step``, …),
    applied after any ``controller`` knob so the two compose.

β/α/controller knobs require the cell to have a pruning config —
patching a baseline (no-pruning) cell is an error, not a silent no-op.
"""

from __future__ import annotations

from dataclasses import replace
from collections.abc import Mapping

from ..core.config import ControllerConfig
from ..experiments.runner import ExperimentConfig
from ..sim.rng import fingerprint

__all__ = ["apply_params", "params_label", "PARAM_KNOBS"]

#: Fixed (non-``controller.<field>``) knob names, in application order.
PARAM_KNOBS = ("heuristic", "beta", "alpha", "controller")


def params_label(params: Mapping) -> str:
    """Deterministic short label of a parameter patch (``tuned-<hex>``)."""
    return f"tuned-{fingerprint(dict(params), length=8)}"


def _require_pruning(config: ExperimentConfig, knob: str) -> None:
    if config.pruning is None:
        raise ValueError(
            f"tuning knob {knob!r} needs a pruning config, but cell "
            f"{config.display_label!r} is a no-pruning baseline"
        )


def apply_params(config: ExperimentConfig, params: Mapping) -> ExperimentConfig:
    """Return ``config`` with the tuning ``params`` patched in.

    Knobs apply in a fixed order (heuristic, β, α, controller, then
    ``controller.<field>`` sorted by name), so the result is independent
    of the mapping's insertion order.  Unknown knobs and invalid values
    raise ``ValueError`` naming the offending knob.
    """
    fixed = {k: v for k, v in params.items() if k in PARAM_KNOBS}
    nested = {k: v for k, v in params.items() if k.startswith("controller.")}
    unknown = sorted(set(params) - set(fixed) - set(nested))
    if unknown:
        raise ValueError(
            f"unknown tuning knobs {unknown}; allowed: {list(PARAM_KNOBS)} "
            f"or 'controller.<field>'"
        )
    out = config
    if "heuristic" in fixed:
        out = replace(out, heuristic=str(fixed["heuristic"]))
    if "beta" in fixed:
        _require_pruning(out, "beta")
        try:
            out = replace(
                out, pruning=out.pruning.with_(pruning_threshold=float(fixed["beta"]))
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"tuning knob beta={fixed['beta']!r}: {exc}") from exc
    if "alpha" in fixed:
        _require_pruning(out, "alpha")
        value = fixed["alpha"]
        if isinstance(value, float):
            if not value.is_integer():
                raise ValueError(f"tuning knob alpha must be an integer, got {value!r}")
            value = int(value)
        try:
            out = replace(out, pruning=out.pruning.with_(dropping_toggle=int(value)))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"tuning knob alpha={fixed['alpha']!r}: {exc}") from exc
    if "controller" in fixed:
        _require_pruning(out, "controller")
        entry = fixed["controller"]
        from ..control.registry import parse_controller_spec  # deferred: keeps layering thin

        if entry is None or entry == "none":
            controller = None
        elif isinstance(entry, str):
            try:
                controller = parse_controller_spec(entry)
            except ValueError as exc:
                raise ValueError(f"tuning knob controller={entry!r}: {exc}") from exc
        elif isinstance(entry, Mapping):
            try:
                controller = ControllerConfig(**dict(entry))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"tuning knob controller={entry!r}: {exc}") from exc
        else:
            raise ValueError(f"tuning knob controller={entry!r} is not a spec or mapping")
        out = replace(out, pruning=out.pruning.with_(controller=controller))
    for knob in sorted(nested):
        field = knob[len("controller."):]
        _require_pruning(out, knob)
        if out.pruning.controller is None:
            raise ValueError(
                f"tuning knob {knob!r} needs a controller on the cell — set one "
                f"in the grid/mix or via the 'controller' knob"
            )
        if field not in ControllerConfig.__dataclass_fields__ or field == "kind":
            raise ValueError(
                f"tuning knob {knob!r}: no such controller field; allowed: "
                f"{sorted(set(ControllerConfig.__dataclass_fields__) - {'kind'})}"
            )
        try:
            controller = out.pruning.controller.with_(**{field: nested[knob]})
        except (TypeError, ValueError) as exc:
            raise ValueError(f"tuning knob {knob}={nested[knob]!r}: {exc}") from exc
        out = replace(out, pruning=out.pruning.with_(controller=controller))
    return out

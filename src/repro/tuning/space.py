"""Declarative search spaces for the offline auto-tuner.

A :class:`SearchSpace` is plain data: an ordered tuple of parameter
descriptors — continuous ranges (linear or log scale), integer ranges,
and categorical choices — each named after the experiment knob it
drives (``"beta"``, ``"controller.high"``, ``"heuristic"``; see
:mod:`repro.tuning.params` for the knob vocabulary).

Determinism contract: sampling draws exactly one uniform variate per
parameter, in declaration order, so a proposal is a pure function of
(space, generator state) — reordering or renaming parameters changes
the trajectory, adding draws inside one parameter cannot perturb its
neighbours.  ``value_at``/``position`` map between a parameter's value
and its normalized [0, 1] coordinate; the Gaussian-process strategy
models the space through those coordinates.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Mapping, Sequence

import numpy as np

from ..sim.rng import fingerprint

__all__ = ["Continuous", "Integer", "Categorical", "SearchSpace"]

_SCALES = ("linear", "log")


def _check_range(name: str, low: float, high: float, scale: str) -> None:
    if scale not in _SCALES:
        raise ValueError(f"parameter {name!r}: scale must be one of {_SCALES}, got {scale!r}")
    if not low < high:
        raise ValueError(f"parameter {name!r}: need low < high, got [{low}, {high}]")
    if scale == "log" and low <= 0:
        raise ValueError(f"parameter {name!r}: log scale needs low > 0, got {low}")


@dataclass(frozen=True)
class Continuous:
    """A real-valued range, sampled uniformly in linear or log space."""

    name: str
    low: float
    high: float
    scale: str = "linear"

    def __post_init__(self) -> None:
        object.__setattr__(self, "low", float(self.low))
        object.__setattr__(self, "high", float(self.high))
        _check_range(self.name, self.low, self.high, self.scale)

    def value_at(self, u: float) -> float:
        """The value at normalized coordinate ``u`` ∈ [0, 1]."""
        if self.scale == "log":
            lo, hi = math.log(self.low), math.log(self.high)
            return float(math.exp(lo + u * (hi - lo)))
        return float(self.low + u * (self.high - self.low))

    def position(self, value: object) -> float:
        """Inverse of :meth:`value_at` (clipped to [0, 1])."""
        v = float(value)  # type: ignore[arg-type]
        if self.scale == "log":
            lo, hi = math.log(self.low), math.log(self.high)
            u = (math.log(max(v, self.low)) - lo) / (hi - lo)
        else:
            u = (v - self.low) / (self.high - self.low)
        return min(max(u, 0.0), 1.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": "continuous",
            "low": self.low,
            "high": self.high,
            "scale": self.scale,
        }


@dataclass(frozen=True)
class Integer:
    """An integer range (inclusive bounds), linear or log spaced."""

    name: str
    low: int
    high: int
    scale: str = "linear"

    def __post_init__(self) -> None:
        for bound in ("low", "high"):
            value = getattr(self, bound)
            if isinstance(value, float):
                if not value.is_integer():
                    raise ValueError(
                        f"parameter {self.name!r}: {bound} must be an integer, got {value!r}"
                    )
                object.__setattr__(self, bound, int(value))
        _check_range(self.name, float(self.low), float(self.high), self.scale)

    def value_at(self, u: float) -> int:
        if self.scale == "log":
            lo, hi = math.log(self.low), math.log(self.high)
            raw = math.exp(lo + u * (hi - lo))
        else:
            raw = self.low + u * (self.high - self.low)
        return int(min(max(round(raw), self.low), self.high))

    def position(self, value: object) -> float:
        v = float(value)  # type: ignore[arg-type]
        if self.scale == "log":
            lo, hi = math.log(self.low), math.log(self.high)
            u = (math.log(max(v, float(self.low))) - lo) / (hi - lo)
        else:
            u = (v - self.low) / (self.high - self.low)
        return min(max(u, 0.0), 1.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": "integer",
            "low": self.low,
            "high": self.high,
            "scale": self.scale,
        }


@dataclass(frozen=True)
class Categorical:
    """A finite unordered choice set (heuristic names, controller specs)."""

    name: str
    choices: tuple

    def __post_init__(self) -> None:
        choices = tuple(self.choices)
        if len(choices) < 1:
            raise ValueError(f"parameter {self.name!r}: choices must not be empty")
        if len(set(choices)) != len(choices):
            raise ValueError(f"parameter {self.name!r}: duplicate choices {choices!r}")
        object.__setattr__(self, "choices", choices)

    def value_at(self, u: float) -> object:
        index = min(int(u * len(self.choices)), len(self.choices) - 1)
        return self.choices[index]

    def position(self, value: object) -> float:
        try:
            index = self.choices.index(value)
        except ValueError:
            raise ValueError(
                f"parameter {self.name!r}: {value!r} is not one of {self.choices!r}"
            ) from None
        if len(self.choices) == 1:
            return 0.5
        return index / (len(self.choices) - 1)

    def to_dict(self) -> dict:
        return {"name": self.name, "type": "categorical", "choices": list(self.choices)}


_PARAM_TYPES = {"continuous": Continuous, "integer": Integer, "categorical": Categorical}


@dataclass(frozen=True)
class SearchSpace:
    """An ordered set of named tuning parameters (plain, JSON-able data)."""

    params: tuple

    def __post_init__(self) -> None:
        params = tuple(self.params)
        if not params:
            raise ValueError("search space must have at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate parameter names {dupes}")
        object.__setattr__(self, "params", params)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> dict:
        """One proposal: exactly one uniform draw per parameter, in
        declaration order (the purity contract — see module docstring)."""
        return {p.name: p.value_at(float(rng.random())) for p in self.params}

    def at(self, coords: Sequence[float]) -> dict:
        """The proposal at a normalized coordinate vector."""
        if len(coords) != len(self.params):
            raise ValueError(
                f"expected {len(self.params)} coordinates, got {len(coords)}"
            )
        return {p.name: p.value_at(float(u)) for p, u in zip(self.params, coords)}

    def normalize(self, params: Mapping) -> list[float]:
        """Normalized [0, 1] coordinates of a proposal (GP feature vector)."""
        missing = [p.name for p in self.params if p.name not in params]
        if missing:
            raise ValueError(f"proposal is missing parameters {missing}")
        return [p.position(params[p.name]) for p in self.params]

    # ------------------------------------------------------------------
    @property
    def key(self) -> str:
        """Content fingerprint (part of the trial-ledger identity)."""
        return fingerprint(self.to_dict())

    def to_dict(self) -> list[dict]:
        return [p.to_dict() for p in self.params]

    @classmethod
    def from_dict(cls, payload: object) -> SearchSpace:
        if not isinstance(payload, Sequence) or isinstance(payload, (str, bytes)):
            raise ValueError(
                f"search space must be a list of parameter objects, got {payload!r}"
            )
        params = []
        for entry in payload:
            if not isinstance(entry, Mapping):
                raise ValueError(f"search-space entry must be an object, got {entry!r}")
            fields = dict(entry)
            kind = fields.pop("type", None)
            if kind not in _PARAM_TYPES:
                raise ValueError(
                    f"search-space entry {fields.get('name', entry)!r}: type must be "
                    f"one of {sorted(_PARAM_TYPES)}, got {kind!r}"
                )
            if "name" not in fields:
                raise ValueError(f"search-space entry {entry!r} has no name")
            if kind == "categorical" and isinstance(fields.get("choices"), list):
                fields["choices"] = tuple(
                    tuple(c) if isinstance(c, list) else c for c in fields["choices"]
                )
            try:
                params.append(_PARAM_TYPES[kind](**fields))
            except TypeError as exc:
                raise ValueError(
                    f"search-space entry {fields['name']!r}: {exc}"
                ) from exc
        return cls(params=tuple(params))

    @classmethod
    def from_json(cls, path: str | Path) -> SearchSpace:
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise ValueError(f"cannot read search space {path}: {exc}") from exc
        except ValueError as exc:
            raise ValueError(f"search space {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

"""Offline auto-tuning: deterministic search over β/α/controller knobs.

The search layer above the experiment layer: a declarative
:class:`~repro.tuning.space.SearchSpace` of configuration knobs, a
pluggable strategy registry (:data:`~repro.tuning.strategies.STRATEGIES`
— random, successive halving, pure-NumPy GP/EI), objectives over
:class:`~repro.experiments.report.CampaignSummary`, and a resumable JSON
trial ledger.  Every proposal is a pure function of (seed, space,
observed results); every evaluation is an ordinary cached campaign —
so whole searches are byte-identical across runs and resume for free.

The *online* counterpart — the contextual ``bandit`` controller that
adapts β/α inside a single run — lives in :mod:`repro.control`; this
package owns the outer, between-runs loop.
"""

from .ledger import LEDGER_VERSION, TrialRecord, read_ledger, write_ledger
from .objective import OBJECTIVES, make_objective, paired_delta, pooled_on_time
from .params import PARAM_KNOBS, apply_params, params_label
from .presets import TUNE_PRESETS, TunePreset, get_preset
from .space import Categorical, Continuous, Integer, SearchSpace
from .strategies import STRATEGIES, Proposal, Strategy, make_strategy
from .tuner import Tuner, TunerResult

__all__ = [
    "SearchSpace",
    "Continuous",
    "Integer",
    "Categorical",
    "Strategy",
    "Proposal",
    "STRATEGIES",
    "make_strategy",
    "OBJECTIVES",
    "make_objective",
    "pooled_on_time",
    "paired_delta",
    "TrialRecord",
    "read_ledger",
    "write_ledger",
    "LEDGER_VERSION",
    "PARAM_KNOBS",
    "apply_params",
    "params_label",
    "TunePreset",
    "TUNE_PRESETS",
    "get_preset",
    "Tuner",
    "TunerResult",
]

"""Search strategies: how the tuner picks the next proposal.

Every strategy is registered by name in :data:`STRATEGIES` and obeys one
contract: :meth:`~Strategy.propose` is a **pure function of (seed,
search space, observed history)**.  Randomness comes only from the
dedicated ``tuning`` named stream, re-derived per trial index
(``tuning_seed(seed, "trial/<i>")``), so proposal *i* never depends on
how many draws earlier proposals consumed — same seed, same space, same
history ⇒ byte-identical trajectory, which is what makes the trial
ledger resumable and the benchmark artifact reproducible.

Shipped strategies:

``random``
    Independent uniform samples of the space — the baseline every other
    strategy must beat, and the cheapest smoke-test mode.
``successive-halving``
    A fixed rung plan: a random population evaluated at reduced fidelity
    (a fraction of the mix's workload trials), with the top ``1/eta``
    promoted to the next rung at ``eta``× the fidelity until survivors
    run at full fidelity.  Because the campaign cache keys trials
    individually, a promoted config's low-rung trials are cache hits at
    the next rung — fidelity is a prefix, not a re-run.
``bayes``
    Pure-NumPy Gaussian-process regression (RBF kernel over the space's
    normalized coordinates, Cholesky solve) maximizing expected
    improvement over a seeded candidate set.  No new dependencies.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..sim.rng import tuning_seed
from .ledger import TrialRecord
from .space import SearchSpace

__all__ = ["Proposal", "Strategy", "STRATEGIES", "make_strategy"]


@dataclass(frozen=True)
class Proposal:
    """One point to evaluate: parameters plus the evaluation fidelity
    (fraction of the mix's full workload-trial count)."""

    params: dict
    fidelity: float = 1.0


class Strategy(abc.ABC):
    """One search policy over a :class:`SearchSpace`."""

    name = "strategy"
    #: option name → scalar type, the strategy's declared knobs.
    OPTIONS: dict = {}

    def __init__(
        self, space: SearchSpace, *, seed: int, budget: int, **options: object
    ) -> None:
        self.space = space
        self.seed = int(seed)
        self.budget = int(budget)
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        unknown = sorted(set(options) - set(self.OPTIONS))
        if unknown:
            raise ValueError(
                f"unknown {self.name} option(s) {unknown}; "
                f"allowed: {sorted(self.OPTIONS)}"
            )
        coerced: dict = {}
        for key, kind in self.OPTIONS.items():
            if key not in options:
                continue
            value = options[key]
            if kind is int:
                if isinstance(value, float):
                    if not value.is_integer():
                        raise ValueError(
                            f"{self.name} option {key} must be an integer, got {value!r}"
                        )
                    value = int(value)
                elif not isinstance(value, int) or isinstance(value, bool):
                    raise ValueError(
                        f"{self.name} option {key} must be an integer, got {value!r}"
                    )
            else:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(
                        f"{self.name} option {key} must be a number, got {value!r}"
                    )
                value = float(value)
            coerced[key] = value
        self.options = coerced

    def _rng(self, index: int) -> np.random.Generator:
        """The trial's own child of the ``tuning`` named stream —
        proposal *i* is independent of every other proposal's draws."""
        return np.random.default_rng(tuning_seed(self.seed, f"trial/{index}"))

    @abc.abstractmethod
    def propose(self, history: Sequence[TrialRecord]) -> Proposal | None:
        """The next proposal given the observed history (``None`` = done)."""

    def spec_dict(self) -> dict:
        """Canonical ``{"kind": ..., **options}`` form (ledger identity)."""
        return {"kind": self.name, **{k: self.options[k] for k in sorted(self.options)}}


class RandomStrategy(Strategy):
    """Independent uniform samples until the budget is spent."""

    name = "random"

    def propose(self, history: Sequence[TrialRecord]) -> Proposal | None:
        index = len(history)
        if index >= self.budget:
            return None
        return Proposal(params=self.space.sample(self._rng(index)))


class SuccessiveHalvingStrategy(Strategy):
    """Random population, best ``1/eta`` promoted at ``eta``× fidelity.

    The rung plan is fixed up front from (population, eta): rung *r*
    holds ``floor(population / eta^r)`` configs at fidelity
    ``eta^(r - s)`` where ``s = floor(log_eta(population))`` — the top
    rung always runs at fidelity 1.  Promotion ranks the previous rung
    by score (ties to the earlier trial), so the whole plan is a pure
    function of (seed, history scores).
    """

    name = "successive-halving"
    OPTIONS = {"population": int, "eta": int}

    def __init__(
        self, space: SearchSpace, *, seed: int, budget: int, **options: object
    ) -> None:
        super().__init__(space, seed=seed, budget=budget, **options)
        # Resolved defaults are written back into ``options`` so
        # ``spec_dict`` — and through it the ledger key — captures the
        # *actual* plan (the defaults depend on the budget, which is
        # deliberately not part of the key).
        self.eta = int(self.options.setdefault("eta", 2))
        if self.eta < 2:
            raise ValueError(f"successive-halving eta must be >= 2, got {self.eta}")
        population = self.options.get("population")
        if population is None:
            # Largest population whose full rung plan fits the budget.
            population = 1
            for n0 in range(1, self.budget + 1):
                if sum(self._rung_sizes(n0)) <= self.budget:
                    population = n0
            self.options["population"] = population
        self.population = int(population)
        if self.population < 1:
            raise ValueError(
                f"successive-halving population must be >= 1, got {self.population}"
            )
        self.rung_sizes = self._rung_sizes(self.population)

    def _rung_sizes(self, population: int) -> list[int]:
        halvings = int(math.log(max(population, 1), self.eta))
        return [max(1, population // self.eta**r) for r in range(halvings + 1)]

    def propose(self, history: Sequence[TrialRecord]) -> Proposal | None:
        index = len(history)
        if index >= self.budget or index >= sum(self.rung_sizes):
            return None
        halvings = len(self.rung_sizes) - 1
        rung, start = 0, 0
        while index >= start + self.rung_sizes[rung]:
            start += self.rung_sizes[rung]
            rung += 1
        fidelity = float(self.eta ** (rung - halvings))
        if rung == 0:
            return Proposal(params=self.space.sample(self._rng(index)), fidelity=fidelity)
        prev_start = start - self.rung_sizes[rung - 1]
        previous = list(history[prev_start:start])
        ranked = sorted(previous, key=lambda r: (-r.score, r.index))
        return Proposal(params=dict(ranked[index - start].params), fidelity=fidelity)


class BayesStrategy(Strategy):
    """Gaussian-process surrogate + expected improvement (pure NumPy).

    After ``init`` random trials, the observed (normalized coordinates →
    standardized score) pairs fit an RBF-kernel GP (Cholesky solve,
    jittered by ``noise``); the next proposal maximizes expected
    improvement over ``candidates`` seeded uniform candidate points.
    ``argmax`` takes the first maximizer, so the whole step is
    deterministic given (seed, history).
    """

    name = "bayes"
    OPTIONS = {
        "init": int,
        "candidates": int,
        "length_scale": float,
        "noise": float,
        "xi": float,
    }

    def __init__(
        self, space: SearchSpace, *, seed: int, budget: int, **options: object
    ) -> None:
        super().__init__(space, seed=seed, budget=budget, **options)
        # As in successive-halving: resolved defaults land in ``options``
        # so the ledger key pins the actual plan (init depends on budget).
        default_init = min(budget, max(3, len(space.params) + 2))
        self.init = int(self.options.setdefault("init", default_init))
        self.candidates = int(self.options.setdefault("candidates", 64))
        self.length_scale = float(self.options.setdefault("length_scale", 0.25))
        self.noise = float(self.options.setdefault("noise", 1e-6))
        self.xi = float(self.options.setdefault("xi", 0.01))
        if self.init < 1:
            raise ValueError(f"bayes init must be >= 1, got {self.init}")
        if self.candidates < 1:
            raise ValueError(f"bayes candidates must be >= 1, got {self.candidates}")
        if self.length_scale <= 0 or self.noise <= 0:
            raise ValueError("bayes length_scale and noise must be > 0")

    def propose(self, history: Sequence[TrialRecord]) -> Proposal | None:
        index = len(history)
        if index >= self.budget:
            return None
        rng = self._rng(index)
        if index < self.init:
            return Proposal(params=self.space.sample(rng))
        coords = np.asarray(
            [self.space.normalize(r.params) for r in history], dtype=np.float64
        )
        scores = np.asarray([r.score for r in history], dtype=np.float64)
        std = float(scores.std())
        y = (scores - scores.mean()) / (std if std > 0 else 1.0)
        kernel = self._rbf(coords, coords)
        kernel[np.diag_indices_from(kernel)] += self.noise
        chol = np.linalg.cholesky(kernel)
        alpha = np.linalg.solve(chol.T, np.linalg.solve(chol, y))
        # One uniform block per candidate set — a pure function of the
        # trial index, like every other draw.
        cands = rng.random((self.candidates, len(self.space.params)))
        k_star = self._rbf(cands, coords)
        mean = k_star @ alpha
        v = np.linalg.solve(chol, k_star.T)
        var = np.maximum(1.0 + self.noise - np.sum(v * v, axis=0), 1e-12)
        sigma = np.sqrt(var)
        best = float(y.max())
        z = (mean - best - self.xi) / sigma
        cdf = 0.5 * (1.0 + np.asarray([math.erf(zi / math.sqrt(2.0)) for zi in z]))
        pdf = np.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
        ei = (mean - best - self.xi) * cdf + sigma * pdf
        return Proposal(params=self.space.at(cands[int(np.argmax(ei))]))

    def _rbf(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = np.sum((a[:, None, :] - b[None, :, :]) ** 2, axis=-1)
        return np.exp(-0.5 * sq / self.length_scale**2)


#: name → strategy class, the pluggable registry.
STRATEGIES: dict[str, type[Strategy]] = {
    "random": RandomStrategy,
    "successive-halving": SuccessiveHalvingStrategy,
    "bayes": BayesStrategy,
}


def _parse_option_value(raw: str) -> object:
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            raise ValueError(f"expected a number, got {raw!r}") from None


def make_strategy(
    spec: object, space: SearchSpace, *, seed: int, budget: int
) -> Strategy:
    """Resolve a strategy spec to an instance.

    Accepted: a registered name (``"bayes"``), a spec string with
    options (``"successive-halving:population=8,eta=2"``), or a mapping
    (``{"kind": "bayes", "init": 4}``).
    """
    if isinstance(spec, Mapping):
        fields = dict(spec)
        kind = fields.pop("kind", None)
        if kind not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {kind!r}; choose from {sorted(STRATEGIES)}"
            )
        return STRATEGIES[kind](space, seed=seed, budget=budget, **fields)
    if isinstance(spec, str):
        kind, _, rest = spec.partition(":")
        kind = kind.strip()
        if kind not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {kind!r}; choose from {sorted(STRATEGIES)}"
            )
        options: dict = {}
        if rest.strip():
            for item in rest.split(","):
                item = item.strip()
                if not item:
                    continue
                key, eq, value = item.partition("=")
                if not eq:
                    raise ValueError(f"strategy option {item!r} is not key=value")
                try:
                    options[key.strip()] = _parse_option_value(value.strip())
                except ValueError as exc:
                    raise ValueError(f"strategy option {key.strip()!r}: {exc}") from exc
        return STRATEGIES[kind](space, seed=seed, budget=budget, **options)
    raise ValueError(f"unrecognized strategy spec: {spec!r}")

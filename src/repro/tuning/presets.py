"""Named tuning problems: a search space plus its evaluation mix.

A preset bundles everything ``repro tune <name>`` needs — the space, the
mix of experiment cells to score proposals on, and sensible strategy /
objective / budget defaults (each overridable from the CLI).  Presets
are factories: every call builds fresh config objects, so callers can
mutate trial counts or seeds without cross-talk.

``smoke``
    One tiny spiky cell, a 2-D (β, α) space, random search, budget 4 —
    the CI-speed end-to-end exercise of the tuner loop.
``control-bursty``
    The control-plane benchmark mix (three oversubscription levels of
    the bursty MMPP family, hysteresis controller at the paper-default
    β = 0.5) with the hysteresis knobs as the search space.  This is the
    problem ``benchmarks/bench_tuning.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from ..core.config import ControllerConfig, PruningConfig
from ..experiments.runner import ExperimentConfig
from ..workload.spec import WorkloadSpec
from .space import Categorical, Continuous, Integer, SearchSpace

__all__ = ["TunePreset", "TUNE_PRESETS", "get_preset"]


@dataclass(frozen=True)
class TunePreset:
    """One named tuning problem with its default search settings."""

    name: str
    description: str
    space: SearchSpace
    #: Zero-argument factory — fresh configs per call.
    configs: Callable[[], list[ExperimentConfig]] = field(repr=False)
    strategy: str = "random"
    objective: str = "pooled-on-time"
    budget: int = 8
    seed: int = 0


def _smoke_configs() -> list[ExperimentConfig]:
    return [
        ExperimentConfig(
            heuristic="MM",
            spec=WorkloadSpec(
                num_tasks=120, time_span=80.0, num_task_types=4, pattern="spiky"
            ),
            pruning=PruningConfig(pruning_threshold=0.5),
            trials=2,
            base_seed=7,
            label="smoke",
        )
    ]


#: The control benchmark's bursty MMPP family (benchmarks/bench_control.py).
_CONTROL_LEVELS = {"mild": 320, "heavy": 400, "extreme": 480}

#: The benchmark's hysteresis contender — the tuning baseline cell.
_CONTROL_ADAPTIVE = ControllerConfig(
    kind="hysteresis",
    low=0.0,
    high=0.1,
    step=0.25,
    cooldown=2,
    window=3,
    beta_min=0.25,
    beta_max=0.95,
)


def _control_configs() -> list[ExperimentConfig]:
    return [
        ExperimentConfig(
            heuristic="MM",
            spec=WorkloadSpec(
                num_tasks=num_tasks,
                time_span=150.0,
                num_task_types=8,
                pattern="bursty",
                burst_amplitude=8.0,
                burst_fraction=0.15,
                burst_cycles=4.0,
            ),
            pruning=PruningConfig(pruning_threshold=0.5, controller=_CONTROL_ADAPTIVE),
            trials=5,
            base_seed=42,
            label=f"adaptive@{lname}",
        )
        for lname, num_tasks in _CONTROL_LEVELS.items()
    ]


TUNE_PRESETS: dict[str, TunePreset] = {
    "smoke": TunePreset(
        name="smoke",
        description="tiny spiky cell, (beta, alpha) space — CI smoke test",
        space=SearchSpace(
            (
                Continuous("beta", 0.2, 0.9),
                Categorical("alpha", (0, 2, 5)),
            )
        ),
        configs=_smoke_configs,
        strategy="random",
        objective="pooled-on-time",
        budget=4,
        seed=0,
    ),
    "control-bursty": TunePreset(
        name="control-bursty",
        description=(
            "bench_control bursty mix; hysteresis controller knobs "
            "(high, step, cooldown, window)"
        ),
        space=SearchSpace(
            (
                Continuous("controller.high", 0.02, 0.4, scale="log"),
                Continuous("controller.step", 0.05, 0.5),
                Integer("controller.cooldown", 1, 4),
                Integer("controller.window", 1, 6),
            )
        ),
        configs=_control_configs,
        # GP/EI: 6 random init trials, then 6 surrogate-guided — the
        # guided phase is what pushes past the hand-set contender on
        # this space (successive halving plateaus just below it).
        strategy="bayes",
        objective="pooled-on-time",
        budget=12,
        seed=42,
    ),
}


def get_preset(name: str) -> TunePreset:
    if name not in TUNE_PRESETS:
        raise ValueError(
            f"unknown tuning preset {name!r}; choose from {sorted(TUNE_PRESETS)}"
        )
    return TUNE_PRESETS[name]

"""The tuner's trial ledger: one JSON file, one record per trial.

The ledger is the search's durable memory.  Every completed trial is
appended and the file is rewritten atomically (temp file +
``os.replace``), so an interrupted search resumes from the exact trial
it stopped at.  A ``key`` fingerprint of the search identity (space,
evaluation mix, strategy, objective, seed — deliberately *not* the
budget, so a search can be extended) guards against resuming one
search's trajectory under a different problem.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence

__all__ = [
    "TrialRecord",
    "read_ledger",
    "write_ledger",
    "ledger_best",
    "LEDGER_VERSION",
]

#: Bump on ledger *format* changes.
LEDGER_VERSION = 1


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated proposal: what was tried, at what fidelity, and how
    it scored."""

    index: int
    params: dict
    score: float
    #: Fraction of the mix's full trial count this evaluation ran at
    #: (successive halving evaluates early rungs cheaply).
    fidelity: float = 1.0
    #: Trials per cell actually run (``ceil(full * fidelity)``, min 1).
    trials: int = 0
    #: Per-cell pooled mean on-time %, label → value (diagnostics).
    cells: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "params": dict(self.params),
            "score": self.score,
            "fidelity": self.fidelity,
            "trials": self.trials,
            "cells": dict(self.cells),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> TrialRecord:
        return cls(
            index=int(payload["index"]),
            params=dict(payload["params"]),
            score=float(payload["score"]),
            fidelity=float(payload.get("fidelity", 1.0)),
            trials=int(payload.get("trials", 0)),
            cells=dict(payload.get("cells", {})),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_misses=int(payload.get("cache_misses", 0)),
        )


def read_ledger(path: str | Path, key: str) -> list[TrialRecord]:
    """Load the records of a prior run of the *same* search.

    A missing file is an empty history; a ledger written by a different
    problem (mismatched ``key``) or format version is an error — silently
    resuming a foreign trajectory would poison the purity contract.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read trial ledger {path}: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ValueError(f"trial ledger {path} is not a JSON object")
    version = payload.get("version")
    if version != LEDGER_VERSION:
        raise ValueError(
            f"trial ledger {path} has format version {version!r}; "
            f"this build writes {LEDGER_VERSION}"
        )
    if payload.get("key") != key:
        raise ValueError(
            f"trial ledger {path} belongs to a different search "
            f"(key {payload.get('key')!r} != {key!r}); point --ledger at a "
            f"fresh path or delete the stale file"
        )
    records = [TrialRecord.from_dict(r) for r in payload.get("records", ())]
    for i, record in enumerate(records):
        if record.index != i:
            raise ValueError(
                f"trial ledger {path} is not contiguous at record {i} "
                f"(found index {record.index})"
            )
    return records


def ledger_best(path: str | Path, rank: int = 0) -> dict:
    """The ``rank``-th best parameter set recorded in a ledger file.

    This is the *consumer* side — e.g. a sweep grid replaying a tuned
    configuration — so unlike :func:`read_ledger` it takes any ledger
    regardless of which search wrote it.  Ranking mirrors the tuner's
    own best-pick: full-fidelity records first (fall back to all when
    none exist), scored descending, ties to the earlier trial.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read trial ledger {path}: {exc}") from exc
    if not isinstance(payload, Mapping) or payload.get("version") != LEDGER_VERSION:
        raise ValueError(
            f"{path} is not a version-{LEDGER_VERSION} trial ledger"
        )
    records = [TrialRecord.from_dict(r) for r in payload.get("records", ())]
    if not records:
        raise ValueError(f"trial ledger {path} has no recorded trials")
    full = [r for r in records if r.fidelity >= 1.0] or records
    ranked = sorted(full, key=lambda r: (-r.score, r.index))
    if not 0 <= rank < len(ranked):
        raise ValueError(
            f"trial ledger {path} has {len(ranked)} ranked trial(s); "
            f"rank {rank} is out of range"
        )
    return dict(ranked[rank].params)


def write_ledger(
    path: str | Path,
    key: str,
    problem: Mapping,
    records: Sequence[TrialRecord],
) -> None:
    """Atomically persist the search state after a completed trial."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": LEDGER_VERSION,
        "key": key,
        "problem": dict(problem),
        "records": [r.to_dict() for r in records],
    }
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2))
    os.replace(tmp, path)

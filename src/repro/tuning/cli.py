"""Command-line interface: ``repro tune <preset|space.json>``.

Usage::

    python -m repro.experiments tune smoke --jobs 2
    python -m repro.experiments tune control-bursty --strategy bayes --budget 12
    python -m repro.experiments tune my_space.json --mix adaptive --budget 8

The positional target is either a tuning preset name (``smoke``,
``control-bursty``) — which bundles a search space *and* an evaluation
mix — or a path to a search-space JSON file, in which case ``--mix``
names the evaluation mix (a sweep preset or grid JSON, the same values
``repro sweep`` accepts).

Every search is resumable: completed trials land in a JSON ledger (by
default under ``<cache-dir>/tuning/``) and re-running the same search
replays them instead of re-simulating.  Simulations inside each trial
go through the ordinary campaign result cache, so even a deleted ledger
re-runs warm.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from ..experiments.campaign import DEFAULT_CACHE_DIR, ResultCache, SweepGrid
from .ledger import TrialRecord
from .presets import TUNE_PRESETS, get_preset
from .space import SearchSpace
from .tuner import Tuner

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Search β/α/controller configurations with the offline "
        "auto-tuner (deterministic: same seed ⇒ same trajectory).",
    )
    parser.add_argument(
        "target",
        help="a tuning preset "
        f"({', '.join(sorted(TUNE_PRESETS))}) or a search-space JSON path",
    )
    parser.add_argument(
        "--mix",
        default=None,
        help="evaluation mix for a JSON search space: a sweep preset name "
        "or grid JSON path (presets bundle their own mix)",
    )
    parser.add_argument(
        "--strategy",
        default=None,
        help="search strategy: random, successive-halving, bayes — "
        "optionally with options, e.g. 'successive-halving:population=8' "
        "(default: the preset's, else random)",
    )
    parser.add_argument(
        "--objective",
        default=None,
        help="scoring objective: 'pooled-on-time' or "
        "'paired-delta:<baseline cell label>' (default: the preset's, "
        "else pooled-on-time)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="max trials to evaluate, resumed ones included "
        "(default: the preset's, else 8)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="search seed — part of the search identity "
        "(default: the preset's, else 0)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="full-fidelity workload trials per cell "
        "(default: the mix's own value)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker count for each trial's campaign (default: serial)",
    )
    parser.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default="auto",
        help="how --jobs shards simulations (byte-identical under every choice)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(DEFAULT_CACHE_DIR),
        help="per-trial result cache directory (re-runs resume from it)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run",
    )
    parser.add_argument(
        "--ledger",
        type=Path,
        default=None,
        help="trial-ledger path (default: <cache-dir>/tuning/<name>-<key>.json)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not persist the trial ledger (search is not resumable)",
    )
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="directory to write a tune-<name>.json result (stats + records)",
    )
    return parser


def _load_problem(args: argparse.Namespace) -> tuple[str, SearchSpace, list, dict]:
    """Resolve the target into (name, space, mix configs, defaults)."""
    if args.target in TUNE_PRESETS:
        preset = get_preset(args.target)
        defaults = {
            "strategy": preset.strategy,
            "objective": preset.objective,
            "budget": preset.budget,
            "seed": preset.seed,
        }
        return preset.name, preset.space, preset.configs(), defaults
    path = Path(args.target)
    if not path.exists():
        raise ValueError(
            f"{args.target!r} is neither a tuning preset "
            f"({', '.join(sorted(TUNE_PRESETS))}) nor an existing "
            f"search-space JSON path"
        )
    space = SearchSpace.from_json(path)
    if args.mix is None:
        raise ValueError(
            "a JSON search space needs --mix <sweep preset|grid.json> "
            "for the evaluation mix"
        )
    grid = SweepGrid.load(args.mix)
    configs = [cell.config for cell in grid.expand()]
    defaults = {"strategy": "random", "objective": "pooled-on-time", "budget": 8, "seed": 0}
    return path.stem, space, configs, defaults


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        name, space, configs, defaults = _load_problem(args)
        if args.trials is not None:
            if args.trials < 1:
                raise ValueError(f"--trials must be >= 1, got {args.trials}")
            import dataclasses

            configs = [dataclasses.replace(c, trials=args.trials) for c in configs]

        cache = None
        if not args.no_cache:
            cache = ResultCache(args.cache_dir)
            cache.prune_stale()

        tuner = Tuner(
            space,
            configs,
            strategy=args.strategy if args.strategy is not None else defaults["strategy"],
            objective=(
                args.objective if args.objective is not None else defaults["objective"]
            ),
            budget=args.budget if args.budget is not None else defaults["budget"],
            seed=args.seed if args.seed is not None else defaults["seed"],
            cache=cache,
            jobs=args.jobs,
            executor=args.executor,
            name=name,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.no_ledger:
        tuner.ledger_path = None
    elif args.ledger is not None:
        tuner.ledger_path = args.ledger
    else:
        safe_name = re.sub(r"[^\w.-]", "_", name) or "tune"
        tuner.ledger_path = (
            args.cache_dir / "tuning" / f"{safe_name}-{tuner.key[:12]}.json"
        )

    def progress(record: TrialRecord) -> None:
        fid = f" f={record.fidelity:g}" if record.fidelity != 1.0 else ""
        print(
            f"trial {record.index:3d}: {record.score:7.3f}%{fid}  {record.params}"
        )

    try:
        result = tuner.run(progress=progress)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    stats = result.stats()
    print()
    print(
        f"tune {name}: best trial {stats['best_index']} "
        f"scored {stats['best_score']:.3f}% "
        f"({stats['trials']} trials, {stats['resumed']} resumed, "
        f"cache {stats['cache_hits']} hits / {stats['cache_misses']} misses)"
    )
    print(f"best params: {stats['best_params']}")
    if tuner.ledger_path is not None:
        print(f"[ledger: {tuner.ledger_path}]")

    if args.json_dir is not None:
        args.json_dir.mkdir(parents=True, exist_ok=True)
        safe_name = re.sub(r"[^\w.-]", "_", name) or "tune"
        out = args.json_dir / f"tune-{safe_name}.json"
        out.write_text(
            json.dumps(
                {
                    "tuner_stats": stats,
                    "key": tuner.key,
                    "records": [r.to_dict() for r in result.records],
                },
                indent=2,
            )
            + "\n"
        )
        print(f"[written: {out}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Top-level ``repro`` command: one console entry over the sub-CLIs.

``repro lint``   → :mod:`repro.lint.cli` (the determinism linter)
``repro tune``   → :mod:`repro.tuning.cli` (the offline auto-tuner)
``repro <cmd>``  → :mod:`repro.experiments.cli` (fig7/sweep/serve/...)

Installed via ``[project.scripts]``; without an install the module
forms keep working: ``python -m repro.lint``, ``python -m
repro.experiments``.
"""

from __future__ import annotations

import sys

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "lint":
        from .lint.cli import main as lint_main

        return lint_main(args[1:])
    if args and args[0] == "tune":
        from .tuning.cli import main as tune_main

        return tune_main(args[1:])
    from .experiments.cli import main as experiments_main

    return experiments_main(args if args else None)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

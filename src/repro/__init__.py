"""repro — Probabilistic Task Pruning for Heterogeneous Serverless Systems.

A full reproduction of Denninnart, Gentry & Amini Salehi,
"Improving Robustness of Heterogeneous Serverless Computing Systems Via
Probabilistic Task Pruning" (IPDPS Workshops 2019, arXiv:1905.04456).

Public API layers
-----------------
* probabilistic substrate — :class:`PMF`, :class:`PETMatrix`,
  :class:`ETCMatrix`, :func:`generate_pet_matrix`
* simulation substrate — :class:`Simulator`, :class:`Machine`,
  :class:`Cluster`, :class:`Task`
* heuristics — :func:`make_heuristic` and the §III classes
* pruning mechanism — :class:`PruningConfig`, :class:`Pruner`
* system — :class:`ServerlessSystem`
* workloads — :class:`WorkloadSpec`, :func:`generate_workload`
* metrics — :class:`SimulationResult`, :func:`aggregate_robustness`
* experiments — ``repro.experiments`` regenerates every figure/table.
"""

from .analysis import TimelineRecorder
from .control import ControllerDriver, ControlSignals, Setpoints, make_controller
from .core import (
    Accounting,
    ControllerConfig,
    FairnessTracker,
    Pruner,
    PruningConfig,
    ToggleMode,
)
from .heuristics import (
    ALL_HEURISTICS,
    BATCH_HEURISTICS,
    HOMOGENEOUS_HEURISTICS,
    IMMEDIATE_HEURISTICS,
    make_heuristic,
)
from .metrics import (
    AggregateStats,
    SimulationResult,
    aggregate_robustness,
    confidence_interval,
)
from .sim import Cluster, DynamicsSpec, Machine, RngStreams, Simulator, Task, TaskStatus
from .stochastic import ETCMatrix, PETMatrix, PMF, generate_pet_matrix
from .system import CompletionEstimator, ServerlessSystem
from .workload import (
    ArrivalPattern,
    WorkloadSpec,
    generate_workload,
    load_trace,
    save_trace,
    trimmed_slice,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # stochastic
    "PMF",
    "PETMatrix",
    "ETCMatrix",
    "generate_pet_matrix",
    # sim
    "Simulator",
    "Machine",
    "Cluster",
    "Task",
    "TaskStatus",
    "RngStreams",
    "DynamicsSpec",
    # heuristics
    "make_heuristic",
    "ALL_HEURISTICS",
    "IMMEDIATE_HEURISTICS",
    "BATCH_HEURISTICS",
    "HOMOGENEOUS_HEURISTICS",
    # core
    "PruningConfig",
    "ControllerConfig",
    "ToggleMode",
    "Pruner",
    "Accounting",
    "FairnessTracker",
    # control plane
    "ControlSignals",
    "Setpoints",
    "ControllerDriver",
    "make_controller",
    # system
    "ServerlessSystem",
    "CompletionEstimator",
    # workload
    "WorkloadSpec",
    "ArrivalPattern",
    "generate_workload",
    "trimmed_slice",
    "save_trace",
    "load_trace",
    # analysis
    "TimelineRecorder",
    # metrics
    "SimulationResult",
    "AggregateStats",
    "aggregate_robustness",
    "confidence_interval",
]

"""Extensions implementing the paper's §VII future-work directions."""

from .energy import EnergyModel, EnergyReport, measure_energy
from .priority import ValueAwarePruner, inverse_value_weight

__all__ = [
    "EnergyModel",
    "EnergyReport",
    "measure_energy",
    "ValueAwarePruner",
    "inverse_value_weight",
]

"""Energy / incurred-cost accounting (§VII future work).

"We believe that probabilistic task pruning improves energy efficiency by
saving the computing power that is otherwise wasted to execute failing
tasks.  Such saving … can also reduce the incurred cost of using cloud
resources.  In the future, we plan to measure such improvements."

This extension measures them.  The model is deliberately simple and
standard: each machine type has an active power draw and an idle draw
(watts, arbitrary units) and a per-busy-time-unit monetary rate.  From a
finished simulation we then report:

* total energy, split into *useful* energy (spent on tasks that completed
  on time) and *wasted* energy (spent on tasks that finished late — work
  the paper's motivation says has no value);
* incurred cost under a serverless billing model (charged for busy time
  only);
* energy-per-on-time-task, the efficiency headline.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence


from ..sim.cluster import Cluster
from ..sim.task import Task, TaskStatus

__all__ = ["EnergyModel", "EnergyReport", "measure_energy"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-machine-type power and price parameters."""

    #: Active power draw per machine type (power units).
    active_power: tuple[float, ...]
    #: Idle power draw per machine type.
    idle_power: tuple[float, ...]
    #: Billing rate per busy time unit per machine type (cost units).
    price_per_busy_unit: tuple[float, ...]

    @classmethod
    def uniform(
        cls,
        num_machine_types: int,
        *,
        active: float = 100.0,
        idle: float = 30.0,
        price: float = 1.0,
    ) -> EnergyModel:
        return cls(
            active_power=(active,) * num_machine_types,
            idle_power=(idle,) * num_machine_types,
            price_per_busy_unit=(price,) * num_machine_types,
        )

    def __post_init__(self) -> None:
        n = len(self.active_power)
        if len(self.idle_power) != n or len(self.price_per_busy_unit) != n:
            raise ValueError("power/price tuples must have equal lengths")
        if any(p < 0 for p in self.active_power + self.idle_power + self.price_per_busy_unit):
            raise ValueError("power and price values must be non-negative")


@dataclass(frozen=True)
class EnergyReport:
    """Energy and cost outcome of one simulation trial."""

    total_energy: float
    useful_energy: float      #: spent on tasks that completed on time
    wasted_energy: float      #: spent on tasks that completed late
    idle_energy: float
    incurred_cost: float      #: serverless billing: busy time × rate
    on_time_tasks: int

    @property
    def waste_fraction(self) -> float:
        """Fraction of active energy spent on late (valueless) work."""
        active = self.useful_energy + self.wasted_energy
        return self.wasted_energy / active if active > 0 else 0.0

    @property
    def energy_per_on_time_task(self) -> float:
        if self.on_time_tasks == 0:
            return float("inf")
        return self.total_energy / self.on_time_tasks

    def summary(self) -> str:
        return (
            f"energy={self.total_energy:.0f} (useful={self.useful_energy:.0f}, "
            f"wasted={self.wasted_energy:.0f}, idle={self.idle_energy:.0f}), "
            f"cost={self.incurred_cost:.0f}, "
            f"energy/on-time-task={self.energy_per_on_time_task:.1f}"
        )


def measure_energy(
    tasks: Sequence[Task],
    cluster: Cluster,
    model: EnergyModel,
    makespan: float,
) -> EnergyReport:
    """Compute the energy/cost report for a finished trial.

    Requires tasks to carry their scheduling outcome (``machine_id``,
    ``exec_time``, terminal status), i.e. run them through
    :class:`~repro.system.ServerlessSystem` first.
    """
    if makespan < 0:
        raise ValueError("makespan must be non-negative")
    n_types = len(model.active_power)
    useful = 0.0
    wasted = 0.0
    on_time = 0
    for task in tasks:
        if task.exec_time is None or task.machine_id is None:
            continue  # never started
        machine = cluster[task.machine_id]
        if machine.machine_type >= n_types:
            raise IndexError(
                f"machine type {machine.machine_type} outside energy model "
                f"({n_types} types)"
            )
        energy = task.exec_time * model.active_power[machine.machine_type]
        if task.status is TaskStatus.COMPLETED_ON_TIME:
            useful += energy
            on_time += 1
        elif task.status is TaskStatus.COMPLETED_LATE:
            wasted += energy
        # Dropped tasks never ran: no energy attributed.

    idle = 0.0
    cost = 0.0
    for machine in cluster.machines:
        idle_time = max(makespan - machine.busy_time, 0.0)
        idle += idle_time * model.idle_power[machine.machine_type]
        cost += machine.busy_time * model.price_per_busy_unit[machine.machine_type]

    return EnergyReport(
        total_energy=useful + wasted + idle,
        useful_energy=useful,
        wasted_energy=wasted,
        idle_energy=idle,
        incurred_cost=cost,
        on_time_tasks=on_time,
    )

"""Value/priority-aware pruning (§VII future work).

"Another future plan is to work on pruning methods that incorporate
cost/priority of tasks, when considering dropping each individual task."

:class:`ValueAwarePruner` extends the base :class:`~repro.core.Pruner` so
the pruning bar depends on what a task is *worth*:

* every task carries a ``value`` (revenue if it completes on time) and an
  integer ``priority`` class;
* the effective pruning threshold of a task is scaled down by its value
  weight — a high-value task must look *really* hopeless before it is
  pruned, while a low-value task is pruned at the first sign of trouble;
* tasks at or above ``protect_priority`` are never proactively pruned
  (only reactive deadline drops can remove them).

The expected-value view: mapping a task yields expected revenue
``chance × value`` while occupying capacity proportional to its expected
execution time; pruning when ``chance ≤ β_k × weight(value)`` approximates
keeping only positive-density work.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from ..core.accounting import Accounting
from ..core.config import PruningConfig
from ..core.pruner import Pruner
from ..sim.task import Task

__all__ = ["ValueAwarePruner", "inverse_value_weight"]


def inverse_value_weight(value: float, *, pivot: float = 1.0) -> float:
    """Default weight: ``pivot / (pivot + value)`` ∈ (0, 1].

    ``value = 0`` → weight 1 (full threshold, easiest to prune);
    ``value = pivot`` → threshold halved; large values → rarely pruned.
    """
    if value < 0:
        raise ValueError("task value must be non-negative")
    return pivot / (pivot + value)


class ValueAwarePruner(Pruner):
    """A :class:`~repro.core.Pruner` whose bar scales with task value."""

    def __init__(
        self,
        config: PruningConfig,
        accounting: Accounting | None = None,
        *,
        weight_fn: Callable[[float], float] = inverse_value_weight,
        protect_priority: int | None = None,
    ) -> None:
        super().__init__(config, accounting)
        self.weight_fn = weight_fn
        self.protect_priority = protect_priority

    # ------------------------------------------------------------------
    def _effective_threshold(self, task: Task) -> float:
        base = self.fairness.effective_threshold(
            self.setpoints.beta, task.task_type
        )
        weight = self.weight_fn(task.value)
        if not 0.0 <= weight <= 1.0 or math.isnan(weight):
            raise ValueError(f"weight function returned {weight}, expected [0, 1]")
        return base * weight

    def _is_protected(self, task: Task) -> bool:
        return (
            self.protect_priority is not None
            and task.priority >= self.protect_priority
        )

    # ------------------------------------------------------------------
    # The base Pruner's cumulative drop scan (batched chance queries,
    # suffix re-convolution after each drop) is reused as-is; value
    # awareness plugs in through the two scan hooks.
    def _scan_skip(self, task: Task) -> bool:
        return self._is_protected(task)

    def _scan_threshold(self, task: Task) -> float:
        return self._effective_threshold(task)

    def should_defer(self, task: Task, chance: float) -> bool:
        if not self.config.enable_deferring or self._is_protected(task):
            return False
        if chance <= self._effective_threshold(task):
            self.defer_decisions += 1
            return True
        return False

    # ------------------------------------------------------------------
    @staticmethod
    def attach(system, **kwargs) -> ValueAwarePruner:
        """Swap a running :class:`~repro.system.ServerlessSystem`'s pruner
        for a value-aware one (before submitting the workload)."""
        if system.pruner is None:
            raise ValueError("system was built without a pruning config")
        pruner = ValueAwarePruner(
            system.pruner.config, system.accounting, **kwargs
        )
        system.pruner = pruner
        system.allocator.pruner = pruner
        return pruner

"""Workload specifications (§V-B).

The paper feeds a determined number of tasks per time unit within a finite
time span, across twelve task types, under two arrival patterns:

* **constant** — per-type inter-arrival gaps drawn from a Gamma
  distribution whose variance is 10 % of its mean;
* **spiky** (default) — the constant pattern modulated by periodic demand
  spikes: during a spike the arrival rate rises to 3× the base (lull)
  rate, and each spike lasts one third of the lull period (Fig. 6).

Deadlines follow Eq. 4:  ``δ_i = arr_i + avg_i + β·avg_all`` with β drawn
uniformly from [0.8, 2.5] per task.

The paper's default scale is 15k–25k tasks over ~3000 time units; the
library default is a 0.1× scale (same *rates*, shorter span) so the full
experiment suite runs on a laptop.  ``paper_scale()`` restores the
original size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["ArrivalPattern", "WorkloadSpec", "PAPER_TIME_SPAN"]

#: Approximate time span of the paper's workload trials (Fig. 6 x-axis).
PAPER_TIME_SPAN = 3000.0


class ArrivalPattern(enum.Enum):
    CONSTANT = "constant"
    SPIKY = "spiky"
    #: Inhomogeneous Poisson (thinning) under the spiky rate profile —
    #: the same mean load as SPIKY but with true Poisson dispersion.
    POISSON = "poisson"
    #: Two-state Markov-modulated Poisson process (random burst onsets
    #: with exponential dwell times, unlike SPIKY's periodic spikes).
    BURSTY = "bursty"
    #: Replay a recorded trace (CSV/JSON) instead of generating arrivals.
    TRACE = "trace"


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one workload trial."""

    num_tasks: int = 1500
    time_span: float = 300.0
    num_task_types: int = 12
    pattern: ArrivalPattern = ArrivalPattern.SPIKY
    #: Gamma inter-arrival variance as a fraction of the mean gap (§V-B-A).
    variance_fraction: float = 0.1
    #: Spike amplitude relative to the lull rate ("up to three times").
    spike_amplitude: float = 3.0
    #: Spike duration as a fraction of the lull period ("one third").
    spike_duration_fraction: float = 1.0 / 3.0
    #: Number of demand spikes across the span (Fig. 6 shows ~4).
    num_spikes: int = 4
    #: Deadline slack multiplier range for Eq. 4's β.
    beta_range: tuple[float, float] = (0.8, 2.5)
    #: BURSTY pattern: burst-state rate relative to the quiet rate.
    burst_amplitude: float = 5.0
    #: BURSTY pattern: long-run fraction of time spent in the burst state.
    burst_fraction: float = 0.2
    #: BURSTY pattern: expected quiet→burst cycles across the span.
    burst_cycles: float = 8.0
    #: TRACE pattern: path of the trace to replay (CSV or JSON trace).
    trace_path: str = ""
    #: Tasks trimmed from each end of the trace when computing metrics
    #: ("the first and last 100 tasks … are removed from the data").
    #: ``None`` scales the paper's 100 with workload size.
    trim_edge_tasks: int | None = None
    #: TRACE pattern: on-disk format of ``trace_path`` — ``"auto"``
    #: (by extension), ``"csv"``, ``"json"``, or an external adapter
    #: (``"azure"``, ``"gcluster"`` — see :mod:`repro.workload.adapters`).
    trace_format: str = "auto"
    #: TRACE pattern: deterministic downsampling rate in (0, 1]; each
    #: trial keeps a per-trial random subset of the replayed tasks
    #: (dependency-closed for DAG traces).  1.0 replays the full trace.
    trace_sample: float = 1.0
    #: Synthetic DAG workloads: number of dependency layers (0 keeps the
    #: paper's independent-task model).  Tasks are partitioned into
    #: arrival-ordered layers and each non-root task draws parents from
    #: the previous layer.
    dag_layers: int = 0
    #: Probability that a non-root task gains each candidate parent edge.
    dag_edge_prob: float = 0.5
    #: Cap on the number of parents per task.
    dag_max_parents: int = 2

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if self.time_span <= 0:
            raise ValueError("time_span must be positive")
        if self.num_task_types <= 0:
            raise ValueError("num_task_types must be positive")
        if isinstance(self.pattern, str):
            object.__setattr__(self, "pattern", ArrivalPattern(self.pattern))
        if not 0 < self.spike_duration_fraction < 1:
            raise ValueError("spike_duration_fraction must be in (0, 1)")
        if self.spike_amplitude < 1:
            raise ValueError("spike_amplitude must be >= 1")
        lo, hi = self.beta_range
        if lo < 0 or hi < lo:
            raise ValueError(f"invalid beta_range {self.beta_range}")
        if self.burst_amplitude < 1:
            raise ValueError("burst_amplitude must be >= 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.burst_cycles <= 0:
            raise ValueError("burst_cycles must be positive")
        if self.pattern is ArrivalPattern.TRACE and not self.trace_path:
            raise ValueError(
                "pattern 'trace' needs trace_path (build specs with "
                "repro.workload.trace.trace_spec to keep num_tasks/time_span "
                "consistent with the file)"
            )
        if not 0 < self.trace_sample <= 1:
            raise ValueError("trace_sample must be in (0, 1]")
        if self.trace_sample < 1 and self.pattern is not ArrivalPattern.TRACE:
            raise ValueError("trace_sample only applies to trace workloads")
        if self.dag_layers < 0:
            raise ValueError("dag_layers must be >= 0")
        if self.dag_layers:
            if self.pattern is ArrivalPattern.TRACE:
                raise ValueError(
                    "dag_layers does not apply to trace workloads — trace "
                    "files carry explicit dependency edges (JSON v3)"
                )
            if self.dag_layers < 2:
                raise ValueError("dag_layers must be >= 2 (roots plus one layer)")
            if not 0 <= self.dag_edge_prob <= 1:
                raise ValueError("dag_edge_prob must be in [0, 1]")
            if self.dag_max_parents < 1:
                raise ValueError("dag_max_parents must be >= 1")

    # ------------------------------------------------------------------
    @property
    def mean_arrival_rate(self) -> float:
        """Tasks per time unit across all types — the paper's x-axis
        "Task Arrival Rate (oversubscription level)"."""
        return self.num_tasks / self.time_span

    @property
    def trim_count(self) -> int:
        """Edge tasks excluded from metrics at each end."""
        if self.trim_edge_tasks is not None:
            return self.trim_edge_tasks
        # The paper trims 100 of 15000+; keep the same 1/150 proportion at
        # reduced scales, but never trim more than 10% of the trace.
        return min(max(self.num_tasks // 150, 1), self.num_tasks // 10)

    def with_(self, **changes: object) -> WorkloadSpec:
        return replace(self, **changes)

    def scaled(self, scale: float) -> WorkloadSpec:
        """Stretch the workload at constant arrival rate.

        The single scaling policy shared by named oversubscription
        levels and custom sweep levels: task count and span grow
        together (so tasks/unit is unchanged), the spike count grows
        with the span (so the spike *period* — the Fig. 6 regime — is
        preserved), and at least 10 tasks / 1 spike remain.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        if scale == 1.0:
            return self
        if self.pattern is ArrivalPattern.TRACE:
            raise ValueError("trace workloads replay a fixed file and cannot be scaled")
        return self.with_(
            num_tasks=max(int(self.num_tasks * scale), 10),
            time_span=self.time_span * scale,
            num_spikes=max(int(round(self.num_spikes * scale)), 1),
        )

    @classmethod
    def paper_scale(cls, num_tasks: int = 15000, **overrides: object) -> WorkloadSpec:
        """Full-size trial: 15k/20k/25k tasks over ~3000 time units."""
        defaults = dict(
            num_tasks=num_tasks, time_span=PAPER_TIME_SPAN, trim_edge_tasks=100
        )
        defaults.update(overrides)
        return cls(**defaults)

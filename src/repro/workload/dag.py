"""Dependency-structured (DAG) workloads.

The paper's §II model schedules *independent* tasks; real serverless
applications chain functions into workflows (fan-out/fan-in pipelines).
This module is the pure graph layer over ``Task.deps`` edge lists:
validation, longest-path depth labeling, and a layered random-DAG
builder for synthetic workloads.  The runtime semantics — holding
unreleased tasks, releasing on parent completion, cascading drops to
transitive dependents — live in :mod:`repro.core.dag`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..sim.task import Task

__all__ = [
    "validate_deps",
    "task_depths",
    "count_edges",
    "assign_layered_deps",
]


def task_depths(
    deps: Mapping[int, Sequence[int]], *, source: str = "workload"
) -> dict[int, int]:
    """Longest-path depth of every task (roots are depth 0).

    ``deps`` maps every task id to its parent ids.  Raises ``ValueError``
    on dangling parents and dependency cycles — both would deadlock the
    release machinery at runtime, so they are rejected at load time.
    """
    depth: dict[int, int] = {}
    on_stack: set[int] = set()
    for root in deps:
        if root in depth:
            continue
        stack = [(root, iter(deps[root]))]
        on_stack.add(root)
        while stack:
            tid, parents = stack[-1]
            advanced = False
            for p in parents:
                if p in on_stack:
                    raise ValueError(
                        f"{source}: dependency cycle through task {p}"
                    )
                if p not in depth:
                    if p not in deps:
                        raise ValueError(
                            f"{source}: task {tid} depends on unknown task {p}"
                        )
                    on_stack.add(p)
                    stack.append((p, iter(deps[p])))
                    advanced = True
                    break
            if not advanced:
                depth[tid] = 1 + max(
                    (depth[p] for p in deps[tid]), default=-1
                )
                on_stack.discard(tid)
                stack.pop()
    return depth


def validate_deps(
    deps: Mapping[int, Sequence[int]], *, source: str = "workload"
) -> None:
    """Reject self-loops, dangling parents and cycles."""
    for tid, parents in deps.items():
        if tid in parents:
            raise ValueError(f"{source}: task {tid} depends on itself")
    task_depths(deps, source=source)


def count_edges(deps: Mapping[int, Sequence[int]]) -> int:
    """Total number of dependency edges."""
    return sum(len(parents) for parents in deps.values())


def assign_layered_deps(
    tasks: Sequence[Task],
    *,
    layers: int,
    edge_prob: float,
    max_parents: int,
    rng,
) -> None:
    """Wire a layered random DAG over the tasks, in place.

    The arrival-ordered trace is split into ``layers`` contiguous slabs;
    each task in layer *L* > 0 draws up to ``max_parents`` candidate
    parents uniformly (without replacement) from layer *L* − 1 and keeps
    each with probability ``edge_prob``.  Edges always point backwards
    in arrival order, so the graph is acyclic by construction and a
    parent never arrives after its child.  Consumes ``rng`` in a fixed
    order — the wiring is a pure function of (spec, trial seed).
    """
    n = len(tasks)
    layers = min(layers, n)
    if layers < 2:
        return
    order = sorted(tasks, key=lambda t: (t.arrival, t.task_id))
    bounds = [round(i * n / layers) for i in range(layers + 1)]
    for li in range(1, layers):
        prev = order[bounds[li - 1] : bounds[li]]
        if not prev:
            continue
        k = min(max_parents, len(prev))
        for task in order[bounds[li] : bounds[li + 1]]:
            picks = rng.choice(len(prev), size=k, replace=False)
            kept = rng.random(k) < edge_prob
            task.deps = tuple(
                sorted(prev[i].task_id for i, keep in zip(picks, kept) if keep)
            )

"""Arrival-time generation (§V-B, Fig. 6).

Constant pattern: per-type inter-arrival gaps from a Gamma distribution
with variance equal to ``variance_fraction`` of the mean gap.

Spiky pattern: the same gap process with a time-varying rate.  The span is
divided evenly into ``num_spikes`` periods; within each period the rate
sits at the lull level except during a spike window of
``spike_duration_fraction`` of the lull period, where it is multiplied by
``spike_amplitude``.  The lull rate is chosen so the *expected total*
number of tasks matches the spec (so constant and spiky workloads of the
same ``num_tasks`` impose the same aggregate load — the paper compares
them at equal oversubscription levels).

Beyond the paper's pair, this module generates inhomogeneous Poisson
arrivals by thinning (:func:`inhomogeneous_poisson_arrivals`, usable with
arbitrary rate profiles), a Poisson variant of the spiky profile
(:func:`poisson_arrivals`), and Markov-modulated bursty arrivals
(:func:`bursty_arrivals`); trace replay is handled whole-workload in
:mod:`repro.workload.trace`/:func:`~repro.workload.generator.
generate_workload`.  Every generator is normalized so the expected total
count matches the spec — patterns are compared at equal offered load.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .spec import ArrivalPattern, WorkloadSpec

__all__ = [
    "constant_arrivals",
    "spiky_arrivals",
    "spiky_rate_profile",
    "inhomogeneous_poisson_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "generate_type_arrivals",
    "arrival_rate_series",
]


def _gamma_gap_sampler(
    rng: np.random.Generator, variance_fraction: float
) -> Callable[[float], float]:
    """Sampler of one inter-arrival gap given the current mean gap.

    Gamma parametrized so ``var = variance_fraction * mean`` (paper:
    "The variance of this distribution is 10% of the mean"), i.e.
    ``shape = mean / variance_fraction``, ``scale = variance_fraction``.
    """

    def sample(mean_gap: float) -> float:
        if mean_gap <= 0:
            raise ValueError("mean gap must be positive")
        shape = mean_gap / variance_fraction
        gap = rng.gamma(shape, variance_fraction)
        return max(gap, 1e-9)

    return sample


def constant_arrivals(
    expected_count: float,
    time_span: float,
    rng: np.random.Generator,
    *,
    variance_fraction: float = 0.1,
) -> np.ndarray:
    """Arrival times of one task type under the constant pattern."""
    if expected_count <= 0:
        return np.empty(0)
    mean_gap = time_span / expected_count
    sampler = _gamma_gap_sampler(rng, variance_fraction)
    times = []
    t = sampler(mean_gap)
    while t < time_span:
        times.append(t)
        t += sampler(mean_gap)
    return np.asarray(times)


def spiky_rate_profile(spec: WorkloadSpec) -> Callable[[float], float]:
    """Rate multiplier m(t) ∈ {1, amplitude} of the spiky pattern.

    Each of the ``num_spikes`` periods of length ``span / num_spikes``
    opens with a spike window (placing the spike at the period start
    makes the profile exactly periodic, matching Fig. 6's evenly spaced
    spikes) followed by a lull.
    """
    period = spec.time_span / spec.num_spikes
    # spike = fraction f of the *lull* length L, and spike + L = period:
    #   spike = f * L,  L = period / (1 + f)
    f = spec.spike_duration_fraction
    lull_len = period / (1.0 + f)
    spike_len = period - lull_len

    def multiplier(t: float) -> float:
        phase = t % period
        return spec.spike_amplitude if phase < spike_len else 1.0

    return multiplier


def _mean_multiplier(spec: WorkloadSpec) -> float:
    """Time-average of the spiky rate multiplier."""
    f = spec.spike_duration_fraction
    a = spec.spike_amplitude
    # spike fraction of the period = f / (1 + f)
    sf = f / (1.0 + f)
    return a * sf + (1.0 - sf)


def spiky_arrivals(
    expected_count: float,
    spec: WorkloadSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of one task type under the spiky pattern."""
    if expected_count <= 0:
        return np.empty(0)
    multiplier = spiky_rate_profile(spec)
    base_rate = expected_count / (spec.time_span * _mean_multiplier(spec))
    sampler = _gamma_gap_sampler(rng, spec.variance_fraction)
    times = []
    t = 0.0
    while True:
        rate = base_rate * multiplier(t)
        t += sampler(1.0 / rate)
        if t >= spec.time_span:
            break
        times.append(t)
    return np.asarray(times)


def inhomogeneous_poisson_arrivals(
    rate_fn: Callable[[float], float],
    rate_max: float,
    time_span: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Inhomogeneous Poisson process by thinning (Lewis–Shedler; cf.
    Hohmann's IPPP treatment) for an *arbitrary* rate profile.

    Candidate points are drawn from a homogeneous Poisson process at
    ``rate_max`` and each is accepted with probability
    ``rate_fn(t) / rate_max`` — so the accepted stream has exactly the
    intensity ``rate_fn``.  The thinning bound is enforced, not assumed:
    a profile exceeding ``rate_max`` anywhere a candidate lands raises
    ``ValueError`` (silently exceeding it would quietly under-sample the
    peaks, which is precisely the regime these scenarios probe).
    """
    if rate_max <= 0:
        raise ValueError("rate_max must be positive")
    if time_span <= 0:
        raise ValueError("time_span must be positive")
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_max)
        if t >= time_span:
            break
        rate = rate_fn(t)
        if rate < 0:
            raise ValueError(f"rate_fn({t}) = {rate} is negative")
        if rate > rate_max * (1.0 + 1e-12):
            raise ValueError(
                f"thinning bound exceeded: rate_fn({t}) = {rate} > rate_max = {rate_max}"
            )
        if rng.random() <= rate / rate_max:
            times.append(t)
    return np.asarray(times)


def poisson_arrivals(
    expected_count: float,
    spec: WorkloadSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of one task type under the POISSON pattern.

    The rate profile is the spec's spiky multiplier (so POISSON and SPIKY
    impose the same time-varying *mean* load) but the counting process is
    a true inhomogeneous Poisson — index of dispersion 1 instead of the
    Gamma gap process's ``variance_fraction``.  ``spike_amplitude = 1``
    degenerates to a homogeneous Poisson process.
    """
    if expected_count <= 0:
        return np.empty(0)
    multiplier = spiky_rate_profile(spec)
    base_rate = expected_count / (spec.time_span * _mean_multiplier(spec))
    return inhomogeneous_poisson_arrivals(
        lambda t: base_rate * multiplier(t),
        base_rate * spec.spike_amplitude,
        spec.time_span,
        rng,
    )


def bursty_arrivals(
    expected_count: float,
    spec: WorkloadSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of one task type under the BURSTY (MMPP) pattern.

    A two-state Markov-modulated Poisson process: burst onsets are
    *random* (exponential dwells) rather than SPIKY's periodic spikes,
    so trials disagree about when the overload hits — the transient-
    oversubscription regime the pruning mechanism targets.  Normalized
    so the expected total count matches ``expected_count``.
    """
    from .models import MMPPSpec, mmpp_arrivals  # deferred: models imports us

    if expected_count <= 0:
        return np.empty(0)
    mean_cycle = spec.time_span / spec.burst_cycles
    mmpp = MMPPSpec(
        burst_ratio=spec.burst_amplitude,
        mean_quiet_dwell=(1.0 - spec.burst_fraction) * mean_cycle,
        mean_burst_dwell=spec.burst_fraction * mean_cycle,
    )
    return mmpp_arrivals(expected_count, spec.time_span, rng, mmpp)


def generate_type_arrivals(
    spec: WorkloadSpec, expected_count: float, rng: np.random.Generator
) -> np.ndarray:
    """Dispatch on the spec's arrival pattern."""
    if spec.pattern is ArrivalPattern.CONSTANT:
        return constant_arrivals(
            expected_count,
            spec.time_span,
            rng,
            variance_fraction=spec.variance_fraction,
        )
    if spec.pattern is ArrivalPattern.POISSON:
        return poisson_arrivals(expected_count, spec, rng)
    if spec.pattern is ArrivalPattern.BURSTY:
        return bursty_arrivals(expected_count, spec, rng)
    if spec.pattern is ArrivalPattern.TRACE:
        raise ValueError(
            "trace workloads replay recorded tasks; generate_workload "
            "loads them whole instead of sampling per-type arrivals"
        )
    return spiky_arrivals(expected_count, spec, rng)


def arrival_rate_series(
    arrivals: np.ndarray, time_span: float, window: float
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed arrival rate (tasks per time unit) — regenerates Fig. 6.

    Returns ``(window_centers, rates)``.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    edges = np.arange(0.0, time_span + window, window)
    counts, _ = np.histogram(arrivals, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts / window

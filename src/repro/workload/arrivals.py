"""Arrival-time generation (§V-B, Fig. 6).

Constant pattern: per-type inter-arrival gaps from a Gamma distribution
with variance equal to ``variance_fraction`` of the mean gap.

Spiky pattern: the same gap process with a time-varying rate.  The span is
divided evenly into ``num_spikes`` periods; within each period the rate
sits at the lull level except during a spike window of
``spike_duration_fraction`` of the lull period, where it is multiplied by
``spike_amplitude``.  The lull rate is chosen so the *expected total*
number of tasks matches the spec (so constant and spiky workloads of the
same ``num_tasks`` impose the same aggregate load — the paper compares
them at equal oversubscription levels).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .spec import ArrivalPattern, WorkloadSpec

__all__ = [
    "constant_arrivals",
    "spiky_arrivals",
    "spiky_rate_profile",
    "generate_type_arrivals",
    "arrival_rate_series",
]


def _gamma_gap_sampler(
    rng: np.random.Generator, variance_fraction: float
) -> Callable[[float], float]:
    """Sampler of one inter-arrival gap given the current mean gap.

    Gamma parametrized so ``var = variance_fraction * mean`` (paper:
    "The variance of this distribution is 10% of the mean"), i.e.
    ``shape = mean / variance_fraction``, ``scale = variance_fraction``.
    """

    def sample(mean_gap: float) -> float:
        if mean_gap <= 0:
            raise ValueError("mean gap must be positive")
        shape = mean_gap / variance_fraction
        gap = rng.gamma(shape, variance_fraction)
        return max(gap, 1e-9)

    return sample


def constant_arrivals(
    expected_count: float,
    time_span: float,
    rng: np.random.Generator,
    *,
    variance_fraction: float = 0.1,
) -> np.ndarray:
    """Arrival times of one task type under the constant pattern."""
    if expected_count <= 0:
        return np.empty(0)
    mean_gap = time_span / expected_count
    sampler = _gamma_gap_sampler(rng, variance_fraction)
    times = []
    t = sampler(mean_gap)
    while t < time_span:
        times.append(t)
        t += sampler(mean_gap)
    return np.asarray(times)


def spiky_rate_profile(spec: WorkloadSpec) -> Callable[[float], float]:
    """Rate multiplier m(t) ∈ {1, amplitude} of the spiky pattern.

    Each of the ``num_spikes`` periods of length ``span / num_spikes``
    opens with a spike window (placing the spike at the period start
    makes the profile exactly periodic, matching Fig. 6's evenly spaced
    spikes) followed by a lull.
    """
    period = spec.time_span / spec.num_spikes
    # spike = fraction f of the *lull* length L, and spike + L = period:
    #   spike = f * L,  L = period / (1 + f)
    f = spec.spike_duration_fraction
    lull_len = period / (1.0 + f)
    spike_len = period - lull_len

    def multiplier(t: float) -> float:
        phase = t % period
        return spec.spike_amplitude if phase < spike_len else 1.0

    return multiplier


def _mean_multiplier(spec: WorkloadSpec) -> float:
    """Time-average of the spiky rate multiplier."""
    f = spec.spike_duration_fraction
    a = spec.spike_amplitude
    # spike fraction of the period = f / (1 + f)
    sf = f / (1.0 + f)
    return a * sf + (1.0 - sf)


def spiky_arrivals(
    expected_count: float,
    spec: WorkloadSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of one task type under the spiky pattern."""
    if expected_count <= 0:
        return np.empty(0)
    multiplier = spiky_rate_profile(spec)
    base_rate = expected_count / (spec.time_span * _mean_multiplier(spec))
    sampler = _gamma_gap_sampler(rng, spec.variance_fraction)
    times = []
    t = 0.0
    while True:
        rate = base_rate * multiplier(t)
        t += sampler(1.0 / rate)
        if t >= spec.time_span:
            break
        times.append(t)
    return np.asarray(times)


def generate_type_arrivals(
    spec: WorkloadSpec, expected_count: float, rng: np.random.Generator
) -> np.ndarray:
    """Dispatch on the spec's arrival pattern."""
    if spec.pattern is ArrivalPattern.CONSTANT:
        return constant_arrivals(
            expected_count,
            spec.time_span,
            rng,
            variance_fraction=spec.variance_fraction,
        )
    return spiky_arrivals(expected_count, spec, rng)


def arrival_rate_series(
    arrivals: np.ndarray, time_span: float, window: float
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed arrival rate (tasks per time unit) — regenerates Fig. 6.

    Returns ``(window_centers, rates)``.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    edges = np.arange(0.0, time_span + window, window)
    counts, _ = np.histogram(arrivals, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts / window

"""Full workload generation: arrivals + Eq. 4 deadlines → task list.

Eq. 4:  δ_i = arr_i + avg_i + β · avg_all

where ``avg_i`` is the mean duration of the task's type (across machine
types), ``avg_all`` the mean duration over all types, and β is drawn
uniformly per task from the spec's ``beta_range`` ("the value of β of
each task is randomly chosen from the range of [0.8, 2.5]").
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

import numpy as np

from ..sim.task import Task
from .arrivals import generate_type_arrivals
from .spec import ArrivalPattern, WorkloadSpec

__all__ = ["DurationModel", "generate_workload", "trimmed_slice", "assign_deadlines"]


class DurationModel(Protocol):
    """What deadline assignment needs from a PET/ETC matrix."""

    def type_mean(self, task_type: int) -> float: ...
    def overall_mean(self) -> float: ...

    @property
    def num_task_types(self) -> int: ...


def assign_deadlines(
    arrivals: np.ndarray,
    task_type: int,
    model: DurationModel,
    rng: np.random.Generator,
    beta_range: tuple[float, float],
) -> np.ndarray:
    """Vectorized Eq. 4 for all arrivals of one task type."""
    lo, hi = beta_range
    betas = rng.uniform(lo, hi, size=arrivals.size)
    return arrivals + model.type_mean(task_type) + betas * model.overall_mean()


def generate_workload(
    spec: WorkloadSpec,
    model: DurationModel,
    rng: np.random.Generator,
) -> list[Task]:
    """Generate one workload trial: tasks sorted by arrival time, ids in
    arrival order.

    The expected task count is split evenly across the spec's task types
    (capped at the model's type count); actual counts vary stochastically
    with the arrival process, as in the paper.

    ``pattern="trace"`` replays the recorded tasks from
    ``spec.trace_path`` instead of sampling: arrivals, deadlines and ids
    come from the file verbatim.  With ``trace_sample == 1.0`` (the
    default) ``rng`` is untouched, so replay trials differ only in
    execution-time sampling downstream; a smaller rate draws a
    deterministic per-trial subset (dependency-closed for DAG traces).

    ``dag_layers > 0`` wires a layered random DAG over the synthetic
    tasks (``Task.deps``); the extra draws happen *after* arrivals and
    deadlines, so dependency-free workloads are unchanged.
    """
    if spec.pattern is ArrivalPattern.TRACE:
        from .trace import replay_tasks  # deferred: trace imports spec

        tasks = replay_tasks(spec.trace_path, spec.trace_format)
        if len(tasks) != spec.num_tasks:
            raise ValueError(
                f"trace {spec.trace_path!r} holds {len(tasks)} tasks but the "
                f"spec says {spec.num_tasks}; build replay specs with "
                f"repro.workload.trace.trace_spec so metrics (trim windows, "
                f"oversubscription labels) describe the file"
            )
        bad = [t.task_type for t in tasks if t.task_type >= model.num_task_types]
        if bad:
            raise ValueError(
                f"trace {spec.trace_path!r} uses task type {max(bad)} but the "
                f"model only has {model.num_task_types} types"
            )
        if spec.trace_sample < 1.0:
            from .adapters import downsample_tasks  # deferred: adapters import task

            tasks = downsample_tasks(tasks, spec.trace_sample, rng)
        return tasks

    num_types = min(spec.num_task_types, model.num_task_types)
    if num_types <= 0:
        raise ValueError("no task types available")
    per_type = spec.num_tasks / num_types

    records: list[tuple[float, int, float]] = []  # (arrival, type, deadline)
    for ttype in range(num_types):
        arrivals = generate_type_arrivals(spec, per_type, rng)
        if arrivals.size == 0:
            continue
        deadlines = assign_deadlines(arrivals, ttype, model, rng, spec.beta_range)
        records.extend(
            (float(a), ttype, float(d)) for a, d in zip(arrivals, deadlines)
        )

    records.sort(key=lambda r: r[0])
    tasks = [
        Task(task_id=i, task_type=ttype, arrival=arr, deadline=dl)
        for i, (arr, ttype, dl) in enumerate(records)
    ]
    if spec.dag_layers > 0:
        from .dag import assign_layered_deps  # deferred: dag imports task

        assign_layered_deps(
            tasks,
            layers=spec.dag_layers,
            edge_prob=spec.dag_edge_prob,
            max_parents=spec.dag_max_parents,
            rng=rng,
        )
    return tasks


def trimmed_slice(tasks: Sequence[Task], trim: int) -> Sequence[Task]:
    """Drop the first/last ``trim`` tasks from *metrics* (§V-B: "The first
    and last 100 tasks in each workload trial are removed from the data"
    so results focus on the oversubscribed steady state).  The tasks still
    run in the simulation; only the evaluation window shrinks."""
    if trim <= 0:
        return tasks
    if 2 * trim >= len(tasks):
        raise ValueError(f"trim {trim} would discard the whole trace of {len(tasks)}")
    return tasks[trim : len(tasks) - trim]

"""Workload trace persistence and replay.

The paper published its workload trials for reproducibility (§V-B,
git.io/fhSZW — now dead).  We persist traces two ways:

* **JSON** (:func:`save_trace`/:func:`load_trace`) — the spec that
  generated the trial plus the immutable identity of every task, so any
  trial can be re-run bit-for-bit and shared.
* **CSV** (:func:`save_csv_trace`/:func:`load_csv_trace`) — the
  interchange format for *external* traces: four columns
  ``id,type,arrival,deadline`` (any column order, extra columns
  ignored), one row per task.  This is what the trace-replay scenarios
  (``pattern="trace"``) ingest.

JSON format history:

* **v1** — ``{format_version, spec, tasks}`` with the original
  :class:`~repro.workload.spec.WorkloadSpec` fields.
* **v2** — same layout; the spec gained the bursty-pattern knobs
  (``burst_amplitude``/``burst_fraction``/``burst_cycles``) and
  ``trace_path``.  v1 files load unchanged (missing fields take their
  defaults); v2 is written for dependency-free traces.
* **v3** — task records may carry ``deps`` (explicit DAG edge lists,
  emitted only when non-empty) and the spec gained the trace-adapter /
  DAG knobs (``trace_format``/``trace_sample``/``dag_*``, emitted only
  when non-default).  v3 is written only when one of those features is
  present, so dependency-free traces stay byte-identical to v2.
"""

from __future__ import annotations

import csv
import math
import os
from pathlib import Path
from collections.abc import Sequence

import json

from ..sim.task import Task
from .dag import validate_deps
from .spec import ArrivalPattern, WorkloadSpec

__all__ = [
    "save_trace",
    "load_trace",
    "save_csv_trace",
    "load_csv_trace",
    "load_any_trace",
    "replay_tasks",
    "trace_spec",
    "tasks_to_records",
    "records_to_tasks",
]

#: Version written for dependency-free traces with v2-era specs — the
#: common case, kept stable so regenerated fixtures stay byte-identical.
_FORMAT_VERSION = 2
#: Version written when DAG edges or v3 spec fields are present.
_DAG_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)

#: Fields every trace record must carry (the task's immutable identity).
_REQUIRED_KEYS = ("id", "type", "arrival", "deadline")

#: Spec fields added after format v1, with the defaults v1 files assume.
_V2_SPEC_FIELDS = ("burst_amplitude", "burst_fraction", "burst_cycles", "trace_path")

#: Spec fields added in format v3; serialized only when non-default so
#: v2-era files round-trip byte-identically.
_V3_SPEC_FIELDS = (
    "trace_format",
    "trace_sample",
    "dag_layers",
    "dag_edge_prob",
    "dag_max_parents",
)


def tasks_to_records(tasks: Sequence[Task]) -> list[dict]:
    """Immutable identity of each task (scheduling state is not saved).

    ``deps`` is emitted only when non-empty — dependency-free traces
    keep their exact v2 byte layout.
    """
    records = []
    for t in tasks:
        record = {
            "id": t.task_id,
            "type": t.task_type,
            "arrival": t.arrival,
            "deadline": t.deadline,
        }
        if t.deps:
            record["deps"] = list(t.deps)
        records.append(record)
    return records


def records_to_tasks(records: Sequence[dict]) -> list[Task]:
    """Rebuild fresh (PENDING) tasks from trace records.

    Every record must carry all of ``id``/``type``/``arrival``/
    ``deadline``; a missing or non-numeric field raises ``ValueError``
    naming the offending record — silently coercing partial records
    would replay a different workload than the one that was saved.
    """
    tasks: list[Task] = []
    for i, record in enumerate(records):
        try:
            keys = record.keys()
        except AttributeError:
            raise ValueError(
                f"trace record #{i} is not a mapping: {record!r}"
            ) from None
        missing = [k for k in _REQUIRED_KEYS if k not in keys]
        if missing:
            raise ValueError(
                f"trace record #{i} is missing field(s) {missing} "
                f"(has {sorted(keys)}); every record needs "
                f"{list(_REQUIRED_KEYS)}"
            )
        for key in ("id", "type"):
            value = record[key]
            # int(2.9) would silently replay a different task type than
            # the file describes (JSON traces carry real floats; CSV
            # fields are strings, where int("2.9") already raises).
            if isinstance(value, float) and not value.is_integer():
                raise ValueError(
                    f"trace record #{i} has non-integer {key}: {value!r}"
                )
        deps = record.get("deps", ())
        if not isinstance(deps, (list, tuple)):
            raise ValueError(
                f"trace record #{i} has non-list deps: {deps!r}"
            )
        for dep in deps:
            # Same integer strictness as id/type: a truncated float dep
            # would silently rewire the DAG.
            if isinstance(dep, float) and not dep.is_integer():
                raise ValueError(
                    f"trace record #{i} has non-integer dep: {dep!r}"
                )
        try:
            task = Task(
                task_id=int(record["id"]),
                task_type=int(record["type"]),
                arrival=float(record["arrival"]),
                deadline=float(record["deadline"]),
                deps=tuple(int(dep) for dep in deps),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"trace record #{i} is invalid: {exc}") from exc
        if task.task_type < 0:
            # Negative types would index the PET matrix from the end —
            # a silently wrong replay, not an error.
            raise ValueError(
                f"trace record #{i} has negative task type {task.task_type}"
            )
        if not (math.isfinite(task.arrival) and math.isfinite(task.deadline)):
            raise ValueError(
                f"trace record #{i} has non-finite arrival/deadline"
            )
        tasks.append(task)
    return tasks


def _normalize_replay(tasks: list[Task], source) -> list[Task]:
    """Shared replay hygiene: unique ids, then (arrival, id) order.

    External traces are often grouped by tenant or type, but the
    simulator submits in time order and ``trimmed_slice`` trims
    *positional* edges — an unsorted replay would trim the wrong tasks.
    """
    seen: set[int] = set()
    for task in tasks:
        if task.task_id in seen:
            raise ValueError(f"{source}: duplicate task id {task.task_id}")
        seen.add(task.task_id)
    if any(task.deps for task in tasks):
        # Dangling parents or cycles would deadlock the release
        # machinery mid-simulation; reject them at load time instead.
        validate_deps(
            {t.task_id: t.deps for t in tasks}, source=str(source)
        )
    tasks.sort(key=lambda t: (t.arrival, t.task_id))
    return tasks


def _spec_to_dict(spec: WorkloadSpec) -> dict:
    d = {
        "num_tasks": spec.num_tasks,
        "time_span": spec.time_span,
        "num_task_types": spec.num_task_types,
        "pattern": spec.pattern.value,
        "variance_fraction": spec.variance_fraction,
        "spike_amplitude": spec.spike_amplitude,
        "spike_duration_fraction": spec.spike_duration_fraction,
        "num_spikes": spec.num_spikes,
        "beta_range": list(spec.beta_range),
        "trim_edge_tasks": spec.trim_edge_tasks,
        "burst_amplitude": spec.burst_amplitude,
        "burst_fraction": spec.burst_fraction,
        "burst_cycles": spec.burst_cycles,
        "trace_path": spec.trace_path,
    }
    # v3 spec fields ride along only when non-default — v2-era files
    # regenerate byte-identically.
    for f in _V3_SPEC_FIELDS:
        value = getattr(spec, f)
        if value != getattr(WorkloadSpec, f):
            d[f] = value
    return d


def _spec_from_dict(d: dict) -> WorkloadSpec:
    defaults = {
        f: getattr(WorkloadSpec, f) for f in _V2_SPEC_FIELDS + _V3_SPEC_FIELDS
    }
    return WorkloadSpec(
        num_tasks=d["num_tasks"],
        time_span=d["time_span"],
        num_task_types=d["num_task_types"],
        pattern=ArrivalPattern(d["pattern"]),
        variance_fraction=d["variance_fraction"],
        spike_amplitude=d["spike_amplitude"],
        spike_duration_fraction=d["spike_duration_fraction"],
        num_spikes=d["num_spikes"],
        beta_range=tuple(d["beta_range"]),
        trim_edge_tasks=d["trim_edge_tasks"],
        # v1/v2 traces predate these fields; their defaults reproduce
        # the exact workloads those versions described.
        **{f: d.get(f, default) for f, default in defaults.items()},
    )


def save_trace(
    path: str | Path, tasks: Sequence[Task], spec: WorkloadSpec | None = None
) -> None:
    """Write a workload trial to ``path`` as JSON.

    Format v2 is written for dependency-free traces with v2-era specs;
    v3 only when DAG edges or v3 spec fields are present, so existing
    trace files regenerate byte-identically.
    """
    spec_dict = _spec_to_dict(spec) if spec is not None else None
    records = tasks_to_records(tasks)
    version = _FORMAT_VERSION
    if any("deps" in r for r in records) or (
        spec_dict is not None and any(f in spec_dict for f in _V3_SPEC_FIELDS)
    ):
        version = _DAG_FORMAT_VERSION
    payload = {
        "format_version": version,
        "spec": spec_dict,
        "tasks": records,
    }
    Path(path).write_text(json.dumps(payload))


def load_trace(path: str | Path) -> tuple[list[Task], WorkloadSpec | None]:
    """Read a workload trial; returns fresh (PENDING) tasks plus the spec
    if one was saved.  Accepts formats v1–v3."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported trace format version {version} "
            f"(supported: {list(_SUPPORTED_VERSIONS)})"
        )
    tasks = records_to_tasks(payload["tasks"])
    spec = _spec_from_dict(payload["spec"]) if payload.get("spec") else None
    return tasks, spec


# ----------------------------------------------------------------------
# CSV interchange (external trace replay)
# ----------------------------------------------------------------------
def save_csv_trace(path: str | Path, tasks: Sequence[Task]) -> None:
    """Write tasks as an ``id,type,arrival,deadline`` CSV.

    The CSV interchange format has no dependency column — saving a DAG
    workload here would silently sever its edges, so it is an error;
    use :func:`save_trace` (JSON v3) instead.
    """
    if any(t.deps for t in tasks):
        raise ValueError(
            f"{path}: CSV traces cannot carry dependency edges; "
            "use save_trace (JSON v3)"
        )
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_REQUIRED_KEYS)
        for t in tasks:
            writer.writerow([t.task_id, t.task_type, repr(t.arrival), repr(t.deadline)])


def load_csv_trace(path: str | Path) -> list[Task]:
    """Read an external CSV trace into fresh (PENDING) tasks.

    Requirements (each violation raises ``ValueError`` naming the row):

    * a header naming at least ``id``/``type``/``arrival``/``deadline``
      (any order; extra columns are ignored);
    * numeric fields, finite arrivals/deadlines, ``deadline >= arrival``;
    * unique task ids.

    Rows are sorted by ``(arrival, id)`` — external traces are often
    grouped by tenant or type, but the simulator submits in time order.
    """
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames or []
        missing = [k for k in _REQUIRED_KEYS if k not in header]
        if missing:
            raise ValueError(
                f"{path}: CSV header {header} is missing column(s) {missing}"
            )
        tasks = records_to_tasks(list(reader))
    return _normalize_replay(tasks, path)


def load_any_trace(path: str | Path, fmt: str = "auto") -> list[Task]:
    """Load a trace for replay.

    ``fmt`` selects the on-disk format: ``"auto"`` dispatches by
    extension (``.csv`` → CSV, anything else → JSON), ``"csv"``/
    ``"json"`` force the native formats, and ``"azure"``/``"gcluster"``
    run the external-trace adapters (:mod:`repro.workload.adapters`).
    Every branch gets the same replay hygiene (unique ids, validated
    dependency edges, (arrival, id) order).
    """
    path = Path(path)
    if fmt in ("azure", "gcluster"):
        # Deferred import: adapters build on this module's persistence
        # helpers, so a top-level import would be circular.
        from . import adapters

        loader = adapters.load_azure_trace if fmt == "azure" else adapters.load_gcluster_trace
        return _normalize_replay(loader(path), path)
    if fmt == "auto":
        fmt = "csv" if path.suffix.lower() == ".csv" else "json"
    if fmt == "csv":
        return load_csv_trace(path)
    if fmt != "json":
        raise ValueError(
            f"unknown trace format {fmt!r} "
            "(expected auto, csv, json, azure or gcluster)"
        )
    tasks, _spec = load_trace(path)
    return _normalize_replay(tasks, path)


class StatMemo:
    """Small FIFO memo keyed on a file's stat signature.

    The signature is ``(path, mtime_ns, size)``: an in-place edit gets
    a fresh entry, an unchanged file is never re-read.  Shared by the
    replay cache below and the campaign layer's trace-content digests.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: dict[tuple, object] = {}

    @staticmethod
    def signature(path) -> tuple | None:
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return (str(path), stat.st_mtime_ns, stat.st_size)

    def get(self, sig):
        return self._data.get(sig) if sig is not None else None

    def put(self, sig, value) -> None:
        if sig is None:
            return
        if sig not in self._data and len(self._data) >= self.capacity:
            del self._data[next(iter(self._data))]
        self._data[sig] = value


#: Parsed task identities per trace file.  Bounded: replay campaigns
#: cycle over a handful of traces, not thousands.
_REPLAY_CACHE = StatMemo(capacity=8)


def replay_tasks(path: str | Path, fmt: str = "auto") -> list[Task]:
    """:func:`load_any_trace` behind a per-process cache.

    Replay campaigns run every trial of a cell against the same file;
    the parsed identities are cached on the file's stat signature so a
    30-trial cell parses the trace once, while an edited file reloads.
    Fresh :class:`Task` objects are built per call — simulations mutate
    scheduling state, so cached objects must never be handed out twice.
    """
    base = StatMemo.signature(path)
    sig = None if base is None else base + (fmt,)
    records = _REPLAY_CACHE.get(sig)
    if records is None:
        tasks = load_any_trace(path, fmt)
        records = tuple(
            (t.task_id, t.task_type, t.arrival, t.deadline, t.deps)
            for t in tasks
        )
        _REPLAY_CACHE.put(sig, records)
    return [
        Task(task_id=tid, task_type=tt, arrival=arr, deadline=dl, deps=deps)
        for tid, tt, arr, dl, deps in records
    ]


def trace_spec(
    path: str | Path,
    *,
    trim_edge_tasks: int | None = None,
    fmt: str = "auto",
    sample: float = 1.0,
) -> WorkloadSpec:
    """A :class:`WorkloadSpec` consistent with a trace file's contents.

    Replay needs a spec whose ``num_tasks``/``time_span`` describe the
    *file* (metric trimming and oversubscription labels derive from
    them), so build it from the file rather than by hand.  The path is
    stored relative as given — campaigns fingerprint the file *content*
    separately for caching.  ``fmt`` picks the loader (see
    :func:`load_any_trace`); ``sample`` enables deterministic per-trial
    downsampling of the replay.
    """
    tasks = replay_tasks(path, fmt)
    if not tasks:
        raise ValueError(f"{path}: trace contains no tasks")
    span = max(t.arrival for t in tasks)
    return WorkloadSpec(
        num_tasks=len(tasks),
        time_span=max(span, 1e-9) * (1.0 + 1e-9),  # arrivals strictly inside
        num_task_types=max(t.task_type for t in tasks) + 1,
        pattern=ArrivalPattern.TRACE,
        trace_path=str(path),
        trim_edge_tasks=trim_edge_tasks,
        trace_format=fmt,
        trace_sample=sample,
    )

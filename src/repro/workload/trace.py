"""Workload trace persistence and replay.

The paper published its workload trials for reproducibility (§V-B,
git.io/fhSZW — now dead).  We persist traces two ways:

* **JSON** (:func:`save_trace`/:func:`load_trace`) — the spec that
  generated the trial plus the immutable identity of every task, so any
  trial can be re-run bit-for-bit and shared.
* **CSV** (:func:`save_csv_trace`/:func:`load_csv_trace`) — the
  interchange format for *external* traces: four columns
  ``id,type,arrival,deadline`` (any column order, extra columns
  ignored), one row per task.  This is what the trace-replay scenarios
  (``pattern="trace"``) ingest.

JSON format history:

* **v1** — ``{format_version, spec, tasks}`` with the original
  :class:`~repro.workload.spec.WorkloadSpec` fields.
* **v2** — same layout; the spec gained the bursty-pattern knobs
  (``burst_amplitude``/``burst_fraction``/``burst_cycles``) and
  ``trace_path``.  v1 files load unchanged (missing fields take their
  defaults); v2 is always written.
"""

from __future__ import annotations

import csv
import math
import os
from pathlib import Path
from typing import Sequence

import json

from ..sim.task import Task
from .spec import ArrivalPattern, WorkloadSpec

__all__ = [
    "save_trace",
    "load_trace",
    "save_csv_trace",
    "load_csv_trace",
    "load_any_trace",
    "replay_tasks",
    "trace_spec",
    "tasks_to_records",
    "records_to_tasks",
]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

#: Fields every trace record must carry (the task's immutable identity).
_REQUIRED_KEYS = ("id", "type", "arrival", "deadline")

#: Spec fields added after format v1, with the defaults v1 files assume.
_V2_SPEC_FIELDS = ("burst_amplitude", "burst_fraction", "burst_cycles", "trace_path")


def tasks_to_records(tasks: Sequence[Task]) -> list[dict]:
    """Immutable identity of each task (scheduling state is not saved)."""
    return [
        {
            "id": t.task_id,
            "type": t.task_type,
            "arrival": t.arrival,
            "deadline": t.deadline,
        }
        for t in tasks
    ]


def records_to_tasks(records: Sequence[dict]) -> list[Task]:
    """Rebuild fresh (PENDING) tasks from trace records.

    Every record must carry all of ``id``/``type``/``arrival``/
    ``deadline``; a missing or non-numeric field raises ``ValueError``
    naming the offending record — silently coercing partial records
    would replay a different workload than the one that was saved.
    """
    tasks: list[Task] = []
    for i, record in enumerate(records):
        try:
            keys = record.keys()
        except AttributeError:
            raise ValueError(
                f"trace record #{i} is not a mapping: {record!r}"
            ) from None
        missing = [k for k in _REQUIRED_KEYS if k not in keys]
        if missing:
            raise ValueError(
                f"trace record #{i} is missing field(s) {missing} "
                f"(has {sorted(keys)}); every record needs "
                f"{list(_REQUIRED_KEYS)}"
            )
        for key in ("id", "type"):
            value = record[key]
            # int(2.9) would silently replay a different task type than
            # the file describes (JSON traces carry real floats; CSV
            # fields are strings, where int("2.9") already raises).
            if isinstance(value, float) and not value.is_integer():
                raise ValueError(
                    f"trace record #{i} has non-integer {key}: {value!r}"
                )
        try:
            task = Task(
                task_id=int(record["id"]),
                task_type=int(record["type"]),
                arrival=float(record["arrival"]),
                deadline=float(record["deadline"]),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"trace record #{i} is invalid: {exc}") from exc
        if task.task_type < 0:
            # Negative types would index the PET matrix from the end —
            # a silently wrong replay, not an error.
            raise ValueError(
                f"trace record #{i} has negative task type {task.task_type}"
            )
        if not (math.isfinite(task.arrival) and math.isfinite(task.deadline)):
            raise ValueError(
                f"trace record #{i} has non-finite arrival/deadline"
            )
        tasks.append(task)
    return tasks


def _normalize_replay(tasks: list[Task], source) -> list[Task]:
    """Shared replay hygiene: unique ids, then (arrival, id) order.

    External traces are often grouped by tenant or type, but the
    simulator submits in time order and ``trimmed_slice`` trims
    *positional* edges — an unsorted replay would trim the wrong tasks.
    """
    seen: set[int] = set()
    for task in tasks:
        if task.task_id in seen:
            raise ValueError(f"{source}: duplicate task id {task.task_id}")
        seen.add(task.task_id)
    tasks.sort(key=lambda t: (t.arrival, t.task_id))
    return tasks


def _spec_to_dict(spec: WorkloadSpec) -> dict:
    return {
        "num_tasks": spec.num_tasks,
        "time_span": spec.time_span,
        "num_task_types": spec.num_task_types,
        "pattern": spec.pattern.value,
        "variance_fraction": spec.variance_fraction,
        "spike_amplitude": spec.spike_amplitude,
        "spike_duration_fraction": spec.spike_duration_fraction,
        "num_spikes": spec.num_spikes,
        "beta_range": list(spec.beta_range),
        "trim_edge_tasks": spec.trim_edge_tasks,
        "burst_amplitude": spec.burst_amplitude,
        "burst_fraction": spec.burst_fraction,
        "burst_cycles": spec.burst_cycles,
        "trace_path": spec.trace_path,
    }


def _spec_from_dict(d: dict) -> WorkloadSpec:
    defaults = {f: getattr(WorkloadSpec, f) for f in _V2_SPEC_FIELDS}
    return WorkloadSpec(
        num_tasks=d["num_tasks"],
        time_span=d["time_span"],
        num_task_types=d["num_task_types"],
        pattern=ArrivalPattern(d["pattern"]),
        variance_fraction=d["variance_fraction"],
        spike_amplitude=d["spike_amplitude"],
        spike_duration_fraction=d["spike_duration_fraction"],
        num_spikes=d["num_spikes"],
        beta_range=tuple(d["beta_range"]),
        trim_edge_tasks=d["trim_edge_tasks"],
        # v1 traces predate these fields; their defaults reproduce the
        # exact workloads v1 described.
        **{f: d.get(f, default) for f, default in defaults.items()},
    )


def save_trace(
    path: str | Path, tasks: Sequence[Task], spec: WorkloadSpec | None = None
) -> None:
    """Write a workload trial to ``path`` as JSON (current format v2)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "spec": _spec_to_dict(spec) if spec is not None else None,
        "tasks": tasks_to_records(tasks),
    }
    Path(path).write_text(json.dumps(payload))


def load_trace(path: str | Path) -> tuple[list[Task], WorkloadSpec | None]:
    """Read a workload trial; returns fresh (PENDING) tasks plus the spec
    if one was saved.  Accepts formats v1 and v2."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported trace format version {version} "
            f"(supported: {list(_SUPPORTED_VERSIONS)})"
        )
    tasks = records_to_tasks(payload["tasks"])
    spec = _spec_from_dict(payload["spec"]) if payload.get("spec") else None
    return tasks, spec


# ----------------------------------------------------------------------
# CSV interchange (external trace replay)
# ----------------------------------------------------------------------
def save_csv_trace(path: str | Path, tasks: Sequence[Task]) -> None:
    """Write tasks as an ``id,type,arrival,deadline`` CSV."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_REQUIRED_KEYS)
        for t in tasks:
            writer.writerow([t.task_id, t.task_type, repr(t.arrival), repr(t.deadline)])


def load_csv_trace(path: str | Path) -> list[Task]:
    """Read an external CSV trace into fresh (PENDING) tasks.

    Requirements (each violation raises ``ValueError`` naming the row):

    * a header naming at least ``id``/``type``/``arrival``/``deadline``
      (any order; extra columns are ignored);
    * numeric fields, finite arrivals/deadlines, ``deadline >= arrival``;
    * unique task ids.

    Rows are sorted by ``(arrival, id)`` — external traces are often
    grouped by tenant or type, but the simulator submits in time order.
    """
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames or []
        missing = [k for k in _REQUIRED_KEYS if k not in header]
        if missing:
            raise ValueError(
                f"{path}: CSV header {header} is missing column(s) {missing}"
            )
        tasks = records_to_tasks(list(reader))
    return _normalize_replay(tasks, path)


def load_any_trace(path: str | Path) -> list[Task]:
    """Load a trace for replay by extension: ``.csv`` → CSV, anything
    else → JSON.  Both branches get the same replay hygiene (unique
    ids, (arrival, id) order)."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return load_csv_trace(path)
    tasks, _spec = load_trace(path)
    return _normalize_replay(tasks, path)


class StatMemo:
    """Small FIFO memo keyed on a file's stat signature.

    The signature is ``(path, mtime_ns, size)``: an in-place edit gets
    a fresh entry, an unchanged file is never re-read.  Shared by the
    replay cache below and the campaign layer's trace-content digests.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: dict[tuple, object] = {}

    @staticmethod
    def signature(path) -> tuple | None:
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return (str(path), stat.st_mtime_ns, stat.st_size)

    def get(self, sig):
        return self._data.get(sig) if sig is not None else None

    def put(self, sig, value) -> None:
        if sig is None:
            return
        if sig not in self._data and len(self._data) >= self.capacity:
            del self._data[next(iter(self._data))]
        self._data[sig] = value


#: Parsed task identities per trace file.  Bounded: replay campaigns
#: cycle over a handful of traces, not thousands.
_REPLAY_CACHE = StatMemo(capacity=8)


def replay_tasks(path: str | Path) -> list[Task]:
    """:func:`load_any_trace` behind a per-process cache.

    Replay campaigns run every trial of a cell against the same file;
    the parsed identities are cached on the file's stat signature so a
    30-trial cell parses the trace once, while an edited file reloads.
    Fresh :class:`Task` objects are built per call — simulations mutate
    scheduling state, so cached objects must never be handed out twice.
    """
    sig = StatMemo.signature(path)
    records = _REPLAY_CACHE.get(sig)
    if records is None:
        tasks = load_any_trace(path)
        records = tuple(
            (t.task_id, t.task_type, t.arrival, t.deadline) for t in tasks
        )
        _REPLAY_CACHE.put(sig, records)
    return [
        Task(task_id=tid, task_type=tt, arrival=arr, deadline=dl)
        for tid, tt, arr, dl in records
    ]


def trace_spec(path: str | Path, *, trim_edge_tasks: int | None = None) -> WorkloadSpec:
    """A :class:`WorkloadSpec` consistent with a trace file's contents.

    Replay needs a spec whose ``num_tasks``/``time_span`` describe the
    *file* (metric trimming and oversubscription labels derive from
    them), so build it from the file rather than by hand.  The path is
    stored relative as given — campaigns fingerprint the file *content*
    separately for caching.
    """
    tasks = replay_tasks(path)
    if not tasks:
        raise ValueError(f"{path}: trace contains no tasks")
    span = max(t.arrival for t in tasks)
    return WorkloadSpec(
        num_tasks=len(tasks),
        time_span=max(span, 1e-9) * (1.0 + 1e-9),  # arrivals strictly inside
        num_task_types=max(t.task_type for t in tasks) + 1,
        pattern=ArrivalPattern.TRACE,
        trace_path=str(path),
        trim_edge_tasks=trim_edge_tasks,
    )

"""Workload trace persistence.

The paper published its workload trials for reproducibility (§V-B,
git.io/fhSZW — now dead).  We persist traces as JSON: the spec that
generated them plus the immutable identity of every task, so any trial
can be re-run bit-for-bit and shared.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ..sim.task import Task
from .spec import ArrivalPattern, WorkloadSpec

__all__ = ["save_trace", "load_trace", "tasks_to_records", "records_to_tasks"]

_FORMAT_VERSION = 1


def tasks_to_records(tasks: Sequence[Task]) -> list[dict]:
    """Immutable identity of each task (scheduling state is not saved)."""
    return [
        {
            "id": t.task_id,
            "type": t.task_type,
            "arrival": t.arrival,
            "deadline": t.deadline,
        }
        for t in tasks
    ]


def records_to_tasks(records: Sequence[dict]) -> list[Task]:
    """Rebuild fresh (PENDING) tasks from trace records."""
    return [
        Task(
            task_id=int(r["id"]),
            task_type=int(r["type"]),
            arrival=float(r["arrival"]),
            deadline=float(r["deadline"]),
        )
        for r in records
    ]


def _spec_to_dict(spec: WorkloadSpec) -> dict:
    return {
        "num_tasks": spec.num_tasks,
        "time_span": spec.time_span,
        "num_task_types": spec.num_task_types,
        "pattern": spec.pattern.value,
        "variance_fraction": spec.variance_fraction,
        "spike_amplitude": spec.spike_amplitude,
        "spike_duration_fraction": spec.spike_duration_fraction,
        "num_spikes": spec.num_spikes,
        "beta_range": list(spec.beta_range),
        "trim_edge_tasks": spec.trim_edge_tasks,
    }


def _spec_from_dict(d: dict) -> WorkloadSpec:
    return WorkloadSpec(
        num_tasks=d["num_tasks"],
        time_span=d["time_span"],
        num_task_types=d["num_task_types"],
        pattern=ArrivalPattern(d["pattern"]),
        variance_fraction=d["variance_fraction"],
        spike_amplitude=d["spike_amplitude"],
        spike_duration_fraction=d["spike_duration_fraction"],
        num_spikes=d["num_spikes"],
        beta_range=tuple(d["beta_range"]),
        trim_edge_tasks=d["trim_edge_tasks"],
    )


def save_trace(
    path: str | Path, tasks: Sequence[Task], spec: WorkloadSpec | None = None
) -> None:
    """Write a workload trial to ``path`` as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "spec": _spec_to_dict(spec) if spec is not None else None,
        "tasks": tasks_to_records(tasks),
    }
    Path(path).write_text(json.dumps(payload))


def load_trace(path: str | Path) -> tuple[list[Task], WorkloadSpec | None]:
    """Read a workload trial; returns fresh (PENDING) tasks plus the spec
    if one was saved."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version}")
    tasks = records_to_tasks(payload["tasks"])
    spec = _spec_from_dict(payload["spec"]) if payload.get("spec") else None
    return tasks, spec

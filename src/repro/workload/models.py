"""Additional arrival models beyond the paper's constant/spiky pair.

§V-B motivates the spiky pattern with "arrival patterns observed in HC
systems" and cites the characterization of mainstream video portals
(Miranda et al., ref [33]), which exhibit *diurnal* cycles and *bursty*
(Markov-modulated) request streams.  This module provides both, plus a
generic bridge that turns any per-type arrival arrays into a task list
with Eq. 4 deadlines — so every experiment in the harness can be re-run
under a different arrival law.

* :func:`diurnal_arrivals` — sinusoidal day/night rate modulation;
* :func:`mmpp_arrivals` — a Markov-modulated Poisson process alternating
  between quiet and bursty states with exponential dwell times;
* :func:`workload_from_arrivals` — arrivals → :class:`~repro.sim.task.
  Task` list with Eq. 4 deadlines, matching :func:`~repro.workload.
  generator.generate_workload` conventions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..sim.task import Task
from .arrivals import inhomogeneous_poisson_arrivals
from .generator import DurationModel, assign_deadlines

__all__ = [
    "DiurnalSpec",
    "MMPPSpec",
    "diurnal_arrivals",
    "mmpp_arrivals",
    "workload_from_arrivals",
]


@dataclass(frozen=True)
class DiurnalSpec:
    """Sinusoidal rate profile: ``rate(t) ∝ 1 + depth·sin(2πt/period)``."""

    period: float = 200.0
    #: Peak-to-mean modulation depth in [0, 1); 0 degenerates to constant.
    depth: float = 0.6
    #: Phase offset as a fraction of the period.
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.depth < 1.0:
            raise ValueError("depth must be in [0, 1)")


@dataclass(frozen=True)
class MMPPSpec:
    """Two-state Markov-modulated Poisson process.

    The process alternates between a *quiet* state (relative rate 1) and
    a *burst* state (relative rate ``burst_ratio``); dwell times in each
    state are exponential with the given means.
    """

    burst_ratio: float = 5.0
    mean_quiet_dwell: float = 80.0
    mean_burst_dwell: float = 20.0

    def __post_init__(self) -> None:
        if self.burst_ratio < 1.0:
            raise ValueError("burst_ratio must be >= 1")
        if self.mean_quiet_dwell <= 0 or self.mean_burst_dwell <= 0:
            raise ValueError("dwell times must be positive")

    @property
    def stationary_burst_fraction(self) -> float:
        """Long-run fraction of time spent in the burst state."""
        return self.mean_burst_dwell / (self.mean_quiet_dwell + self.mean_burst_dwell)

    @property
    def mean_rate_multiplier(self) -> float:
        f = self.stationary_burst_fraction
        return (1.0 - f) + self.burst_ratio * f


def _thinned_poisson(
    base_rate: float,
    peak_multiplier: float,
    multiplier_at,
    time_span: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Inhomogeneous Poisson sampling by thinning against the peak rate.

    Thin wrapper over the shared, bound-checked primitive in
    :func:`~repro.workload.arrivals.inhomogeneous_poisson_arrivals`.
    """
    peak_rate = base_rate * peak_multiplier
    if peak_rate <= 0:
        return np.empty(0)
    return inhomogeneous_poisson_arrivals(
        lambda t: base_rate * multiplier_at(t), peak_rate, time_span, rng
    )


def diurnal_arrivals(
    expected_count: float,
    time_span: float,
    rng: np.random.Generator,
    spec: DiurnalSpec | None = None,
) -> np.ndarray:
    """Arrival times under a sinusoidal (day/night) rate profile."""
    spec = spec or DiurnalSpec()
    if expected_count <= 0:
        return np.empty(0)
    base_rate = expected_count / time_span  # sinus integrates to its mean

    def multiplier(t: float) -> float:
        return 1.0 + spec.depth * math.sin(
            2.0 * math.pi * (t / spec.period + spec.phase)
        )

    return _thinned_poisson(base_rate, 1.0 + spec.depth, multiplier, time_span, rng)


def mmpp_arrivals(
    expected_count: float,
    time_span: float,
    rng: np.random.Generator,
    spec: MMPPSpec | None = None,
) -> np.ndarray:
    """Arrival times from a two-state MMPP normalized to the expected
    total count over the span."""
    spec = spec or MMPPSpec()
    if expected_count <= 0:
        return np.empty(0)
    base_rate = expected_count / (time_span * spec.mean_rate_multiplier)

    # Pre-sample the state trajectory, then thin a Poisson stream on it.
    switch_times: list[float] = []
    states: list[int] = []  # 0 quiet, 1 burst
    t, state = 0.0, 0
    while t < time_span:
        states.append(state)
        switch_times.append(t)
        dwell = rng.exponential(
            spec.mean_quiet_dwell if state == 0 else spec.mean_burst_dwell
        )
        t += dwell
        state = 1 - state
    switch = np.asarray(switch_times)

    def multiplier(at: float) -> float:
        idx = int(np.searchsorted(switch, at, side="right")) - 1
        return spec.burst_ratio if states[max(idx, 0)] == 1 else 1.0

    return _thinned_poisson(base_rate, spec.burst_ratio, multiplier, time_span, rng)


def workload_from_arrivals(
    arrivals_by_type: Mapping[int, Sequence[float]] | Mapping[int, np.ndarray],
    model: DurationModel,
    rng: np.random.Generator,
    *,
    beta_range: tuple[float, float] = (0.8, 2.5),
) -> list[Task]:
    """Turn per-type arrival arrays into a task list with Eq. 4 deadlines.

    Matches :func:`~repro.workload.generator.generate_workload`'s
    conventions: tasks sorted by arrival, ids sequential in arrival order.
    """
    records: list[tuple[float, int, float]] = []
    for ttype in sorted(arrivals_by_type):
        if not 0 <= ttype < model.num_task_types:
            raise ValueError(f"task type {ttype} outside the model's range")
        arr = np.asarray(arrivals_by_type[ttype], dtype=np.float64)
        if arr.size == 0:
            continue
        deadlines = assign_deadlines(arr, ttype, model, rng, beta_range)
        records.extend((float(a), ttype, float(d)) for a, d in zip(arr, deadlines))
    records.sort(key=lambda r: r[0])
    return [
        Task(task_id=i, task_type=tt, arrival=a, deadline=d)
        for i, (a, tt, d) in enumerate(records)
    ]

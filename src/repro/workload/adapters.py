"""Public-trace adapters: external cluster logs → replayable traces.

The paper evaluates pruning on synthetic workloads (§V-B); ROADMAP
item 3 calls for realistic arrival regimes from public traces.  This
module normalizes two widely used formats into the native
``id,type,arrival,deadline`` identity model:

* **Azure Functions invocation logs** — one row per invocation with
  ``app``/``func`` owner columns, a completion ``end_timestamp`` and a
  ``duration``: arrival is reconstructed as ``end − duration`` and the
  task type is the dense index of the ``(app, func)`` pair.
* **Google cluster-usage task events** — one row per task with
  ``job_id``/``task_index`` and ``start_time``/``end_time`` stamps in
  arbitrary units (``time_scale`` converts them): the task type is the
  dense index of the job.

Both adapters are *strict*: malformed rows (missing or non-numeric
fields, negative durations, non-monotone timestamps, more distinct
types than the PET matrix has rows) raise :class:`TraceFormatError`
naming the offending data row — silently coercing a malformed log
would replay a workload nobody recorded.  Deadlines do not exist in
either source, so they are synthesized as
``arrival + duration × deadline_slack`` (the external-trace analogue of
Eq. 4's per-task slack).

Normalized tasks are arrival-sorted with dense sequential ids, so they
round-trip losslessly through :func:`~repro.workload.trace.save_csv_trace`
→ :func:`~repro.workload.trace.load_any_trace`.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from collections.abc import Mapping, Sequence

from ..sim.task import Task
from .dag import task_depths

__all__ = [
    "TraceFormatError",
    "AZURE_COLUMNS",
    "GCLUSTER_COLUMNS",
    "normalize_azure_records",
    "normalize_gcluster_records",
    "load_azure_trace",
    "load_gcluster_trace",
    "downsample_tasks",
]


class TraceFormatError(ValueError):
    """A malformed external-trace row (the message names the data row)."""


#: Columns an Azure-Functions-style invocation log must carry.
AZURE_COLUMNS = ("app", "func", "end_timestamp", "duration")

#: Columns a Google-cluster-usage-style task log must carry.
GCLUSTER_COLUMNS = ("job_id", "task_index", "start_time", "end_time")


def _field(record: Mapping, key: str, row: int, source: str):
    try:
        value = record[key]
    except (KeyError, TypeError):
        raise TraceFormatError(
            f"{source} row {row}: missing field {key!r}"
        ) from None
    if value is None or (isinstance(value, str) and not value.strip()):
        raise TraceFormatError(f"{source} row {row}: empty field {key!r}")
    return value


def _numeric(record: Mapping, key: str, row: int, source: str) -> float:
    value = _field(record, key, row, source)
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise TraceFormatError(
            f"{source} row {row}: non-numeric {key}: {value!r}"
        ) from None
    if not math.isfinite(number):
        raise TraceFormatError(
            f"{source} row {row}: non-finite {key}: {value!r}"
        )
    return number


def _type_index(
    key, types: dict, row: int, source: str, max_task_types: int
) -> int:
    """Dense first-appearance type index, capped at the PET capacity."""
    index = types.get(key)
    if index is None:
        if len(types) >= max_task_types:
            raise TraceFormatError(
                f"{source} row {row}: unknown task type {key!r} — the "
                f"trace already uses {max_task_types} distinct types "
                f"(max_task_types); raise the cap or pre-filter the log"
            )
        index = len(types)
        types[key] = index
    return index


def _finalize(entries: list[tuple[float, float, int]]) -> list[Task]:
    """(arrival, deadline, type) triples → arrival-sorted dense tasks.

    The origin shifts so the earliest arrival is 0.0 and ids are
    assigned in (arrival, input-order) order — exactly the order
    :func:`~repro.workload.trace.load_any_trace` replays, which makes
    normalize → save → load the identity.
    """
    t0 = min(arrival for arrival, _, _ in entries)
    ordered = sorted(
        range(len(entries)), key=lambda i: (entries[i][0], i)
    )
    return [
        Task(
            task_id=tid,
            task_type=entries[i][2],
            arrival=entries[i][0] - t0,
            deadline=entries[i][1] - t0,
        )
        for tid, i in enumerate(ordered)
    ]


def normalize_azure_records(
    records: Sequence[Mapping],
    *,
    deadline_slack: float = 3.0,
    max_task_types: int = 12,
) -> list[Task]:
    """Azure-Functions-style invocation rows → replayable tasks.

    Each record needs ``app``, ``func``, ``end_timestamp`` and
    ``duration``.  Rows must be ordered by ``end_timestamp`` (the order
    Azure publishes); durations must be non-negative.  Violations raise
    :class:`TraceFormatError` with the 1-based data-row number.
    """
    if deadline_slack < 1:
        raise ValueError("deadline_slack must be >= 1 (deadline at or after finish)")
    if not records:
        raise TraceFormatError("azure trace: no data rows")
    entries: list[tuple[float, float, int]] = []
    types: dict = {}
    last_end = -math.inf
    for i, record in enumerate(records):
        row = i + 1
        app = _field(record, "app", row, "azure")
        func = _field(record, "func", row, "azure")
        end = _numeric(record, "end_timestamp", row, "azure")
        duration = _numeric(record, "duration", row, "azure")
        if duration < 0:
            raise TraceFormatError(
                f"azure row {row}: negative duration {duration!r}"
            )
        if end < last_end:
            raise TraceFormatError(
                f"azure row {row}: non-monotone end_timestamp {end!r} "
                f"(previous row ended at {last_end!r})"
            )
        last_end = end
        ttype = _type_index((app, func), types, row, "azure", max_task_types)
        arrival = end - duration
        entries.append((arrival, arrival + duration * deadline_slack, ttype))
    return _finalize(entries)


def normalize_gcluster_records(
    records: Sequence[Mapping],
    *,
    deadline_slack: float = 3.0,
    max_task_types: int = 12,
    time_scale: float = 1.0,
) -> list[Task]:
    """Google-cluster-usage-style task rows → replayable tasks.

    Each record needs ``job_id``, ``task_index``, ``start_time`` and
    ``end_time``.  Rows must be ordered by ``start_time`` (the
    cluster-usage event order); ``end_time`` must not precede
    ``start_time``.  ``time_scale`` converts the source clock (e.g.
    ``1e-6`` for microsecond stamps) into simulator time units.
    Violations raise :class:`TraceFormatError` with the 1-based
    data-row number.
    """
    if deadline_slack < 1:
        raise ValueError("deadline_slack must be >= 1 (deadline at or after finish)")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    if not records:
        raise TraceFormatError("gcluster trace: no data rows")
    entries: list[tuple[float, float, int]] = []
    types: dict = {}
    last_start = -math.inf
    for i, record in enumerate(records):
        row = i + 1
        job = _field(record, "job_id", row, "gcluster")
        _numeric(record, "task_index", row, "gcluster")
        start = _numeric(record, "start_time", row, "gcluster")
        end = _numeric(record, "end_time", row, "gcluster")
        if end < start:
            raise TraceFormatError(
                f"gcluster row {row}: negative duration "
                f"(end_time {end!r} precedes start_time {start!r})"
            )
        if start < last_start:
            raise TraceFormatError(
                f"gcluster row {row}: non-monotone start_time {start!r} "
                f"(previous row started at {last_start!r})"
            )
        last_start = start
        ttype = _type_index(job, types, row, "gcluster", max_task_types)
        arrival = start * time_scale
        duration = (end - start) * time_scale
        entries.append((arrival, arrival + duration * deadline_slack, ttype))
    return _finalize(entries)


def _load_rows(path: str | Path, columns: Sequence[str], source: str) -> list[dict]:
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames or []
        missing = [c for c in columns if c not in header]
        if missing:
            raise TraceFormatError(
                f"{path}: {source} CSV header {header} is missing "
                f"column(s) {missing}"
            )
        return list(reader)


def load_azure_trace(path: str | Path, **kwargs) -> list[Task]:
    """Read an Azure-Functions-style invocation CSV into tasks."""
    return normalize_azure_records(
        _load_rows(path, AZURE_COLUMNS, "azure"), **kwargs
    )


def load_gcluster_trace(path: str | Path, **kwargs) -> list[Task]:
    """Read a Google-cluster-usage-style task CSV into tasks."""
    return normalize_gcluster_records(
        _load_rows(path, GCLUSTER_COLUMNS, "gcluster"), **kwargs
    )


def downsample_tasks(tasks: Sequence[Task], rate: float, rng) -> list[Task]:
    """Keep a random ``rate`` fraction of a replayed trace.

    Deterministic per (config, trial): ``rng`` is the trial's workload
    stream, and the single vectorized draw consumes it in a fixed
    order.  Rate 1.0 is the identity and consumes nothing.  For DAG
    traces the selection is dependency-closed — a task survives only if
    every transitive ancestor survives, so no replayed task ever waits
    on a parent that was sampled away.  If the draw keeps nothing, the
    first root task is kept so the replay is never empty.
    """
    if not 0 < rate <= 1:
        raise ValueError("downsampling rate must be in (0, 1]")
    if rate == 1.0:
        return list(tasks)
    mask = rng.random(len(tasks)) < rate
    picked = {t.task_id: bool(keep) for t, keep in zip(tasks, mask)}
    if any(t.deps for t in tasks):
        deps = {t.task_id: t.deps for t in tasks}
        depth = task_depths(deps)
        kept: dict[int, bool] = {}
        for tid in sorted(deps, key=lambda t: (depth[t], t)):
            kept[tid] = picked[tid] and all(kept[p] for p in deps[tid])
    else:
        kept = picked
    sampled = [t for t in tasks if kept[t.task_id]]
    if not sampled:
        sampled = [next(t for t in tasks if not t.deps)]
    return sampled

"""Workload generation (§V-B): arrival patterns, deadlines, traces."""

from .arrivals import (
    arrival_rate_series,
    bursty_arrivals,
    constant_arrivals,
    generate_type_arrivals,
    inhomogeneous_poisson_arrivals,
    poisson_arrivals,
    spiky_arrivals,
    spiky_rate_profile,
)
from .generator import assign_deadlines, generate_workload, trimmed_slice
from .models import (
    DiurnalSpec,
    MMPPSpec,
    diurnal_arrivals,
    mmpp_arrivals,
    workload_from_arrivals,
)
from .spec import PAPER_TIME_SPAN, ArrivalPattern, WorkloadSpec
from .trace import (
    load_any_trace,
    load_csv_trace,
    load_trace,
    records_to_tasks,
    save_csv_trace,
    save_trace,
    tasks_to_records,
    trace_spec,
)

__all__ = [
    "WorkloadSpec",
    "ArrivalPattern",
    "PAPER_TIME_SPAN",
    "generate_workload",
    "assign_deadlines",
    "trimmed_slice",
    "constant_arrivals",
    "spiky_arrivals",
    "spiky_rate_profile",
    "inhomogeneous_poisson_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "generate_type_arrivals",
    "arrival_rate_series",
    "DiurnalSpec",
    "MMPPSpec",
    "diurnal_arrivals",
    "mmpp_arrivals",
    "workload_from_arrivals",
    "save_trace",
    "load_trace",
    "save_csv_trace",
    "load_csv_trace",
    "load_any_trace",
    "trace_spec",
    "tasks_to_records",
    "records_to_tasks",
]

"""Workload generation (§V-B): arrival patterns, deadlines, traces."""

from .adapters import (
    TraceFormatError,
    downsample_tasks,
    load_azure_trace,
    load_gcluster_trace,
    normalize_azure_records,
    normalize_gcluster_records,
)
from .arrivals import (
    arrival_rate_series,
    bursty_arrivals,
    constant_arrivals,
    generate_type_arrivals,
    inhomogeneous_poisson_arrivals,
    poisson_arrivals,
    spiky_arrivals,
    spiky_rate_profile,
)
from .dag import assign_layered_deps, count_edges, task_depths, validate_deps
from .generator import assign_deadlines, generate_workload, trimmed_slice
from .models import (
    DiurnalSpec,
    MMPPSpec,
    diurnal_arrivals,
    mmpp_arrivals,
    workload_from_arrivals,
)
from .spec import PAPER_TIME_SPAN, ArrivalPattern, WorkloadSpec
from .trace import (
    load_any_trace,
    load_csv_trace,
    load_trace,
    records_to_tasks,
    save_csv_trace,
    save_trace,
    tasks_to_records,
    trace_spec,
)

__all__ = [
    "WorkloadSpec",
    "ArrivalPattern",
    "PAPER_TIME_SPAN",
    "generate_workload",
    "assign_deadlines",
    "trimmed_slice",
    "constant_arrivals",
    "spiky_arrivals",
    "spiky_rate_profile",
    "inhomogeneous_poisson_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "generate_type_arrivals",
    "arrival_rate_series",
    "DiurnalSpec",
    "MMPPSpec",
    "diurnal_arrivals",
    "mmpp_arrivals",
    "workload_from_arrivals",
    "save_trace",
    "load_trace",
    "save_csv_trace",
    "load_csv_trace",
    "load_any_trace",
    "trace_spec",
    "tasks_to_records",
    "records_to_tasks",
    "TraceFormatError",
    "normalize_azure_records",
    "normalize_gcluster_records",
    "load_azure_trace",
    "load_gcluster_trace",
    "downsample_tasks",
    "validate_deps",
    "task_depths",
    "count_edges",
    "assign_layered_deps",
]

"""The controller driver: ticks, setpoint actuation, telemetry.

The driver sits between the simulation and a
:class:`~repro.control.controllers.Controller`:

* the :class:`~repro.core.pruner.Pruner` calls :meth:`tick` once per
  mapping event (Fig. 5 step 0, before fairness/toggle/drop-scan so the
  event's own decisions already use the fresh setpoints);
* the simulator fires :meth:`time_tick` at a schedule controller's
  breakpoints (``Priority.CONTROL`` events) so β(t) changes land even
  during quiet stretches;
* every *change* is clamped (β ∈ [0, 1], α ≥ 0), applied to the shared
  :class:`~repro.control.signals.Setpoints`, and recorded in the
  trajectory that :meth:`stats` reports as ``controller_stats``.
"""

from __future__ import annotations

from .controllers import Controller
from .signals import ControlSignals, Setpoints

__all__ = ["ControllerDriver"]


class ControllerDriver:
    """Owns the controller ↔ setpoints loop for one simulation run."""

    def __init__(self, controller: Controller, setpoints: Setpoints) -> None:
        self.controller = controller
        self.setpoints = setpoints
        self.ticks = 0
        self.time_ticks = 0
        self.updates = 0
        self.initial = (setpoints.beta, setpoints.alpha)
        #: Applied setpoint changes as ``[time, β, α]`` rows (JSON-ready).
        self.trajectory: list[list[float]] = []

    # ------------------------------------------------------------------
    def tick(self, signals: ControlSignals) -> None:
        """One mapping-event observation → possibly new setpoints."""
        self.ticks += 1
        self._apply(self.controller.update(signals), signals.now)

    def time_tick(self, now: float) -> None:
        """A scheduled (time-triggered) consultation between events."""
        self.time_ticks += 1
        self._apply(self.controller.at_time(now), now)

    def breakpoints(self) -> tuple[float, ...]:
        return self.controller.breakpoints()

    # ------------------------------------------------------------------
    def _apply(self, out: tuple[float, int] | None, now: float) -> None:
        if out is None:
            return
        candidate = Setpoints(beta=float(out[0]), alpha=int(out[1]))
        candidate.clamp()
        if (
            candidate.beta == self.setpoints.beta
            and candidate.alpha == self.setpoints.alpha
        ):
            return
        self.setpoints.beta = candidate.beta
        self.setpoints.alpha = candidate.alpha
        self.updates += 1
        self.trajectory.append([float(now), candidate.beta, float(candidate.alpha)])

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready ``controller_stats`` payload (round-trip stable)."""
        payload = {
            "controller": self.controller.name,
            "ticks": self.ticks,
            "time_ticks": self.time_ticks,
            "updates": self.updates,
            "initial": [float(self.initial[0]), float(self.initial[1])],
            "final": [float(self.setpoints.beta), float(self.setpoints.alpha)],
            "trajectory": [list(row) for row in self.trajectory],
        }
        # Policy extras (the bandit's arm table/pull counts) ride along
        # only when present, so the payloads of the pre-existing
        # controllers — and their golden fixtures — stay byte-identical.
        policy = self.controller.policy_stats()
        if policy:
            payload["policy"] = policy
        return payload

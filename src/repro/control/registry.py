"""Controller registry: names → classes, plus spec parsing.

Mirrors the heuristics registry: every controller is reachable by a
stable name so sweep grids, the CLI, and golden-case manifests can name
one declaratively.

Three spellings resolve to a :class:`~repro.core.config.ControllerConfig`:

* a bare name — ``"hysteresis"`` (all defaults);
* a CLI/grid spec string — ``"hysteresis:low=0.05,high=0.3,step=0.1"``
  or ``"schedule:0=0.25,120=0.75"`` (schedule pairs are ``t=β``);
* a mapping — ``{"kind": "target-success", "target": 0.6}``.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping

from ..core.config import CONTROLLER_KINDS, ControllerConfig, PruningConfig
from .controllers import (
    BanditController,
    Controller,
    HysteresisController,
    ScheduleController,
    StaticController,
    TargetSuccessController,
)
from .driver import ControllerDriver
from .signals import Setpoints

__all__ = [
    "CONTROLLERS",
    "make_controller",
    "make_driver",
    "parse_controller_spec",
    "resolve_controller",
]

#: kind → controller class (keys match :data:`CONTROLLER_KINDS`).
CONTROLLERS: dict[str, type[Controller]] = {
    "static": StaticController,
    "schedule": ScheduleController,
    "hysteresis": HysteresisController,
    "target-success": TargetSuccessController,
    "bandit": BanditController,
}
assert set(CONTROLLERS) == set(CONTROLLER_KINDS)


# ----------------------------------------------------------------------
# Typed spec-value converters.  A spec value arrives as the raw string
# from a ``k=v`` item or, after JSON parsing (values starting with ``[``
# or ``{``), as a list/dict — each converter normalizes both spellings
# and raises a bare-reason ValueError; ``_convert`` prefixes the
# offending key so every error names what was wrong *and where*.
# ----------------------------------------------------------------------
def _as_float(value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (str, int, float)):
        raise ValueError(f"expected a number, got {value!r}")
    return float(value)


def _as_int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, (str, int, float)):
        raise ValueError(f"expected an integer, got {value!r}")
    as_float = float(value)
    if not as_float.is_integer():
        raise ValueError(f"expected an integer, got {value!r}")
    return int(as_float)


def _as_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
    raise ValueError(f"expected true/false, got {value!r}")


def _as_float_tuple(value: object) -> tuple[float, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(_as_float(v) for v in value)
    return (_as_float(value),)  # a bare scalar is a 1-element grid


def _as_int_tuple(value: object) -> tuple[int, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(_as_int(v) for v in value)
    return (_as_int(value),)


def _as_breakpoints(value: object) -> tuple[tuple[float, float], ...]:
    """Schedule breakpoints from a JSON dict (``{"0": 0.25, "120": 0.75}``)
    or pair list (``[[0, 0.25], [120, 0.75]]``)."""
    if isinstance(value, Mapping):
        pairs = [(_as_float(t), _as_float(v)) for t, v in value.items()]
    elif isinstance(value, (list, tuple)):
        pairs = []
        for point in value:
            if not isinstance(point, (list, tuple)) or len(point) != 2:
                raise ValueError(f"expected [t, value] pairs, got {point!r}")
            pairs.append((_as_float(point[0]), _as_float(point[1])))
    else:
        raise ValueError(f"expected a {{t: value}} dict or [t, value] pairs, got {value!r}")
    return tuple(sorted(pairs))


#: ControllerConfig fields a spec string / mapping may set → converter.
_FIELD_TYPES: dict[str, Callable[[object], object]] = {
    "low": _as_float,
    "high": _as_float,
    "step": _as_float,
    "cooldown": _as_int,
    "window": _as_int,
    "adapt_alpha": _as_bool,
    "beta_min": _as_float,
    "beta_max": _as_float,
    "target": _as_float,
    "settle": _as_int,
    "epsilon": _as_float,
    "ucb_c": _as_float,
    "seed": _as_int,
    "betas": _as_float_tuple,
    "alphas": _as_int_tuple,
    "miss_bands": _as_float_tuple,
    "queue_bands": _as_int_tuple,
    "schedule": _as_breakpoints,
    "alpha_schedule": _as_breakpoints,
}


def make_controller(config: ControllerConfig, base: PruningConfig) -> Controller:
    """Instantiate the controller a config names."""
    return CONTROLLERS[config.kind](config, base)


def make_driver(
    config: ControllerConfig | None,
    base: PruningConfig,
    setpoints: Setpoints,
) -> ControllerDriver | None:
    """Build the driver for a pruning config (``None`` → no control plane)."""
    if config is None:
        return None
    return ControllerDriver(make_controller(config, base), setpoints)


def _split_spec_items(text: str) -> list[str]:
    """Split a spec's parameter list on *top-level* commas only.

    Commas nested inside ``[...]``/``{...}`` (a ``betas=[0.3,0.5]`` grid,
    a JSON ``schedule={...}`` dict) or inside quotes belong to the value,
    not the item list.  Unbalanced brackets fail here, by name, instead
    of as a confusing per-item parse error downstream.
    """
    items: list[str] = []
    depth = 0
    quote: str | None = None
    start = 0
    for i, ch in enumerate(text):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
        elif ch in "[{(":
            depth += 1
        elif ch in "]})":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced brackets in controller spec {text!r}")
        elif ch == "," and depth == 0:
            items.append(text[start:i])
            start = i + 1
    if depth != 0 or quote is not None:
        raise ValueError(f"unbalanced brackets or quotes in controller spec {text!r}")
    items.append(text[start:])
    return items


def _convert(key: str, raw: str) -> object:
    if key not in _FIELD_TYPES:
        raise ValueError(
            f"unknown controller parameter {key!r}; allowed: {sorted(_FIELD_TYPES)}"
        )
    value: object = raw
    if raw[:1] in "[{":
        try:
            value = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"controller parameter {key}={raw!r} is not valid JSON: {exc}"
            ) from exc
    try:
        return _FIELD_TYPES[key](value)
    except ValueError as exc:
        raise ValueError(f"controller parameter {key}={raw!r}: {exc}") from exc


def parse_controller_spec(spec: str) -> ControllerConfig:
    """Parse a ``kind[:k=v,...]`` spec string (the CLI's ``--controller``).

    Values may be scalars (``hysteresis:high=0.3``), JSON lists
    (``bandit:betas=[0.3,0.5,0.7],seed=7``) or JSON dicts
    (``schedule:schedule={"0":0.25,"120":0.75}``) — commas inside
    brackets belong to the value.  The schedule kind also keeps its
    positional ``t=β`` pairs (``"schedule:0=0.25,120=0.75"``) with named
    α breakpoints via ``alpha@t=value`` (``"schedule:0=0.3,alpha@60=2"``).
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty controller spec")
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    if kind not in CONTROLLERS:
        raise ValueError(
            f"unknown controller {kind!r}; choose from {sorted(CONTROLLERS)}"
        )
    kwargs: dict = {}
    schedule: list[tuple[float, float]] = []
    alpha_schedule: list[tuple[float, float]] = []
    if rest.strip():
        for item in _split_spec_items(rest):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(f"controller spec item {item!r} is not key=value")
            key = key.strip()
            value = value.strip()
            # Schedule kind: bare ``t=β`` / ``alpha@t=v`` breakpoints —
            # but a *named* parameter (window=, schedule={...}) is still
            # a parameter, so known field names take precedence.
            if kind == "schedule" and key not in _FIELD_TYPES:
                try:
                    if key.startswith("alpha@"):
                        alpha_schedule.append((float(key[len("alpha@"):]), float(value)))
                    else:
                        schedule.append((float(key), float(value)))
                    continue
                except ValueError as exc:
                    raise ValueError(
                        f"schedule breakpoint {item!r} is not t=beta "
                        f"(or alpha@t=value): {exc}"
                    ) from exc
            kwargs[key] = _convert(key, value)
    if kind == "schedule":
        named = kwargs.pop("schedule", ())
        named_alpha = kwargs.pop("alpha_schedule", ())
        kwargs["schedule"] = tuple(sorted((*schedule, *named)))
        kwargs["alpha_schedule"] = tuple(sorted((*alpha_schedule, *named_alpha)))
    return ControllerConfig(kind=kind, **kwargs)


def resolve_controller(entry: object) -> tuple[str, ControllerConfig | None]:
    """Resolve one grid ``controller`` entry to ``(label, config)``.

    Accepted forms::

        "none" / None                  no control plane (the default)
        "static" / "hysteresis" / ...  a registered kind with defaults
        "hysteresis:high=0.3"          a spec string (see parse_controller_spec)
        "hysteresis:high=0.4,label=hot"  spec string with an explicit label,
                                       so two tunings of one kind can share
                                       a grid axis without colliding
        {"kind": "schedule",           fully explicit variant; "label"
         "schedule": [[0, 0.25],       overrides the derived name
          [120, 0.75]],
         "label": "ramp"}
    """
    if entry is None or entry == "none":
        return "", None
    if isinstance(entry, str):
        # Pull a label= item out before parsing — it names the grid cell,
        # it is not a controller parameter.
        label = None
        kind, sep, rest = entry.partition(":")
        if sep:
            params = []
            for item in _split_spec_items(rest):
                key, eq, value = item.partition("=")
                if eq and key.strip() == "label":
                    label = value.strip()
                else:
                    params.append(item)
            entry = kind + (":" + ",".join(params) if params else "")
        config = parse_controller_spec(entry)
        return label or config.kind, config
    if isinstance(entry, Mapping):
        fields = dict(entry)
        label = fields.pop("label", None)
        allowed = set(ControllerConfig.__dataclass_fields__)
        unknown = set(fields) - allowed
        if unknown:
            raise ValueError(
                f"unknown controller keys {sorted(unknown)}; allowed: "
                f"{sorted(allowed | {'label'})}"
            )
        for key in ("schedule", "alpha_schedule"):
            if key in fields:
                fields[key] = tuple(tuple(point) for point in fields[key])
        config = ControllerConfig(**fields)
        return str(label) if label else config.kind, config
    raise ValueError(f"unrecognized controller entry: {entry!r}")

"""Controller registry: names → classes, plus spec parsing.

Mirrors the heuristics registry: every controller is reachable by a
stable name so sweep grids, the CLI, and golden-case manifests can name
one declaratively.

Three spellings resolve to a :class:`~repro.core.config.ControllerConfig`:

* a bare name — ``"hysteresis"`` (all defaults);
* a CLI/grid spec string — ``"hysteresis:low=0.05,high=0.3,step=0.1"``
  or ``"schedule:0=0.25,120=0.75"`` (schedule pairs are ``t=β``);
* a mapping — ``{"kind": "target-success", "target": 0.6}``.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.config import CONTROLLER_KINDS, ControllerConfig, PruningConfig
from .controllers import (
    Controller,
    HysteresisController,
    ScheduleController,
    StaticController,
    TargetSuccessController,
)
from .driver import ControllerDriver
from .signals import Setpoints

__all__ = [
    "CONTROLLERS",
    "make_controller",
    "make_driver",
    "parse_controller_spec",
    "resolve_controller",
]

#: kind → controller class (keys match :data:`CONTROLLER_KINDS`).
CONTROLLERS: dict[str, type[Controller]] = {
    "static": StaticController,
    "schedule": ScheduleController,
    "hysteresis": HysteresisController,
    "target-success": TargetSuccessController,
}
assert set(CONTROLLERS) == set(CONTROLLER_KINDS)

#: ControllerConfig fields a spec string / mapping may set, with their
#: scalar converters (schedules are handled separately).
_FIELD_TYPES = {
    "low": float,
    "high": float,
    "step": float,
    "cooldown": int,
    "window": int,
    "adapt_alpha": bool,
    "beta_min": float,
    "beta_max": float,
    "target": float,
    "settle": int,
}


def make_controller(config: ControllerConfig, base: PruningConfig) -> Controller:
    """Instantiate the controller a config names."""
    return CONTROLLERS[config.kind](config, base)


def make_driver(
    config: ControllerConfig | None,
    base: PruningConfig,
    setpoints: Setpoints,
) -> ControllerDriver | None:
    """Build the driver for a pruning config (``None`` → no control plane)."""
    if config is None:
        return None
    return ControllerDriver(make_controller(config, base), setpoints)


def _convert(key: str, raw: str) -> bool | int | float:
    if key not in _FIELD_TYPES:
        raise ValueError(
            f"unknown controller parameter {key!r}; allowed: {sorted(_FIELD_TYPES)}"
        )
    kind = _FIELD_TYPES[key]
    if kind is bool:
        lowered = raw.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise ValueError(f"controller parameter {key} expects true/false, got {raw!r}")
    try:
        return kind(raw)
    except ValueError as exc:
        raise ValueError(f"controller parameter {key}={raw!r}: {exc}") from exc


def parse_controller_spec(spec: str) -> ControllerConfig:
    """Parse a ``kind[:k=v,...]`` spec string (the CLI's ``--controller``).

    The schedule kind takes ``t=β`` pairs instead of named parameters
    (``"schedule:0=0.25,120=0.75"``); append named α breakpoints with an
    ``alpha@t=value`` spelling (``"schedule:0=0.3,alpha@60=2"``).
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty controller spec")
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    if kind not in CONTROLLERS:
        raise ValueError(
            f"unknown controller {kind!r}; choose from {sorted(CONTROLLERS)}"
        )
    kwargs: dict = {}
    schedule: list[tuple[float, float]] = []
    alpha_schedule: list[tuple[float, float]] = []
    if rest.strip():
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(f"controller spec item {item!r} is not key=value")
            key = key.strip()
            value = value.strip()
            if kind == "schedule":
                try:
                    if key.startswith("alpha@"):
                        alpha_schedule.append((float(key[len("alpha@"):]), float(value)))
                    else:
                        schedule.append((float(key), float(value)))
                    continue
                except ValueError as exc:
                    raise ValueError(
                        f"schedule breakpoint {item!r} is not t=beta "
                        f"(or alpha@t=value): {exc}"
                    ) from exc
            kwargs[key] = _convert(key, value)
    if kind == "schedule":
        kwargs["schedule"] = tuple(sorted(schedule))
        kwargs["alpha_schedule"] = tuple(sorted(alpha_schedule))
    return ControllerConfig(kind=kind, **kwargs)


def resolve_controller(entry: object) -> tuple[str, ControllerConfig | None]:
    """Resolve one grid ``controller`` entry to ``(label, config)``.

    Accepted forms::

        "none" / None                  no control plane (the default)
        "static" / "hysteresis" / ...  a registered kind with defaults
        "hysteresis:high=0.3"          a spec string (see parse_controller_spec)
        "hysteresis:high=0.4,label=hot"  spec string with an explicit label,
                                       so two tunings of one kind can share
                                       a grid axis without colliding
        {"kind": "schedule",           fully explicit variant; "label"
         "schedule": [[0, 0.25],       overrides the derived name
          [120, 0.75]],
         "label": "ramp"}
    """
    if entry is None or entry == "none":
        return "", None
    if isinstance(entry, str):
        # Pull a label= item out before parsing — it names the grid cell,
        # it is not a controller parameter.
        label = None
        kind, sep, rest = entry.partition(":")
        if sep:
            params = []
            for item in rest.split(","):
                key, eq, value = item.partition("=")
                if eq and key.strip() == "label":
                    label = value.strip()
                else:
                    params.append(item)
            entry = kind + (":" + ",".join(params) if params else "")
        config = parse_controller_spec(entry)
        return label or config.kind, config
    if isinstance(entry, Mapping):
        fields = dict(entry)
        label = fields.pop("label", None)
        allowed = set(ControllerConfig.__dataclass_fields__)
        unknown = set(fields) - allowed
        if unknown:
            raise ValueError(
                f"unknown controller keys {sorted(unknown)}; allowed: "
                f"{sorted(allowed | {'label'})}"
            )
        for key in ("schedule", "alpha_schedule"):
            if key in fields:
                fields[key] = tuple(tuple(point) for point in fields[key])
        config = ControllerConfig(**fields)
        return str(label) if label else config.kind, config
    raise ValueError(f"unrecognized controller entry: {entry!r}")

"""Feedback controllers for the pruning threshold β and Toggle α.

The paper fixes β and α per experiment; its own Fig. 7/8 sweeps show the
best setting depends on the oversubscription level, which under
time-varying arrivals changes *within* a run.  Each controller here maps
a stream of :class:`~repro.control.signals.ControlSignals` snapshots to
setpoint updates, under one hard contract:

**Determinism.**  A controller's output is a pure function of its
:class:`~repro.core.config.ControllerConfig` and the snapshots it has
observed — never wall-clock time, global RNG, or any state outside the
instance.  That keeps campaign cache keys sound (config identifies
behavior) and parallel-vs-serial sweeps byte-identical.

``update`` returns the desired ``(β, α)`` pair, or ``None`` for "no
opinion this tick" (the driver keeps the current setpoints).  Returning
the *current* values is also a no-op — the driver only records actual
changes.
"""

from __future__ import annotations

import abc
import bisect
import math

import numpy as np

from ..core.config import ControllerConfig, PruningConfig
from ..sim.rng import tuning_seed
from .signals import ControlSignals

__all__ = [
    "Controller",
    "StaticController",
    "ScheduleController",
    "HysteresisController",
    "TargetSuccessController",
    "BanditController",
]


class Controller(abc.ABC):
    """One β/α policy observing mapping-event snapshots."""

    #: Registry key; also the label in ``controller_stats``.
    name: str = "controller"

    def __init__(self, config: ControllerConfig, base: PruningConfig) -> None:
        self.config = config
        self.base = base

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def update(self, signals: ControlSignals) -> tuple[float, int] | None:
        """Desired ``(β, α)`` for this mapping event (``None`` = keep)."""

    def at_time(self, now: float) -> tuple[float, int] | None:
        """Setpoints implied by time alone (time-triggered controllers).

        Fired by the simulator at :meth:`breakpoints` between mapping
        events so a scheduled change lands promptly even during quiet
        stretches; event-driven controllers return ``None``.
        """
        return None

    def breakpoints(self) -> tuple[float, ...]:
        """Times at which :meth:`at_time` should be consulted (config-pure)."""
        return ()

    # ------------------------------------------------------------------
    # Snapshot/restore (the live service's rolling-restart path).  The
    # determinism contract above is what makes this generic: a
    # controller's behavior is a pure function of (config, observed
    # snapshots), so its *mutable scalars* are its entire evolving state.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-ready mutable state (config/base are reconstructed)."""
        return {
            k: v
            for k, v in vars(self).items()
            if k not in ("config", "base")
            and (v is None or isinstance(v, (int, float)))
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a fresh instance."""
        for k, v in state.items():
            if k in ("config", "base") or not hasattr(self, k):
                raise ValueError(f"unknown controller state field {k!r}")
            setattr(self, k, v)

    def policy_stats(self) -> dict:
        """Extra policy telemetry merged into ``controller_stats`` under
        ``"policy"`` — only when non-empty, so the payloads of existing
        controllers stay byte-identical (default: none)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.config.kind!r})"


class StaticController(Controller):
    """The default: β/α frozen at the config values.

    Attaching it explicitly is bit-identical to attaching no controller
    at all — the setpoints never move — but turns on control-plane
    telemetry (``controller_stats``/``fairness_stats`` on the result).
    """

    name = "static"

    def update(self, signals: ControlSignals) -> tuple[float, int] | None:
        return None


class ScheduleController(Controller):
    """Piecewise-constant β(t) (and optionally α(t)) schedules.

    Setpoints are a pure function of (config, t): the last breakpoint at
    or before ``t`` wins; before the first breakpoint the
    :class:`~repro.core.config.PruningConfig` constants apply.  Because
    nothing is learned from observations, a schedule composes with the
    campaign cache exactly like a static config does.
    """

    name = "schedule"

    def _value_at(self, points: tuple, now: float, default: float) -> float:
        value = default
        for t, v in points:
            if t > now:
                break
            value = v
        return value

    def setpoints_at(self, now: float) -> tuple[float, int]:
        beta = self._value_at(self.config.schedule, now, self.base.pruning_threshold)
        alpha = self._value_at(
            self.config.alpha_schedule, now, float(self.base.dropping_toggle)
        )
        return beta, int(alpha)

    def update(self, signals: ControlSignals) -> tuple[float, int] | None:
        return self.setpoints_at(signals.now)

    def at_time(self, now: float) -> tuple[float, int] | None:
        return self.setpoints_at(now)

    def breakpoints(self) -> tuple[float, ...]:
        times = {t for t, _ in self.config.schedule}
        times |= {t for t, _ in self.config.alpha_schedule}
        return tuple(sorted(times))


class HysteresisController(Controller):
    """Step β between bounds when the miss rate crosses bands.

    An EWMA (gain ``2 / (window + 1)``) of the per-tick deadline-miss
    rate is compared against the ``low``..``high`` dead-band:

    * above ``high`` → oversubscribed → β steps *up* by ``step`` (prune
      harder, shed doomed work), clamped to ``beta_max``;
    * below ``low`` → headroom → β steps *down* (give borderline tasks a
      chance), clamped to ``beta_min``;
    * inside the band → hold (the dead-band is what prevents chatter).

    After a move the controller stays quiet for ``cooldown`` ticks so the
    plant can respond before being judged again.  With ``adapt_alpha``
    the Toggle α additionally drops to 0 (most reactive) while above the
    band and returns to the config value below it.
    """

    name = "hysteresis"

    def __init__(self, config: ControllerConfig, base: PruningConfig) -> None:
        super().__init__(config, base)
        self.beta = min(max(base.pruning_threshold, config.beta_min), config.beta_max)
        self.alpha = base.dropping_toggle
        self._ewma: float | None = None
        self._cooldown_left = 0
        self._last_misses = 0
        self._last_outcomes = 0

    def update(self, signals: ControlSignals) -> tuple[float, int] | None:
        d_misses = signals.misses - self._last_misses
        d_outcomes = signals.outcomes - self._last_outcomes
        self._last_misses = signals.misses
        self._last_outcomes = signals.outcomes
        if d_outcomes > 0:
            rate = d_misses / d_outcomes
            gain = 2.0 / (self.config.window + 1)
            self._ewma = rate if self._ewma is None else (
                (1.0 - gain) * self._ewma + gain * rate
            )
        if self._ewma is None:
            return None
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return self.beta, self.alpha
        if self._ewma > self.config.high:
            self.beta = min(self.beta + self.config.step, self.config.beta_max)
            if self.config.adapt_alpha:
                self.alpha = 0
            self._cooldown_left = self.config.cooldown
        elif self._ewma < self.config.low:
            self.beta = max(self.beta - self.config.step, self.config.beta_min)
            if self.config.adapt_alpha:
                self.alpha = self.base.dropping_toggle
            self._cooldown_left = self.config.cooldown
        return self.beta, self.alpha


class TargetSuccessController(Controller):
    """Successive-approximation search for the β meeting a success target.

    Every ``settle`` ticks the on-time rate observed over the window
    just ended is compared to ``target`` and the bracket
    [``beta_min``, ``beta_max``] is halved around β, exactly like a
    guided binary search:

    * rate below target → pruning is too lax (capacity wasted on doomed
      tasks) → move β into the upper half-bracket;
    * rate at/above target → try relaxing → move β into the lower
      half-bracket.

    Windows with no outcomes extend rather than vote, so quiet stretches
    never collapse the bracket on no evidence.  Once the bracket
    converges (width below 2 % of the β range) it re-opens to
    [``beta_min``, ``beta_max``] around the current β, so the search can
    follow a load level that moved after convergence.
    """

    name = "target-success"

    def __init__(self, config: ControllerConfig, base: PruningConfig) -> None:
        super().__init__(config, base)
        self.beta = min(max(base.pruning_threshold, config.beta_min), config.beta_max)
        self._lo = config.beta_min
        self._hi = config.beta_max
        self._ticks = 0
        self._window_on_time = 0
        self._window_outcomes = 0

    def update(self, signals: ControlSignals) -> tuple[float, int] | None:
        self._ticks += 1
        if self._ticks < self.config.settle:
            return None
        window_on_time = signals.on_time - self._window_on_time
        window_outcomes = signals.outcomes - self._window_outcomes
        if window_outcomes <= 0:
            return None  # nothing landed; let the window keep growing
        self._ticks = 0
        self._window_on_time = signals.on_time
        self._window_outcomes = signals.outcomes
        rate = window_on_time / window_outcomes
        if rate < self.config.target:
            self._lo = self.beta
            self.beta = 0.5 * (self.beta + self._hi)
        else:
            self._hi = self.beta
            self.beta = 0.5 * (self._lo + self.beta)
        if self._hi - self._lo < 0.02 * (self.config.beta_max - self.config.beta_min):
            # Converged: re-open the bracket so the search can track a
            # load level that shifts later in the run.
            self._lo = self.config.beta_min
            self._hi = self.config.beta_max
        return self.beta, self.base.dropping_toggle


class BanditController(Controller):
    """Contextual multi-armed bandit over a discretized (β, α) grid.

    The online half of :mod:`repro.tuning`: where the offline tuner
    searches *between* runs, the bandit learns *within* one.  Arms are
    the cross product ``betas × alphas`` (α falling back to the config
    Toggle when ``alphas`` is empty).  Every ``window`` ticks the
    windowed on-time rate rewards the arm that was live, the load
    context is re-classified — (miss-rate band from ``miss_bands``) ×
    (queue-depth band from ``queue_bands``) — and the next arm is chosen
    for that context:

    * ``ucb_c > 0`` → deterministic UCB1 (unpulled arms first, then
      ``value + ucb_c · sqrt(ln(pulls) / n)``, ties to the lowest arm);
    * otherwise ε-greedy at rate ``epsilon``, exploration drawn from the
      dedicated ``tuning`` named stream rooted at ``config.seed``.

    Windows with no outcomes extend rather than vote (quiet stretches
    carry no evidence).  The RNG is consumed only at decision points, in
    observation order, so the policy remains a pure function of (config,
    observed snapshots) — campaign cache keys stay sound and snapshots
    restore exactly (:meth:`state_dict` carries the bit-generator state).
    """

    name = "bandit"

    def __init__(self, config: ControllerConfig, base: PruningConfig) -> None:
        super().__init__(config, base)
        alphas = config.alphas or (base.dropping_toggle,)
        #: Immutable (β, α) arm table, row-major over betas × alphas.
        self.arms: tuple[tuple[float, int], ...] = tuple(
            (float(b), int(a)) for b in config.betas for a in alphas
        )
        self.n_contexts = (len(config.miss_bands) + 1) * (len(config.queue_bands) + 1)
        self.counts: list[list[int]] = [
            [0] * len(self.arms) for _ in range(self.n_contexts)
        ]
        self.values: list[list[float]] = [
            [0.0] * len(self.arms) for _ in range(self.n_contexts)
        ]
        self.beta = base.pruning_threshold
        self.alpha = base.dropping_toggle
        self._rng = np.random.default_rng(tuning_seed(config.seed, "bandit"))
        self._ticks = 0
        self._win_on_time = 0
        self._win_misses = 0
        self._win_outcomes = 0
        self._arm: int | None = None     # arm live during the running window
        self._context = 0                # context in which _arm was pulled
        self._pulls = 0                  # total decisions (UCB log term)

    # ------------------------------------------------------------------
    def _classify(self, miss_rate: float, backlog: int) -> int:
        """Context index: (miss-rate band) × (queue-depth band)."""
        mband = bisect.bisect_right(self.config.miss_bands, miss_rate)
        qband = bisect.bisect_right(self.config.queue_bands, backlog)
        return mband * (len(self.config.queue_bands) + 1) + qband

    def _choose(self, context: int) -> int:
        counts = self.counts[context]
        values = self.values[context]
        if self.config.ucb_c > 0.0:
            for i, n in enumerate(counts):
                if n == 0:
                    return i  # unpulled arms first, in index order
            total = sum(counts)
            return max(
                range(len(self.arms)),
                key=lambda i: (
                    values[i]
                    + self.config.ucb_c * math.sqrt(math.log(total) / counts[i]),
                    -i,
                ),
            )
        if self._rng.random() < self.config.epsilon:
            return int(self._rng.integers(len(self.arms)))
        return max(range(len(self.arms)), key=lambda i: (values[i], -i))

    def update(self, signals: ControlSignals) -> tuple[float, int] | None:
        self._ticks += 1
        if self._ticks < self.config.window:
            return None
        d_on = signals.on_time - self._win_on_time
        d_miss = signals.misses - self._win_misses
        d_out = signals.outcomes - self._win_outcomes
        if d_out <= 0:
            return None  # nothing landed; let the window keep growing
        self._ticks = 0
        self._win_on_time = signals.on_time
        self._win_misses = signals.misses
        self._win_outcomes = signals.outcomes
        if self._arm is not None:
            # Incremental mean of the windowed on-time reward.
            c, a = self._context, self._arm
            self.counts[c][a] += 1
            self.values[c][a] += (d_on / d_out - self.values[c][a]) / self.counts[c][a]
        context = self._classify(d_miss / d_out, signals.backlog)
        arm = self._choose(context)
        self._arm = arm
        self._context = context
        self._pulls += 1
        self.beta, self.alpha = self.arms[arm]
        return self.beta, self.alpha

    # ------------------------------------------------------------------
    #: Mutable fields a snapshot carries (config/base/arms rebuild from
    #: the config; the RNG travels as its bit-generator state dict).
    _STATE_FIELDS = (
        "beta",
        "alpha",
        "counts",
        "values",
        "ticks",
        "win_on_time",
        "win_misses",
        "win_outcomes",
        "arm",
        "context",
        "pulls",
        "rng",
    )

    def state_dict(self) -> dict:
        return {
            "beta": self.beta,
            "alpha": self.alpha,
            "counts": [list(row) for row in self.counts],
            "values": [list(row) for row in self.values],
            "ticks": self._ticks,
            "win_on_time": self._win_on_time,
            "win_misses": self._win_misses,
            "win_outcomes": self._win_outcomes,
            "arm": self._arm,
            "context": self._context,
            "pulls": self._pulls,
            # PCG64 state is a plain dict of ints — JSON-round-trip safe.
            "rng": self._rng.bit_generator.state,
        }

    def load_state(self, state: dict) -> None:
        unknown = set(state) - set(self._STATE_FIELDS)
        if unknown:
            raise ValueError(f"unknown bandit state fields {sorted(unknown)}")
        missing = set(self._STATE_FIELDS) - set(state)
        if missing:
            raise ValueError(f"missing bandit state fields {sorted(missing)}")
        counts = [[int(n) for n in row] for row in state["counts"]]
        values = [[float(v) for v in row] for row in state["values"]]
        shape_ok = (
            len(counts) == self.n_contexts
            and len(values) == self.n_contexts
            and all(len(row) == len(self.arms) for row in counts)
            and all(len(row) == len(self.arms) for row in values)
        )
        if not shape_ok:
            raise ValueError(
                f"bandit state shape mismatch: expected {self.n_contexts} contexts "
                f"x {len(self.arms)} arms (was the config changed since the snapshot?)"
            )
        self.counts = counts
        self.values = values
        self.beta = float(state["beta"])
        self.alpha = int(state["alpha"])
        self._ticks = int(state["ticks"])
        self._win_on_time = int(state["win_on_time"])
        self._win_misses = int(state["win_misses"])
        self._win_outcomes = int(state["win_outcomes"])
        self._arm = None if state["arm"] is None else int(state["arm"])
        self._context = int(state["context"])
        self._pulls = int(state["pulls"])
        self._rng.bit_generator.state = state["rng"]

    # ------------------------------------------------------------------
    def policy_stats(self) -> dict:
        """Arm table, per-arm pull totals, and visited-context count."""
        per_arm = [sum(self.counts[c][a] for c in range(self.n_contexts))
                   for a in range(len(self.arms))]
        return {
            "mode": "ucb" if self.config.ucb_c > 0.0 else "epsilon-greedy",
            "arms": [[beta, alpha] for beta, alpha in self.arms],
            "pulls": per_arm,
            "contexts_visited": sum(
                1 for row in self.counts if any(n > 0 for n in row)
            ),
        }
